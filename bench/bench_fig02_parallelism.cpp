// Figure 2: job runtime vs. degree of parallelism for TPC-H queries.
//
// The paper shows Q9@100GB scaling up to ~40 parallel tasks, Q2@100GB
// saturating near 20, and Q9@2GB needing only ~5 — distinct "sweet spots"
// per (query, input size). We sweep parallelism for the same three configs
// on the simulator and print the runtime series.
#include "bench_common.h"

#include "sched/heuristics.h"

using namespace decima;

namespace {

double runtime_at(const sim::JobSpec& job, int parallelism) {
  sim::EnvConfig c;
  c.num_executors = parallelism;
  c.enable_moving_delay = false;  // single job, no competition
  sim::ClusterEnv env(c);
  env.add_job(job, 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo);
  return env.jobs()[0].finish;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 2",
      "TPC-H queries scale differently with parallelism: runtime vs. degree\n"
      "of parallelism for Q9@100GB, Q2@100GB, Q9@2GB.");

  const auto q9_100 = workload::make_tpch_job(9, 100);
  const auto q2_100 = workload::make_tpch_job(2, 100);
  const auto q9_2 = workload::make_tpch_job(9, 2);

  Table t({"parallelism", "Q9 100GB [s]", "Q2 100GB [s]", "Q9 2GB [s]"});
  for (int p : {1, 2, 5, 10, 20, 30, 40, 50, 60, 80, 100}) {
    t.add_row({fmt_int(p), fmt(runtime_at(q9_100, p), 1),
               fmt(runtime_at(q2_100, p), 1), fmt(runtime_at(q9_2, p), 1)});
  }
  std::cout << t.to_string();

  // Sweet-spot summary: the knee of each curve (parallelism past which less
  // than 3% improvement remains).
  auto sweet_spot = [&](const sim::JobSpec& job) {
    double prev = runtime_at(job, 1);
    for (int p = 2; p <= 100; ++p) {
      const double cur = runtime_at(job, p);
      if (cur > prev * 0.995) return p - 1;
      prev = cur;
    }
    return 100;
  };
  std::cout << "\nempirical sweet spots (paper: Q9@100GB ~40, Q2@100GB ~20, "
               "Q9@2GB ~5):\n"
            << "  Q9 100GB: " << sweet_spot(q9_100) << "\n"
            << "  Q2 100GB: " << sweet_spot(q2_100) << "\n"
            << "  Q9 2GB:   " << sweet_spot(q9_2) << "\n";
  return 0;
}
