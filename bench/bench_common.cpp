#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace decima::bench {

int train_iters(int fallback) { return env_int("DECIMA_TRAIN_ITERS", fallback); }
int bench_runs(int fallback) { return env_int("DECIMA_BENCH_RUNS", fallback); }

std::uint64_t scenario_seed(std::uint64_t fallback) {
  return static_cast<std::uint64_t>(
      env_int("DECIMA_SCENARIO_SEED", static_cast<int>(fallback)));
}

core::AgentConfig agent_with_seed(std::uint64_t seed) {
  core::AgentConfig c;
  c.seed = seed;
  return c;
}

void print_header(const std::string& figure, const std::string& description) {
  std::cout << "==============================================================\n"
            << "Reproduction of " << figure << "\n"
            << description << "\n"
            << "(training iterations and run counts are scaled down; set\n"
            << " DECIMA_TRAIN_ITERS / DECIMA_BENCH_RUNS to scale up)\n"
            << "==============================================================\n\n";
}

std::unique_ptr<core::DecimaAgent> trained_agent(
    const core::AgentConfig& agent_config, rl::TrainConfig train_config,
    const std::string& cache_key, int iters) {
  auto agent = std::make_unique<core::DecimaAgent>(agent_config);
  const std::string cache_path =
      "decima_cache_" + cache_key + "_" + std::to_string(iters) + ".model";
  if (std::filesystem::exists(cache_path) && agent->load(cache_path)) {
    std::cout << "[bench] loaded cached policy " << cache_path << "\n";
  } else {
    std::cout << "[bench] training policy '" << cache_key << "' for " << iters
              << " iterations...\n";
    train_config.num_iterations = iters;
    rl::ReinforceTrainer trainer(*agent, train_config);
    trainer.train();
    if (agent->save(cache_path)) {
      std::cout << "[bench] cached policy at " << cache_path << "\n";
    }
  }
  agent->set_mode(core::Mode::kGreedy);
  return agent;
}

rl::WorkloadSampler tpch_batch_sampler(int num_jobs) {
  return [num_jobs](std::uint64_t seed) {
    Rng rng(seed);
    return workload::batched(workload::sample_tpch_batch(rng, num_jobs));
  };
}

rl::WorkloadSampler tpch_continuous_sampler(int num_jobs, double mean_iat) {
  return [num_jobs, mean_iat](std::uint64_t seed) {
    Rng rng(seed);
    auto jobs = workload::sample_tpch_batch(rng, num_jobs);
    Rng arr(rng.fork());
    return workload::continuous(std::move(jobs), arr, mean_iat);
  };
}

std::vector<sim::JobSpec> random_dag_jobs(int num_jobs, int num_nodes,
                                          std::uint64_t seed, int feat_dim) {
  std::vector<sim::JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(num_jobs));
  for (int i = 0; i < num_jobs; ++i) {
    const auto dag = gnn::random_job_graph(
        seed + static_cast<std::uint64_t>(i), num_nodes, feat_dim);
    std::vector<std::vector<int>> parents(static_cast<std::size_t>(num_nodes));
    for (int p = 0; p < num_nodes; ++p) {
      for (int child : dag.children[static_cast<std::size_t>(p)]) {
        parents[static_cast<std::size_t>(child)].push_back(p);
      }
    }
    sim::JobBuilder b("dag" + std::to_string(i));
    for (int s = 0; s < num_nodes; ++s) {
      b.stage(2, 1.0, std::move(parents[static_cast<std::size_t>(s)]),
              /*mem_req=*/0.25);
    }
    jobs.push_back(b.build());
  }
  return jobs;
}

std::vector<double> eval_runs(sim::Scheduler& sched,
                              const sim::EnvConfig& env,
                              const rl::WorkloadSampler& sampler, int runs,
                              std::uint64_t seed_base) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    std::vector<std::vector<workload::ArrivingJob>> w = {
        sampler(seed_base + static_cast<std::uint64_t>(i))};
    out.push_back(rl::evaluate_avg_jct(sched, env, w));
  }
  return out;
}

LatencyStats latency_from_samples(std::vector<double> samples_us) {
  LatencyStats out;
  if (samples_us.empty()) return out;
  std::sort(samples_us.begin(), samples_us.end());
  out.median_us = samples_us[samples_us.size() / 2];
  out.p95_us = samples_us[std::min(samples_us.size() - 1,
                                   samples_us.size() * 95 / 100)];
  out.samples = samples_us.size();
  return out;
}

LatencyStats time_reps(int reps, const std::function<void()>& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  return latency_from_samples(std::move(samples));
}

sim::Action TimedScheduler::schedule(const sim::ClusterEnv& env) {
  const auto t0 = std::chrono::steady_clock::now();
  sim::Action a = inner_.schedule(env);
  const auto t1 = std::chrono::steady_clock::now();
  samples_us_.push_back(
      std::chrono::duration<double, std::micro>(t1 - t0).count());
  return a;
}

namespace {
std::string json_escape(const std::string& s) {
  std::ostringstream os;
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setfill('0') << std::setw(4)
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  return os.str();
}
}  // namespace

void BenchJson::set(const std::string& key, double value) {
  std::ostringstream os;
  if (std::isfinite(value)) {
    os.precision(12);
    os << value;
  } else {
    os << "null";  // NaN/Inf are not valid JSON tokens
  }
  entries_.emplace_back(key, os.str());
}

void BenchJson::set(const std::string& key, const std::string& value) {
  entries_.emplace_back(key, "\"" + json_escape(value) + "\"");
}

std::string BenchJson::write() const {
  const std::string path = "BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) return "";
  out << "{\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out << "  \"" << json_escape(entries_[i].first)
        << "\": " << entries_[i].second
        << (i + 1 < entries_.size() ? "," : "") << "\n";
  }
  out << "}\n";
  return out ? path : "";
}

}  // namespace decima::bench
