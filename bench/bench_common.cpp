#include "bench_common.h"

#include <filesystem>

namespace decima::bench {

int train_iters(int fallback) { return env_int("DECIMA_TRAIN_ITERS", fallback); }
int bench_runs(int fallback) { return env_int("DECIMA_BENCH_RUNS", fallback); }

core::AgentConfig agent_with_seed(std::uint64_t seed) {
  core::AgentConfig c;
  c.seed = seed;
  return c;
}

void print_header(const std::string& figure, const std::string& description) {
  std::cout << "==============================================================\n"
            << "Reproduction of " << figure << "\n"
            << description << "\n"
            << "(training iterations and run counts are scaled down; set\n"
            << " DECIMA_TRAIN_ITERS / DECIMA_BENCH_RUNS to scale up)\n"
            << "==============================================================\n\n";
}

std::unique_ptr<core::DecimaAgent> trained_agent(
    const core::AgentConfig& agent_config, rl::TrainConfig train_config,
    const std::string& cache_key, int iters) {
  auto agent = std::make_unique<core::DecimaAgent>(agent_config);
  const std::string cache_path =
      "decima_cache_" + cache_key + "_" + std::to_string(iters) + ".model";
  if (std::filesystem::exists(cache_path) && agent->load(cache_path)) {
    std::cout << "[bench] loaded cached policy " << cache_path << "\n";
  } else {
    std::cout << "[bench] training policy '" << cache_key << "' for " << iters
              << " iterations...\n";
    train_config.num_iterations = iters;
    rl::ReinforceTrainer trainer(*agent, train_config);
    trainer.train();
    if (agent->save(cache_path)) {
      std::cout << "[bench] cached policy at " << cache_path << "\n";
    }
  }
  agent->set_mode(core::Mode::kGreedy);
  return agent;
}

rl::WorkloadSampler tpch_batch_sampler(int num_jobs) {
  return [num_jobs](std::uint64_t seed) {
    Rng rng(seed);
    return workload::batched(workload::sample_tpch_batch(rng, num_jobs));
  };
}

rl::WorkloadSampler tpch_continuous_sampler(int num_jobs, double mean_iat) {
  return [num_jobs, mean_iat](std::uint64_t seed) {
    Rng rng(seed);
    auto jobs = workload::sample_tpch_batch(rng, num_jobs);
    Rng arr(rng.fork());
    return workload::continuous(std::move(jobs), arr, mean_iat);
  };
}

std::vector<double> eval_runs(sim::Scheduler& sched,
                              const sim::EnvConfig& env,
                              const rl::WorkloadSampler& sampler, int runs,
                              std::uint64_t seed_base) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    std::vector<std::vector<workload::ArrivingJob>> w = {
        sampler(seed_base + static_cast<std::uint64_t>(i))};
    out.push_back(rl::evaluate_avg_jct(sched, env, w));
  }
  return out;
}

}  // namespace decima::bench
