// Figure 3 (§2.3): the motivating example — 10 random TPC-H jobs on a
// cluster with 50 task slots under FIFO, SJF(-CP), Fair, and Decima.
// The paper reports avg JCT 111.4 / 81.7 / 74.9 / 61.1 seconds and shows the
// schedules; we print the same table (shape: Decima < Fair < SJF < FIFO)
// plus ASCII Gantt charts of the four schedules.
#include "bench_common.h"

#include "metrics/timeseries.h"

using namespace decima;

int main() {
  bench::print_header(
      "Figure 3 (§2.3)",
      "10 random TPC-H jobs, 50 task slots: FIFO vs SJF vs Fair vs Decima.\n"
      "Paper: 111.4 / 81.7 / 74.9 / 61.1 s avg JCT (45% FIFO->Decima).");

  sim::EnvConfig env;
  env.num_executors = 50;
  const auto sampler = bench::tpch_batch_sampler(10);

  rl::TrainConfig train;
  train.episodes_per_iter = 8;
  train.rollout_threads = 8;
  train.curriculum = false;
  train.differential_reward = false;
  train.env = env;
  train.sampler = sampler;
  auto decima = bench::trained_agent(bench::agent_with_seed(3), train,
                                     "fig03_batch10x50",
                                     bench::train_iters(80));

  sched::FifoScheduler fifo;
  sched::SjfCpScheduler sjf;
  sched::WeightedFairScheduler fair(0.0);
  std::vector<sim::Scheduler*> scheds = {&fifo, &sjf, &fair, decima.get()};

  // Headline numbers averaged over several held-out batches.
  const int runs = bench::bench_runs(10);
  Table t({"scheduler", "avg JCT [s] (mean over " + std::to_string(runs) +
                            " batches)",
           "paper [s]"});
  const std::vector<std::string> paper = {"111.4", "81.7", "74.9", "61.1"};
  std::vector<double> means;
  for (std::size_t i = 0; i < scheds.size(); ++i) {
    const auto jcts = bench::eval_runs(*scheds[i], env, sampler, runs);
    means.push_back(mean_of(jcts));
    t.add_row({scheds[i]->name(), fmt(means.back(), 1), paper[i]});
  }
  std::cout << t.to_string();
  std::cout << "\nDecima vs FIFO improvement: "
            << fmt_pct((means[0] - means[3]) / means[0]) << " (paper: 45%)\n"
            << "Decima vs Fair improvement: "
            << fmt_pct((means[2] - means[3]) / means[2]) << " (paper: 19%)\n";

  // Schedule visualizations for one batch (Fig. 3a-d analogue).
  const auto workload = sampler(424242);
  for (sim::Scheduler* s : scheds) {
    sim::ClusterEnv cluster(env);
    workload::load(cluster, workload);
    cluster.run(*s);
    std::cout << "\n--- " << s->name() << " (avg JCT "
              << fmt(cluster.avg_jct(), 1) << "s, makespan "
              << fmt(cluster.makespan(), 1) << "s) ---\n"
              << metrics::ascii_gantt(cluster, 100);
  }
  return 0;
}
