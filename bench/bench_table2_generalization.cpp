// Table 2 (§7.4): generalization to changing workloads. Policies trained on
// different interarrival-time (IAT) distributions are tested on a 45s-IAT
// workload:
//   - trained on the test IAT (45s): best,
//   - trained anti-skewed (75s): underperforms the tuned heuristic,
//   - trained on mixed IATs (42-75s): robust,
//   - trained on mixed IATs with the IAT observable as a feature: best
//     generalization (paper: 16% better than the heuristic).
#include "bench_common.h"

using namespace decima;

int main() {
  bench::print_header(
      "Table 2 (§7.4)",
      "Generalization across job interarrival times; test workload has a\n"
      "45s mean IAT. Paper: 65.4 / 104.8 / 82.3 / 76.6 s vs heuristic 91.2 s.");

  sim::EnvConfig env;
  env.num_executors = 10;
  const int jobs_per_episode = 18;
  const double test_iat = 45.0;

  auto sampler_fixed = [&](double iat) {
    return bench::tpch_continuous_sampler(jobs_per_episode, iat);
  };
  // Mixed-IAT sampler: each episode draws an IAT uniformly from [42, 75].
  rl::WorkloadSampler sampler_mixed = [&](std::uint64_t seed) {
    Rng rng(seed);
    const double iat = rng.uniform(42.0, 75.0);
    auto jobs = workload::sample_tpch_batch(rng, jobs_per_episode);
    Rng arr(rng.fork());
    return workload::continuous(std::move(jobs), arr, iat);
  };

  rl::TrainConfig base;
  base.episodes_per_iter = 8;
  base.rollout_threads = 8;
  base.curriculum = true;
  base.tau_mean_init = 400.0;
  base.tau_mean_max = 2000.0;
  base.tau_mean_growth = 40.0;
  base.differential_reward = true;
  base.env = env;

  const int iters = bench::train_iters(40);
  struct Row {
    std::string label;
    std::unique_ptr<core::DecimaAgent> agent;
    std::string paper;
  };
  std::vector<Row> rows;

  {
    auto cfg = base;
    cfg.sampler = sampler_fixed(test_iat);
    rows.push_back({"Decima, trained on test workload (IAT 45s)",
                    bench::trained_agent(bench::agent_with_seed(31), cfg,
                                         "table2_iat45", iters),
                    "65.4"});
  }
  {
    auto cfg = base;
    cfg.sampler = sampler_fixed(75.0);
    rows.push_back({"Decima, trained anti-skewed (IAT 75s)",
                    bench::trained_agent(bench::agent_with_seed(31), cfg,
                                         "table2_iat75", iters),
                    "104.8"});
  }
  {
    auto cfg = base;
    cfg.sampler = sampler_mixed;
    rows.push_back({"Decima, trained on mixed workloads",
                    bench::trained_agent(bench::agent_with_seed(31), cfg,
                                         "table2_mixed", iters),
                    "82.3"});
  }
  {
    auto cfg = base;
    cfg.sampler = sampler_mixed;
    core::AgentConfig ac;
    ac.seed = 31;
    ac.features.iat_hint = true;
    auto agent = bench::trained_agent(ac, cfg, "table2_mixed_hint", iters);
    agent->set_observed_iat(test_iat);
    rows.push_back({"Decima, mixed workloads + IAT hint", std::move(agent),
                    "76.6"});
  }

  const int runs = bench::bench_runs(8);
  sched::WeightedFairScheduler opt(-1.0);
  const double heuristic =
      mean_of(bench::eval_runs(opt, env, sampler_fixed(test_iat), runs));

  Table t({"setup", "avg JCT [s]", "paper [s]"});
  t.add_row({"Opt. weighted fair (best heuristic)", fmt(heuristic, 1), "91.2"});
  for (auto& r : rows) {
    const double jct =
        mean_of(bench::eval_runs(*r.agent, env, sampler_fixed(test_iat), runs));
    t.add_row({r.label, fmt(jct, 1), r.paper});
  }
  std::cout << t.to_string();
  std::cout << "\npaper shape: test-IAT training best; anti-skewed training\n"
               "underperforms the heuristic; mixed training recovers; the IAT\n"
               "hint feature generalizes best among the robust variants.\n";
  return 0;
}
