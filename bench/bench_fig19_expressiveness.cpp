// Figure 19 (Appendix E): expressiveness of the two-level aggregation.
//
// Supervised study: train the graph neural network to predict each node's
// critical-path value on random DAGs, then test whether it identifies the
// node with the maximum critical path on unseen DAGs. The two-level
// non-linear aggregation (f and g, Eq. 1) can express the needed max
// operation and approaches high accuracy; the single-level variant plateaus
// (paper: near-perfect vs unstable/low).
#include "bench_common.h"

#include "gnn/graph_embedding.h"
#include "nn/adam.h"

using namespace decima;

namespace {

struct LabeledDag {
  gnn::JobGraph graph;
  std::vector<double> cp;  // critical-path value per node
  std::size_t argmax = 0;  // index of the branch head with the larger cp
  std::size_t branch_a = 0, branch_b = 0;  // the two branch-head nodes
};

// Adversarial DAGs where total descendant work anti-correlates with the
// critical path, while every node draws its features from the *same*
// distribution — only the graph structure distinguishes the branches.
// Branch A is a single deep chain (large cp, few nodes); branch B fans out
// into several short chains (small cp, many nodes, more total work). A sum
// aggregation tracks subtree size/work and misranks them; computing cp
// needs the max operation the second non-linear transform provides
// (Appendix E).
LabeledDag random_dag(Rng& rng) {
  sim::JobBuilder b("dag");
  auto dur = [&] { return rng.uniform(1.0, 2.0); };
  const int root = b.stage(1, dur());

  // Branch A: deep chain (depth 6-7).
  const int depth_a = rng.uniform_int(6, 7);
  const int chain_head_idx = b.stage(1, dur(), {root});
  int chain = chain_head_idx;
  for (int i = 1; i < depth_a; ++i) chain = b.stage(1, dur(), {chain});

  // Branch B: 5-8 parallel chains of depth 2 under one head — more nodes
  // and more total work than branch A, but a much shorter critical path.
  const int fan_head = b.stage(1, dur(), {root});
  const int width = rng.uniform_int(5, 8);
  for (int i = 0; i < width; ++i) {
    const int mid = b.stage(1, dur(), {fan_head});
    b.stage(1, dur(), {mid});
  }

  const sim::JobSpec spec = b.build();
  LabeledDag out;
  out.cp = spec.critical_path();
  out.branch_a = static_cast<std::size_t>(chain_head_idx);
  out.branch_b = static_cast<std::size_t>(fan_head);
  out.argmax = out.cp[out.branch_a] >= out.cp[out.branch_b] ? out.branch_a
                                                            : out.branch_b;
  out.graph.env_job = 0;
  out.graph.features = nn::Matrix(spec.stages.size(), 5);
  for (std::size_t v = 0; v < spec.stages.size(); ++v) {
    out.graph.features(v, 0) = spec.stages[v].num_tasks / 10.0;
    out.graph.features(v, 1) = spec.stages[v].task_duration / 3.0;
    out.graph.features(v, 2) = spec.stages[v].work() / 30.0;
  }
  out.graph.children = spec.children();
  out.graph.topo = spec.topo_order();
  out.graph.runnable.assign(spec.stages.size(), true);
  return out;
}

// One readout MLP maps node embeddings to predicted critical-path values.
double train_and_test(bool two_level, int iterations, int batch,
                      std::vector<double>* curve) {
  Rng init(5);
  gnn::GnnConfig cfg;
  cfg.two_level_aggregation = two_level;
  gnn::GraphEmbedding gnn(cfg, init);
  nn::Mlp readout("readout", 8, 1, {16});
  readout.init(init);
  nn::ParamSet params = gnn.param_set();
  params.add(readout.params());
  nn::Adam adam(&params, {.lr = 1e-3});

  Rng data(11);
  Rng test_data(777);
  std::vector<LabeledDag> test_set;
  for (int i = 0; i < 100; ++i) test_set.push_back(random_dag(test_data));

  // Accuracy: does the predicted cp rank the two branch heads correctly?
  auto accuracy = [&] {
    int correct = 0;
    for (const auto& d : test_set) {
      nn::Tape tape(false);
      const auto emb = gnn.embed_nodes(tape, d.graph);
      const double pred_a =
          tape.value(readout.apply(tape, emb[d.branch_a]))(0, 0);
      const double pred_b =
          tape.value(readout.apply(tape, emb[d.branch_b]))(0, 0);
      const std::size_t picked = pred_a >= pred_b ? d.branch_a : d.branch_b;
      correct += picked == d.argmax ? 1 : 0;
    }
    return static_cast<double>(correct) / static_cast<double>(test_set.size());
  };

  for (int it = 0; it < iterations; ++it) {
    params.zero_grads();
    for (int bi = 0; bi < batch; ++bi) {
      const LabeledDag d = random_dag(data);
      nn::Tape tape;
      const auto emb = gnn.embed_nodes(tape, d.graph);
      for (std::size_t v = 0; v < emb.size(); ++v) {
        nn::Var pred = readout.apply(tape, emb[v]);
        const double err = tape.value(pred)(0, 0) - d.cp[v] / 10.0;
        tape.backward(pred, 2.0 * err / (batch * static_cast<double>(emb.size())));
      }
    }
    params.clip_grad_norm(10.0);
    adam.step();
    if (curve && it % std::max(1, iterations / 12) == 0) {
      curve->push_back(accuracy());
    }
  }
  return accuracy();
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 19 (Appendix E)",
      "Supervised critical-path identification on unseen random DAGs:\n"
      "two-level non-linear aggregation (Eq. 1) vs a single-level\n"
      "aggregation that cannot express the max operation.");

  const int iterations = std::max(60, bench::train_iters(150));
  std::vector<double> curve_two, curve_one;
  const double acc_two = train_and_test(true, iterations, 8, &curve_two);
  const double acc_one = train_and_test(false, iterations, 8, &curve_one);

  Table t({"snapshot", "two-level accuracy", "single-level accuracy"});
  for (std::size_t k = 0; k < std::min(curve_two.size(), curve_one.size());
       ++k) {
    t.add_row({fmt_int(static_cast<long long>(k)), fmt_pct(curve_two[k]),
               fmt_pct(curve_one[k])});
  }
  std::cout << t.to_string();
  std::cout << "\nfinal test accuracy: two-level " << fmt_pct(acc_two)
            << ", single-level " << fmt_pct(acc_one)
            << "\n(paper: two-level approaches ~100%; single-level never\n"
               " reaches stable high accuracy)\n";
  return 0;
}
