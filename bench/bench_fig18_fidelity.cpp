// Figure 18 (Appendix D): simulator fidelity.
//
// The paper compares simulated vs real Spark job durations (mean error <=5%
// isolated, <=9% shared). We have no physical cluster, so per DESIGN.md the
// "real" system is the high-fidelity stochastic simulator (duration noise,
// wave effect, moving delay ON — averaged over repetitions) and the
// "simulator" is the deterministic expectation-mode engine the trainer uses.
// We report the same per-query error statistics, isolated and shared.
#include "bench_common.h"

using namespace decima;

namespace {

double run_isolated(int query, bool realistic, std::uint64_t seed) {
  sim::EnvConfig c;
  c.num_executors = 10;
  c.duration_noise = realistic ? 0.25 : 0.0;
  c.seed = seed;
  sim::ClusterEnv env(c);
  env.add_job(workload::make_tpch_job(query, 20), 0.0);
  sched::WeightedFairScheduler fair(0.0);
  env.run(fair);
  return env.jobs()[0].finish;
}

std::vector<double> run_shared(bool realistic, std::uint64_t seed) {
  sim::EnvConfig c;
  c.num_executors = 20;
  c.duration_noise = realistic ? 0.25 : 0.0;
  c.seed = seed;
  sim::ClusterEnv env(c);
  for (int q = 1; q <= 22; ++q) {
    env.add_job(workload::make_tpch_job(q, 10),
                static_cast<double>(q - 1) * 5.0);
  }
  sched::WeightedFairScheduler fair(0.0);
  env.run(fair);
  std::vector<double> jcts;
  for (const auto& j : env.jobs()) jcts.push_back(j.jct());
  return jcts;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 18 (Appendix D)",
      "Simulator fidelity: deterministic training simulator vs the\n"
      "high-fidelity stochastic engine standing in for 'real Spark'\n"
      "(substitution documented in DESIGN.md). Paper: mean error <=5%\n"
      "isolated, <=9% shared.");

  const int reps = std::max(5, bench::bench_runs(10));

  // Isolated, per query.
  Table ta({"query", "'real' mean [s]", "simulated [s]", "error"});
  RunningStats iso_err;
  for (int q = 1; q <= 22; ++q) {
    RunningStats real;
    for (int r = 0; r < reps; ++r) {
      real.add(run_isolated(q, true, 1000 + static_cast<std::uint64_t>(r)));
    }
    const double simulated = run_isolated(q, false, 1);
    const double err = std::abs(simulated - real.mean()) / real.mean();
    iso_err.add(err);
    ta.add_row({"Q" + std::to_string(q), fmt(real.mean(), 1), fmt(simulated, 1),
                fmt_pct(err)});
  }
  std::cout << "(a) single job in isolation\n" << ta.to_string();
  std::cout << "mean error: " << fmt_pct(iso_err.mean())
            << ", max: " << fmt_pct(iso_err.max()) << " (paper: mean <=5%)\n\n";

  // Shared cluster.
  RunningStats shared_err;
  std::vector<RunningStats> real_jcts(22);
  for (int r = 0; r < reps; ++r) {
    const auto jcts = run_shared(true, 2000 + static_cast<std::uint64_t>(r));
    for (int q = 0; q < 22; ++q) real_jcts[static_cast<std::size_t>(q)].add(jcts[static_cast<std::size_t>(q)]);
  }
  const auto sim_jcts = run_shared(false, 1);
  for (int q = 0; q < 22; ++q) {
    const double real = real_jcts[static_cast<std::size_t>(q)].mean();
    shared_err.add(std::abs(sim_jcts[static_cast<std::size_t>(q)] - real) / real);
  }
  std::cout << "(b) mixture of all 22 queries on a shared cluster\n"
            << "mean error: " << fmt_pct(shared_err.mean())
            << ", max: " << fmt_pct(shared_err.max())
            << " (paper: mean <=9%, p95 <=20%)\n";
  return 0;
}
