// Table 3 (Appendix I): generalization across scale. A policy trained on a
// scaled-down environment (fewer concurrent jobs / fewer executors) is
// evaluated on the full test setting. Paper: training with 15x fewer jobs
// costs ~7% avg JCT; training on a 10x smaller cluster costs ~3%.
#include "bench_common.h"

using namespace decima;

int main() {
  bench::print_header(
      "Table 3 (Appendix I)",
      "Scale generalization on the industrial-trace workload: policies\n"
      "trained with fewer jobs or fewer executors, tested on the full\n"
      "setting. Paper: small degradations (7% / 3%).");

  // Test setting.
  sim::EnvConfig test_env;
  test_env.num_executors = 20;
  const int test_jobs = 30;
  auto make_sampler = [](int jobs, double iat) {
    return rl::WorkloadSampler([jobs, iat](std::uint64_t seed) {
      workload::TraceConfig cfg;
      cfg.num_jobs = jobs;
      cfg.mean_iat = iat;
      cfg.seed = seed;
      cfg.with_memory = false;
      return workload::synthesize_trace(cfg);
    });
  };
  const auto test_sampler = make_sampler(test_jobs, 15.0);

  rl::TrainConfig base;
  base.episodes_per_iter = 8;
  base.rollout_threads = 8;
  base.curriculum = true;
  base.tau_mean_init = 300.0;
  base.tau_mean_max = 1500.0;
  base.tau_mean_growth = 40.0;
  base.differential_reward = true;

  const int iters = bench::train_iters(30);

  // (1) trained on the test setting.
  auto cfg1 = base;
  cfg1.env = test_env;
  cfg1.sampler = test_sampler;
  auto full = bench::trained_agent(bench::agent_with_seed(43), cfg1,
                                   "table3_full", iters);

  // (2) trained with ~5x fewer jobs per episode (same arrival rate scale).
  auto cfg2 = base;
  cfg2.env = test_env;
  cfg2.sampler = make_sampler(test_jobs / 5, 15.0);
  auto fewer_jobs = bench::trained_agent(bench::agent_with_seed(43), cfg2,
                                         "table3_fewjobs", iters);

  // (3) trained on a 4x smaller cluster (load kept comparable by slowing
  // arrivals proportionally).
  sim::EnvConfig small_env = test_env;
  small_env.num_executors = test_env.num_executors / 4;
  auto cfg3 = base;
  cfg3.env = small_env;
  cfg3.sampler = make_sampler(test_jobs, 15.0 * 4.0);
  auto small_cluster = bench::trained_agent(bench::agent_with_seed(43),
                                            cfg3, "table3_smallcluster",
                                            iters);

  const int runs = bench::bench_runs(8);
  Table t({"training scenario", "avg JCT on test setting [s]", "penalty"});
  const double jct_full =
      mean_of(bench::eval_runs(*full, test_env, test_sampler, runs));
  auto row = [&](const std::string& label, core::DecimaAgent& agent) {
    const double jct =
        mean_of(bench::eval_runs(agent, test_env, test_sampler, runs));
    t.add_row({label, fmt(jct, 1),
               fmt_pct((jct - jct_full) / jct_full)});
  };
  t.add_row({"trained on test setting", fmt(jct_full, 1), "-"});
  row("trained with 5x fewer jobs", *fewer_jobs);
  row("trained on 4x smaller cluster", *small_cluster);
  std::cout << t.to_string();
  std::cout << "\npaper shape: both scaled-down trainings generalize with\n"
               "single-digit-percent penalties (7% and 3%).\n";
  return 0;
}
