// Figure 16 (Appendix A): the dependency-aware scheduling example.
//
// A DAG where two branches converge in a join:
//   B = (1 task, 10s)              (left, 10 task-seconds)
//   C = (40 tasks, 1s) -> D = (5 tasks, 10s)   (right, 90 task-seconds)
//   E = join (5 tasks, eps), parents B and D.
// A critical-path heuristic commits all 5 task slots to the heavier right
// branch first and only then runs B: makespan 8 + 10 + 10 + eps = 28 + eps.
// The optimal schedule runs B on one slot in parallel with C on four (both
// finish at t=10), then D, then E: 20 + eps — ~29% faster.
#include "bench_common.h"

using namespace decima;

namespace {

constexpr double kEps = 0.05;

sim::JobSpec appendix_a_dag() {
  sim::JobBuilder b("appendix-a");
  const int stage_b = b.stage(1, 10.0);        // 0: left branch
  const int stage_c = b.stage(40, 1.0);        // 1: right branch, wide
  const int stage_d = b.stage(5, 10.0, {stage_c});  // 2: right branch, heavy
  b.stage(5, kEps, {stage_b, stage_d});        // 3: join
  return b.build();
}

// The paper's strawman: strictly work on the runnable stage with the highest
// critical-path value, one stage at a time (no overlap across branches).
struct BranchCommittedCp : sim::Scheduler {
  sim::Action schedule(const sim::ClusterEnv& env) override {
    const auto& job = env.jobs()[0];
    for (const auto& st : job.stages) {
      if (st.running > 0) return sim::Action::none();  // committed
    }
    const auto node = sched::critical_path_stage(env, 0);
    if (!node.valid()) return sim::Action::none();
    sim::Action a;
    a.node = node;
    a.limit = env.total_executors();
    return a;
  }
  std::string name() const override { return "branch-committed CP"; }
};

// Plan-ahead oracle: stage order B, C, D, E; work-conserving.
struct PlanAhead : sim::Scheduler {
  sim::Action schedule(const sim::ClusterEnv& env) override {
    const auto nodes = env.runnable_nodes();
    if (nodes.empty()) return sim::Action::none();
    for (int want : {0, 1, 2, 3}) {
      for (const auto& n : nodes) {
        if (n.stage == want) {
          sim::Action a;
          a.node = n;
          a.limit = env.total_executors();
          return a;
        }
      }
    }
    return sim::Action::none();
  }
  std::string name() const override { return "optimal plan-ahead"; }
};

double run_with(sim::Scheduler& sched) {
  sim::EnvConfig c;
  c.num_executors = 5;
  c.enable_moving_delay = false;
  c.enable_wave_effect = false;
  c.enable_inflation = false;
  sim::ClusterEnv env(c);
  env.add_job(appendix_a_dag(), 0.0);
  env.run(sched);
  return env.makespan();
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 16 (Appendix A)",
      "Dependency-aware scheduling example: the optimal schedule overlaps\n"
      "the light branch with the heavy one so the join never blocks\n"
      "(paper: 28+3eps vs 20+3eps, ~29% faster).");

  BranchCommittedCp cp;
  PlanAhead oracle;
  const double t_cp = run_with(cp);
  const double t_opt = run_with(oracle);

  Table t({"schedule", "makespan [s]", "paper [s]"});
  t.add_row({"critical-path first", fmt(t_cp, 2), "~28"});
  t.add_row({"optimal plan-ahead", fmt(t_opt, 2), "~20"});
  std::cout << t.to_string();
  std::cout << "\nplan-ahead speedup: " << fmt_pct((t_cp - t_opt) / t_cp)
            << " (paper: ~29%)\n";
  return 0;
}
