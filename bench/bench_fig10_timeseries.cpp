// Figure 10 (§7.2): time-series deep-dive of continuous TPC-H arrivals.
//  (a) concurrent jobs in the system over time (busy-period behavior),
//  (b) JCT vs job size scatter summary (Decima finishes small jobs faster),
//  (d) executors assigned vs job size,
//  (e) executed work vs spec work (work inflation control).
// Reuses the continuous-arrival policy trained by bench_fig09_spark_cluster
// (same cache key), so run that bench first for a warm cache.
#include "bench_common.h"

#include "metrics/timeseries.h"

using namespace decima;

int main() {
  bench::print_header(
      "Figure 10 (§7.2)",
      "Time-series analysis of continuous arrivals: Decima keeps the\n"
      "concurrent-job count lower than the tuned heuristic during busy\n"
      "periods by finishing small jobs faster with more executors.");

  sim::EnvConfig env;
  env.num_executors = 15;
  const auto sampler = bench::tpch_continuous_sampler(20, 40.0);

  rl::TrainConfig train;
  train.episodes_per_iter = 8;
  train.rollout_threads = 8;
  train.curriculum = true;
  train.tau_mean_init = 400.0;
  train.tau_mean_max = 2000.0;
  train.tau_mean_growth = 40.0;
  train.differential_reward = true;
  train.env = env;
  train.sampler = sampler;
  auto decima = bench::trained_agent(bench::agent_with_seed(7), train,
                                     "fig09b_continuous",
                                     bench::train_iters(40));
  sched::WeightedFairScheduler opt(-1.0);

  const auto workload = sampler(31337);

  struct RunData {
    std::vector<double> series;
    std::vector<double> jcts, works, execs, spec_work, exec_work;
  };
  auto analyze = [&](sim::Scheduler& s) {
    sim::ClusterEnv cluster(env);
    workload::load(cluster, workload);
    cluster.run(s);
    RunData d;
    d.series = metrics::concurrent_jobs_series(cluster, 20.0);
    const auto mean_execs = metrics::mean_executors_per_job(cluster);
    const auto exec_work = metrics::executed_work_per_job(cluster);
    for (std::size_t j = 0; j < cluster.jobs().size(); ++j) {
      const auto& job = cluster.jobs()[j];
      if (!job.done()) continue;
      d.jcts.push_back(job.jct());
      d.works.push_back(job.spec.total_work());
      d.execs.push_back(mean_execs[j]);
      d.spec_work.push_back(job.spec.total_work());
      d.exec_work.push_back(exec_work[j]);
    }
    return d;
  };

  const RunData d_opt = analyze(opt);
  const RunData d_dec = analyze(*decima);

  // (a) concurrent jobs over time.
  std::cout << "(a) concurrent jobs in system (sampled every 20s)\n"
            << "  opt. weighted fair: " << ascii_sparkline(d_opt.series)
            << "\n  Decima:             " << ascii_sparkline(d_dec.series)
            << "\n";
  double peak_opt = 0, peak_dec = 0, sum_opt = 0, sum_dec = 0;
  for (double v : d_opt.series) { peak_opt = std::max(peak_opt, v); sum_opt += v; }
  for (double v : d_dec.series) { peak_dec = std::max(peak_dec, v); sum_dec += v; }
  std::cout << "  peak concurrent jobs: opt " << fmt(peak_opt, 0) << ", Decima "
            << fmt(peak_dec, 0) << "; mean: opt "
            << fmt(sum_opt / d_opt.series.size(), 1) << ", Decima "
            << fmt(sum_dec / d_dec.series.size(), 1) << "\n\n";

  // (c)+(d): JCT and executor share for small vs large jobs.
  auto split_stats = [](const RunData& d) {
    // Small = bottom half by total work.
    std::vector<double> sorted = d.works;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted.empty() ? 0 : sorted[sorted.size() / 2];
    double jct_small = 0, jct_large = 0, ex_small = 0, ex_large = 0;
    int ns = 0, nl = 0;
    for (std::size_t i = 0; i < d.jcts.size(); ++i) {
      if (d.works[i] <= median) {
        jct_small += d.jcts[i];
        ex_small += d.execs[i];
        ++ns;
      } else {
        jct_large += d.jcts[i];
        ex_large += d.execs[i];
        ++nl;
      }
    }
    return std::array<double, 4>{ns ? jct_small / ns : 0, nl ? jct_large / nl : 0,
                                 ns ? ex_small / ns : 0, nl ? ex_large / nl : 0};
  };
  const auto s_opt = split_stats(d_opt);
  const auto s_dec = split_stats(d_dec);
  Table t({"metric", "opt. weighted fair", "Decima"});
  t.add_row({"avg JCT small jobs [s]", fmt(s_opt[0], 1), fmt(s_dec[0], 1)});
  t.add_row({"avg JCT large jobs [s]", fmt(s_opt[1], 1), fmt(s_dec[1], 1)});
  t.add_row({"mean executors, small jobs", fmt(s_opt[2], 2), fmt(s_dec[2], 2)});
  t.add_row({"mean executors, large jobs", fmt(s_opt[3], 2), fmt(s_dec[3], 2)});
  std::cout << "(c)/(d) small vs large job treatment\n" << t.to_string();

  // (e) work inflation: executed work vs specified work.
  auto inflation = [](const RunData& d) {
    double spec = 0, exec = 0;
    for (std::size_t i = 0; i < d.spec_work.size(); ++i) {
      spec += d.spec_work[i];
      exec += d.exec_work[i];
    }
    return spec > 0 ? exec / spec : 0.0;
  };
  std::cout << "\n(e) total work inflation (executed/spec): opt "
            << fmt(inflation(d_opt), 3) << ", Decima "
            << fmt(inflation(d_dec), 3)
            << "\n(paper: Decima's executor assignment results in similar\n"
               " total work to the hand-tuned heuristic)\n";
  return 0;
}
