// Sharded serving-plane scaling (docs/serving.md): decisions/sec of the
// PolicyServer across a shards × sessions grid, batched dispatch with the
// adaptive bounded wait on and per-session embedding caches (the production
// serving shape). Decisions are bit-identical at every shard count
// (tests/test_serve.cpp, Shards4MatchesShards1), so the within-run ratios are
// pure throughput: the headline `shards4_vs_shards1_speedup` at the
// 32-session workload is the ROADMAP "shard the serving plane" scaling
// signal, floor-gated in scripts/check_bench.py. Writes
// BENCH_serve_sharded.json.
#include <chrono>
#include <thread>

#include "bench_common.h"
#include "io/checkpoint.h"
#include "serve/policy_server.h"

using namespace decima;

namespace {

struct CellResult {
  double wall_seconds = 0.0;
  std::uint64_t decisions = 0;
  double mean_batch = 0.0;
  double balance = 0.0;  // min/max per-shard decision share (1.0 = even)
  double decisions_per_sec() const {
    return static_cast<double>(decisions) / std::max(wall_seconds, 1e-12);
  }
};

CellResult run_cell(const std::string& ckpt, int shards, int wait_us,
                    int sessions, const sim::EnvConfig& env,
                    const std::vector<std::vector<workload::ArrivingJob>>&
                        session_workloads) {
  serve::ServeConfig cfg;
  cfg.shards = shards;
  cfg.batch_wait_us = wait_us;
  auto server = serve::PolicyServer::from_checkpoint(ckpt, cfg);
  if (!server) {
    std::cerr << "failed to load " << ckpt << "\n";
    std::exit(1);
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      const std::size_t ss = static_cast<std::size_t>(s);
      serve::run_session(*server, env, session_workloads[ss]);
    });
  }
  for (auto& t : threads) t.join();
  CellResult r;
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto stats = server->stats();
  r.decisions = stats.decisions;
  r.mean_batch = stats.mean_batch_size;
  std::uint64_t lo = stats.decisions, hi = 0;
  for (int i = 0; i < server->num_shards(); ++i) {
    const auto st = server->shard_stats(i);
    lo = std::min(lo, st.decisions);
    hi = std::max(hi, st.decisions);
  }
  r.balance = hi == 0 ? 0.0
                      : static_cast<double>(lo) / static_cast<double>(hi);
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "Sharded serving plane (ROADMAP: shard the serving plane)",
      "PolicyServer decisions/sec across dispatcher shards x concurrent\n"
      "sessions — per-shard SPSC rings, session shard affinity, adaptive\n"
      "bounded-wait batching (writes BENCH_serve_sharded.json).");

  const int dag_jobs = env_int("DECIMA_SERVE_JOBS", 3);
  const int dag_nodes = env_int("DECIMA_SERVE_NODES", 30);
  const int wait_us = env_int("DECIMA_SERVE_WAIT_US", 200);
  sim::EnvConfig env;
  env.num_executors = 10;

  // A freshly initialized agent with the embedding cache on — the production
  // serving shape (Sessions own caches); throughput does not care about
  // training quality.
  core::AgentConfig ac;
  ac.seed = 41;
  ac.embed_cache = true;
  core::DecimaAgent agent(ac);
  const std::string ckpt = "serve_sharded_policy.ckpt";
  if (!io::save_policy(agent, ckpt)) {
    std::cerr << "cannot write " << ckpt << "\n";
    return 1;
  }
  std::cout << "policy checkpoint: " << ckpt << " (" << agent.num_parameters()
            << " params)\n\n";

  const std::vector<int> shard_counts = {1, 2, 4};
  const std::vector<int> session_counts = {4, 8, 16, 32};
  const int max_sessions = session_counts.back();
  std::vector<std::vector<workload::ArrivingJob>> session_workloads;
  for (int s = 0; s < max_sessions; ++s) {
    session_workloads.push_back(workload::batched(bench::random_dag_jobs(
        dag_jobs, dag_nodes, 7000 + static_cast<std::uint64_t>(s))));
  }

  bench::BenchJson json("serve_sharded");
  json.set("bench", "serve_sharded");
  json.set("dag_jobs_per_session", static_cast<double>(dag_jobs));
  json.set("dag_nodes", static_cast<double>(dag_nodes));
  json.set("batch_wait_us", static_cast<double>(wait_us));

  // Warm-up (allocator + code paths), not measured.
  run_cell(ckpt, 2, wait_us, 4, env, session_workloads);

  Table t({"sessions", "shards=1 [dec/s]", "shards=2 [dec/s]",
           "shards=4 [dec/s]", "s4/s1", "balance", "mean batch"});
  double s1_at_max = 0.0, s2_at_max = 0.0, s4_at_max = 0.0;
  double balance_at_max = 0.0;
  for (int sessions : session_counts) {
    std::vector<CellResult> row;
    for (int shards : shard_counts) {
      row.push_back(
          run_cell(ckpt, shards, wait_us, sessions, env, session_workloads));
      const std::string key = "shards" + std::to_string(shards) + "_sessions" +
                              std::to_string(sessions);
      json.set(key + "_dps", row.back().decisions_per_sec());
      json.set(key + "_mean_batch", row.back().mean_batch);
    }
    const double s4_vs_s1 = row[2].decisions_per_sec() /
                            std::max(row[0].decisions_per_sec(), 1e-12);
    if (sessions == max_sessions) {
      s1_at_max = row[0].decisions_per_sec();
      s2_at_max = row[1].decisions_per_sec();
      s4_at_max = row[2].decisions_per_sec();
      balance_at_max = row[2].balance;
    }
    t.add_row({fmt_int(sessions), fmt(row[0].decisions_per_sec(), 0),
               fmt(row[1].decisions_per_sec(), 0),
               fmt(row[2].decisions_per_sec(), 0), fmt(s4_vs_s1, 2),
               fmt(row[2].balance, 2), fmt(row[2].mean_batch, 2)});
  }

  // Headline ratios at the deepest workload (32 sessions): what 4 (and 2)
  // dispatcher shards buy over the single-dispatcher reference. Floors live
  // in scripts/check_bench.py's BENCH_REGISTRY; like the rollout-pool
  // floors, they are meaningful on multi-core runners (a 1-core box
  // legitimately reports ~1.0x).
  const double s4_speedup = s4_at_max / std::max(s1_at_max, 1e-12);
  const double s2_speedup = s2_at_max / std::max(s1_at_max, 1e-12);
  json.set("shards4_vs_shards1_speedup", s4_speedup);
  json.set("shards2_vs_shards1_speedup", s2_speedup);
  // Round-robin session placement should keep per-shard load even; reported
  // unguarded (min/max per-shard decisions at shards=4, 32 sessions).
  json.set("shard_balance_min_max_ratio", balance_at_max);

  std::cout << t.to_string();
  std::cout << "\nat " << max_sessions << " sessions: shards=4 "
            << fmt(s4_speedup, 2) << "x over shards=1 (shards=2 "
            << fmt(s2_speedup, 2) << "x), per-shard balance "
            << fmt(balance_at_max, 2) << "\n";

  const std::string path = json.write();
  if (!path.empty()) std::cout << "\n[bench] wrote " << path << "\n";
  return 0;
}
