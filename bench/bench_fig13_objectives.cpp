// Figure 13 (§7.4): Decima learns qualitatively different policies for
// different objectives and environments.
//  (a) average-JCT objective with costly executor motion,
//  (b) average-JCT objective with zero-cost executor motion,
//  (c) makespan objective.
// The paper reports (a) JCT 67.3s/makespan 119.6s, (b) 61.4/114.3,
// (c) 74.5/102.1 — i.e. (b) has the best JCT and (c) the best makespan.
#include "bench_common.h"

#include "metrics/timeseries.h"

using namespace decima;

namespace {

struct Variant {
  std::string label;
  bool free_motion = false;
  rl::Objective objective = rl::Objective::kAvgJct;
  std::string cache;
  std::string paper;
};

}  // namespace

int main() {
  bench::print_header(
      "Figure 13 (§7.4)",
      "Learned policies per objective/environment: avg-JCT with costly\n"
      "executor motion, avg-JCT with free motion, and makespan.");

  const auto sampler = bench::tpch_batch_sampler(8);
  const std::vector<Variant> variants = {
      {"(a) avg JCT, costly motion", false, rl::Objective::kAvgJct,
       "fig13a_jct", "67.3 / 119.6"},
      {"(b) avg JCT, free motion", true, rl::Objective::kAvgJct,
       "fig13b_freemove", "61.4 / 114.3"},
      {"(c) makespan objective", false, rl::Objective::kMakespan,
       "fig13c_makespan", "74.5 / 102.1"},
  };

  Table t({"policy", "avg JCT [s]", "makespan [s]", "paper JCT/makespan"});
  std::vector<double> jcts, spans;
  for (const auto& v : variants) {
    sim::EnvConfig env;
    env.num_executors = 10;
    env.enable_moving_delay = !v.free_motion;

    rl::TrainConfig train;
    train.episodes_per_iter = 8;
    train.rollout_threads = 8;
    train.curriculum = false;
    train.differential_reward = false;
    train.objective = v.objective;
    train.env = env;
    train.sampler = sampler;
    auto agent = bench::trained_agent(bench::agent_with_seed(23), train,
                                      v.cache, bench::train_iters(60));

    // Evaluate on held-out batches.
    const int runs = bench::bench_runs(8);
    double jct = 0, span = 0;
    for (int r = 0; r < runs; ++r) {
      sim::ClusterEnv cluster(env);
      workload::load(cluster, sampler(60000 + static_cast<std::uint64_t>(r)));
      cluster.run(*agent);
      jct += cluster.avg_jct();
      span += cluster.makespan();
    }
    jct /= runs;
    span /= runs;
    jcts.push_back(jct);
    spans.push_back(span);
    t.add_row({v.label, fmt(jct, 1), fmt(span, 1), v.paper});

    // One schedule visualization per variant (the Fig. 13 Gantt analogue).
    sim::ClusterEnv cluster(env);
    workload::load(cluster, sampler(424242));
    cluster.run(*agent);
    std::cout << "--- " << v.label << " ---\n"
              << metrics::ascii_gantt(cluster, 90) << "\n";
  }
  std::cout << t.to_string();
  std::cout << "\nshape check: makespan-trained policy has the best makespan: "
            << (spans[2] <= spans[0] && spans[2] <= spans[1] ? "yes" : "no")
            << "; JCT-trained policies have better JCT than makespan policy: "
            << (jcts[0] <= jcts[2] || jcts[1] <= jcts[2] ? "yes" : "no")
            << "\n";
  return 0;
}
