// Figure 12 (§7.3) and the Appendix-G profiles (Fig. 20/21): how Decima's
// multi-resource policy treats small jobs vs Graphene*.
//  (a) job duration by total-work group, Decima normalized to Graphene*;
//  (b) executor-class usage on the smallest 20% of jobs (paper: Decima uses
//      39% more executors of the largest class on small jobs — it borrows
//      "oversized" executors to clear small jobs quickly).
#include "bench_common.h"

#include "metrics/timeseries.h"

using namespace decima;

int main() {
  bench::print_header(
      "Figure 12 (§7.3) / Appendix G",
      "Decima vs Graphene* with multi-dimensional resources: per-job-size\n"
      "duration ratios and executor-class usage profiles.");

  sim::EnvConfig env;
  env.num_executors = 16;
  env.classes = {{0.25, "s"}, {0.5, "m"}, {0.75, "l"}, {1.0, "xl"}};

  rl::WorkloadSampler sampler = [](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<sim::JobSpec> jobs;
    for (int i = 0; i < 10; ++i) {
      auto j = workload::sample_tpch_job(rng);
      workload::assign_memory_requests(j, rng);
      jobs.push_back(std::move(j));
    }
    Rng arr(rng.fork());
    return workload::continuous(std::move(jobs), arr, 30.0);
  };

  rl::TrainConfig train;
  train.episodes_per_iter = 8;
  train.num_threads = 8;
  train.curriculum = false;
  train.differential_reward = false;
  train.env = env;
  train.sampler = sampler;
  core::AgentConfig ac;
  ac.multi_resource = true;
  ac.seed = 17;
  auto decima = bench::trained_agent(ac, train, "fig11b_tpch_mem",
                                     bench::train_iters(40));
  sched::GrapheneScheduler graphene;

  // Collect per-job stats over several runs.
  struct JobStat {
    double work = 0, jct = 0;
    std::vector<int> class_tasks;
  };
  auto collect = [&](sim::Scheduler& s) {
    std::vector<JobStat> out;
    for (int r = 0; r < bench::bench_runs(8); ++r) {
      sim::ClusterEnv cluster(env);
      workload::load(cluster, sampler(7000 + static_cast<std::uint64_t>(r)));
      cluster.run(s);
      const auto usage = metrics::class_usage_per_job(cluster);
      for (std::size_t j = 0; j < cluster.jobs().size(); ++j) {
        if (!cluster.jobs()[j].done()) continue;
        JobStat st;
        st.work = cluster.jobs()[j].spec.total_work();
        st.jct = cluster.jobs()[j].jct();
        st.class_tasks.assign(usage[j].begin(), usage[j].end());
        out.push_back(std::move(st));
      }
    }
    return out;
  };
  const auto stats_dec = collect(*decima);
  const auto stats_gra = collect(graphene);

  // (a) duration ratio by work quartile.
  auto quartile_means = [](const std::vector<JobStat>& stats) {
    std::vector<double> works;
    for (const auto& s : stats) works.push_back(s.work);
    std::sort(works.begin(), works.end());
    std::array<double, 4> sums{}, counts{};
    for (const auto& s : stats) {
      int q = 0;
      for (int k = 1; k < 4; ++k) {
        if (s.work > works[works.size() * static_cast<std::size_t>(k) / 4]) q = k;
      }
      sums[static_cast<std::size_t>(q)] += s.jct;
      counts[static_cast<std::size_t>(q)] += 1;
    }
    std::array<double, 4> out{};
    for (int q = 0; q < 4; ++q) {
      out[static_cast<std::size_t>(q)] =
          counts[static_cast<std::size_t>(q)]
              ? sums[static_cast<std::size_t>(q)] / counts[static_cast<std::size_t>(q)]
              : 0.0;
    }
    return out;
  };
  const auto q_dec = quartile_means(stats_dec);
  const auto q_gra = quartile_means(stats_gra);
  Table ta({"job size group", "Decima JCT / Graphene* JCT"});
  const std::vector<std::string> names = {"smallest 25%", "25-50%", "50-75%",
                                          "largest 25%"};
  for (int q = 0; q < 4; ++q) {
    const double ratio = q_gra[static_cast<std::size_t>(q)] > 0
                             ? q_dec[static_cast<std::size_t>(q)] /
                                   q_gra[static_cast<std::size_t>(q)]
                             : 0.0;
    ta.add_row({names[static_cast<std::size_t>(q)], fmt(ratio, 2)});
  }
  std::cout << "(a) normalized job duration (paper: <1 everywhere, smallest\n"
               "    jobs see the largest gain)\n"
            << ta.to_string();

  // (b) largest-class usage on the smallest 20% of jobs.
  auto small_class_use = [](const std::vector<JobStat>& stats) {
    std::vector<double> works;
    for (const auto& s : stats) works.push_back(s.work);
    std::sort(works.begin(), works.end());
    const double cut = works[works.size() / 5];
    std::array<double, 4> counts{};
    for (const auto& s : stats) {
      if (s.work > cut) continue;
      for (int c = 0; c < 4; ++c) {
        counts[static_cast<std::size_t>(c)] +=
            s.class_tasks[static_cast<std::size_t>(c)];
      }
    }
    return counts;
  };
  const auto use_dec = small_class_use(stats_dec);
  const auto use_gra = small_class_use(stats_gra);
  Table tb({"executor memory", "Decima / Graphene* task count"});
  const std::vector<std::string> mems = {"0.25", "0.5", "0.75", "1.0"};
  for (int c = 0; c < 4; ++c) {
    const double ratio = use_gra[static_cast<std::size_t>(c)] > 0
                             ? use_dec[static_cast<std::size_t>(c)] /
                                   use_gra[static_cast<std::size_t>(c)]
                             : 0.0;
    tb.add_row({mems[static_cast<std::size_t>(c)], fmt(ratio, 2)});
  }
  std::cout << "\n(b) executor-class usage on smallest 20% of jobs (paper:\n"
               "    Decima uses ~1.39x more largest-class executors)\n"
            << tb.to_string();
  return 0;
}
