// Figure 12 (§7.3) and the Appendix-G profiles (Fig. 20/21): how Decima's
// multi-resource policy treats small jobs vs Graphene*.
//  (a) job duration by total-work group, Decima normalized to Graphene*;
//  (b) executor-class usage on the smallest 20% of jobs (paper: Decima uses
//      39% more executors of the largest class on small jobs — it borrows
//      "oversized" executors to clear small jobs quickly).
#include "bench_common.h"

#include <algorithm>

#include "metrics/timeseries.h"

using namespace decima;

namespace {

// (c): per-event inference latency, one-node-at-a-time vs batched, at both
// the GNN level (synthetic 50-node DAGs) and the full agent level (trained
// policy on a loaded cluster). Seeds the BENCH_fig12.json perf trajectory.
void inference_profile(core::DecimaAgent& trained,
                       const sim::EnvConfig& env_config) {
  constexpr int kNodes = 50;
  constexpr int kGraphs = 5;
  constexpr int kReps = 200;

  Rng rng_b(7), rng_r(7);
  gnn::GnnConfig cfg;
  gnn::GnnConfig ref_cfg = cfg;
  ref_cfg.batched = false;
  const gnn::GraphEmbedding gnn_batched(cfg, rng_b);
  const gnn::GraphEmbedding gnn_ref(ref_cfg, rng_r);

  std::vector<gnn::JobGraph> graphs;
  for (int g = 0; g < kGraphs; ++g) {
    graphs.push_back(gnn::random_job_graph(100 + static_cast<std::uint64_t>(g),
                                           kNodes, cfg.feat_dim));
  }
  const auto gnn_stats_ref = bench::time_reps(kReps, [&] {
    nn::Tape tape(/*track_gradients=*/false);
    gnn_ref.embed(tape, graphs);
  });
  const auto gnn_stats_bat = bench::time_reps(kReps, [&] {
    nn::Tape tape(/*track_gradients=*/false);
    gnn_batched.embed(tape, graphs);
  });

  // Agent level: the trained policy scoring a fully loaded cluster, with the
  // same weights running through the reference GNN sweep.
  core::AgentConfig ref_agent_cfg = trained.config();
  ref_agent_cfg.batched_inference = false;
  core::DecimaAgent agent_ref(ref_agent_cfg);
  agent_ref.params().copy_values_from(trained.params());
  auto agent_batched = trained.clone();
  agent_batched->set_mode(core::Mode::kGreedy);
  agent_ref.set_mode(core::Mode::kGreedy);

  // Agent level over a real episode: batch arrivals of kGraphs jobs with
  // exactly the DAG topologies profiled above (random_dag_jobs re-derives
  // them from the same seeds), then time every schedule() call of a full
  // greedy run. While a job is unfinished its whole kNodes-node DAG is
  // embedded at every event, so this measures per-event inference on the
  // same graphs as the GNN profile.
  const std::vector<sim::JobSpec> jobs =
      bench::random_dag_jobs(kGraphs, kNodes, 100, cfg.feat_dim);
  auto timed_episode = [&](sim::Scheduler& agent) {
    sim::ClusterEnv cluster(env_config);
    workload::load(cluster, workload::batched(jobs));
    bench::TimedScheduler timed(agent);
    cluster.run(timed);
    return timed.stats();
  };
  const auto agent_stats_ref = timed_episode(agent_ref);
  const auto agent_stats_bat = timed_episode(*agent_batched);

  const double gnn_speedup = gnn_stats_ref.median_us / gnn_stats_bat.median_us;
  const double agent_speedup =
      agent_stats_ref.median_us / agent_stats_bat.median_us;
  const double nodes_per_sec =
      1e6 * kNodes * kGraphs / gnn_stats_bat.median_us;

  Table tc({"inference path", "median (us)", "p95 (us)", "speedup"});
  tc.add_row({"GNN  per-node (50-node DAGs x5)", fmt(gnn_stats_ref.median_us, 1),
              fmt(gnn_stats_ref.p95_us, 1), "1.00"});
  tc.add_row({"GNN  batched  (50-node DAGs x5)", fmt(gnn_stats_bat.median_us, 1),
              fmt(gnn_stats_bat.p95_us, 1), fmt(gnn_speedup, 2)});
  tc.add_row({"agent per-node (trained, loaded)", fmt(agent_stats_ref.median_us, 1),
              fmt(agent_stats_ref.p95_us, 1), "1.00"});
  tc.add_row({"agent batched  (trained, loaded)", fmt(agent_stats_bat.median_us, 1),
              fmt(agent_stats_bat.p95_us, 1), fmt(agent_speedup, 2)});
  std::cout << "\n(c) per-event inference latency (batched GNN vs the\n"
               "    one-node-at-a-time reference path)\n"
            << tc.to_string();

  bench::BenchJson json("fig12");
  json.set("bench", "fig12_executor_profile");
  json.set("gnn_dag_nodes", static_cast<double>(kNodes));
  json.set("gnn_graphs", static_cast<double>(kGraphs));
  json.set("reps", static_cast<double>(kReps));
  json.set("gnn_per_node_median_us", gnn_stats_ref.median_us);
  json.set("gnn_per_node_p95_us", gnn_stats_ref.p95_us);
  json.set("gnn_batched_median_us", gnn_stats_bat.median_us);
  json.set("gnn_batched_p95_us", gnn_stats_bat.p95_us);
  json.set("gnn_speedup_median", gnn_speedup);
  json.set("gnn_batched_nodes_per_sec", nodes_per_sec);
  json.set("agent_per_node_median_us", agent_stats_ref.median_us);
  json.set("agent_per_node_p95_us", agent_stats_ref.p95_us);
  json.set("agent_batched_median_us", agent_stats_bat.median_us);
  json.set("agent_batched_p95_us", agent_stats_bat.p95_us);
  json.set("agent_speedup_median", agent_speedup);
  const std::string path = json.write();
  if (!path.empty()) std::cout << "\n[bench] wrote " << path << "\n";
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 12 (§7.3) / Appendix G",
      "Decima vs Graphene* with multi-dimensional resources: per-job-size\n"
      "duration ratios and executor-class usage profiles.");

  sim::EnvConfig env;
  env.num_executors = 16;
  env.classes = {{0.25, "s"}, {0.5, "m"}, {0.75, "l"}, {1.0, "xl"}};

  rl::WorkloadSampler sampler = [](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<sim::JobSpec> jobs;
    for (int i = 0; i < 10; ++i) {
      auto j = workload::sample_tpch_job(rng);
      workload::assign_memory_requests(j, rng);
      jobs.push_back(std::move(j));
    }
    Rng arr(rng.fork());
    return workload::continuous(std::move(jobs), arr, 30.0);
  };

  rl::TrainConfig train;
  train.episodes_per_iter = 8;
  train.rollout_threads = 8;
  train.curriculum = false;
  train.differential_reward = false;
  train.env = env;
  train.sampler = sampler;
  core::AgentConfig ac;
  ac.multi_resource = true;
  ac.seed = 17;
  auto decima = bench::trained_agent(ac, train, "fig11b_tpch_mem",
                                     bench::train_iters(40));
  sched::GrapheneScheduler graphene;

  // Collect per-job stats over several runs.
  struct JobStat {
    double work = 0, jct = 0;
    std::vector<int> class_tasks;
  };
  auto collect = [&](sim::Scheduler& s) {
    std::vector<JobStat> out;
    for (int r = 0; r < bench::bench_runs(8); ++r) {
      sim::ClusterEnv cluster(env);
      workload::load(cluster, sampler(7000 + static_cast<std::uint64_t>(r)));
      cluster.run(s);
      const auto usage = metrics::class_usage_per_job(cluster);
      for (std::size_t j = 0; j < cluster.jobs().size(); ++j) {
        if (!cluster.jobs()[j].done()) continue;
        JobStat st;
        st.work = cluster.jobs()[j].spec.total_work();
        st.jct = cluster.jobs()[j].jct();
        st.class_tasks.assign(usage[j].begin(), usage[j].end());
        out.push_back(std::move(st));
      }
    }
    return out;
  };
  const auto stats_dec = collect(*decima);
  const auto stats_gra = collect(graphene);

  // (a) duration ratio by work quartile.
  auto quartile_means = [](const std::vector<JobStat>& stats) {
    std::vector<double> works;
    for (const auto& s : stats) works.push_back(s.work);
    std::sort(works.begin(), works.end());
    std::array<double, 4> sums{}, counts{};
    for (const auto& s : stats) {
      int q = 0;
      for (int k = 1; k < 4; ++k) {
        if (s.work > works[works.size() * static_cast<std::size_t>(k) / 4]) q = k;
      }
      sums[static_cast<std::size_t>(q)] += s.jct;
      counts[static_cast<std::size_t>(q)] += 1;
    }
    std::array<double, 4> out{};
    for (int q = 0; q < 4; ++q) {
      out[static_cast<std::size_t>(q)] =
          counts[static_cast<std::size_t>(q)]
              ? sums[static_cast<std::size_t>(q)] / counts[static_cast<std::size_t>(q)]
              : 0.0;
    }
    return out;
  };
  const auto q_dec = quartile_means(stats_dec);
  const auto q_gra = quartile_means(stats_gra);
  Table ta({"job size group", "Decima JCT / Graphene* JCT"});
  const std::vector<std::string> names = {"smallest 25%", "25-50%", "50-75%",
                                          "largest 25%"};
  for (int q = 0; q < 4; ++q) {
    const double ratio = q_gra[static_cast<std::size_t>(q)] > 0
                             ? q_dec[static_cast<std::size_t>(q)] /
                                   q_gra[static_cast<std::size_t>(q)]
                             : 0.0;
    ta.add_row({names[static_cast<std::size_t>(q)], fmt(ratio, 2)});
  }
  std::cout << "(a) normalized job duration (paper: <1 everywhere, smallest\n"
               "    jobs see the largest gain)\n"
            << ta.to_string();

  // (b) largest-class usage on the smallest 20% of jobs.
  auto small_class_use = [](const std::vector<JobStat>& stats) {
    std::vector<double> works;
    for (const auto& s : stats) works.push_back(s.work);
    std::sort(works.begin(), works.end());
    const double cut = works[works.size() / 5];
    std::array<double, 4> counts{};
    for (const auto& s : stats) {
      if (s.work > cut) continue;
      for (int c = 0; c < 4; ++c) {
        counts[static_cast<std::size_t>(c)] +=
            s.class_tasks[static_cast<std::size_t>(c)];
      }
    }
    return counts;
  };
  const auto use_dec = small_class_use(stats_dec);
  const auto use_gra = small_class_use(stats_gra);
  Table tb({"executor memory", "Decima / Graphene* task count"});
  const std::vector<std::string> mems = {"0.25", "0.5", "0.75", "1.0"};
  for (int c = 0; c < 4; ++c) {
    const double ratio = use_gra[static_cast<std::size_t>(c)] > 0
                             ? use_dec[static_cast<std::size_t>(c)] /
                                   use_gra[static_cast<std::size_t>(c)]
                             : 0.0;
    tb.add_row({mems[static_cast<std::size_t>(c)], fmt(ratio, 2)});
  }
  std::cout << "\n(b) executor-class usage on smallest 20% of jobs (paper:\n"
               "    Decima uses ~1.39x more largest-class executors)\n"
            << tb.to_string();

  inference_profile(*decima, env);
  return 0;
}
