// Figure 14 (§7.4): breakdown of each key idea's contribution. Five Decima
// variants are trained and evaluated on continuous TPC-H arrivals across
// cluster loads:
//   - full Decima,
//   - w/o graph embedding (raw features only),
//   - w/o parallelism control (always take every executor),
//   - trained on batched arrivals (evaluated on continuous),
//   - w/o variance reduction (unfixed job sequences),
// against the tuned weighted-fair heuristic. The paper's shape: omitting any
// component makes Decima worse than the heuristic at high load, with
// parallelism control mattering most.
//
// Note: the paper trains each variant per load; to keep the bench tractable
// we train once per variant at the middle load and evaluate across loads.
#include "bench_common.h"

using namespace decima;

namespace {

struct Variant {
  std::string label;
  bool use_gnn = true;
  bool parallelism_control = true;
  bool batched_training = false;
  bool fixed_sequences = true;
};

}  // namespace

int main() {
  bench::print_header(
      "Figure 14 (§7.4)",
      "Ablation of Decima's key ideas vs cluster load (continuous TPC-H\n"
      "arrivals). Paper shape: every omission underperforms the tuned\n"
      "weighted-fair heuristic at high load.");

  sim::EnvConfig env;
  env.num_executors = 10;

  // Loads are controlled by the mean interarrival time. jobs ~28s of work
  // on 10 executors => IATs below map to low/medium/high load.
  const std::vector<std::pair<std::string, double>> loads = {
      {"low (IAT 80s)", 80.0}, {"medium (IAT 55s)", 55.0},
      {"high (IAT 40s)", 40.0}};
  const double train_iat = 55.0;
  const int jobs_per_episode = 18;

  auto continuous_sampler = [&](double iat) {
    return bench::tpch_continuous_sampler(jobs_per_episode, iat);
  };

  const std::vector<Variant> variants = {
      {"Decima", true, true, false, true},
      {"w/o graph embedding", false, true, false, true},
      {"w/o parallelism control", true, false, false, true},
      {"trained on batched arrivals", true, true, true, true},
      {"w/o variance reduction", true, true, false, false},
  };

  std::vector<std::unique_ptr<core::DecimaAgent>> agents;
  for (const auto& v : variants) {
    core::AgentConfig ac;
    ac.seed = 29;
    ac.use_gnn = v.use_gnn;
    ac.parallelism_control = v.parallelism_control;

    rl::TrainConfig train;
    train.episodes_per_iter = 8;
    train.rollout_threads = 8;
    train.curriculum = !v.batched_training;
    train.tau_mean_init = 400.0;
    train.tau_mean_max = 2000.0;
    train.tau_mean_growth = 40.0;
    train.differential_reward = !v.batched_training;
    train.fixed_sequences = v.fixed_sequences;
    train.env = env;
    train.sampler = v.batched_training
                        ? bench::tpch_batch_sampler(jobs_per_episode)
                        : continuous_sampler(train_iat);
    std::string key = "fig14_" + v.label;
    for (char& c : key) {
      if (c == ' ' || c == '/') c = '_';
    }
    agents.push_back(bench::trained_agent(ac, train, key,
                                          bench::train_iters(30)));
  }

  const int runs = bench::bench_runs(6);
  Table t({"scheduler", loads[0].first, loads[1].first, loads[2].first});
  // Heuristic row first.
  sched::WeightedFairScheduler opt(-1.0);
  std::vector<std::string> row = {"Opt. weighted fair"};
  std::vector<double> heuristic_jct;
  for (const auto& [label, iat] : loads) {
    const auto jcts =
        bench::eval_runs(opt, env, continuous_sampler(iat), runs);
    heuristic_jct.push_back(mean_of(jcts));
    row.push_back(fmt(heuristic_jct.back(), 1));
  }
  t.add_row(row);

  for (std::size_t i = 0; i < variants.size(); ++i) {
    std::vector<std::string> vrow = {variants[i].label};
    for (const auto& [label, iat] : loads) {
      const auto jcts =
          bench::eval_runs(*agents[i], env, continuous_sampler(iat), runs);
      vrow.push_back(fmt(mean_of(jcts), 1));
    }
    t.add_row(vrow);
  }
  std::cout << "mean avg JCT [s] by cluster load:\n" << t.to_string();
  std::cout << "\npaper shape: full Decima beats the heuristic; each ablation\n"
               "degrades it (parallelism control most, then graph embedding,\n"
               "batched training, variance reduction — especially at high load).\n";
  return 0;
}
