// Shared infrastructure for the per-figure/table benchmark harnesses.
//
// Each bench binary regenerates the rows/series of one paper table or figure.
// Decima policies are trained with deliberately small budgets so the whole
// suite runs in minutes; the budgets scale up via environment variables:
//   DECIMA_TRAIN_ITERS  — RL training iterations per policy (default ~60)
//   DECIMA_BENCH_RUNS   — number of evaluation runs/experiments (default ~20)
// Trained weights are cached next to the binaries, so re-runs and benches
// sharing a configuration skip training.
#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "metrics/experiment.h"
#include "rl/reinforce.h"
#include "sched/heuristics.h"
#include "sched/tuning.h"
#include "util/env_flags.h"
#include "util/table.h"
#include "workload/tpch.h"
#include "workload/trace.h"

namespace decima::bench {

// Default knobs (env-var overridable).
int train_iters(int fallback = 60);
int bench_runs(int fallback = 20);

// Master seed for the robustness scenario suite's fault plans and stress
// workloads (DECIMA_SCENARIO_SEED): re-seed the whole sweep from the command
// line without recompiling. Shared by bench_scenarios and any future
// fault-sweep bench so one knob moves every generator together.
std::uint64_t scenario_seed(std::uint64_t fallback = 1234);

// Default agent configuration with only the seed set.
core::AgentConfig agent_with_seed(std::uint64_t seed);

// Prints the standard bench header with paper reference.
void print_header(const std::string& figure, const std::string& description);

// Trains (or loads from cache) a Decima agent. `cache_key` names the weight
// file; training runs `iters` iterations of `config`. The returned agent is
// in greedy inference mode.
std::unique_ptr<core::DecimaAgent> trained_agent(
    const core::AgentConfig& agent_config, rl::TrainConfig train_config,
    const std::string& cache_key, int iters);

// Standard batched / continuous TPC-H samplers used across benches.
rl::WorkloadSampler tpch_batch_sampler(int num_jobs);
rl::WorkloadSampler tpch_continuous_sampler(int num_jobs, double mean_iat);

// Jobs whose DAG topology is a seeded random `num_nodes`-stage graph (job i
// uses gnn::random_job_graph(seed + i, num_nodes, feat_dim)): 2 tasks per
// stage, 1s mean duration, mem_req 0.25. The 50-node-DAG profiling workload
// of BENCH_fig12 / BENCH_train. feat_dim must match the graphs being
// profiled alongside — the RNG draws features before edges, so it shifts
// the topology too.
std::vector<sim::JobSpec> random_dag_jobs(int num_jobs, int num_nodes,
                                          std::uint64_t seed,
                                          int feat_dim = 5);

// Evaluation over `runs` held-out workloads (seeds disjoint from training,
// which forks seeds from the trainer's master seed).
std::vector<double> eval_runs(sim::Scheduler& sched,
                              const sim::EnvConfig& env,
                              const rl::WorkloadSampler& sampler, int runs,
                              std::uint64_t seed_base = 900000);

// --- Machine-readable benchmark output --------------------------------------

// Wall-clock latency of `fn` over `reps` repetitions (microseconds).
struct LatencyStats {
  double median_us = 0.0;
  double p95_us = 0.0;
  std::size_t samples = 0;
};
LatencyStats latency_from_samples(std::vector<double> samples_us);
LatencyStats time_reps(int reps, const std::function<void()>& fn);

// Scheduler decorator that records the wall-clock latency of every
// schedule() call — measures per-event inference cost over a real episode.
class TimedScheduler : public sim::Scheduler {
 public:
  explicit TimedScheduler(sim::Scheduler& inner) : inner_(inner) {}
  sim::Action schedule(const sim::ClusterEnv& env) override;
  void reset() override { inner_.reset(); }
  std::string name() const override { return inner_.name(); }
  LatencyStats stats() const { return latency_from_samples(samples_us_); }

 private:
  sim::Scheduler& inner_;
  std::vector<double> samples_us_;
};

// Flat key/value metrics written as BENCH_<name>.json alongside the stdout
// tables, so successive PRs accumulate a machine-comparable perf trajectory.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : name_(std::move(bench_name)) {}
  void set(const std::string& key, double value);
  void set(const std::string& key, const std::string& value);
  // Writes BENCH_<name>.json in the working directory; returns the path
  // (empty on I/O error).
  std::string write() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;  // pre-rendered
};

}  // namespace decima::bench
