// Figure 11 (§7.3): multi-dimensional resource packing.
//  (a) industrial trace replay: Decima vs opt. weighted fair, Tetris,
//      Graphene* (paper: Decima 32% lower avg JCT than Graphene*).
//  (b) TPC-H with per-stage memory requests sampled from (0,1]
//      (paper: 43% lower than Graphene*).
#include "bench_common.h"

using namespace decima;

namespace {

void run_comparison(const std::string& label, const sim::EnvConfig& env,
                    const rl::WorkloadSampler& sampler,
                    const std::string& cache_key, const std::string& paper) {
  rl::TrainConfig train;
  train.episodes_per_iter = 8;
  train.rollout_threads = 8;
  train.curriculum = false;
  train.differential_reward = false;
  train.env = env;
  train.sampler = sampler;
  core::AgentConfig ac;
  ac.multi_resource = true;
  ac.seed = 17;
  auto decima =
      bench::trained_agent(ac, train, cache_key, bench::train_iters(40));

  const auto tuned = sched::tune_graphene(env, {sampler(551), sampler(552)});
  sched::GrapheneScheduler graphene(tuned.config);
  sched::WeightedFairScheduler opt(-1.0);
  sched::TetrisScheduler tetris;

  const int runs = bench::bench_runs(8);
  Table t({"scheduler", "mean avg JCT [s]"});
  std::vector<std::pair<std::string, double>> rows;
  for (sim::Scheduler* s : std::vector<sim::Scheduler*>{
           &opt, &tetris, &graphene, decima.get()}) {
    const auto jcts = bench::eval_runs(*s, env, sampler, runs);
    rows.emplace_back(s->name(), mean_of(jcts));
    t.add_row({s->name(), fmt(rows.back().second, 1)});
  }
  std::cout << "--- " << label << " ---\n" << t.to_string();
  const double graphene_jct = rows[2].second;
  const double decima_jct = rows[3].second;
  std::cout << "Decima vs Graphene*: "
            << fmt_pct((graphene_jct - decima_jct) / graphene_jct) << " ("
            << paper << ")\n\n";
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 11 (§7.3)",
      "Multi-resource scheduling with four executor memory classes\n"
      "(0.25/0.5/0.75/1.0): industrial trace replay and TPC-H with\n"
      "random memory requests.");

  sim::EnvConfig env;
  env.num_executors = 16;
  env.classes = {{0.25, "s"}, {0.5, "m"}, {0.75, "l"}, {1.0, "xl"}};

  // (a) industrial trace: continuous windows of the synthetic trace.
  rl::WorkloadSampler trace_sampler = [](std::uint64_t seed) {
    workload::TraceConfig cfg;
    cfg.num_jobs = 18;
    cfg.mean_iat = 25.0;
    cfg.seed = seed;
    return workload::synthesize_trace(cfg);
  };
  run_comparison("Fig. 11a: industrial trace replay", env, trace_sampler,
                 "fig11a_trace", "paper: 32% lower");

  // (b) TPC-H with memory requests from (0,1].
  rl::WorkloadSampler tpch_sampler = [](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<sim::JobSpec> jobs;
    for (int i = 0; i < 10; ++i) {
      auto j = workload::sample_tpch_job(rng);
      workload::assign_memory_requests(j, rng);
      jobs.push_back(std::move(j));
    }
    Rng arr(rng.fork());
    return workload::continuous(std::move(jobs), arr, 30.0);
  };
  run_comparison("Fig. 11b: TPC-H multi-resource", env, tpch_sampler,
                 "fig11b_tpch_mem", "paper: 43% lower");
  return 0;
}
