// Serving throughput (docs/serving.md): decisions/sec of the PolicyServer
// for 1-32 concurrent simulated cluster sessions, along two independent
// axes. (1) cross-session batched dispatch vs the sequential reference
// path, both with the embedding cache off — isolating what batching buys:
// all pending sessions' scheduling events embedded and scored as one
// levelized GNN + policy-head evaluation instead of one per session.
// (2) the per-session incremental embedding cache
// (docs/incremental_embedding.md) on top of batched dispatch — isolating
// what caching buys a long-lived session stream. Decisions are bit-identical
// in every mode (tests/test_serve.cpp), so the ratios are pure throughput.
// Writes BENCH_serve.json.
#include <chrono>
#include <thread>

#include "bench_common.h"
#include "gnn/embedding_cache.h"
#include "io/checkpoint.h"
#include "serve/policy_server.h"
#include "util/stats.h"

using namespace decima;

namespace {

struct RunResult {
  double wall_seconds = 0.0;
  std::uint64_t decisions = 0;
  double mean_batch = 0.0;
  // End-to-end decide_with_status latency as the sessions saw it, merged
  // across session threads after the join (docs/observability.md).
  std::vector<double> latencies_us;
  // Aggregate per-session embedding-cache accounting; 0 when the policy
  // snapshot was exported with embed_cache off.
  double cache_hit_rate = 0.0;
  double decisions_per_sec() const {
    return static_cast<double>(decisions) / std::max(wall_seconds, 1e-12);
  }
  double latency_pct(double p) const {
    return percentile(latencies_us, p);
  }
};

// ServedScheduler plus a wall-clock stamp around every server query. The
// sample vector is session-owned and pre-sized, so timing adds two clock
// reads per decision and no locks or allocation to the measured loop.
class TimedServedScheduler : public sim::Scheduler {
 public:
  TimedServedScheduler(serve::PolicyServer& server,
                       std::vector<double>& samples_us)
      : sched_(server), samples_us_(samples_us) {}
  sim::Action schedule(const sim::ClusterEnv& env) override {
    const auto t0 = std::chrono::steady_clock::now();
    sim::Action a = sched_.schedule(env);
    samples_us_.push_back(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count());
    return a;
  }
  std::string name() const override { return "Decima-served-timed"; }
  const gnn::EmbeddingCacheStats& embed_cache_stats() const {
    return sched_.embed_cache_stats();
  }

 private:
  serve::ServedScheduler sched_;
  std::vector<double>& samples_us_;
};

RunResult run_sessions(const std::string& ckpt, bool batching, int wait_us,
                       int sessions, const sim::EnvConfig& env,
                       const std::vector<std::vector<workload::ArrivingJob>>&
                           session_workloads) {
  serve::ServeConfig cfg;
  cfg.cross_session_batching = batching;
  // Adaptive bounded-wait batching (docs/serving.md): the batched rows run
  // with it on, so shallow-session rows coalesce full batches instead of
  // losing to the sequential reference on dispatch overhead. The sequential
  // reference itself always runs with 0 (waiting cannot help one-at-a-time
  // scoring).
  cfg.batch_wait_us = batching ? wait_us : 0;
  auto server = serve::PolicyServer::from_checkpoint(ckpt, cfg);
  if (!server) {
    std::cerr << "failed to load " << ckpt << "\n";
    std::exit(1);
  }
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(sessions));
  std::vector<gnn::EmbeddingCacheStats> cache_stats(
      static_cast<std::size_t>(sessions));
  for (auto& v : latencies) v.reserve(4096);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      const std::size_t ss = static_cast<std::size_t>(s);
      sim::ClusterEnv cluster(env);
      workload::load(cluster, session_workloads[ss]);
      TimedServedScheduler sched(*server, latencies[ss]);
      cluster.run(sched, sim::kInfTime);
      cache_stats[ss] = sched.embed_cache_stats();
    });
  }
  for (auto& t : threads) t.join();
  RunResult r;
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto stats = server->stats();
  r.decisions = stats.decisions;
  r.mean_batch = stats.mean_batch_size;
  std::uint64_t seen = 0, reused = 0;
  for (int s = 0; s < sessions; ++s) {
    const std::size_t ss = static_cast<std::size_t>(s);
    r.latencies_us.insert(r.latencies_us.end(), latencies[ss].begin(),
                          latencies[ss].end());
    seen += cache_stats[ss].graphs_seen;
    reused += cache_stats[ss].graphs_reused;
  }
  r.cache_hit_rate =
      seen == 0 ? 0.0
                : static_cast<double>(reused) / static_cast<double>(seen);
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "Serving throughput (ROADMAP north star)",
      "PolicyServer decisions/sec vs concurrent session count, cross-session\n"
      "batched dispatch vs sequential scoring of the same request queue\n"
      "(writes BENCH_serve.json).");

  // The 50-node-DAG profiling family of BENCH_fig12/BENCH_train, sized per
  // session so a full sweep stays in CI budget. Decisions are identical in
  // both modes; only wall-clock differs.
  const int dag_jobs = env_int("DECIMA_SERVE_JOBS", 3);
  const int dag_nodes = env_int("DECIMA_SERVE_NODES", 30);
  // Bounded wait for the batched rows: long enough to catch the other
  // sessions' next queries (inter-query gaps are tens of µs of simulator
  // event processing), short against the ~ms inference itself.
  const int wait_us = env_int("DECIMA_SERVE_WAIT_US", 200);
  sim::EnvConfig env;
  env.num_executors = 10;

  // Policy checkpoints: a freshly initialized agent (throughput does not
  // care about training quality, and the weights round-trip bit-exactly
  // anyway), once with the embedding cache off (the batching comparison's
  // baseline policy) and once with it on.
  core::AgentConfig ac;
  ac.seed = 37;
  ac.embed_cache = false;
  core::DecimaAgent agent(ac);
  const std::string ckpt = "serve_bench_policy.ckpt";
  core::AgentConfig cached_ac = ac;
  cached_ac.embed_cache = true;
  core::DecimaAgent cached_agent(cached_ac);
  cached_agent.params().copy_values_from(agent.params());
  const std::string cached_ckpt = "serve_bench_policy_cached.ckpt";
  if (!io::save_policy(agent, ckpt)) {
    std::cerr << "cannot write " << ckpt << "\n";
    return 1;
  }
  if (!io::save_policy(cached_agent, cached_ckpt)) {
    std::cerr << "cannot write " << cached_ckpt << "\n";
    return 1;
  }
  std::cout << "policy checkpoint: " << ckpt << " ("
            << agent.num_parameters() << " params)\n\n";

  const std::vector<int> session_counts = {1, 2, 4, 8, 16, 32};
  const int max_sessions = session_counts.back();
  std::vector<std::vector<workload::ArrivingJob>> session_workloads;
  for (int s = 0; s < max_sessions; ++s) {
    session_workloads.push_back(workload::batched(bench::random_dag_jobs(
        dag_jobs, dag_nodes, 4000 + static_cast<std::uint64_t>(s))));
  }

  bench::BenchJson json("serve");
  json.set("bench", "serve_throughput");
  json.set("dag_jobs_per_session", static_cast<double>(dag_jobs));
  json.set("dag_nodes", static_cast<double>(dag_nodes));

  json.set("batch_wait_us", static_cast<double>(wait_us));

  // Warm-up run (allocator + cache state), not measured.
  run_sessions(ckpt, /*batching=*/true, wait_us, 2, env, session_workloads);

  Table t({"sessions", "sequential [dec/s]", "batched [dec/s]", "speedup",
           "+embed cache [dec/s]", "cache speedup", "mean batch",
           "p50/p95/p99 [us]", "cache hit"});
  double speedup_at_max = 0.0;
  double cache_speedup_at_max = 0.0;
  double cache_hit_rate_at_max = 0.0;
  for (int sessions : session_counts) {
    const RunResult seq = run_sessions(ckpt, /*batching=*/false, wait_us,
                                       sessions, env, session_workloads);
    const RunResult bat = run_sessions(ckpt, /*batching=*/true, wait_us,
                                       sessions, env, session_workloads);
    const RunResult cached = run_sessions(cached_ckpt, /*batching=*/true,
                                          wait_us, sessions, env,
                                          session_workloads);
    const double speedup =
        bat.decisions_per_sec() / std::max(seq.decisions_per_sec(), 1e-12);
    const double cache_speedup =
        cached.decisions_per_sec() / std::max(bat.decisions_per_sec(), 1e-12);
    speedup_at_max = speedup;
    cache_speedup_at_max = cache_speedup;
    cache_hit_rate_at_max = cached.cache_hit_rate;
    t.add_row({fmt_int(sessions), fmt(seq.decisions_per_sec(), 0),
               fmt(bat.decisions_per_sec(), 0), fmt(speedup, 2),
               fmt(cached.decisions_per_sec(), 0), fmt(cache_speedup, 2),
               fmt(bat.mean_batch, 2),
               fmt(bat.latency_pct(50.0), 0) + "/" +
                   fmt(bat.latency_pct(95.0), 0) + "/" +
                   fmt(bat.latency_pct(99.0), 0),
               fmt(cached.cache_hit_rate, 2)});
    const std::string key = "sessions" + std::to_string(sessions);
    json.set(key + "_sequential_dps", seq.decisions_per_sec());
    json.set(key + "_batched_dps", bat.decisions_per_sec());
    json.set(key + "_speedup", speedup);
    json.set(key + "_cached_dps", cached.decisions_per_sec());
    json.set(key + "_cache_speedup", cache_speedup);
    json.set(key + "_mean_batch", bat.mean_batch);
    json.set(key + "_decisions", static_cast<double>(bat.decisions));
    json.set(key + "_latency_p50_us", bat.latency_pct(50.0));
    json.set(key + "_latency_p95_us", bat.latency_pct(95.0));
    json.set(key + "_latency_p99_us", bat.latency_pct(99.0));
    json.set(key + "_cache_hit_rate", cached.cache_hit_rate);
  }
  // The headline hit rate of the cached configuration at the deepest
  // concurrency level — the number the ROADMAP cache refactor tracks.
  json.set("cache_hit_rate", cache_hit_rate_at_max);
  std::cout << t.to_string();
  std::cout << "\nat " << max_sessions << " sessions: cross-session batching "
            << fmt(speedup_at_max, 2) << "x, embedding cache a further "
            << fmt(cache_speedup_at_max, 2) << "x on top (hit rate "
            << fmt(cache_hit_rate_at_max, 2) << ")\n";

  const std::string path = json.write();
  if (!path.empty()) std::cout << "\n[bench] wrote " << path << "\n";
  return 0;
}
