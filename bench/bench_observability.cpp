// Instrumentation overhead of the runtime observability layer
// (docs/observability.md): decisions/sec of a served multi-session run with
// metrics + tracing fully ON vs fully OFF, interleaved median-of-3 so drift
// on a busy CI host cancels. The recording paths are relaxed atomics behind
// one enabled-flag load, so the ratio should sit at ~1.0; check_bench.py
// floors `metrics_on_vs_off_ratio` at 0.97 (BENCH_REGISTRY) — instrumenting
// the hot paths may never cost more than 3% of serving throughput.
//
// Also emits the observability artifacts CI uploads: obs_trace.json (Chrome
// trace-event format, loadable in chrome://tracing) and obs_metrics.json
// (the registry dump), populated by an instrumented pass over all three
// planes — serving, training, and the embedding cache. Writes
// BENCH_observability.json.
#include <chrono>
#include <thread>

#include "bench_common.h"
#include "gnn/embedding_cache.h"
#include "io/checkpoint.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/policy_server.h"
#include "util/stats.h"

using namespace decima;

namespace {

// One served pass: `sessions` concurrent session threads against a fresh
// server, batched dispatch, embedding cache on. Returns decisions/sec.
double serve_pass(const std::string& ckpt, int sessions,
                  const sim::EnvConfig& env,
                  const std::vector<std::vector<workload::ArrivingJob>>&
                      session_workloads) {
  serve::ServeConfig cfg;
  auto server = serve::PolicyServer::from_checkpoint(ckpt, cfg);
  if (!server) {
    std::cerr << "failed to load " << ckpt << "\n";
    std::exit(1);
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      serve::run_session(*server, env,
                         session_workloads[static_cast<std::size_t>(s)]);
    });
  }
  for (auto& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(server->stats().decisions) /
         std::max(wall, 1e-12);
}

}  // namespace

int main() {
  bench::print_header(
      "Observability overhead",
      "Served decisions/sec with the obs layer on vs off (interleaved\n"
      "median-of-3), plus the chrome://tracing + metrics-dump artifacts\n"
      "(writes BENCH_observability.json, obs_trace.json, obs_metrics.json).");

  const int dag_jobs = env_int("DECIMA_OBS_JOBS", 3);
  const int dag_nodes = env_int("DECIMA_OBS_NODES", 30);
  const int sessions = env_int("DECIMA_OBS_SESSIONS", 4);
  const int reps = env_int("DECIMA_OBS_REPS", 3);
  sim::EnvConfig env;
  env.num_executors = 10;

  // Freshly initialized policy with the embedding cache ON, so the measured
  // loop crosses every instrumented plane boundary the serving path has:
  // decide latency + queue wait + batch spans, and the cache hit/miss/dirty
  // counters inside refresh.
  core::AgentConfig ac;
  ac.seed = 41;
  ac.embed_cache = true;
  core::DecimaAgent agent(ac);
  const std::string ckpt = "obs_bench_policy.ckpt";
  if (!io::save_policy(agent, ckpt)) {
    std::cerr << "cannot write " << ckpt << "\n";
    return 1;
  }

  std::vector<std::vector<workload::ArrivingJob>> session_workloads;
  for (int s = 0; s < sessions; ++s) {
    session_workloads.push_back(workload::batched(bench::random_dag_jobs(
        dag_jobs, dag_nodes, 7000 + static_cast<std::uint64_t>(s))));
  }

  // Warm-up (allocator, page cache), not measured.
  obs::set_enabled(false);
  serve_pass(ckpt, sessions, env, session_workloads);

  // Interleaved off/on reps: host-load drift hits both arms equally.
  std::vector<double> off_dps, on_dps;
  for (int r = 0; r < reps; ++r) {
    obs::set_enabled(false);
    off_dps.push_back(serve_pass(ckpt, sessions, env, session_workloads));
    obs::set_enabled(true);
    on_dps.push_back(serve_pass(ckpt, sessions, env, session_workloads));
  }
  obs::set_enabled(false);
  const double off_median = percentile(off_dps, 50.0);
  const double on_median = percentile(on_dps, 50.0);
  const double ratio = on_median / std::max(off_median, 1e-12);

  Table t({"arm", "median [dec/s]", "reps"});
  t.add_row({"metrics+tracing off", fmt(off_median, 0), fmt_int(reps)});
  t.add_row({"metrics+tracing on", fmt(on_median, 0), fmt_int(reps)});
  std::cout << t.to_string();
  std::cout << "\non/off throughput ratio: " << fmt(ratio, 3)
            << "  (floor 0.97 — see scripts/check_bench.py)\n";

  // --- Artifact pass: populate all three planes, then dump ------------------
  // A fresh instrumented window: serving (one pass), training (two tiny
  // iterations — rollout/replay/step spans, pool-utilization gauges), and
  // the embedding cache riding inside both.
  obs::Registry::instance().reset();
  obs::Tracer::instance().clear();
  obs::set_enabled(true);
  serve_pass(ckpt, sessions, env, session_workloads);
  {
    core::AgentConfig train_ac;
    train_ac.seed = 43;
    core::DecimaAgent train_agent(train_ac);
    rl::TrainConfig tc;
    tc.episodes_per_iter = 2;
    tc.rollout_threads = 2;
    tc.tau_mean_init = 50.0;
    tc.env = env;
    tc.sampler = bench::tpch_batch_sampler(3);
    rl::ReinforceTrainer trainer(train_agent, tc);
    trainer.iterate();
    trainer.iterate();
  }
  obs::set_enabled(false);

  const bool trace_ok =
      obs::Tracer::instance().write_chrome_json("obs_trace.json");
  const bool metrics_ok =
      obs::Registry::instance().write_json("obs_metrics.json");
  if (!trace_ok || !metrics_ok) {
    std::cerr << "failed to write obs artifacts\n";
    return 1;
  }
  std::cout << "\n[bench] wrote obs_trace.json ("
            << obs::Tracer::instance().size()
            << " events) and obs_metrics.json ("
            << obs::Registry::instance().metric_names().size()
            << " metrics)\n";

  bench::BenchJson json("observability");
  json.set("bench", "observability");
  json.set("sessions", static_cast<double>(sessions));
  json.set("dag_jobs_per_session", static_cast<double>(dag_jobs));
  json.set("dag_nodes", static_cast<double>(dag_nodes));
  json.set("metrics_off_dps", off_median);
  json.set("metrics_on_dps", on_median);
  json.set("metrics_on_vs_off_ratio", ratio);
  json.set("trace_events",
           static_cast<double>(obs::Tracer::instance().size()));
  json.set(
      "registered_metrics",
      static_cast<double>(obs::Registry::instance().metric_names().size()));
  const std::string path = json.write();
  if (!path.empty()) std::cout << "[bench] wrote " << path << "\n";
  return 0;
}
