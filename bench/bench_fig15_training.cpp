// Figure 15 (§7.4): training efficiency and decision latency.
//  (a) learning curves for three parallelism-limit encodings: the paper's
//      scalar-l input, one-output-per-limit ("w/o limit input"), and
//      stage-level granularity — the scalar-input design trains fastest.
//  (b) CDF of Decima's scheduling delay vs the interval between scheduling
//      events (paper: ~15ms decisions vs seconds-scale event intervals).
#include "bench_common.h"

using namespace decima;

int main() {
  bench::print_header(
      "Figure 15 (§7.4)",
      "(a) learning curves per parallelism-limit encoding; (b) scheduling\n"
      "delay vs scheduling-event interval CDFs.");

  sim::EnvConfig env;
  env.num_executors = 10;
  const auto sampler = bench::tpch_batch_sampler(8);
  const auto eval_workloads = [&] {
    std::vector<std::vector<workload::ArrivingJob>> w;
    for (int i = 0; i < 4; ++i) w.push_back(sampler(91000 + static_cast<std::uint64_t>(i)));
    return w;
  }();

  // ---------------- (a) learning curves -------------------------------------
  const int iters = bench::train_iters(50);
  const int snapshot_every = std::max(1, iters / 10);
  struct Curve {
    std::string label;
    std::vector<double> jct;
  };
  std::vector<Curve> curves;
  for (auto [label, encoding] :
       std::vector<std::pair<std::string, core::LimitEncoding>>{
           {"job-level, limit input (Decima)",
            core::LimitEncoding::kScalarInput},
           {"w/o limit input (per-limit outputs)",
            core::LimitEncoding::kSeparateOutputs},
           {"stage-level granularity", core::LimitEncoding::kStageLevel}}) {
    core::AgentConfig ac;
    ac.seed = 37;
    ac.limit_encoding = encoding;
    core::DecimaAgent agent(ac);
    rl::TrainConfig train;
    train.episodes_per_iter = 8;
    train.num_threads = 8;
    train.curriculum = false;
    train.differential_reward = false;
    train.env = env;
    train.sampler = sampler;
    rl::ReinforceTrainer trainer(agent, train);
    Curve c{label, {}};
    for (int i = 0; i < iters; ++i) {
      trainer.iterate();
      if (i % snapshot_every == 0 || i == iters - 1) {
        agent.set_mode(core::Mode::kGreedy);
        c.jct.push_back(rl::evaluate_avg_jct(agent, env, eval_workloads));
      }
    }
    std::cout << "[fig15a] " << label << " ("
              << agent.num_parameters() << " params) final JCT "
              << fmt(c.jct.back(), 1) << "s\n";
    curves.push_back(std::move(c));
  }
  Table ta({"snapshot", curves[0].label, curves[1].label, curves[2].label});
  for (std::size_t k = 0; k < curves[0].jct.size(); ++k) {
    ta.add_row({fmt_int(static_cast<long long>(k * static_cast<std::size_t>(snapshot_every))),
                fmt(curves[0].jct[k], 1), fmt(curves[1].jct[k], 1),
                fmt(curves[2].jct[k], 1)});
  }
  std::cout << "\n(a) held-out avg JCT during training (lower = better)\n"
            << ta.to_string();

  // ---------------- (b) scheduling delay -----------------------------------
  core::AgentConfig ac;
  ac.seed = 37;
  core::DecimaAgent agent(ac);
  agent.set_mode(core::Mode::kGreedy);
  sim::ClusterEnv cluster(env);
  workload::load(cluster, bench::tpch_continuous_sampler(30, 40.0)(5));
  cluster.run(agent);
  auto lat = cluster.decision_latencies();
  auto intervals = cluster.event_intervals();
  std::vector<double> lat_ms;
  for (double s : lat) lat_ms.push_back(s * 1e3);
  std::vector<double> iv_ms;
  for (double s : intervals) iv_ms.push_back(s * 1e3);

  Table tb({"percentile", "decision latency [ms]", "event interval [ms]"});
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    tb.add_row({fmt(p, 0), fmt(percentile(lat_ms, p), 3),
                fmt(percentile(iv_ms, p), 1)});
  }
  std::cout << "\n(b) scheduling delay vs event interval ("
            << lat_ms.size() << " decisions)\n"
            << tb.to_string();
  std::cout << "\npaper: decisions <15ms, event intervals ~seconds — the\n"
               "policy's inference latency is negligible. Our simulated\n"
               "event intervals are simulated time; the latency column is\n"
               "real wall-clock inference cost of the C++ model.\n";
  return 0;
}
