// Figure 15 (§7.4): training efficiency and decision latency.
//  (a) learning curves for three parallelism-limit encodings: the paper's
//      scalar-l input, one-output-per-limit ("w/o limit input"), and
//      stage-level granularity — the scalar-input design trains fastest.
//  (b) CDF of Decima's scheduling delay vs the interval between scheduling
//      events (paper: ~15ms decisions vs seconds-scale event intervals).
#include "bench_common.h"

using namespace decima;

int main() {
  bench::print_header(
      "Figure 15 (§7.4)",
      "(a) learning curves per parallelism-limit encoding; (b) scheduling\n"
      "delay vs scheduling-event interval CDFs; (c) training throughput\n"
      "with episode-batched vs per-action replay; (d) parallel rollout\n"
      "scaling vs the sequential reference (writes BENCH_train.json).");

  sim::EnvConfig env;
  env.num_executors = 10;
  const auto sampler = bench::tpch_batch_sampler(8);
  const auto eval_workloads = [&] {
    std::vector<std::vector<workload::ArrivingJob>> w;
    for (int i = 0; i < 4; ++i) w.push_back(sampler(91000 + static_cast<std::uint64_t>(i)));
    return w;
  }();

  // ---------------- (a) learning curves -------------------------------------
  const int iters = bench::train_iters(50);
  const int snapshot_every = std::max(1, iters / 10);
  struct Curve {
    std::string label;
    std::vector<double> jct;
  };
  std::vector<Curve> curves;
  for (auto [label, encoding] :
       std::vector<std::pair<std::string, core::LimitEncoding>>{
           {"job-level, limit input (Decima)",
            core::LimitEncoding::kScalarInput},
           {"w/o limit input (per-limit outputs)",
            core::LimitEncoding::kSeparateOutputs},
           {"stage-level granularity", core::LimitEncoding::kStageLevel}}) {
    core::AgentConfig ac;
    ac.seed = 37;
    ac.limit_encoding = encoding;
    core::DecimaAgent agent(ac);
    rl::TrainConfig train;
    train.episodes_per_iter = 8;
    train.rollout_threads = 8;
    train.curriculum = false;
    train.differential_reward = false;
    train.env = env;
    train.sampler = sampler;
    rl::ReinforceTrainer trainer(agent, train);
    Curve c{label, {}};
    for (int i = 0; i < iters; ++i) {
      trainer.iterate();
      if (i % snapshot_every == 0 || i == iters - 1) {
        agent.set_mode(core::Mode::kGreedy);
        c.jct.push_back(rl::evaluate_avg_jct(agent, env, eval_workloads));
      }
    }
    std::cout << "[fig15a] " << label << " ("
              << agent.num_parameters() << " params) final JCT "
              << fmt(c.jct.back(), 1) << "s\n";
    curves.push_back(std::move(c));
  }
  Table ta({"snapshot", curves[0].label, curves[1].label, curves[2].label});
  for (std::size_t k = 0; k < curves[0].jct.size(); ++k) {
    ta.add_row({fmt_int(static_cast<long long>(k * static_cast<std::size_t>(snapshot_every))),
                fmt(curves[0].jct[k], 1), fmt(curves[1].jct[k], 1),
                fmt(curves[2].jct[k], 1)});
  }
  std::cout << "\n(a) held-out avg JCT during training (lower = better)\n"
            << ta.to_string();

  // ---------------- (b) scheduling delay -----------------------------------
  core::AgentConfig ac;
  ac.seed = 37;
  core::DecimaAgent agent(ac);
  agent.set_mode(core::Mode::kGreedy);
  sim::ClusterEnv cluster(env);
  workload::load(cluster, bench::tpch_continuous_sampler(30, 40.0)(5));
  cluster.run(agent);
  auto lat = cluster.decision_latencies();
  auto intervals = cluster.event_intervals();
  std::vector<double> lat_ms;
  for (double s : lat) lat_ms.push_back(s * 1e3);
  std::vector<double> iv_ms;
  for (double s : intervals) iv_ms.push_back(s * 1e3);

  Table tb({"percentile", "decision latency [ms]", "event interval [ms]"});
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    tb.add_row({fmt(p, 0), fmt(percentile(lat_ms, p), 3),
                fmt(percentile(iv_ms, p), 1)});
  }
  std::cout << "\n(b) scheduling delay vs event interval ("
            << lat_ms.size() << " decisions)\n"
            << tb.to_string();
  std::cout << "\npaper: decisions <15ms, event intervals ~seconds — the\n"
               "policy's inference latency is negligible. Our simulated\n"
               "event intervals are simulated time; the latency column is\n"
               "real wall-clock inference cost of the C++ model.\n";

  // ---------------- (c) training throughput ---------------------------------
  // The 50-node-DAG workload of the fig. 12 latency profile, now trained:
  // per-phase wall-clock of Algorithm 1 with the episode-batched replay
  // (AgentConfig::batched_replay, one tape + one backward per episode) vs
  // the one-tape-per-action reference loop. Seeds the BENCH_train.json perf
  // trajectory. Both runs are seed-identical, so they replay the same
  // episodes and differ only in how the gradients are computed.
  constexpr int kDagJobs = 5;
  constexpr int kDagNodes = 50;
  const auto profile_jobs = bench::random_dag_jobs(kDagJobs, kDagNodes, 100);
  const rl::WorkloadSampler dag_sampler = [profile_jobs](std::uint64_t) {
    return workload::batched(profile_jobs);
  };
  sim::EnvConfig tenv;
  tenv.num_executors = 10;
  const int titers = std::max(3, bench::train_iters(50) / 10);
  struct Phases {
    double rollout = 0.0, replay = 0.0, step = 0.0, total = 0.0;
    int actions = 0;
  };
  auto time_training = [&](bool batched_replay) {
    core::AgentConfig ac;
    ac.seed = 37;
    ac.batched_replay = batched_replay;
    core::DecimaAgent agent(ac);
    rl::TrainConfig tcfg;
    tcfg.episodes_per_iter = 4;
    tcfg.rollout_threads = 4;
    tcfg.curriculum = false;
    tcfg.differential_reward = false;
    tcfg.env = tenv;
    tcfg.sampler = dag_sampler;
    rl::ReinforceTrainer trainer(agent, tcfg);
    Phases p;
    for (int i = 0; i < titers; ++i) {
      const auto s = trainer.iterate();
      p.rollout += s.rollout_seconds;
      p.replay += s.replay_seconds;
      p.step += s.step_seconds;
      p.actions += s.total_actions;
    }
    p.total = p.rollout + p.replay + p.step;
    return p;
  };
  const Phases ref = time_training(false);
  const Phases bat = time_training(true);
  const double replay_speedup = ref.replay / std::max(bat.replay, 1e-12);
  const double iters_per_sec_ref =
      static_cast<double>(titers) / std::max(ref.total, 1e-12);
  const double iters_per_sec_bat =
      static_cast<double>(titers) / std::max(bat.total, 1e-12);

  Table t_thr({"replay path", "rollout [s]", "replay [s]", "step [s]",
               "iters/sec"});
  t_thr.add_row({"per-action (reference)", fmt(ref.rollout, 2),
                 fmt(ref.replay, 2), fmt(ref.step, 3),
                 fmt(iters_per_sec_ref, 2)});
  t_thr.add_row({"episode-batched", fmt(bat.rollout, 2), fmt(bat.replay, 2),
                 fmt(bat.step, 3), fmt(iters_per_sec_bat, 2)});
  std::cout << "\n(c) training throughput, " << titers << " iterations x 4 "
            << "episodes on " << kDagJobs << "x" << kDagNodes
            << "-node DAGs (" << ref.actions << " actions replayed)\n"
            << t_thr.to_string()
            << "replay-phase speedup: " << fmt(replay_speedup, 2) << "x\n";

  // ---------------- (d) parallel rollout scaling ----------------------------
  // TrainConfig::rollout_threads sweep on the same workload: 8 episodes per
  // iteration over 1/2/8 workers. The determinism contract
  // (docs/training.md) says only wall-clock may change, so alongside the
  // speedups we emit rollout_bitexact = 1.0 iff every run's final parameters
  // are byte-equal to the sequential reference — check_bench.py floors it at
  // 1.0, making any CI drift a hard failure. Speedups are meaningful only on
  // multi-core runners; a 1-core box legitimately reports ~1.0x.
  struct Sweep {
    double rollout = 0.0, cpu = 0.0;
    std::vector<std::vector<double>> params;
  };
  auto time_threads = [&](int threads) {
    core::AgentConfig ac;
    ac.seed = 37;
    core::DecimaAgent agent(ac);
    rl::TrainConfig tcfg;
    tcfg.episodes_per_iter = 8;
    tcfg.rollout_threads = threads;
    tcfg.curriculum = false;
    tcfg.differential_reward = false;
    tcfg.env = tenv;
    tcfg.sampler = dag_sampler;
    rl::ReinforceTrainer trainer(agent, tcfg);
    Sweep s;
    for (int i = 0; i < titers; ++i) {
      const auto st = trainer.iterate();
      s.rollout += st.rollout_seconds;
      s.cpu += st.rollout_cpu_seconds;
    }
    for (const nn::Param* p : agent.params().params()) {
      s.params.push_back(p->value.raw());
    }
    return s;
  };
  const Sweep t1 = time_threads(1);
  const Sweep t2 = time_threads(2);
  const Sweep t8 = time_threads(8);
  const double t2_speedup = t1.rollout / std::max(t2.rollout, 1e-12);
  const double t8_speedup = t1.rollout / std::max(t8.rollout, 1e-12);
  const bool bitexact = t2.params == t1.params && t8.params == t1.params;

  Table t_par({"rollout_threads", "rollout [s]", "busy [s]", "speedup",
               "bit-exact"});
  t_par.add_row({"1 (reference)", fmt(t1.rollout, 2), fmt(t1.cpu, 2), "1.00",
                 "-"});
  t_par.add_row({"2", fmt(t2.rollout, 2), fmt(t2.cpu, 2), fmt(t2_speedup, 2),
                 t2.params == t1.params ? "yes" : "NO"});
  t_par.add_row({"8", fmt(t8.rollout, 2), fmt(t8.cpu, 2), fmt(t8_speedup, 2),
                 t8.params == t1.params ? "yes" : "NO"});
  std::cout << "\n(d) parallel rollout scaling, " << titers
            << " iterations x 8 episodes\n"
            << t_par.to_string()
            << "parameters byte-equal across the sweep: "
            << (bitexact ? "yes" : "NO — determinism contract violated")
            << "\n";

  bench::BenchJson json("train");
  json.set("bench", "fig15_training");
  json.set("dag_nodes", static_cast<double>(kDagNodes));
  json.set("dag_jobs", static_cast<double>(kDagJobs));
  json.set("iterations", static_cast<double>(titers));
  json.set("episodes_per_iter", 4.0);
  json.set("actions_replayed", static_cast<double>(ref.actions));
  json.set("reference_rollout_s", ref.rollout);
  json.set("reference_replay_s", ref.replay);
  json.set("reference_step_s", ref.step);
  json.set("reference_iters_per_sec", iters_per_sec_ref);
  json.set("batched_rollout_s", bat.rollout);
  json.set("batched_replay_s", bat.replay);
  json.set("batched_step_s", bat.step);
  json.set("batched_iters_per_sec", iters_per_sec_bat);
  json.set("replay_speedup", replay_speedup);
  json.set("iters_per_sec_speedup", iters_per_sec_bat / std::max(iters_per_sec_ref, 1e-12));
  json.set("rollout_t1_s", t1.rollout);
  json.set("rollout_t2_s", t2.rollout);
  json.set("rollout_t8_s", t8.rollout);
  json.set("rollout_t2_speedup", t2_speedup);
  json.set("rollout_t8_speedup", t8_speedup);
  json.set("rollout_bitexact", bitexact ? 1.0 : 0.0);
  const std::string path = json.write();
  if (!path.empty()) std::cout << "\n[bench] wrote " << path << "\n";
  return 0;
}
