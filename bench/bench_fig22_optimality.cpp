// Figure 22 (Appendix H): how close is Decima to optimal?
//
// In a simplified environment (no waves, no startup delay, no inflation —
// stage durations scale perfectly with executors), an exhaustive search over
// all job orderings yields a near-optimal schedule. The paper compares
// Decima against that search, SJF-CP, and the tuned weighted-fair heuristic
// on batches of 10 jobs; Decima matches or slightly beats the search.
// We run the same protocol with a (configurable) smaller batch so the n!
// search stays tractable in a bench.
#include "bench_common.h"

#include <algorithm>

using namespace decima;

namespace {

sim::EnvConfig simplified_env(int execs) {
  sim::EnvConfig c;
  c.num_executors = execs;
  c.enable_moving_delay = false;
  c.enable_wave_effect = false;
  c.enable_inflation = false;
  return c;
}

// Follows a fixed job ordering: all executors to the earliest unfinished job
// in the order, critical-path stages first.
struct JobOrderScheduler : sim::Scheduler {
  explicit JobOrderScheduler(std::vector<int> order) : order_(std::move(order)) {}
  sim::Action schedule(const sim::ClusterEnv& env) override {
    for (int j : order_) {
      const auto node = sched::critical_path_stage(env, j);
      if (node.valid()) {
        sim::Action a;
        a.node = node;
        a.limit = env.total_executors();
        return a;
      }
    }
    return sim::Action::none();
  }
  std::string name() const override { return "job-order"; }
  std::vector<int> order_;
};

double run_order(const sim::EnvConfig& env,
                 const std::vector<workload::ArrivingJob>& workload,
                 std::vector<int> order) {
  JobOrderScheduler sched(std::move(order));
  return metrics::run_episode(env, workload, sched).avg_jct;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 22 (Appendix H)",
      "Simplified environment (perfectly elastic stages): Decima vs an\n"
      "exhaustive search over all job orderings, SJF-CP, and tuned\n"
      "weighted fair. Paper: Decima matches the exhaustive search (and\n"
      "beats it slightly by adapting stage order at runtime).");

  const int num_jobs = env_int("DECIMA_FIG22_JOBS", 6);  // 6! = 720 orderings
  const sim::EnvConfig env = simplified_env(10);
  const auto sampler = bench::tpch_batch_sampler(num_jobs);

  rl::TrainConfig train;
  train.episodes_per_iter = 8;
  train.rollout_threads = 8;
  train.curriculum = false;
  train.differential_reward = false;
  train.env = env;
  train.sampler = sampler;
  auto decima = bench::trained_agent(bench::agent_with_seed(41), train,
                                     "fig22_simplified",
                                     bench::train_iters(80));

  sched::SjfCpScheduler sjf;
  sched::WeightedFairScheduler opt(-1.0);

  const int experiments = std::max(3, bench::bench_runs(6) / 2);
  RunningStats s_search, s_decima, s_sjf, s_fair;
  for (int e = 0; e < experiments; ++e) {
    const auto workload = sampler(81000 + static_cast<std::uint64_t>(e));

    // Exhaustive search over all num_jobs! orderings.
    std::vector<int> order(static_cast<std::size_t>(num_jobs));
    for (int i = 0; i < num_jobs; ++i) order[static_cast<std::size_t>(i)] = i;
    double best = 1e18;
    std::sort(order.begin(), order.end());
    do {
      best = std::min(best, run_order(env, workload, order));
    } while (std::next_permutation(order.begin(), order.end()));

    s_search.add(best);
    s_decima.add(metrics::run_episode(env, workload, *decima).avg_jct);
    s_sjf.add(metrics::run_episode(env, workload, sjf).avg_jct);
    s_fair.add(metrics::run_episode(env, workload, opt).avg_jct);
  }

  Table t({"scheduler", "mean avg JCT [s]", "vs exhaustive search"});
  auto rel = [&](double x) {
    return fmt_pct((x - s_search.mean()) / s_search.mean());
  };
  t.add_row({"Exhaustive job-order search", fmt(s_search.mean(), 1), "-"});
  t.add_row({"Decima", fmt(s_decima.mean(), 1), rel(s_decima.mean())});
  t.add_row({"SJF-CP", fmt(s_sjf.mean(), 1), rel(s_sjf.mean())});
  t.add_row({"Opt. weighted fair", fmt(s_fair.mean(), 1), rel(s_fair.mean())});
  std::cout << t.to_string();
  std::cout << "\n(" << num_jobs << " jobs => "
            << [&] {
                 long long f = 1;
                 for (int i = 2; i <= num_jobs; ++i) f *= i;
                 return f;
               }()
            << " orderings per experiment, " << experiments
            << " experiments; set DECIMA_FIG22_JOBS to scale)\n"
            << "paper shape: search < SJF-CP < weighted fair in the\n"
               "simplified setting; Decima within ~±10% of the search.\n";
  return 0;
}
