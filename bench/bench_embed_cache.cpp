// Incremental embedding cache (docs/incremental_embedding.md): per-event
// embedding latency, cached vs full recompute, by DAG size and dirty
// fraction, plus the per-event agent profile over a real episode. The cached
// path is numerically identical to the full pass (test_embedding_cache), so
// latency is the only thing it changes. Writes BENCH_embed_cache.json; the
// *_speedup keys are gated by scripts/check_bench.py in CI.
#include "bench_common.h"

#include <chrono>

#include "gnn/embedding_cache.h"

using namespace decima;

namespace {

std::vector<gnn::JobGraph> make_graphs(int count, int nodes,
                                       std::uint64_t seed) {
  std::vector<gnn::JobGraph> graphs;
  for (int i = 0; i < count; ++i) {
    gnn::JobGraph g = gnn::random_job_graph(
        seed + static_cast<std::uint64_t>(i), nodes);
    g.env_job = i;  // distinct cache keys
    graphs.push_back(std::move(g));
  }
  return graphs;
}

// Mutates `per_graph` random feature rows of every graph (column 0, the
// task-count feature the simulator dirties most often).
void mutate(std::vector<gnn::JobGraph>& graphs, int per_graph, Rng& rng) {
  for (auto& g : graphs) {
    for (int k = 0; k < per_graph; ++k) {
      const std::size_t v = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(g.features.rows()) - 1));
      g.features(v, 0) = rng.uniform(-1, 1);
    }
  }
}

// Median embedding latency over `reps` events: each event dirties
// `per_graph` rows per graph (untimed), then embeds (timed).
bench::LatencyStats time_events(const gnn::GraphEmbedding& gnn, int reps,
                                int count, int nodes, int per_graph,
                                bool cached, std::uint64_t seed) {
  std::vector<gnn::JobGraph> graphs = make_graphs(count, nodes, seed);
  gnn::EmbeddingCache cache;
  {
    nn::Tape warm(false);  // warm: both variants start from a steady state
    if (cached) gnn.embed_cached(warm, graphs, cache);
  }
  Rng mut(seed ^ 0xabcdefULL);
  std::vector<double> samples_us;
  samples_us.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    mutate(graphs, per_graph, mut);
    const auto t0 = std::chrono::steady_clock::now();
    nn::Tape tape(false);
    if (cached) {
      gnn.embed_cached(tape, graphs, cache);
    } else {
      gnn.embed(tape, graphs);
    }
    const auto t1 = std::chrono::steady_clock::now();
    samples_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  return bench::latency_from_samples(std::move(samples_us));
}

}  // namespace

int main() {
  bench::print_header(
      "embedding cache",
      "incremental embedding cache: per-event latency, cached vs full "
      "recompute, by DAG size and dirty fraction (ROADMAP: embedding reuse "
      "across consecutive scheduling events)");

  const int reps = env_int("DECIMA_BENCH_REPS", 200);
  constexpr int kGraphs = 5;

  bench::BenchJson json("embed_cache");
  json.set("bench", "embed_cache");
  json.set("graphs", static_cast<double>(kGraphs));
  json.set("reps", static_cast<double>(reps));

  Rng rng(7);
  const gnn::GraphEmbedding gnn(gnn::GnnConfig{}, rng);

  // (a) Synthetic sweep: x5 DAGs per event, one column-0 mutation batch per
  // event. Dirty percent counts feature-dirty rows; their ancestors in
  // message flow are recomputed too, so the effective recompute set is
  // larger — exactly what the cache has to beat the full pass despite.
  Table ta({"DAG nodes", "dirty rows", "full (us)", "cached (us)", "speedup"});
  for (int nodes : {20, 50, 100}) {
    for (int pct : {2, 10, 50, 100}) {
      const int per_graph =
          std::max(1, static_cast<int>(nodes * pct / 100.0));
      const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(nodes);
      const auto full = time_events(gnn, reps, kGraphs, nodes, per_graph,
                                    /*cached=*/false, seed);
      const auto cached = time_events(gnn, reps, kGraphs, nodes, per_graph,
                                      /*cached=*/true, seed);
      const double speedup = full.median_us / cached.median_us;
      ta.add_row({fmt_int(nodes), fmt_int(per_graph) + " (" + fmt_int(pct) + "%)",
                  fmt(full.median_us, 1), fmt(cached.median_us, 1),
                  fmt(speedup, 2)});
      const std::string key =
          "n" + std::to_string(nodes) + "_d" + std::to_string(pct);
      json.set(key + "_full_median_us", full.median_us);
      json.set(key + "_cached_median_us", cached.median_us);
      json.set(key + "_speedup", speedup);
    }
  }
  std::cout << "(a) embedding latency per scheduling event (5 DAGs/event,\n"
               "    column-0 feature mutations between events)\n"
            << ta.to_string();

  // (b) Full-agent per-event profile over a real episode (the fig12
  // workload): greedy schedule() with the cache on vs off. Here the
  // simulator decides what is dirty — executor churn touches every job's
  // shared feature columns, so this measures the cache under realistic,
  // mostly-dirty conditions (the tape-free dirty-row evaluation keeps it
  // ahead even then).
  constexpr int kNodes = 50;
  sim::EnvConfig env_config;
  env_config.num_executors = 25;
  const std::vector<sim::JobSpec> jobs =
      bench::random_dag_jobs(kGraphs, kNodes, 100);
  auto timed_episode = [&](bool cache_on) {
    core::AgentConfig config;
    config.embed_cache = cache_on;
    core::DecimaAgent agent(config);
    sim::ClusterEnv cluster(env_config);
    workload::load(cluster, workload::batched(jobs));
    bench::TimedScheduler timed(agent);
    cluster.run(timed);
    return std::make_pair(timed.stats(), agent.embed_cache_stats());
  };
  const auto [event_full, stats_off] = timed_episode(false);
  const auto [event_cached, stats_on] = timed_episode(true);
  const double event_speedup = event_full.median_us / event_cached.median_us;
  const double recomputed_frac =
      stats_on.nodes_total > 0
          ? static_cast<double>(stats_on.nodes_recomputed) /
                static_cast<double>(stats_on.nodes_total)
          : 1.0;

  Table tb({"agent path", "median (us)", "p95 (us)", "speedup"});
  tb.add_row({"full recompute", fmt(event_full.median_us, 1),
              fmt(event_full.p95_us, 1), "1.00"});
  tb.add_row({"embed cache", fmt(event_cached.median_us, 1),
              fmt(event_cached.p95_us, 1), fmt(event_speedup, 2)});
  std::cout << "\n(b) per-event agent latency, greedy episode on 5x" << kNodes
            << "-node DAGs\n"
            << tb.to_string() << "    nodes re-embedded: "
            << fmt_pct(recomputed_frac)
            << " of presented (rest served from cache)\n";

  json.set("agent_dag_nodes", static_cast<double>(kNodes));
  json.set("agent_full_median_us", event_full.median_us);
  json.set("agent_cached_median_us", event_cached.median_us);
  json.set("agent_event_speedup", event_speedup);
  json.set("agent_nodes_recomputed_frac", recomputed_frac);
  const std::string path = json.write();
  if (!path.empty()) std::cout << "\nwrote " << path << "\n";
  return 0;
}
