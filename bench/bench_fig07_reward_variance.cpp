// Figure 7 (§5.3): how different job arrival sequences after the same state
// lead to vastly different reward feedback — the motivation for the
// input-dependent baseline. We fix a common prefix, then continue with two
// different Poisson suffixes (10s mean interarrival, random TPC-H queries)
// and print the penalty (negative reward) time series for both.
#include "bench_common.h"

using namespace decima;

namespace {

// Runs the prefix + one of two suffixes and samples the job-count penalty
// over time under a fair scheduler.
std::vector<double> penalty_series(std::uint64_t suffix_seed, double horizon,
                                   double step) {
  sim::EnvConfig env;
  env.num_executors = 20;
  sim::ClusterEnv cluster(env);

  // Common prefix: 10 jobs, one per 20s.
  Rng prefix(7);
  for (int i = 0; i < 10; ++i) {
    cluster.add_job(workload::sample_tpch_job(prefix),
                    static_cast<double>(i) * 20.0);
  }
  // Divergent suffix after t=200: Poisson(10s) arrivals.
  Rng suffix(suffix_seed);
  double t = 200.0;
  for (int i = 0; i < 40; ++i) {
    t += suffix.exponential(10.0);
    cluster.add_job(workload::sample_tpch_job(suffix), t);
  }

  sched::WeightedFairScheduler fair(0.0);
  cluster.run(fair, horizon);

  // Penalty rate = number of jobs in system (the integrand of r_k).
  std::vector<double> series;
  const auto& jobs = cluster.jobs();
  for (double q = 0.0; q <= horizon; q += step) {
    double count = 0;
    for (const auto& j : jobs) {
      const double fin = j.done() ? j.finish : cluster.now();
      if (j.arrived && q >= j.arrival && q < fin) ++count;
    }
    series.push_back(count);
  }
  return series;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 7 (§5.3)",
      "Same state at t=200s, two different Poisson arrival suffixes (mean\n"
      "IAT 10s): the penalty (jobs in system) diverges dramatically even\n"
      "though the policy's actions are identical up to t.");

  const double horizon = 700.0, step = 10.0;
  const auto seq1 = penalty_series(101, horizon, step);
  const auto seq2 = penalty_series(202, horizon, step);

  Table t({"time [s]", "penalty seq 1", "penalty seq 2"});
  for (std::size_t i = 0; i < seq1.size(); i += 5) {
    t.add_row({fmt(static_cast<double>(i) * step, 0), fmt(seq1[i], 0),
               fmt(seq2[i], 0)});
  }
  std::cout << t.to_string();
  std::cout << "\nseq1: " << ascii_sparkline(seq1) << "\n"
            << "seq2: " << ascii_sparkline(seq2) << "\n";

  double max_gap = 0.0;
  for (std::size_t i = 0; i < seq1.size(); ++i) {
    max_gap = std::max(max_gap, std::abs(seq1[i] - seq2[i]));
  }
  std::cout << "\nmax penalty divergence after t: " << fmt(max_gap, 0)
            << " jobs — reward variance unrelated to the policy's action,\n"
               "which the input-dependent baseline (§5.3) removes.\n";
  return 0;
}
