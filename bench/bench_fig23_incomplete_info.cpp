// Figure 23 (Appendix J): Decima with incomplete information. A policy
// trained *without* the task-duration feature (unseen jobs lack profiles)
// still outperforms the best heuristic by exploiting the DAG structure and
// the remaining features; it is worse than the fully-informed policy.
#include "bench_common.h"

using namespace decima;

int main() {
  bench::print_header(
      "Figure 23 (Appendix J)",
      "Continuous TPC-H arrivals: Decima trained without task-duration\n"
      "estimates vs fully-informed Decima vs the tuned heuristic.\n"
      "Paper shape: no-duration Decima sits between the two.");

  sim::EnvConfig env;
  env.num_executors = 10;
  const auto sampler = bench::tpch_continuous_sampler(18, 55.0);

  rl::TrainConfig base;
  base.episodes_per_iter = 8;
  base.rollout_threads = 8;
  base.curriculum = true;
  base.tau_mean_init = 400.0;
  base.tau_mean_max = 2000.0;
  base.tau_mean_growth = 40.0;
  base.differential_reward = true;
  base.env = env;
  base.sampler = sampler;
  const int iters = bench::train_iters(40);

  auto full = bench::trained_agent(bench::agent_with_seed(47), base,
                                   "fig23_full", iters);
  core::AgentConfig blind_cfg;
  blind_cfg.seed = 47;
  blind_cfg.features.use_task_duration = false;
  auto blind = bench::trained_agent(blind_cfg, base, "fig23_noduration",
                                    iters);
  sched::WeightedFairScheduler opt(-1.0);

  const int runs = bench::bench_runs(8);
  Table t({"scheduler", "mean avg JCT [s]"});
  const double jct_opt = mean_of(bench::eval_runs(opt, env, sampler, runs));
  const double jct_full = mean_of(bench::eval_runs(*full, env, sampler, runs));
  const double jct_blind =
      mean_of(bench::eval_runs(*blind, env, sampler, runs));
  t.add_row({"Opt. weighted fair (needs profiles)", fmt(jct_opt, 1)});
  t.add_row({"Decima, full information", fmt(jct_full, 1)});
  t.add_row({"Decima, no task durations", fmt(jct_blind, 1)});
  std::cout << t.to_string();
  std::cout << "\npaper shape: full-info <= no-duration <= heuristic; the\n"
               "no-duration policy still exploits graph structure and task\n"
               "counts.\n";
  return 0;
}
