// Figure 9 (§7.2): the headline Spark-cluster comparison.
//  (a) Batched arrivals: CDF of average JCT over many experiments for all
//      seven baselines + Decima (paper: Decima 21% better than the closest
//      heuristic, opt. weighted fair).
//  (b) Continuous arrivals: Poisson job stream at high load; Decima vs the
//      only heuristic that keeps up (paper: 29% lower avg JCT).
#include "bench_common.h"

using namespace decima;

int main() {
  bench::print_header(
      "Figure 9 (§7.2)",
      "(a) batched TPC-H arrivals: avg JCT distribution across experiments;\n"
      "(b) continuous Poisson arrivals at high load: Decima vs tuned\n"
      "weighted fair. Scaled-down cluster; shape, not absolute numbers.");

  // ---------------- (a) batched arrivals --------------------------------
  sim::EnvConfig env;
  env.num_executors = 25;
  const int batch_jobs = 12;
  const auto sampler = bench::tpch_batch_sampler(batch_jobs);

  // Tune weighted fair's alpha as the paper does (coarse grid for speed).
  std::vector<std::vector<workload::ArrivingJob>> tune_set;
  for (int i = 0; i < 3; ++i) tune_set.push_back(sampler(777 + static_cast<std::uint64_t>(i)));
  const auto tuned =
      sched::tune_weighted_fair_alpha(env, tune_set, sched::alpha_grid(0.5));
  std::cout << "[tune] opt weighted fair alpha = " << fmt(tuned.alpha, 1)
            << " (paper: ~-1)\n";

  rl::TrainConfig train;
  train.episodes_per_iter = 8;
  train.rollout_threads = 8;
  train.curriculum = false;
  train.differential_reward = false;
  train.env = env;
  train.sampler = sampler;
  auto decima = bench::trained_agent(bench::agent_with_seed(5), train,
                                     "fig09a_batch", bench::train_iters(80));

  sched::FifoScheduler fifo;
  sched::SjfCpScheduler sjf;
  sched::WeightedFairScheduler fair(0.0);
  sched::WeightedFairScheduler naive(1.0);
  sched::WeightedFairScheduler opt(tuned.alpha);
  sched::TetrisScheduler tetris;
  sched::GrapheneScheduler graphene;
  std::vector<sim::Scheduler*> scheds = {&fifo,  &sjf,     &fair,
                                         &naive, &opt,     &tetris,
                                         &graphene, decima.get()};

  const int runs = bench::bench_runs(20);
  std::cout << "\n--- Fig. 9a: batched arrivals, " << batch_jobs
            << " jobs x " << runs << " experiments ---\n";
  Table ta({"scheduler", "mean avg JCT [s]", "p25 [s]", "p75 [s]"});
  std::vector<std::pair<std::string, double>> summary;
  for (sim::Scheduler* s : scheds) {
    auto jcts = bench::eval_runs(*s, env, sampler, runs);
    summary.emplace_back(s->name(), mean_of(jcts));
    ta.add_row({s->name(), fmt(mean_of(jcts), 1), fmt(percentile(jcts, 25), 1),
                fmt(percentile(jcts, 75), 1)});
  }
  std::cout << ta.to_string();
  double best_heuristic = 1e18;
  for (std::size_t i = 0; i + 1 < summary.size(); ++i) {
    best_heuristic = std::min(best_heuristic, summary[i].second);
  }
  std::cout << "\nDecima vs best heuristic: "
            << fmt_pct((best_heuristic - summary.back().second) /
                       best_heuristic)
            << " improvement (paper: 21% vs opt. weighted fair)\n";

  // ---------------- (b) continuous arrivals --------------------------------
  std::cout << "\n--- Fig. 9b: continuous arrivals (high load) ---\n";
  sim::EnvConfig cenv;
  cenv.num_executors = 15;
  const auto csampler = bench::tpch_continuous_sampler(/*num_jobs=*/20,
                                                       /*mean_iat=*/40.0);
  rl::TrainConfig ctrain;
  ctrain.episodes_per_iter = 8;
  ctrain.rollout_threads = 8;
  ctrain.curriculum = true;
  ctrain.tau_mean_init = 400.0;
  ctrain.tau_mean_max = 2000.0;
  ctrain.tau_mean_growth = 40.0;
  ctrain.differential_reward = true;
  ctrain.env = cenv;
  ctrain.sampler = csampler;
  auto cdecima = bench::trained_agent(bench::agent_with_seed(7), ctrain,
                                      "fig09b_continuous",
                                      bench::train_iters(40));

  const auto ctuned = sched::tune_weighted_fair_alpha(
      cenv, {csampler(881), csampler(882)}, sched::alpha_grid(0.5));
  sched::WeightedFairScheduler copt(ctuned.alpha);

  const int cruns = std::max(4, runs / 4);
  Table tb({"scheduler", "mean avg JCT [s]"});
  const auto jct_opt = bench::eval_runs(copt, cenv, csampler, cruns);
  const auto jct_dec = bench::eval_runs(*cdecima, cenv, csampler, cruns);
  tb.add_row({"Opt. weighted fair", fmt(mean_of(jct_opt), 1)});
  tb.add_row({"Decima", fmt(mean_of(jct_dec), 1)});
  std::cout << tb.to_string();
  std::cout << "\nDecima vs opt. weighted fair: "
            << fmt_pct((mean_of(jct_opt) - mean_of(jct_dec)) /
                       mean_of(jct_opt))
            << " (paper: 29% lower avg JCT)\n";
  return 0;
}
