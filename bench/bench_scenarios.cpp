// Robustness scenario suite (docs/robustness.md): one trained Decima policy
// against the heuristic baselines across a stress matrix — clean, executor
// failures, stragglers, heterogeneous executor speeds, flash crowd, diurnal
// load with micro-bursts — plus a serving-plane overload phase that drives
// the PolicyServer through its graceful-degradation ladder (bounded queue,
// deadlines, SJF-CP fallback). Per-scenario average JCTs and the degradation
// counters go to BENCH_scenarios.json; the clean-scenario policy-vs-worst-
// heuristic ratio and the overload indicators are gated in CI
// (scripts/check_bench.py). DECIMA_SCENARIO_SEED re-seeds the fault plans
// and stress workloads without recompiling.
#include <atomic>
#include <memory>
#include <thread>

#include "bench_common.h"
#include "serve/policy_server.h"
#include "sim/faults.h"
#include "workload/arrivals.h"

using namespace decima;

namespace {

struct Scenario {
  std::string name;
  sim::EnvConfig env;
  rl::WorkloadSampler sampler;
};

// The overload phase's session workload: two short chain jobs, as in the
// serving stress tests — the point is queue pressure, not JCT quality.
sim::JobSpec chain_job(const std::string& name, int tasks, double dur) {
  sim::JobBuilder b(name);
  const int root = b.stage(tasks, dur);
  b.stage(tasks, dur, {root});
  return b.build();
}

std::vector<workload::ArrivingJob> overload_session_jobs(std::uint64_t v) {
  const int tasks = 1 + static_cast<int>(v % 3);
  return workload::batched({chain_job("s", tasks, 1.0),
                            chain_job("t", tasks + 1, 0.5)});
}

}  // namespace

int main() {
  bench::print_header(
      "Robustness scenario suite (docs/robustness.md)",
      "Decima vs heuristics across fault scenarios (failures, stragglers,\n"
      "heterogeneity, flash crowd, diurnal bursts) plus a PolicyServer\n"
      "overload phase exercising graceful degradation\n"
      "(writes BENCH_scenarios.json; DECIMA_SCENARIO_SEED re-seeds).");

  const std::uint64_t seed = bench::scenario_seed();

  // --- simulator scenarios ------------------------------------------------
  sim::EnvConfig base;
  base.num_executors = 25;
  const int batch_jobs = 12;
  const auto clean_sampler = bench::tpch_batch_sampler(batch_jobs);

  rl::TrainConfig train;
  train.episodes_per_iter = 8;
  train.rollout_threads = 8;
  train.curriculum = false;
  train.differential_reward = false;
  train.env = base;
  train.sampler = clean_sampler;
  auto decima = bench::trained_agent(bench::agent_with_seed(5), train,
                                     "scenarios_batch", bench::train_iters(60));

  // Size the failure window to the workload's actual horizon so outages land
  // inside the episode at any DECIMA_* budget.
  double horizon;
  {
    sched::FifoScheduler probe;
    std::vector<std::vector<workload::ArrivingJob>> w = {clean_sampler(seed)};
    horizon = rl::evaluate_avg_jct(probe, base, w);
  }

  std::vector<Scenario> scenarios;
  scenarios.push_back({"clean", base, clean_sampler});
  {
    sim::EnvConfig env = base;
    Rng frng(seed);
    env.faults.failures = sim::random_failures(
        frng, env.num_executors, /*count=*/6, /*window=*/horizon,
        /*mean_downtime=*/horizon / 3.0);
    env.faults.seed = seed + 1;
    scenarios.push_back({"executor_failures", env, clean_sampler});
  }
  {
    sim::EnvConfig env = base;
    env.faults.stragglers = {/*prob=*/0.1, /*factor=*/8.0};
    env.faults.seed = seed + 2;
    scenarios.push_back({"stragglers", env, clean_sampler});
  }
  {
    sim::EnvConfig env = base;
    Rng frng(seed + 3);
    env.faults.executor_speeds = sim::heterogeneous_speeds(
        frng, env.num_executors, /*slow_fraction=*/0.3, /*slow_factor=*/2.0);
    scenarios.push_back({"hetero_executors", env, clean_sampler});
  }
  {
    rl::WorkloadSampler flash = [](std::uint64_t s) {
      Rng rng(s);
      auto specs = workload::sample_tpch_batch(rng, 14);
      Rng arr(rng.fork());
      workload::FlashCrowdConfig fc;
      fc.base_iat = 30.0;
      fc.burst_at = 150.0;
      fc.burst_fraction = 0.5;
      fc.burst_iat = 1.0;
      return workload::flash_crowd(std::move(specs), arr, fc);
    };
    scenarios.push_back({"flash_crowd", base, flash});
  }
  {
    rl::WorkloadSampler diurnal = [](std::uint64_t s) {
      Rng rng(s);
      auto specs = workload::sample_tpch_batch(rng, 14);
      Rng arr(rng.fork());
      workload::DiurnalConfig dc;
      dc.mean_iat = 20.0;
      dc.period = 600.0;
      dc.burstiness = 0.8;
      dc.burst_prob = 0.1;
      dc.burst_size = 4;
      dc.burst_iat = 0.5;
      return workload::diurnal_arrivals(std::move(specs), arr, dc);
    };
    scenarios.push_back({"diurnal_burst", base, diurnal});
  }

  sched::FifoScheduler fifo;
  sched::SjfCpScheduler sjf;
  sched::WeightedFairScheduler fair(0.0);
  const std::vector<std::pair<std::string, sim::Scheduler*>> heuristics = {
      {"fifo", &fifo}, {"sjf_cp", &sjf}, {"fair", &fair}};

  const int runs = bench::bench_runs(10);
  bench::BenchJson json("scenarios");
  json.set("bench", "scenarios");
  json.set("scenario_seed", static_cast<double>(seed));
  json.set("runs", static_cast<double>(runs));
  json.set("num_scenarios", static_cast<double>(scenarios.size()));

  std::cout << "scenario matrix: " << scenarios.size() << " scenarios x "
            << (heuristics.size() + 1) << " schedulers x " << runs
            << " runs (fault horizon ~" << fmt(horizon, 0) << "s)\n\n";
  Table t({"scenario", "decima [s]", "fifo [s]", "sjf_cp [s]", "fair [s]",
           "vs worst", "vs best"});
  for (const Scenario& sc : scenarios) {
    const double policy =
        mean_of(bench::eval_runs(*decima, sc.env, sc.sampler, runs));
    double worst = 0.0;
    double best = 1e18;
    std::vector<double> heur_means;
    for (const auto& [hname, sched] : heuristics) {
      const double m =
          mean_of(bench::eval_runs(*sched, sc.env, sc.sampler, runs));
      json.set(sc.name + "_" + hname + "_jct", m);
      heur_means.push_back(m);
      worst = std::max(worst, m);
      best = std::min(best, m);
    }
    json.set(sc.name + "_policy_jct", policy);
    json.set(sc.name + "_worst_heuristic_jct", worst);
    json.set(sc.name + "_best_heuristic_jct", best);
    const double vs_worst = worst / std::max(policy, 1e-12);
    const double vs_best = best / std::max(policy, 1e-12);
    if (sc.name == "clean") {
      // The one hard CI floor: on the clean scenario the trained policy must
      // not lose to the WORST heuristic. The fault scenarios report plain
      // ratios (no "speedup" in the key) — the policy is allowed to lose
      // there; the suite's job is to measure by how much.
      json.set("clean_policy_vs_worst_heuristic_speedup", vs_worst);
    } else {
      json.set(sc.name + "_policy_vs_worst_ratio", vs_worst);
    }
    json.set(sc.name + "_policy_vs_best_ratio", vs_best);
    t.add_row({sc.name, fmt(policy, 1), fmt(heur_means[0], 1),
               fmt(heur_means[1], 1), fmt(heur_means[2], 1), fmt(vs_worst, 2),
               fmt(vs_best, 2)});
  }
  std::cout << t.to_string();

  // --- serving-plane overload phase ---------------------------------------
  // Hundreds of short sessions against a tiny bounded queue and a tight
  // deadline: the server must answer every request (fallback, rejection or
  // timeout — never a hang or a loss), hold its queue bound, and actually
  // degrade. Mirrors tests/test_serve_stress.cpp's overload test; here the
  // counters are recorded as trajectory metrics.
  std::cout
      << "\n--- overload: 256 sessions, max_queue=4, deadline=200us ---\n";
  serve::ServeConfig scfg;
  scfg.max_queue = 4;
  scfg.deadline = 2e-4;
  scfg.heuristic_fallback = true;
  auto server = std::make_unique<serve::PolicyServer>(
      std::make_unique<const core::DecimaAgent>(bench::agent_with_seed(37)),
      scfg);
  sim::EnvConfig serve_env;
  serve_env.num_executors = 3;

  const int kThreads = 16;
  const int kSessionsPerThread = 16;
  std::uint64_t queries = 0, answered = 0, sessions_done = 0;
  // Saturation is statistical: repeat waves until degradation shows up (the
  // first wave nearly always saturates a 4-deep queue at 16 threads).
  int waves = 0;
  while (waves < 10) {
    std::vector<std::thread> threads;
    std::atomic<std::uint64_t> wave_queries{0}, wave_answered{0}, wave_done{0};
    for (int th = 0; th < kThreads; ++th) {
      threads.emplace_back([&, th] {
        for (int s = 0; s < kSessionsPerThread; ++s) {
          const auto r = serve::run_session(
              *server, serve_env,
              overload_session_jobs(static_cast<std::uint64_t>(th * 131 + s)));
          wave_queries += r.decisions;
          wave_answered += r.degradation.answered();
          if (r.completed == 2) ++wave_done;
        }
      });
    }
    for (auto& th : threads) th.join();
    queries += wave_queries.load();
    answered += wave_answered.load();
    sessions_done += wave_done.load();
    ++waves;
    if (server->stats().fallbacks > 0) break;
  }
  const auto stats = server->stats();
  server->stop();

  const std::uint64_t sessions =
      static_cast<std::uint64_t>(kThreads * kSessionsPerThread) *
      static_cast<std::uint64_t>(waves);
  std::cout << "sessions: " << sessions << " (completed " << sessions_done
            << "), queries: " << queries << ", answered: " << answered << "\n"
            << "degradation: " << stats.rejections << " rejected, "
            << stats.timeouts << " timed out, " << stats.fallbacks
            << " fallback answers; max queue depth " << stats.max_queue_depth
            << "\n";

  // Indicator metrics (1.0 = pass), gated at floor 1.0 by check_bench.py.
  json.set("overload_all_answered", queries == answered ? 1.0 : 0.0);
  json.set("overload_bounded_queue",
           stats.max_queue_depth <= static_cast<std::uint64_t>(scfg.max_queue)
               ? 1.0
               : 0.0);
  json.set("overload_fallback_nonzero", stats.fallbacks > 0 ? 1.0 : 0.0);
  json.set("overload_sessions", static_cast<double>(sessions));
  json.set("overload_sessions_completed", static_cast<double>(sessions_done));
  json.set("overload_queries", static_cast<double>(queries));
  json.set("overload_rejections", static_cast<double>(stats.rejections));
  json.set("overload_timeouts", static_cast<double>(stats.timeouts));
  json.set("overload_fallbacks", static_cast<double>(stats.fallbacks));
  json.set("overload_max_queue_depth",
           static_cast<double>(stats.max_queue_depth));

  const std::string path = json.write();
  if (!path.empty()) std::cout << "\n[bench] wrote " << path << "\n";
  return 0;
}
