#!/usr/bin/env python3
"""Repo-invariant lint: the rules the compilers cannot check.

Seven standing invariants, enforced at zero findings by the CI
``static-analysis`` job (and by ``ctest -R check_invariants`` locally):

1. **sync-primitives** — no raw ``std::mutex`` / ``std::condition_variable``
   / lock guards outside ``src/util/sync.h``. Every lock goes through the
   annotated ``util::Mutex`` wrappers so Clang's ``-Wthread-safety``
   analysis sees it (docs/concurrency.md).
2. **fast-path-pairing** — every ``*_batched`` / ``*_cached`` / ``*_batch``
   entry point declared in a ``src/**`` header has a reference-path sibling
   in the same header (``<base>()`` or ``<base>_reference()``) and is pinned
   by an equivalence test in ``tests/``. Fast paths must stay pure
   performance changes.
3. **fp-flags** — no ``-ffast-math`` family flag anywhere, and the
   ``-ffp-contract=off`` guard stays in CMakeLists.txt. FMA contraction
   would silently break the <=1e-10 batched/reference equivalence contract.
4. **bench-registry** — every bench that emits ``BENCH_<name>.json``
   (``bench::BenchJson``) is registered in ``scripts/check_bench.py``'s
   ``BENCH_REGISTRY`` floor table, and vice versa, so no perf emitter can
   bypass the CI ratio gate.
5. **thread-knob-pinning** — every parallelism config knob declared in a
   ``src/**`` header (``*_threads``, e.g. ``TrainConfig::rollout_threads``,
   and ``ServeConfig::shards``) is registered in ``FLAG_PINNED`` with an
   equivalence test that pins parallelism invariance: such knobs must
   change wall-clock only, never results (docs/training.md, "Parallel
   rollout & the determinism contract"; docs/serving.md, shards=1
   bit-identity).
6. **obs-docs-inventory** — every metric/span name constant in
   ``src/obs/metric_names.h`` appears (backticked) in the inventory of
   ``docs/observability.md``, and every ``serve.`` / ``train.`` / ``cache.``
   name the doc lists still has its constant. The observable surface and its
   documentation may never drift apart.
7. **spsc-ring-containment** — the lock-free ``util::SpscRing`` stays
   confined to its annotated header and the reviewed serving-plane files
   that uphold its single-producer/single-consumer contract
   (docs/serving.md, docs/concurrency.md). Any new use site must be
   reviewed and added to ``RING_ALLOWED_FILES`` here.

Exits 0 with a one-line summary when clean; prints every finding as
``file:line: [rule] message`` and exits 1 otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# --- rule 1: annotated sync primitives only ---------------------------------

SYNC_HOME = Path("src/util/sync.h")  # the one file allowed to name these
FORBIDDEN_SYNC = [
    "std::mutex",
    "std::timed_mutex",
    "std::recursive_mutex",
    "std::shared_mutex",
    "std::condition_variable",
    "std::lock_guard",
    "std::unique_lock",
    "std::scoped_lock",
    "std::shared_lock",
    "pthread_mutex",
    "pthread_cond",
]

# --- rule 2: fast paths need a reference sibling and an equivalence pin -----

FAST_SUFFIXES = ("_batched", "_cached", "_batch")

# Entry points whose reference sibling does not follow the <base>() /
# <base>_reference() naming convention.
IRREGULAR_SIBLINGS = {
    # The per-event replay loop is the reference for the one-tape batch.
    "score_replay_batch": "score_replay_events",
}

# Entry points pinned through a config flag rather than by name: the named
# test file must exist and contain the token (the flag that flips the fast
# path against its reference). Rule 5 routes parallelism config knobs
# (``*_threads`` and ``ServeConfig::shards``) through the same table —
# their "reference path" is the knob's sequential setting, and the
# registered test pins bit-identity across its values.
FLAG_PINNED = {
    "embed_nodes_batched": ("test_batched_equivalence.cpp", "GnnConfig::batched"),
    "score_replay_batch": ("test_batched_equivalence.cpp", "batched_replay"),
    "rollout_threads": ("test_parallel_rollout.cpp", "rollout_threads"),
    # shards=1 must stay bit-identical to the pre-shard single dispatcher;
    # the pin compares full concurrent-session results at shards 1 vs 4.
    "shards": ("test_serve.cpp", "Shards4MatchesShards1"),
}

# Suffix matches that are not fast paths at all (documented here, not
# silently skipped): sample_tpch_batch draws a batch of workload samples —
# there is no single-sample "reference algorithm" it must match.
EXEMPT_FAST_PATHS = {"sample_tpch_batch"}

# --- rule 3: float-contraction guard ----------------------------------------

FORBIDDEN_FP_FLAGS = [
    "-ffast-math",
    "-funsafe-math-optimizations",
    "-fassociative-math",
    "-freciprocal-math",
    "-ffp-contract=fast",
    "FP_CONTRACT ON",
]
REQUIRED_FP_GUARD = "-ffp-contract=off"

# --- rule 6: obs metric-name inventory <-> docs ------------------------------

OBS_NAMES_HEADER = Path("src/obs/metric_names.h")
OBS_DOC = Path("docs/observability.md")
# `inline constexpr char kFoo[] = "plane.name";` — \s* spans the line wrap
# clang-format introduces on long names.
OBS_NAME_RE = re.compile(
    r'inline\s+constexpr\s+char\s+k\w+\[\]\s*=\s*"([^"]+)"')
# A backticked `plane.name` token in the doc; restricted to the known plane
# prefixes so prose mentions of other dotted identifiers don't count.
# Multi-segment names (e.g. `serve.shard.decisions`) are one token.
OBS_DOC_NAME_RE = re.compile(
    r"`((?:serve|train|cache)\.[a-z0-9_]+(?:\.[a-z0-9_]+)*)`")

# --- rule 7: SpscRing stays behind its reviewed use sites ---------------------

# The SPSC ring is safe only under the exact producer/consumer roles the
# serving plane establishes (producers serialized by the shard mutex, the
# shard's dispatcher as sole consumer). Using it anywhere else needs review:
# add the file here after checking the roles, or the lint fails.
RING_TOKEN = "SpscRing"
RING_ALLOWED_FILES = {
    Path("src/util/ring.h"),
    Path("src/serve/policy_server.h"),
    Path("src/serve/policy_server.cpp"),
    Path("tests/test_util.cpp"),
}

# ----------------------------------------------------------------------------


def strip_comments_and_strings(text: str) -> str:
    """Blanks out //, /* */ comments and "..." literals, preserving line
    structure so finding line numbers stay meaningful."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def cxx_files():
    for top in ("src", "bench", "examples", "tests"):
        yield from sorted((REPO / top).rglob("*.h"))
        yield from sorted((REPO / top).rglob("*.cpp"))


def findings_sync_primitives():
    found = []
    for path in cxx_files():
        rel = path.relative_to(REPO)
        if rel == SYNC_HOME:
            continue
        code = strip_comments_and_strings(path.read_text())
        for lineno, line in enumerate(code.splitlines(), 1):
            for token in FORBIDDEN_SYNC:
                if token in line:
                    found.append(
                        (rel, lineno, "sync-primitives",
                         f"raw {token} — use util::Mutex / util::MutexLock / "
                         f"util::CondVar from src/util/sync.h so the locking "
                         f"discipline stays inside -Wthread-safety"))
    return found


def findings_fast_path_pairing():
    found = []
    decl_re = re.compile(
        r"\b([A-Za-z_]\w*?)(" + "|".join(FAST_SUFFIXES) + r")\s*\(")
    tests_dir = REPO / "tests"
    test_texts = {p.name: p.read_text() for p in sorted(tests_dir.glob("*.cpp"))}

    for path in sorted((REPO / "src").rglob("*.h")):
        rel = path.relative_to(REPO)
        code = strip_comments_and_strings(path.read_text())
        seen = set()
        for m in decl_re.finditer(code):
            base, suffix = m.group(1), m.group(2)
            name = base + suffix
            if name in seen or name in EXEMPT_FAST_PATHS:
                continue
            seen.add(name)
            lineno = code.count("\n", 0, m.start()) + 1

            sibling = IRREGULAR_SIBLINGS.get(name)
            candidates = [sibling] if sibling else [base, base + "_reference"]
            if not any(
                    re.search(rf"\b{re.escape(c)}\s*\(", code) for c in candidates):
                found.append(
                    (rel, lineno, "fast-path-pairing",
                     f"{name}() has no reference-path sibling "
                     f"({' / '.join(c + '()' for c in candidates)}) in this "
                     f"header — every fast path keeps its reference path"))

            if name in FLAG_PINNED:
                test_file, token = FLAG_PINNED[name]
                text = test_texts.get(test_file, "")
                if token not in text:
                    found.append(
                        (rel, lineno, "fast-path-pairing",
                         f"{name}() is registered as pinned by {test_file} "
                         f"via '{token}', but that token is missing there"))
            elif not any(name in text for text in test_texts.values()):
                found.append(
                    (rel, lineno, "fast-path-pairing",
                     f"{name}() appears in no tests/*.cpp — add it to the "
                     f"equivalence suite (or register a config-flag pin in "
                     f"scripts/check_invariants.py FLAG_PINNED)"))
    return found


def findings_fp_flags():
    found = []
    cmake = REPO / "CMakeLists.txt"
    targets = [cmake] + list(cxx_files())
    for path in targets:
        rel = path.relative_to(REPO)
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for flag in FORBIDDEN_FP_FLAGS:
                if flag in line:
                    found.append(
                        (rel, lineno, "fp-flags",
                         f"'{flag}' would let FMA contraction / reassociation "
                         f"break the <=1e-10 batched-vs-reference equivalence "
                         f"contract"))
    if REQUIRED_FP_GUARD not in cmake.read_text():
        found.append(
            (cmake.relative_to(REPO), 1, "fp-flags",
             f"CMakeLists.txt lost the {REQUIRED_FP_GUARD} guard next to "
             f"-march=native"))
    return found


def findings_bench_registry():
    found = []
    emitter_re = re.compile(r'BenchJson\s+\w+\s*\(\s*"([^"]+)"')
    emitters = {}  # json file name -> (source, line)
    for path in sorted((REPO / "bench").glob("*.cpp")):
        rel = path.relative_to(REPO)
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            m = emitter_re.search(line)
            if m:
                emitters[f"BENCH_{m.group(1)}.json"] = (rel, lineno)

    check_bench = REPO / "scripts" / "check_bench.py"
    registered = set(
        re.findall(r'"(BENCH_[A-Za-z0-9_]+\.json)"', check_bench.read_text()))

    for fname, (rel, lineno) in sorted(emitters.items()):
        if fname not in registered:
            found.append(
                (rel, lineno, "bench-registry",
                 f"{fname} is emitted here but not registered in "
                 f"scripts/check_bench.py BENCH_REGISTRY — its ratios would "
                 f"bypass the CI perf gate"))
    for fname in sorted(registered - set(emitters)):
        found.append(
            (check_bench.relative_to(REPO), 1, "bench-registry",
             f"{fname} is registered in BENCH_REGISTRY but no bench/*.cpp "
             f"emits it — stale entry"))
    return found


def findings_thread_knob_pinning():
    """Rule 5: every parallelism config knob in a src/** header —
    ``int <name>_threads = ...`` or ``int shards = ...`` — must be
    registered in FLAG_PINNED, and its registered test file must exist and
    mention the knob. Parallelism knobs may only change wall-clock; the
    registered test is what pins that."""
    found = []
    knob_re = re.compile(r"\bint\s+(\w*_threads|shards)\s*=")
    tests_dir = REPO / "tests"
    for path in sorted((REPO / "src").rglob("*.h")):
        rel = path.relative_to(REPO)
        code = strip_comments_and_strings(path.read_text())
        for m in knob_re.finditer(code):
            knob = m.group(1)
            lineno = code.count("\n", 0, m.start()) + 1
            if knob not in FLAG_PINNED:
                found.append(
                    (rel, lineno, "thread-knob-pinning",
                     f"parallelism knob '{knob}' has no FLAG_PINNED entry in "
                     f"scripts/check_invariants.py — register the equivalence "
                     f"test that pins results bit-identical across its values"))
                continue
            test_file, token = FLAG_PINNED[knob]
            test_path = tests_dir / test_file
            if not test_path.is_file() or token not in test_path.read_text():
                found.append(
                    (rel, lineno, "thread-knob-pinning",
                     f"'{knob}' is registered as pinned by {test_file} via "
                     f"'{token}', but that file/token is missing"))
    return found


def findings_obs_docs_inventory():
    """Rule 6: src/obs/metric_names.h and the docs/observability.md
    inventory enumerate the same set of names, checked in both directions."""
    found = []
    header = REPO / OBS_NAMES_HEADER
    doc = REPO / OBS_DOC
    header_text = header.read_text()
    constants = {}  # metric/span name -> declaration line
    for m in OBS_NAME_RE.finditer(header_text):
        constants.setdefault(m.group(1),
                             header_text.count("\n", 0, m.start()) + 1)
    if not doc.is_file():
        found.append(
            (OBS_NAMES_HEADER, 1, "obs-docs-inventory",
             f"{OBS_DOC} is missing — the metric-name inventory must be "
             f"documented"))
        return found
    documented = {}  # name -> first doc line mentioning it
    for lineno, line in enumerate(doc.read_text().splitlines(), 1):
        for m in OBS_DOC_NAME_RE.finditer(line):
            documented.setdefault(m.group(1), lineno)
    for name, lineno in sorted(constants.items()):
        if name not in documented:
            found.append(
                (OBS_NAMES_HEADER, lineno, "obs-docs-inventory",
                 f"metric/span name '{name}' has no backticked entry in "
                 f"{OBS_DOC} — add it to the inventory table"))
    for name, lineno in sorted(documented.items()):
        if name not in constants:
            found.append(
                (OBS_DOC, lineno, "obs-docs-inventory",
                 f"documented name '{name}' has no constant in "
                 f"{OBS_NAMES_HEADER} — stale inventory entry"))
    return found


def findings_spsc_ring_containment():
    """Rule 7: the ``SpscRing`` token appears only in RING_ALLOWED_FILES.
    The ring's safety rests on use-site discipline (who is the single
    producer, who the single consumer) that no annotation can check — so
    every use site is enumerated and reviewed here."""
    found = []
    for path in cxx_files():
        rel = path.relative_to(REPO)
        if rel in RING_ALLOWED_FILES:
            continue
        code = strip_comments_and_strings(path.read_text())
        for lineno, line in enumerate(code.splitlines(), 1):
            if RING_TOKEN in line:
                found.append(
                    (rel, lineno, "spsc-ring-containment",
                     f"util::{RING_TOKEN} used outside its reviewed files — "
                     f"the SPSC contract (producers serialized by a shard "
                     f"mutex, one consumer) must be re-reviewed; add this "
                     f"file to RING_ALLOWED_FILES in "
                     f"scripts/check_invariants.py after doing so"))
    for rel in sorted(RING_ALLOWED_FILES):
        if not (REPO / rel).is_file():
            found.append(
                (rel, 1, "spsc-ring-containment",
                 f"RING_ALLOWED_FILES lists {rel} but it does not exist — "
                 f"stale entry"))
    return found


def main() -> int:
    rules = [
        findings_sync_primitives,
        findings_fast_path_pairing,
        findings_fp_flags,
        findings_bench_registry,
        findings_thread_knob_pinning,
        findings_obs_docs_inventory,
        findings_spsc_ring_containment,
    ]
    findings = []
    for rule in rules:
        findings.extend(rule())
    for rel, lineno, rule, msg in findings:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    if findings:
        print(f"\n{len(findings)} invariant finding(s)", file=sys.stderr)
        return 1
    n_files = sum(1 for _ in cxx_files())
    print(f"check_invariants: {len(rules)} rules over {n_files} files, "
          f"0 findings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
