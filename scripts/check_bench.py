#!/usr/bin/env python3
"""CI perf-regression gate over the BENCH_*.json emitters.

Every bench binary that emits BENCH_<name>.json reports within-run ratios of
a batched/cached path against its reference path as keys ending in
``speedup`` (e.g. ``gnn_speedup_median``, ``replay_speedup``,
``n50_d2_speedup``, ``s8_speedup``). Absolute latencies vary with runner
hardware, but these ratios compare two paths measured in the same process on
the same machine — if one drops below 1.0 the optimized path has regressed
behind its own reference, which is exactly the thing that must not land
silently.

Usage: check_bench.py [--dir build] [--min-ratio 0.9] [--strict-keys k ...]
                      [--allow-missing]

* every ``*speedup*`` key in every BENCH_*.json must be >= --min-ratio
  (default 0.9: ratio >= 1.0 with a small tolerance for runner noise);
* keys listed in BENCH_REGISTRY are gated at their registered floor even
  without ``speedup`` in the name (indicator metrics such as the overload
  invariants, where 1.0 = held), and must be present in their file;
* BENCH_REGISTRY below lists every known emitter with its per-key strict
  floors (the headline acceptance ratios); --strict-keys KEY=FLOOR overrides
  a floor from the command line;
* every registered file must be present (--allow-missing relaxes this for
  local partial runs) and every present BENCH file must be registered;
* a markdown table of all ratios goes to $GITHUB_STEP_SUMMARY when set;
* exits 1 on any regression, with a clear error (never a traceback) on
  missing or malformed BENCH files.
"""

import argparse
import json
import os
import sys
from pathlib import Path

# Registry of every BENCH_*.json emitter and the floors its headline ratios
# must meet (keys not listed fall back to --min-ratio). scripts/
# check_invariants.py cross-checks this table against bench/*.cpp in both
# directions: an emitter missing here bypasses the gate (lint error), an
# entry with no emitter is stale (lint error).
BENCH_REGISTRY = {
    "BENCH_embed_cache.json": {"n50_d2_speedup": 1.5},
    "BENCH_fig12.json": {},
    "BENCH_observability.json": {
        # Instrumentation-overhead gate (docs/observability.md): serving
        # throughput with metrics+tracing ON over OFF, interleaved
        # median-of-3. Ideal is 1.0 (recording is relaxed atomics behind one
        # flag load); the floor allows 3% for runner noise — below it, the
        # observability layer has grown a real hot-path tax.
        "metrics_on_vs_off_ratio": 0.97,
    },
    "BENCH_scenarios.json": {
        # Clean scenario: the trained policy must not lose to the WORST
        # heuristic (the fault scenarios report ungated plain ratios — the
        # policy may lose there; the suite measures by how much).
        "clean_policy_vs_worst_heuristic_speedup": 1.0,
        # Overload indicators (1.0 = invariant held during the serving-plane
        # saturation phase): every request answered, the bounded queue held
        # its bound, and saturation actually produced fallback answers.
        "overload_all_answered": 1.0,
        "overload_bounded_queue": 1.0,
        "overload_fallback_nonzero": 1.0,
    },
    "BENCH_serve.json": {
        # Adaptive bounded-wait batching (docs/serving.md): with
        # ServeConfig::batch_wait_us on, the batched path must not lose to
        # the sequential reference at shallow session counts anymore —
        # batching is >= break-even at every row of the sweep.
        "sessions2_speedup": 1.0,
        "sessions4_speedup": 1.0,
    },
    "BENCH_serve_sharded.json": {
        # Sharded serving plane (docs/serving.md): 4 dispatcher shards over
        # the single-dispatcher reference on the 32-session workload. Like
        # rollout_t8_speedup this floor is meaningful on the multi-core CI
        # runners; local 1-core boxes legitimately report ~1.0x.
        "shards4_vs_shards1_speedup": 2.5,
    },
    "BENCH_train.json": {
        # Parallel rollout scaling (fig15 section (d)): 8 workers must at
        # least halve rollout wall-clock vs the sequential reference on the
        # multi-core CI runners. Local 1-core boxes legitimately report ~1.0x
        # — this floor is evaluated only where the benches run in CI.
        "rollout_t8_speedup": 2.0,
        # Determinism indicator (1.0 = final parameters byte-equal across the
        # rollout_threads ∈ {1, 2, 8} sweep). Any drift is a hard failure.
        "rollout_bitexact": 1.0,
    },
}


class BenchError(Exception):
    """A malformed/missing BENCH input — reported, never tracebacked."""


def load_bench_file(path: Path) -> dict:
    """Parses one BENCH_*.json, raising BenchError with a clear message on
    unreadable files, invalid JSON, or a non-object top level."""
    try:
        text = path.read_text()
    except OSError as err:
        raise BenchError(f"cannot read {path}: {err}") from err
    try:
        data = json.loads(text)
    except json.JSONDecodeError as err:
        raise BenchError(
            f"{path} is not valid JSON ({err}) — did the bench crash "
            f"mid-write?") from err
    if not isinstance(data, dict):
        raise BenchError(
            f"{path} must hold a flat JSON object of key/value metrics, "
            f"got {type(data).__name__}")
    return data


def collect_rows(bench_dir: Path, registry=None, allow_missing=False):
    """Returns (files, rows) where rows is [(file, key, value)] for every
    numeric speedup ratio plus every registry-listed key (some registered
    floors gate indicator metrics — e.g. the overload invariants — whose
    keys deliberately avoid ``speedup``). A present file missing one of its
    registered keys is an error: a silently-dropped gated metric must not
    pass the gate. Raises BenchError on missing/unregistered/malformed
    files."""
    if not bench_dir.is_dir():
        raise BenchError(
            f"bench directory {bench_dir} does not exist — did the benches "
            f"run?")
    files = sorted(bench_dir.glob("BENCH_*.json"))
    if registry is not None:
        present = {f.name for f in files}
        unregistered = sorted(present - set(registry))
        if unregistered:
            raise BenchError(
                f"unregistered BENCH files {unregistered} — add them to "
                f"BENCH_REGISTRY in {__file__} so their ratios are gated")
        missing = sorted(set(registry) - present)
        if missing and not allow_missing:
            raise BenchError(
                f"registered BENCH files missing from {bench_dir}: "
                f"{missing} (run the benches, or pass --allow-missing for "
                f"a partial local run)")
    rows = []
    for path in files:
        data = load_bench_file(path)
        registered = set(registry.get(path.name, {})) if registry else set()
        for key, value in data.items():
            if ("speedup" in key or key in registered) \
                    and isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                rows.append((path.name, key, float(value)))
        absent = sorted(
            k for k in registered
            if not isinstance(data.get(k), (int, float))
            or isinstance(data.get(k), bool))
        if absent:
            raise BenchError(
                f"{path.name} is missing (or has non-numeric values for) its "
                f"registered gated keys {absent} — did the bench change its "
                f"output without updating BENCH_REGISTRY?")
    return files, rows


def floor_for(fname: str, key: str, min_ratio: float, strict=None,
              registry=None):
    """Floor precedence: CLI --strict-keys > registry per-file floor >
    --min-ratio."""
    if strict and key in strict:
        return strict[key]
    if registry and key in registry.get(fname, {}):
        return registry[fname][key]
    return min_ratio


def check_rows(rows, min_ratio, strict=None, registry=None):
    """Returns (failures, table_lines); a failure is (file, key, value,
    floor)."""
    failures = []
    lines = ["| bench file | ratio | value | floor | status |",
             "|---|---|---|---|---|"]
    for fname, key, value in rows:
        floor = floor_for(fname, key, min_ratio, strict, registry)
        ok = value >= floor
        if not ok:
            failures.append((fname, key, value, floor))
        lines.append(f"| {fname} | `{key}` | {value:.2f} | {floor:.2f} | "
                     f"{'✅' if ok else '❌ regression'} |")
    return failures, lines


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default="build", help="directory holding BENCH_*.json")
    parser.add_argument("--min-ratio", type=float, default=0.9,
                        help="floor for every speedup ratio (>= 1.0 minus noise tolerance)")
    parser.add_argument("--strict-keys", nargs="*", default=[],
                        metavar="KEY=FLOOR",
                        help="per-key floor overrides, e.g. n50_d2_speedup=1.5")
    parser.add_argument("--allow-missing", action="store_true",
                        help="tolerate registered BENCH files that were not produced "
                             "(partial local runs)")
    args = parser.parse_args()

    strict = {}
    for spec in args.strict_keys:
        key, _, floor = spec.partition("=")
        try:
            strict[key] = float(floor)
        except ValueError:
            parser.error(f"--strict-keys entry '{spec}' is not KEY=FLOOR")

    try:
        files, rows = collect_rows(Path(args.dir), BENCH_REGISTRY,
                                   args.allow_missing)
    except BenchError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    if not files:
        print(f"error: no BENCH_*.json under {args.dir} — did the benches run?",
              file=sys.stderr)
        return 1
    if not rows:
        print("error: BENCH files contain no speedup ratios", file=sys.stderr)
        return 1

    failures, lines = check_rows(rows, args.min_ratio, strict, BENCH_REGISTRY)
    table = "\n".join(lines)

    print(f"checked {len(rows)} ratios across {len(files)} BENCH files "
          f"(floor {args.min_ratio}, {len(strict)} strict)")
    print(table)

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as summary:
            summary.write("## Benchmark ratio gate\n\n")
            summary.write(table + "\n")

    missing_strict = [k for k in strict if all(k != key for _, key, _ in rows)]
    if missing_strict:
        print(f"error: strict keys never reported: {missing_strict}",
              file=sys.stderr)
        return 1
    if failures:
        for fname, key, value, floor in failures:
            print(f"REGRESSION: {fname}:{key} = {value:.3f} < {floor}",
                  file=sys.stderr)
        return 1
    print("all ratios at or above their floors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
