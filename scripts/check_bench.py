#!/usr/bin/env python3
"""CI perf-regression gate over the BENCH_*.json emitters.

Every bench binary that emits BENCH_<name>.json reports within-run ratios of
a batched/cached path against its reference path as keys ending in
``speedup`` (e.g. ``gnn_speedup_median``, ``replay_speedup``,
``n50_d2_speedup``, ``s8_speedup``). Absolute latencies vary with runner
hardware, but these ratios compare two paths measured in the same process on
the same machine — if one drops below 1.0 the optimized path has regressed
behind its own reference, which is exactly the thing that must not land
silently.

Usage: check_bench.py [--dir build] [--min-ratio 0.9] [--strict-keys k ...]

* every ``*speedup*`` key in every BENCH_*.json must be >= --min-ratio
  (default 0.9: ratio >= 1.0 with a small tolerance for runner noise);
* --strict-keys names ratios with a dedicated floor, given as key=floor
  (used for the headline acceptance ratios, e.g. n50_d2_speedup=1.5);
* a markdown table of all ratios goes to $GITHUB_STEP_SUMMARY when set;
* exits 1 on any regression (or if no BENCH files are found at all).
"""

import argparse
import json
import os
import sys
from pathlib import Path


def collect(bench_dir: Path):
    """Yields (file, key, value) for every numeric speedup ratio."""
    files = sorted(bench_dir.glob("BENCH_*.json"))
    rows = []
    for path in files:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"error: cannot parse {path}: {err}", file=sys.stderr)
            sys.exit(1)
        for key, value in data.items():
            if "speedup" in key and isinstance(value, (int, float)):
                rows.append((path.name, key, float(value)))
    return files, rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default="build", help="directory holding BENCH_*.json")
    parser.add_argument("--min-ratio", type=float, default=0.9,
                        help="floor for every speedup ratio (>= 1.0 minus noise tolerance)")
    parser.add_argument("--strict-keys", nargs="*", default=[],
                        metavar="KEY=FLOOR",
                        help="per-key floors, e.g. n50_d2_speedup=1.5")
    args = parser.parse_args()

    strict = {}
    for spec in args.strict_keys:
        key, _, floor = spec.partition("=")
        try:
            strict[key] = float(floor)
        except ValueError:
            parser.error(f"--strict-keys entry '{spec}' is not KEY=FLOOR")

    files, rows = collect(Path(args.dir))
    if not files:
        print(f"error: no BENCH_*.json under {args.dir} — did the benches run?",
              file=sys.stderr)
        return 1
    if not rows:
        print("error: BENCH files contain no speedup ratios", file=sys.stderr)
        return 1

    failures = []
    lines = ["| bench file | ratio | value | floor | status |",
             "|---|---|---|---|---|"]
    for fname, key, value in rows:
        floor = strict.get(key, args.min_ratio)
        ok = value >= floor
        if not ok:
            failures.append((fname, key, value, floor))
        lines.append(f"| {fname} | `{key}` | {value:.2f} | {floor:.2f} | "
                     f"{'✅' if ok else '❌ regression'} |")
    table = "\n".join(lines)

    print(f"checked {len(rows)} ratios across {len(files)} BENCH files "
          f"(floor {args.min_ratio}, {len(strict)} strict)")
    print(table)

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as summary:
            summary.write("## Benchmark ratio gate\n\n")
            summary.write(table + "\n")

    missing_strict = [k for k in strict if all(k != key for _, key, _ in rows)]
    if missing_strict:
        print(f"error: strict keys never reported: {missing_strict}",
              file=sys.stderr)
        return 1
    if failures:
        for fname, key, value, floor in failures:
            print(f"REGRESSION: {fname}:{key} = {value:.3f} < {floor}",
                  file=sys.stderr)
        return 1
    print("all ratios at or above their floors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
