#!/usr/bin/env python3
"""Fail on dead relative links in README.md and docs/**.md.

Scans inline markdown links [text](target); external schemes and pure
anchors are skipped, #fragments are stripped before checking that the target
exists relative to the file containing the link. Run from anywhere; exits
non-zero listing every dead link. CI runs this as the docs link-check step.
"""
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP = ("http://", "https://", "mailto:", "#")


def links_of(md: pathlib.Path):
    text = md.read_text(encoding="utf-8")
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP):
            continue
        line = text.count("\n", 0, match.start()) + 1
        yield line, target


def main() -> int:
    files = [REPO / "README.md"] + sorted((REPO / "docs").glob("**/*.md"))
    dead = []
    for md in files:
        if not md.exists():
            dead.append(f"{md.relative_to(REPO)}: file missing")
            continue
        for line, target in links_of(md):
            path = (md.parent / target.split("#", 1)[0]).resolve()
            if not path.exists():
                dead.append(f"{md.relative_to(REPO)}:{line}: dead link {target}")
    if dead:
        print("dead relative links:", file=sys.stderr)
        for d in dead:
            print(f"  {d}", file=sys.stderr)
        return 1
    print(f"checked {len(files)} files, all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
