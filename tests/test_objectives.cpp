#include <gtest/gtest.h>

#include "rl/objectives.h"
#include "sched/heuristics.h"

namespace decima::rl {
namespace {

sim::EnvConfig config(int execs) {
  sim::EnvConfig c;
  c.num_executors = execs;
  c.enable_moving_delay = false;
  c.enable_wave_effect = false;
  c.enable_inflation = false;
  return c;
}

sim::JobSpec job(const std::string& name, int tasks, double dur) {
  sim::JobBuilder b(name);
  b.stage(tasks, dur);
  return b.build();
}

// Runs two 1-task jobs sequentially on one executor: a at [0,1), b at [1,2).
sim::ClusterEnv two_sequential_jobs() {
  sim::ClusterEnv env(config(1));
  env.add_job(job("a", 1, 1.0), 0.0);
  env.add_job(job("b", 1, 1.0), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo);
  return env;
}

TEST(Objectives, RewardVectorsAlignWithActions) {
  const auto env = two_sequential_jobs();
  const std::size_t k = env.action_times().size();
  EXPECT_EQ(avg_jct_rewards(env).size(), k + 1);
  EXPECT_EQ(makespan_rewards(env).size(), k + 1);
  EXPECT_EQ(tail_jct_rewards(env).size(), k + 1);
  EXPECT_EQ(deadline_rewards(env, DeadlineConfig{}).size(), k + 1);
}

TEST(Objectives, TailRewardTotalsSumOfSquaredJctsOverTwo) {
  const auto env = two_sequential_jobs();
  const auto rewards = tail_jct_rewards(env);
  double total = 0.0;
  for (double r : rewards) total += r;
  // Job a: JCT 1 -> 0.5; job b: JCT 2 -> 2.0. Total age integral = 2.5.
  EXPECT_NEAR(total, -2.5, 1e-9);
}

TEST(Objectives, TailPenalizesLongJobsSuperlinearly) {
  // One job of JCT 4 accumulates more age-penalty than four jobs of JCT 1.
  sim::ClusterEnv env1(config(1));
  env1.add_job(job("long", 4, 1.0), 0.0);
  sched::FifoScheduler fifo;
  env1.run(fifo);
  double long_total = 0.0;
  for (double r : tail_jct_rewards(env1)) long_total += r;

  sim::ClusterEnv env2(config(4));
  for (int i = 0; i < 4; ++i) env2.add_job(job("s", 1, 1.0), 0.0);
  sched::FifoScheduler fifo2;
  env2.run(fifo2);
  double short_total = 0.0;
  for (double r : tail_jct_rewards(env2)) short_total += r;

  EXPECT_LT(long_total, short_total);  // more negative = worse
}

TEST(Objectives, DeadlineMissAddsPenalty) {
  // One executor, two jobs: the second job (JCT 2, critical path 1s) misses
  // a tight deadline.
  DeadlineConfig tight;
  tight.slack = 1.5;  // deadline = 1.5s < JCT 2s for job b
  tight.miss_penalty = 50.0;
  const auto env = two_sequential_jobs();
  const auto with_deadline = deadline_rewards(env, tight);
  const auto base = avg_jct_rewards(env);
  double dead_total = 0.0, base_total = 0.0;
  for (double r : with_deadline) dead_total += r;
  for (double r : base) base_total += r;
  EXPECT_NEAR(dead_total, base_total - 50.0, 1e-9);
}

TEST(Objectives, GenerousDeadlineAddsNothing) {
  DeadlineConfig lax;
  lax.slack = 100.0;
  const auto env = two_sequential_jobs();
  const auto with_deadline = deadline_rewards(env, lax);
  const auto base = avg_jct_rewards(env);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_DOUBLE_EQ(with_deadline[i], base[i]);
  }
}

TEST(Objectives, HitRateCountsMetDeadlines) {
  DeadlineConfig cfg;
  cfg.slack = 1.5;  // job a (JCT 1) meets it; job b (JCT 2) misses
  const auto env = two_sequential_jobs();
  EXPECT_NEAR(deadline_hit_rate(env, cfg), 0.5, 1e-12);
  cfg.slack = 100.0;
  EXPECT_NEAR(deadline_hit_rate(env, cfg), 1.0, 1e-12);
}

TEST(Objectives, UnfinishedJobsCountedByTail) {
  sim::ClusterEnv env(config(1));
  env.add_job(job("long", 100, 1.0), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo, /*until=*/10.0);
  ASSERT_FALSE(env.all_done());
  const auto rewards = tail_jct_rewards(env);
  double total = 0.0;
  for (double r : rewards) total += r;
  // Age integral of one job over [0, 10] = 50.
  EXPECT_NEAR(total, -50.0, 1e-6);
}

TEST(Objectives, MakespanMatchesEnvHelper) {
  const auto env = two_sequential_jobs();
  const auto a = makespan_rewards(env);
  const auto b = env.action_rewards_makespan();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace decima::rl
