#include <gtest/gtest.h>

#include "rl/reinforce.h"
#include "sched/heuristics.h"

namespace decima::rl {
namespace {

sim::EnvConfig tiny_env() {
  sim::EnvConfig c;
  c.num_executors = 2;
  c.enable_moving_delay = false;
  c.enable_wave_effect = false;
  c.enable_inflation = false;
  return c;
}

sim::JobSpec job(const std::string& name, int tasks, double dur) {
  sim::JobBuilder b(name);
  b.stage(tasks, dur);
  return b.build();
}

// A deterministic 3-job batch where the ordering decision matters a lot:
// the optimal policy runs the short jobs first.
WorkloadSampler skew_sampler() {
  return [](std::uint64_t) {
    return workload::batched(
        {job("long", 16, 1.0), job("short1", 2, 1.0), job("short2", 2, 1.0)});
  };
}

TrainConfig base_config() {
  TrainConfig c;
  c.num_iterations = 40;
  c.episodes_per_iter = 6;
  c.rollout_threads = 4;
  c.curriculum = false;  // tiny batch episodes finish quickly anyway
  c.differential_reward = false;
  c.entropy_weight = 0.05;
  c.env = tiny_env();
  c.sampler = skew_sampler();
  c.seed = 21;
  return c;
}

double greedy_jct(core::DecimaAgent& agent, const TrainConfig& cfg) {
  agent.set_mode(core::Mode::kGreedy);
  std::vector<std::vector<workload::ArrivingJob>> w = {cfg.sampler(0)};
  return evaluate_avg_jct(agent, cfg.env, w);
}

TEST(Trainer, IterationProducesFiniteStats) {
  core::AgentConfig ac;
  ac.seed = 3;
  core::DecimaAgent agent(ac);
  auto cfg = base_config();
  ReinforceTrainer trainer(agent, cfg);
  const auto stats = trainer.iterate();
  EXPECT_EQ(stats.iteration, 0);
  EXPECT_GT(stats.total_actions, 0);
  EXPECT_TRUE(std::isfinite(stats.mean_total_reward));
  EXPECT_TRUE(std::isfinite(stats.grad_norm));
  EXPECT_GT(stats.grad_norm, 0.0);
}

TEST(Trainer, LearnsToBeatInitialPolicyOnSkewedBatch) {
  core::AgentConfig ac;
  ac.seed = 3;
  core::DecimaAgent agent(ac);
  auto cfg = base_config();
  const double before = greedy_jct(agent, cfg);
  ReinforceTrainer trainer(agent, cfg);
  trainer.train();
  const double after = greedy_jct(agent, cfg);
  // Training must not make the policy materially worse, and usually
  // improves it. Allow slack for the stochastic optimizer.
  EXPECT_LE(after, before * 1.10 + 1e-9);

  // The optimal order (shorts first) gives avg JCT ((2/2)+(2/2+1)+(16/2+2))/3;
  // the worst (long first) is far higher. Check we're in the sane half.
  sched::FifoScheduler fifo;  // runs "long" first: bad
  std::vector<std::vector<workload::ArrivingJob>> w = {cfg.sampler(0)};
  const double fifo_jct = evaluate_avg_jct(fifo, cfg.env, w);
  EXPECT_LT(after, fifo_jct * 1.05);
}

TEST(Trainer, CurriculumGrowsTauMean) {
  core::AgentConfig ac;
  ac.seed = 5;
  core::DecimaAgent agent(ac);
  auto cfg = base_config();
  cfg.curriculum = true;
  cfg.tau_mean_init = 10.0;
  cfg.tau_mean_growth = 5.0;
  cfg.num_iterations = 3;
  ReinforceTrainer trainer(agent, cfg);
  const double t0 = trainer.tau_mean();
  trainer.iterate();
  trainer.iterate();
  EXPECT_GT(trainer.tau_mean(), t0);
}

TEST(Trainer, TauMeanCapped) {
  core::AgentConfig ac;
  ac.seed = 5;
  core::DecimaAgent agent(ac);
  auto cfg = base_config();
  cfg.curriculum = true;
  cfg.tau_mean_init = 10.0;
  cfg.tau_mean_growth = 1e9;
  cfg.tau_mean_max = 50.0;
  ReinforceTrainer trainer(agent, cfg);
  trainer.iterate();
  EXPECT_LE(trainer.tau_mean(), 50.0);
}

TEST(Trainer, MakespanObjectiveRuns) {
  core::AgentConfig ac;
  ac.seed = 9;
  core::DecimaAgent agent(ac);
  auto cfg = base_config();
  cfg.objective = Objective::kMakespan;
  cfg.num_iterations = 3;
  ReinforceTrainer trainer(agent, cfg);
  for (int i = 0; i < 3; ++i) {
    const auto s = trainer.iterate();
    EXPECT_TRUE(std::isfinite(s.mean_total_reward));
  }
}

TEST(Trainer, UnfixedSequencesStillTrain) {
  core::AgentConfig ac;
  ac.seed = 13;
  core::DecimaAgent agent(ac);
  auto cfg = base_config();
  cfg.fixed_sequences = false;
  cfg.num_iterations = 3;
  ReinforceTrainer trainer(agent, cfg);
  const auto s = trainer.iterate();
  EXPECT_GT(s.total_actions, 0);
}

TEST(Trainer, DifferentialRewardRuns) {
  core::AgentConfig ac;
  ac.seed = 17;
  core::DecimaAgent agent(ac);
  auto cfg = base_config();
  cfg.differential_reward = true;
  ReinforceTrainer trainer(agent, cfg);
  const auto s = trainer.iterate();
  EXPECT_TRUE(std::isfinite(s.grad_norm));
}

TEST(Trainer, DeterministicAcrossRuns) {
  auto run = [] {
    core::AgentConfig ac;
    ac.seed = 23;
    core::DecimaAgent agent(ac);
    auto cfg = base_config();
    cfg.num_iterations = 3;
    cfg.rollout_threads = 3;
    ReinforceTrainer trainer(agent, cfg);
    trainer.train();
    return agent.params().params()[0]->value.raw();
  };
  EXPECT_EQ(run(), run());
}

TEST(EvaluateAvgJct, ChargesUnfinishedJobs) {
  // A scheduler that never schedules: unfinished jobs must be charged.
  struct Never : sim::Scheduler {
    sim::Action schedule(const sim::ClusterEnv&) override {
      return sim::Action::none();
    }
    std::string name() const override { return "never"; }
  } never;
  std::vector<std::vector<workload::ArrivingJob>> w = {
      workload::batched({job("a", 2, 1.0)})};
  sched::FifoScheduler fifo;
  const double jct_never = evaluate_avg_jct(never, tiny_env(), w);
  const double jct_fifo = evaluate_avg_jct(fifo, tiny_env(), w);
  EXPECT_GE(jct_never, 0.0);
  EXPECT_GT(jct_fifo, 0.0);
}

}  // namespace
}  // namespace decima::rl
