#include <gtest/gtest.h>

#include "gnn/features.h"
#include "sched/heuristics.h"

namespace decima::gnn {
namespace {

sim::EnvConfig config(int execs) {
  sim::EnvConfig c;
  c.num_executors = execs;
  c.enable_moving_delay = false;
  c.enable_wave_effect = false;
  c.enable_inflation = false;
  return c;
}

TEST(Features, DimsMatchConfig) {
  FeatureConfig f;
  EXPECT_EQ(f.dim(), 5);
  f.iat_hint = true;
  EXPECT_EQ(f.dim(), 6);
}

TEST(Features, ExtractsOnlyActiveJobs) {
  sim::ClusterEnv env(config(2));
  sim::JobBuilder b("a");
  b.stage(2, 1.0);
  env.add_job(b.build(), 0.0);
  sim::JobBuilder b2("later");
  b2.stage(2, 1.0);
  env.add_job(b2.build(), 100.0);

  // Run until the first job is done but the second has not arrived.
  sched::FifoScheduler fifo;
  env.run(fifo, 50.0);
  const auto graphs = extract_graphs(env, FeatureConfig{});
  EXPECT_TRUE(graphs.empty());  // job 0 done, job 1 not arrived
}

TEST(Features, ValuesMatchState) {
  sim::ClusterEnv env(config(4));
  sim::JobBuilder b("j");
  const int s0 = b.stage(8, 2.0);
  b.stage(3, 1.0, {s0});
  env.add_job(b.build(), 0.0);

  // Limit the job to 2 executors, then inspect mid-flight state.
  struct LimitTwo : sim::Scheduler {
    sim::Action schedule(const sim::ClusterEnv& e) override {
      const auto nodes = e.runnable_nodes();
      if (nodes.empty() || e.jobs()[0].executors >= 2) {
        return sim::Action::none();
      }
      sim::Action a;
      a.node = nodes[0];
      a.limit = 2;
      return a;
    }
    std::string name() const override { return "l2"; }
  } sched;
  env.run(sched, 1.0);  // two tasks dispatched, none finished

  FeatureConfig fc;
  const auto graphs = extract_graphs(env, fc);
  ASSERT_EQ(graphs.size(), 1u);
  const auto& g = graphs[0];
  ASSERT_EQ(g.features.rows(), 2u);
  ASSERT_EQ(g.features.cols(), 5u);
  // Stage 0: 8 tasks remaining (none finished), duration 2.
  EXPECT_NEAR(g.features(0, 0), 8.0 / fc.task_scale, 1e-12);
  EXPECT_NEAR(g.features(0, 1), 2.0 / fc.duration_scale, 1e-12);
  // 2 executors on the job out of 4.
  EXPECT_NEAR(g.features(0, 2), 0.5, 1e-12);
  // 2 free of 4.
  EXPECT_NEAR(g.features(0, 3), 0.5, 1e-12);
  // Stage 0 runnable (has waiting tasks), stage 1 blocked by parent.
  EXPECT_TRUE(g.runnable[0]);
  EXPECT_FALSE(g.runnable[1]);
}

TEST(Features, TaskDurationMaskedWhenDisabled) {
  sim::ClusterEnv env(config(2));
  sim::JobBuilder b("j");
  b.stage(2, 5.0);
  env.add_job(b.build(), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo, 0.5);
  FeatureConfig fc;
  fc.use_task_duration = false;
  const auto graphs = extract_graphs(env, fc);
  ASSERT_EQ(graphs.size(), 1u);
  EXPECT_DOUBLE_EQ(graphs[0].features(0, 1), 0.0);
}

TEST(Features, IatHintFeeds6thColumn) {
  sim::ClusterEnv env(config(2));
  sim::JobBuilder b("j");
  b.stage(2, 1.0);
  env.add_job(b.build(), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo, 0.5);
  FeatureConfig fc;
  fc.iat_hint = true;
  const auto graphs = extract_graphs(env, fc, /*observed_iat=*/45.0);
  ASSERT_EQ(graphs.size(), 1u);
  ASSERT_EQ(graphs[0].features.cols(), 6u);
  EXPECT_NEAR(graphs[0].features(0, 5), 45.0 / fc.iat_scale, 1e-12);
}

TEST(Features, GraphStructureMirrorsSpec) {
  sim::ClusterEnv env(config(2));
  sim::JobBuilder b("d");
  const int s0 = b.stage(1, 1.0);
  const int s1 = b.stage(1, 1.0, {s0});
  b.stage(1, 1.0, {s0, s1});
  env.add_job(b.build(), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo, 0.1);
  const auto graphs = extract_graphs(env, FeatureConfig{});
  ASSERT_EQ(graphs.size(), 1u);
  EXPECT_EQ(graphs[0].children[0], (std::vector<int>{1, 2}));
  EXPECT_EQ(graphs[0].children[1], (std::vector<int>{2}));
  EXPECT_EQ(graphs[0].topo.size(), 3u);
}

}  // namespace
}  // namespace decima::gnn
