#include <gtest/gtest.h>

#include "workload/arrivals.h"
#include "workload/tpch.h"
#include "workload/trace.h"

namespace decima::workload {
namespace {

TEST(Tpch, TemplatesAreDeterministic) {
  const auto a = make_tpch_job(9, 100);
  const auto b = make_tpch_job(9, 100);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t v = 0; v < a.stages.size(); ++v) {
    EXPECT_EQ(a.stages[v].num_tasks, b.stages[v].num_tasks);
    EXPECT_DOUBLE_EQ(a.stages[v].task_duration, b.stages[v].task_duration);
    EXPECT_EQ(a.stages[v].parents, b.stages[v].parents);
  }
  EXPECT_DOUBLE_EQ(a.sweet_spot, b.sweet_spot);
}

TEST(Tpch, AllTemplatesValid) {
  for (int q = 1; q <= kNumTpchQueries; ++q) {
    for (double size : tpch_sizes()) {
      std::string err;
      EXPECT_TRUE(make_tpch_job(q, size).validate(&err))
          << "q" << q << " size " << size << ": " << err;
    }
  }
}

TEST(Tpch, WorkGrowsWithInputSize) {
  for (int q : {2, 9, 17}) {
    EXPECT_LT(make_tpch_job(q, 2).total_work(),
              make_tpch_job(q, 100).total_work());
  }
}

TEST(Tpch, SweetSpotGrowsWithInputSize) {
  const auto small = make_tpch_job(9, 2);
  const auto large = make_tpch_job(9, 100);
  EXPECT_LT(small.sweet_spot, large.sweet_spot);
  // Fig. 2's anchors: Q9@100GB scales further than Q2@100GB.
  EXPECT_GT(make_tpch_job(9, 100).sweet_spot, make_tpch_job(2, 100).sweet_spot);
}

TEST(Tpch, HeavyTailedWorkMix) {
  // The paper's batched mix: 23% of jobs contain ~82% of total work (§7.2).
  Rng rng(3);
  const auto jobs = sample_tpch_batch(rng, 500);
  const double share = work_share_of_top(jobs, 0.23);
  EXPECT_GT(share, 0.6);
  EXPECT_LE(share, 0.98);
}

TEST(Tpch, IdealRuntimeHasSweetSpot) {
  // Runtime decreases up to the sweet spot and stops improving (or worsens)
  // well beyond it — the Fig. 2 shape.
  const auto job = make_tpch_job(2, 100);
  const double r1 = ideal_runtime_at_parallelism(job, 1);
  const double r_sweet =
      ideal_runtime_at_parallelism(job, static_cast<int>(job.sweet_spot));
  const double r_over = ideal_runtime_at_parallelism(job, 100);
  EXPECT_LT(r_sweet, r1);
  EXPECT_GE(r_over, r_sweet * 0.95);
}

TEST(Tpch, MemoryRequestsInUnitRange) {
  auto job = make_tpch_job(5, 20);
  Rng rng(1);
  assign_memory_requests(job, rng);
  for (const auto& s : job.stages) {
    EXPECT_GT(s.mem_req, 0.0);
    EXPECT_LE(s.mem_req, 1.0);
  }
}

TEST(Tpch, SampleRespectsCatalog) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto j = sample_tpch_job(rng);
    EXPECT_TRUE(j.validate());
    EXPECT_EQ(j.name.rfind("tpch-q", 0), 0u);
  }
}

TEST(Arrivals, PoissonMeanMatches) {
  Rng rng(7);
  const auto times = poisson_arrivals(rng, 10.0, 5000);
  ASSERT_EQ(times.size(), 5000u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GE(times[i], times[i - 1]);
  }
  EXPECT_NEAR(times.back() / 5000.0, 10.0, 0.5);
}

TEST(Arrivals, BatchedAllAtZero) {
  Rng rng(1);
  auto jobs = sample_tpch_batch(rng, 5);
  const auto w = batched(std::move(jobs));
  for (const auto& j : w) EXPECT_DOUBLE_EQ(j.arrival, 0.0);
}

TEST(Arrivals, ContinuousSortedTimes) {
  Rng rng(2);
  auto jobs = sample_tpch_batch(rng, 10);
  Rng arr(3);
  const auto w = continuous(std::move(jobs), arr, 5.0);
  for (std::size_t i = 1; i < w.size(); ++i) {
    EXPECT_GE(w[i].arrival, w[i - 1].arrival);
  }
}

TEST(Trace, MatchesAggregateShape) {
  TraceConfig cfg;
  cfg.num_jobs = 2000;
  cfg.seed = 42;
  const auto trace = synthesize_trace(cfg);
  ASSERT_EQ(trace.size(), 2000u);
  const auto stats = trace_stats(trace);
  // 59% of DAGs have >= 4 stages (§7.3), some have hundreds.
  EXPECT_NEAR(stats.frac_ge4_stages, 0.59, 0.05);
  EXPECT_GE(stats.max_stages, 50);
  EXPECT_LE(stats.max_stages, 200);
  for (const auto& j : trace) {
    std::string err;
    ASSERT_TRUE(j.spec.validate(&err)) << err;
  }
}

TEST(Trace, ArrivalsSortedAndBursty) {
  TraceConfig cfg;
  cfg.num_jobs = 1000;
  cfg.burstiness = 0.8;
  const auto trace = synthesize_trace(cfg);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
  }
}

TEST(Trace, MemoryRequestsPresent) {
  TraceConfig cfg;
  cfg.num_jobs = 100;
  const auto trace = synthesize_trace(cfg);
  int with_mem = 0;
  for (const auto& j : trace) {
    for (const auto& s : j.spec.stages) {
      if (s.mem_req > 0) ++with_mem;
    }
  }
  EXPECT_GT(with_mem, 0);
}

TEST(Trace, Deterministic) {
  TraceConfig cfg;
  cfg.num_jobs = 50;
  cfg.seed = 9;
  const auto a = synthesize_trace(cfg);
  const auto b = synthesize_trace(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].spec.stages.size(), b[i].spec.stages.size());
  }
}

}  // namespace
}  // namespace decima::workload
