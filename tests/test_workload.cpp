#include <gtest/gtest.h>

#include "workload/arrivals.h"
#include "workload/tpch.h"
#include "workload/trace.h"

namespace decima::workload {
namespace {

TEST(Tpch, TemplatesAreDeterministic) {
  const auto a = make_tpch_job(9, 100);
  const auto b = make_tpch_job(9, 100);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t v = 0; v < a.stages.size(); ++v) {
    EXPECT_EQ(a.stages[v].num_tasks, b.stages[v].num_tasks);
    EXPECT_DOUBLE_EQ(a.stages[v].task_duration, b.stages[v].task_duration);
    EXPECT_EQ(a.stages[v].parents, b.stages[v].parents);
  }
  EXPECT_DOUBLE_EQ(a.sweet_spot, b.sweet_spot);
}

TEST(Tpch, AllTemplatesValid) {
  for (int q = 1; q <= kNumTpchQueries; ++q) {
    for (double size : tpch_sizes()) {
      std::string err;
      EXPECT_TRUE(make_tpch_job(q, size).validate(&err))
          << "q" << q << " size " << size << ": " << err;
    }
  }
}

TEST(Tpch, WorkGrowsWithInputSize) {
  for (int q : {2, 9, 17}) {
    EXPECT_LT(make_tpch_job(q, 2).total_work(),
              make_tpch_job(q, 100).total_work());
  }
}

TEST(Tpch, SweetSpotGrowsWithInputSize) {
  const auto small = make_tpch_job(9, 2);
  const auto large = make_tpch_job(9, 100);
  EXPECT_LT(small.sweet_spot, large.sweet_spot);
  // Fig. 2's anchors: Q9@100GB scales further than Q2@100GB.
  EXPECT_GT(make_tpch_job(9, 100).sweet_spot, make_tpch_job(2, 100).sweet_spot);
}

TEST(Tpch, HeavyTailedWorkMix) {
  // The paper's batched mix: 23% of jobs contain ~82% of total work (§7.2).
  Rng rng(3);
  const auto jobs = sample_tpch_batch(rng, 500);
  const double share = work_share_of_top(jobs, 0.23);
  EXPECT_GT(share, 0.6);
  EXPECT_LE(share, 0.98);
}

TEST(Tpch, IdealRuntimeHasSweetSpot) {
  // Runtime decreases up to the sweet spot and stops improving (or worsens)
  // well beyond it — the Fig. 2 shape.
  const auto job = make_tpch_job(2, 100);
  const double r1 = ideal_runtime_at_parallelism(job, 1);
  const double r_sweet =
      ideal_runtime_at_parallelism(job, static_cast<int>(job.sweet_spot));
  const double r_over = ideal_runtime_at_parallelism(job, 100);
  EXPECT_LT(r_sweet, r1);
  EXPECT_GE(r_over, r_sweet * 0.95);
}

TEST(Tpch, MemoryRequestsInUnitRange) {
  auto job = make_tpch_job(5, 20);
  Rng rng(1);
  assign_memory_requests(job, rng);
  for (const auto& s : job.stages) {
    EXPECT_GT(s.mem_req, 0.0);
    EXPECT_LE(s.mem_req, 1.0);
  }
}

TEST(Tpch, SampleRespectsCatalog) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto j = sample_tpch_job(rng);
    EXPECT_TRUE(j.validate());
    EXPECT_EQ(j.name.rfind("tpch-q", 0), 0u);
  }
}

TEST(Arrivals, PoissonMeanMatches) {
  Rng rng(7);
  const auto times = poisson_arrivals(rng, 10.0, 5000);
  ASSERT_EQ(times.size(), 5000u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GE(times[i], times[i - 1]);
  }
  EXPECT_NEAR(times.back() / 5000.0, 10.0, 0.5);
}

TEST(Arrivals, BatchedAllAtZero) {
  Rng rng(1);
  auto jobs = sample_tpch_batch(rng, 5);
  const auto w = batched(std::move(jobs));
  for (const auto& j : w) EXPECT_DOUBLE_EQ(j.arrival, 0.0);
}

TEST(Arrivals, ContinuousSortedTimes) {
  Rng rng(2);
  auto jobs = sample_tpch_batch(rng, 10);
  Rng arr(3);
  const auto w = continuous(std::move(jobs), arr, 5.0);
  for (std::size_t i = 1; i < w.size(); ++i) {
    EXPECT_GE(w[i].arrival, w[i - 1].arrival);
  }
}

TEST(Arrivals, DiurnalFactorShapesLoad) {
  // sin(0) = 0: at t = 0 the factor is exactly 1 (nominal load).
  EXPECT_DOUBLE_EQ(diurnal_iat_factor(0.0, 2000.0, 0.8), 1.0);
  // Quarter period is peak load (shortest IAT), three quarters the trough.
  const double peak = diurnal_iat_factor(500.0, 2000.0, 0.8);
  const double trough = diurnal_iat_factor(1500.0, 2000.0, 0.8);
  EXPECT_NEAR(peak, 0.2, 1e-12);
  EXPECT_NEAR(trough, 1.8, 1e-12);
  // Extreme burstiness hits the 0.1 floor instead of going nonpositive.
  EXPECT_DOUBLE_EQ(diurnal_iat_factor(500.0, 2000.0, 2.0), 0.1);
  // burstiness 0 is flat.
  EXPECT_DOUBLE_EQ(diurnal_iat_factor(777.0, 2000.0, 0.0), 1.0);
}

TEST(Arrivals, FlashCrowdConcentratesBurst) {
  Rng jrng(4);
  auto jobs = sample_tpch_batch(jrng, 40);
  FlashCrowdConfig cfg;
  cfg.base_iat = 25.0;
  cfg.burst_at = 200.0;
  cfg.burst_fraction = 0.5;
  cfg.burst_iat = 0.5;
  Rng arr(5);
  const auto w = flash_crowd(std::move(jobs), arr, cfg);
  ASSERT_EQ(w.size(), 40u);
  int in_burst_window = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(w[i].arrival, w[i - 1].arrival);  // sorted
    }
    if (w[i].arrival >= cfg.burst_at && w[i].arrival <= cfg.burst_at + 40.0) {
      ++in_burst_window;
    }
  }
  // The burst half lands in a tight window around burst_at (20 jobs at
  // ~0.5s spacing, plus whatever trickle happens to fall there).
  EXPECT_GE(in_burst_window, 20);

  // Deterministic under an equal seed.
  Rng jrng2(4), arr2(5);
  const auto w2 =
      flash_crowd(sample_tpch_batch(jrng2, 40), arr2, cfg);
  ASSERT_EQ(w2.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_DOUBLE_EQ(w2[i].arrival, w[i].arrival);
  }
}

TEST(Arrivals, DiurnalArrivalsSortedAndBurstsCluster) {
  Rng jrng(6);
  auto jobs = sample_tpch_batch(jrng, 200);
  DiurnalConfig cfg;
  cfg.mean_iat = 10.0;
  cfg.period = 800.0;
  cfg.burstiness = 0.8;
  cfg.burst_prob = 0.1;
  cfg.burst_size = 5;
  cfg.burst_iat = 0.2;
  Rng arr(7);
  const auto w = diurnal_arrivals(std::move(jobs), arr, cfg);
  ASSERT_EQ(w.size(), 200u);
  int tight_gaps = 0;
  for (std::size_t i = 1; i < w.size(); ++i) {
    EXPECT_GE(w[i].arrival, w[i - 1].arrival);
    if (w[i].arrival - w[i - 1].arrival < 1.0) ++tight_gaps;
  }
  // Micro-bursts produce runs of sub-second gaps a plain 10s-IAT Poisson
  // process would make vanishingly rare in aggregate.
  EXPECT_GE(tight_gaps, 20);

  // burst_prob = 0 degrades to a diurnally-modulated Poisson process; the
  // draw sequence should differ from the bursty one above.
  Rng jrng2(6), arr2(7);
  DiurnalConfig plain = cfg;
  plain.burst_prob = 0.0;
  const auto w_plain =
      diurnal_arrivals(sample_tpch_batch(jrng2, 200), arr2, plain);
  ASSERT_EQ(w_plain.size(), 200u);
  for (std::size_t i = 1; i < w_plain.size(); ++i) {
    EXPECT_GE(w_plain[i].arrival, w_plain[i - 1].arrival);
  }
}

TEST(Trace, MatchesAggregateShape) {
  TraceConfig cfg;
  cfg.num_jobs = 2000;
  cfg.seed = 42;
  const auto trace = synthesize_trace(cfg);
  ASSERT_EQ(trace.size(), 2000u);
  const auto stats = trace_stats(trace);
  // 59% of DAGs have >= 4 stages (§7.3), some have hundreds.
  EXPECT_NEAR(stats.frac_ge4_stages, 0.59, 0.05);
  EXPECT_GE(stats.max_stages, 50);
  EXPECT_LE(stats.max_stages, 200);
  for (const auto& j : trace) {
    std::string err;
    ASSERT_TRUE(j.spec.validate(&err)) << err;
  }
}

TEST(Trace, ArrivalsSortedAndBursty) {
  TraceConfig cfg;
  cfg.num_jobs = 1000;
  cfg.burstiness = 0.8;
  const auto trace = synthesize_trace(cfg);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
  }
}

TEST(Trace, MemoryRequestsPresent) {
  TraceConfig cfg;
  cfg.num_jobs = 100;
  const auto trace = synthesize_trace(cfg);
  int with_mem = 0;
  for (const auto& j : trace) {
    for (const auto& s : j.spec.stages) {
      if (s.mem_req > 0) ++with_mem;
    }
  }
  EXPECT_GT(with_mem, 0);
}

TEST(Trace, Deterministic) {
  TraceConfig cfg;
  cfg.num_jobs = 50;
  cfg.seed = 9;
  const auto a = synthesize_trace(cfg);
  const auto b = synthesize_trace(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].spec.stages.size(), b[i].spec.stages.size());
  }
}

}  // namespace
}  // namespace decima::workload
