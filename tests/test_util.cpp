#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "util/env_flags.h"
#include "util/ring.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace decima {
namespace {

TEST(Rng, Determinism) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(3.0, 5.0);
    EXPECT_GE(x, 3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int x = rng.uniform_int(1, 3);
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 3);
    saw_lo |= x == 1;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, ExponentialNonPositiveMeanIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.exponential(0.0), 0.0);
  EXPECT_EQ(rng.exponential(-1.0), 0.0);
}

TEST(Rng, LognormalMeanTargetsMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal_mean(2.0, 0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(17);
  std::vector<double> w = {1.0, 3.0};
  int hi = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.weighted_index(w) == 1) ++hi;
  }
  EXPECT_NEAR(static_cast<double>(hi) / n, 0.75, 0.03);
}

TEST(Rng, WeightedIndexDegenerate) {
  Rng rng(1);
  std::vector<double> zero = {0.0, 0.0};
  EXPECT_EQ(rng.weighted_index(zero), 0u);
}

TEST(Rng, ForkDecorrelates) {
  Rng rng(5);
  const auto s1 = rng.fork();
  const auto s2 = rng.fork();
  EXPECT_NE(s1, s2);
}

TEST(RunningStats, MeanVariance) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(MovingAverage, ConvergesToConstant) {
  MovingAverage ma(10.0);
  for (int i = 0; i < 500; ++i) ma.add(3.0);
  EXPECT_NEAR(ma.value(), 3.0, 1e-9);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile({}, 50), 0.0);
}

TEST(Cdf, MonotoneAndComplete) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].first, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].first, cdf[i].first);
    EXPECT_LT(cdf[i - 1].second, cdf[i].second);
  }
}

TEST(Table, RendersAlignedAndCsv) {
  Table t({"name", "value"});
  t.add_row({"a", fmt(1.5)});
  t.add_row({"bb", fmt_int(42)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("name,value"), std::string::npos);
  EXPECT_NE(csv.find("bb,42"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NE(t.to_string().find("x"), std::string::npos);
}

TEST(Fmt, Helpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_int(-7), "-7");
  EXPECT_EQ(fmt_pct(0.215, 1), "21.5%");
}

TEST(EnvFlags, FallbacksAndParsing) {
  EXPECT_EQ(env_int("DECIMA_DOES_NOT_EXIST", 5), 5);
  EXPECT_DOUBLE_EQ(env_double("DECIMA_DOES_NOT_EXIST", 1.5), 1.5);
  EXPECT_EQ(env_str("DECIMA_DOES_NOT_EXIST", "x"), "x");
  setenv("DECIMA_TEST_FLAG", "17", 1);
  EXPECT_EQ(env_int("DECIMA_TEST_FLAG", 5), 17);
  setenv("DECIMA_TEST_FLAG", "junk", 1);
  EXPECT_EQ(env_int("DECIMA_TEST_FLAG", 5), 5);
  unsetenv("DECIMA_TEST_FLAG");
}

TEST(Sparkline, Renders) {
  const std::string s = ascii_sparkline({0, 1, 2, 3}, 10);
  EXPECT_EQ(s.size(), 10u);
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(util::SpscRing<int>(0).capacity(), 1u);
  EXPECT_EQ(util::SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(util::SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(util::SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(util::SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, FifoOrderFullAndEmpty) {
  util::SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.try_push(99));  // full: value refused, caller keeps it
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, WrapAroundKeepsFifoIntegrity) {
  // A tiny ring forced through many wraps: cursor masking must never skip,
  // duplicate, or reorder an element.
  util::SpscRing<int> ring(2);
  int next_push = 0;
  int next_pop = 0;
  Rng rng(11);
  for (int step = 0; step < 100000; ++step) {
    if (rng.uniform() < 0.5) {
      if (ring.try_push(next_push)) ++next_push;
    } else {
      int out = -1;
      if (ring.try_pop(out)) {
        ASSERT_EQ(out, next_pop);
        ++next_pop;
      }
    }
  }
  int out = -1;
  while (ring.try_pop(out)) {
    ASSERT_EQ(out, next_pop);
    ++next_pop;
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(SpscRing, CrossThreadHandoffDeliversEverythingInOrder) {
  // One producer, one consumer, a ring much smaller than the stream: the
  // acquire/release pairing must hand every element across intact (this is
  // the test TSan watches in CI).
  util::SpscRing<std::uint64_t> ring(8);
  constexpr std::uint64_t kItems = 20000;
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kItems;) {
      if (ring.try_push(i)) {
        ++i;
      } else {
        std::this_thread::yield();  // full: single-core boxes need the hint
      }
    }
  });
  std::uint64_t expected = 0;
  std::uint64_t out = 0;
  while (expected < kItems) {
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, MoveOnlyElements) {
  util::SpscRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  EXPECT_TRUE(ring.try_pop(out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 7);
}

}  // namespace
}  // namespace decima
