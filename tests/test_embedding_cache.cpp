// The incremental embedding cache (src/gnn/embedding_cache.h) must be a pure
// performance change: cached inference has to match the full batched
// recompute to floating-point noise across every ablation, and every
// invalidation edge (job arrival, job completion, executor churn,
// multi-resource columns, parameter changes, mid-run enable/disable) must
// leave decisions identical to an uncached agent.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "gnn/embedding_cache.h"
#include "gnn/graph_embedding.h"
#include "nn/adam.h"
#include "rl/reinforce.h"
#include "sim/faults.h"
#include "workload/tpch.h"

namespace decima {
namespace {

constexpr double kTol = 1e-10;

void expect_matrix_near(const nn::Matrix& a, const nn::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.raw().size(); ++i) {
    EXPECT_NEAR(a.raw()[i], b.raw()[i], kTol);
  }
}

std::vector<gnn::JobGraph> synthetic_graphs(std::uint64_t seed, int count,
                                            int nodes) {
  std::vector<gnn::JobGraph> graphs;
  for (int i = 0; i < count; ++i) {
    gnn::JobGraph g = gnn::random_job_graph(seed + static_cast<std::uint64_t>(i),
                                            nodes);
    g.env_job = i;  // distinct cache keys (env_uid stays -1: diff-only path)
    graphs.push_back(std::move(g));
  }
  return graphs;
}

// Compares embed_cached against a fresh full embed() of the same graphs.
void expect_cached_matches_full(const gnn::GraphEmbedding& gnn,
                                const std::vector<gnn::JobGraph>& graphs,
                                gnn::EmbeddingCache& cache) {
  nn::Tape tc(false), tf(false);
  const gnn::Embeddings ec = gnn.embed_cached(tc, graphs, cache);
  const gnn::Embeddings ef = gnn.embed(tf, graphs);
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    expect_matrix_near(tc.value(ec.node_mat[g]), tf.value(ef.node_mat[g]));
    expect_matrix_near(tc.value(ec.proj_mat[g]), tf.value(ef.proj_mat[g]));
  }
  expect_matrix_near(tc.value(ec.job_mat), tf.value(ef.job_mat));
  expect_matrix_near(tc.value(ec.global_emb), tf.value(ef.global_emb));
}

TEST(EmbeddingCache, CachedEmbeddingMatchesFullAcrossDirtyFractions) {
  for (bool two_level : {true, false}) {
    Rng rng(11);
    gnn::GnnConfig config;
    config.two_level_aggregation = two_level;
    gnn::GraphEmbedding gnn(config, rng);
    auto graphs = synthetic_graphs(100, 3, 40);
    gnn::EmbeddingCache cache;

    // Cold: everything rebuilt.
    expect_cached_matches_full(gnn, graphs, cache);
    EXPECT_EQ(cache.stats().graphs_rebuilt, graphs.size());

    // Warm, untouched: nothing recomputed (diff path, no epochs).
    const std::uint64_t before = cache.stats().nodes_recomputed;
    expect_cached_matches_full(gnn, graphs, cache);
    EXPECT_EQ(cache.stats().nodes_recomputed, before);
    EXPECT_EQ(cache.stats().graphs_reused, graphs.size());

    // Dirty a single feature row per event, sweeping every node of graph 0.
    for (std::size_t v = 0; v < graphs[0].features.rows(); ++v) {
      graphs[0].features(v, 0) += 0.25;
      expect_cached_matches_full(gnn, graphs, cache);
    }
    // Dirty several rows at once across graphs.
    Rng mut(77);
    for (int round = 0; round < 5; ++round) {
      for (auto& g : graphs) {
        for (int k = 0; k < 6; ++k) {
          const std::size_t v = static_cast<std::size_t>(mut.uniform_int(
              0, static_cast<int>(g.features.rows()) - 1));
          const std::size_t c = static_cast<std::size_t>(mut.uniform_int(
              0, static_cast<int>(g.features.cols()) - 1));
          g.features(v, c) = mut.uniform(-1, 1);
        }
      }
      expect_cached_matches_full(gnn, graphs, cache);
    }
    // Partial recompute actually happened (not silent full rebuilds).
    EXPECT_LT(cache.stats().nodes_recomputed, cache.stats().nodes_total);
    EXPECT_EQ(cache.stats().graphs_rebuilt, graphs.size());  // only the cold pass
  }
}

TEST(EmbeddingCache, EpisodeCachedMatchesEmbedEpisodePerSession) {
  Rng rng(5);
  gnn::GraphEmbedding gnn(gnn::GnnConfig{}, rng);
  auto s0 = synthetic_graphs(1, 2, 30);
  auto s1 = synthetic_graphs(50, 3, 12);
  gnn::EmbeddingCache c0, c1;

  for (int round = 0; round < 3; ++round) {
    std::vector<const gnn::JobGraph*> graphs;
    std::vector<std::size_t> event_of_graph;
    for (const auto& g : s0) { graphs.push_back(&g); event_of_graph.push_back(0); }
    for (const auto& g : s1) { graphs.push_back(&g); event_of_graph.push_back(1); }

    nn::Tape tc(false), tf(false);
    const auto ec = gnn.embed_episode_cached(tc, graphs, event_of_graph, 2,
                                             {&c0, &c1});
    const auto ef = gnn.embed_episode(tf, graphs, event_of_graph, 2);
    expect_matrix_near(tc.value(ec.node_all), tf.value(ef.node_all));
    expect_matrix_near(tc.value(ec.feat_all), tf.value(ef.feat_all));
    expect_matrix_near(tc.value(ec.job_mat), tf.value(ef.job_mat));
    expect_matrix_near(tc.value(ec.global_mat), tf.value(ef.global_mat));
    EXPECT_EQ(ec.node_offset, ef.node_offset);

    s0[0].features(3, 2) += 0.5;   // session 0 gets a dirty node
    s1[1].features(0, 0) -= 0.25;  // so does session 1
  }
  EXPECT_LT(c0.stats().nodes_recomputed, c0.stats().nodes_total);
}

TEST(EmbeddingCache, ParamVersionChangeInvalidates) {
  Rng rng(9);
  gnn::GraphEmbedding gnn(gnn::GnnConfig{}, rng);
  auto graphs = synthetic_graphs(200, 2, 20);
  gnn::EmbeddingCache cache;
  nn::ParamSet params = gnn.param_set();

  cache.ensure_param_version(params.version());
  expect_cached_matches_full(gnn, graphs, cache);

  // Mutate the weights through a value-mutating entry point (an Adam step
  // with nonzero grads) — the version bump must force a full rebuild, and
  // the cached result must match the new weights, not the old ones.
  for (nn::Param* p : params.params()) p->grad.fill(0.5);
  nn::Adam adam(&params);
  adam.step();
  cache.ensure_param_version(params.version());
  EXPECT_EQ(cache.size(), 0u);  // cleared
  expect_cached_matches_full(gnn, graphs, cache);
}

// --- Agent-level equivalence over real simulated episodes -------------------

sim::EnvConfig small_env(int executors = 20) {
  sim::EnvConfig env;
  env.num_executors = executors;
  return env;
}

std::vector<workload::ArrivingJob> staggered_jobs(std::uint64_t seed,
                                                  int count) {
  // Staggered arrivals: jobs appear (and complete) mid-episode, exercising
  // cache entry creation and garbage collection during one session.
  Rng rng(seed);
  const auto specs = workload::sample_tpch_batch(rng, count);
  std::vector<workload::ArrivingJob> jobs;
  for (int i = 0; i < count; ++i) {
    jobs.push_back({specs[static_cast<std::size_t>(i)], 40.0 * i});
  }
  return jobs;
}

// Runs one greedy episode and returns the (job, stage, limit, class) trace.
std::vector<std::array<int, 4>> run_trace(core::DecimaAgent& agent,
                                          const sim::EnvConfig& env_config,
                                          const std::vector<workload::ArrivingJob>& jobs) {
  sim::ClusterEnv env(env_config);
  workload::load(env, jobs);
  struct Recorder : sim::Scheduler {
    core::DecimaAgent* inner = nullptr;
    std::vector<std::array<int, 4>>* out = nullptr;
    sim::Action schedule(const sim::ClusterEnv& e) override {
      const sim::Action a = inner->schedule(e);
      if (a.valid()) out->push_back({a.node.job, a.node.stage, a.limit, a.exec_class});
      return a;
    }
    std::string name() const override { return "rec"; }
  } rec;
  std::vector<std::array<int, 4>> trace;
  rec.inner = &agent;
  rec.out = &trace;
  env.run(rec);
  EXPECT_TRUE(env.all_done());
  return trace;
}

void expect_same_trace(const core::AgentConfig& config,
                       const sim::EnvConfig& env_config,
                       const std::vector<workload::ArrivingJob>& jobs) {
  core::AgentConfig on = config, off = config;
  on.embed_cache = true;
  off.embed_cache = false;
  core::DecimaAgent agent_on(on), agent_off(off);
  const auto ta = run_trace(agent_on, env_config, jobs);
  const auto tb = run_trace(agent_off, env_config, jobs);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(ta[i], tb[i]) << i;
  // The episode had real reuse to validate, not wall-to-wall rebuilds: some
  // node embeddings were served from cache rather than recomputed.
  const auto& stats = agent_on.embed_cache_stats();
  EXPECT_LT(stats.nodes_recomputed, stats.nodes_total);
}

TEST(EmbeddingCacheAgent, GreedyTraceMatchesUncachedOnArrivalsAndCompletions) {
  core::AgentConfig config;
  config.seed = 3;
  expect_same_trace(config, small_env(), staggered_jobs(21, 6));
}

TEST(EmbeddingCacheAgent, TraceMatchesAcrossAblations) {
  const auto jobs = staggered_jobs(22, 4);
  for (core::LimitEncoding enc :
       {core::LimitEncoding::kScalarInput, core::LimitEncoding::kSeparateOutputs,
        core::LimitEncoding::kStageLevel}) {
    core::AgentConfig config;
    config.seed = 4;
    config.limit_encoding = enc;
    expect_same_trace(config, small_env(), jobs);
  }
  {
    core::AgentConfig config;
    config.seed = 5;
    config.two_level_aggregation = false;
    expect_same_trace(config, small_env(), jobs);
  }
  {
    core::AgentConfig config;
    config.seed = 6;
    config.parallelism_control = false;
    expect_same_trace(config, small_env(), jobs);
  }
  {
    core::AgentConfig config;
    config.seed = 7;
    config.features.iat_hint = true;
    expect_same_trace(config, small_env(), jobs);
  }
}

TEST(EmbeddingCacheAgent, TraceMatchesMultiResource) {
  core::AgentConfig config;
  config.seed = 8;
  config.multi_resource = true;
  sim::EnvConfig env = small_env(24);
  env.classes = {sim::ExecutorClass{0.25, "s"}, sim::ExecutorClass{0.5, "m"},
                 sim::ExecutorClass{0.75, "l"}, sim::ExecutorClass{1.0, "xl"}};
  expect_same_trace(config, env, staggered_jobs(23, 5));
}

TEST(EmbeddingCacheAgent, TraceMatchesUncachedUnderExecutorFaults) {
  // Executor failures kill running tasks mid-episode (waiting counts jump,
  // allocations shrink, the free-executor pool moves); recoveries bring
  // capacity back. Every one of those transitions must bump the feature/job
  // epochs so cached rows are re-embedded — a stale row would silently skew
  // decisions. Hand-written outages first, then a randomized sweep with
  // stragglers and heterogeneous speeds layered on.
  {
    core::AgentConfig config;
    config.seed = 11;
    sim::EnvConfig env = small_env();
    env.faults.failures = {
        {/*executor=*/2, /*fail_at=*/30.0, /*recover_at=*/90.0},
        {/*executor=*/5, /*fail_at=*/50.0}};
    expect_same_trace(config, env, staggered_jobs(26, 5));
  }
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    core::AgentConfig config;
    config.seed = 12;
    sim::EnvConfig env = small_env();
    Rng frng(seed);
    env.faults.failures = sim::random_failures(
        frng, env.num_executors, 4, 150.0, /*mean_downtime=*/60.0);
    env.faults.stragglers = {/*prob=*/0.15, /*factor=*/3.0};
    env.faults.executor_speeds =
        sim::heterogeneous_speeds(frng, env.num_executors, 0.25, 2.0);
    env.faults.seed = 40 + seed;
    expect_same_trace(config, env, staggered_jobs(30 + seed, 4));
  }
}

TEST(EmbeddingCacheAgent, MidRunToggleMatchesAlwaysOn) {
  // Disable <-> enable mid-episode: drive two identical envs in lockstep,
  // toggling one agent's cache every few actions. Decisions must never
  // diverge from the always-on agent.
  core::AgentConfig config;
  config.seed = 9;
  core::DecimaAgent steady(config), toggled(config);
  const auto jobs = staggered_jobs(24, 5);
  sim::ClusterEnv env_a(small_env());
  sim::ClusterEnv env_b(small_env());
  workload::load(env_a, jobs);
  workload::load(env_b, jobs);
  bool on = true;
  for (int step = 0; step < 400 && !(env_a.all_done() && env_b.all_done());
       ++step) {
    env_a.run(steady, sim::kInfTime, 3);
    env_b.run(toggled, sim::kInfTime, 3);
    ASSERT_EQ(env_a.now(), env_b.now()) << "step " << step;
    ASSERT_EQ(env_a.num_events_processed(), env_b.num_events_processed());
    on = !on;
    toggled.set_embed_cache(on);
  }
  EXPECT_TRUE(env_a.all_done());
  EXPECT_TRUE(env_b.all_done());
  EXPECT_EQ(env_a.avg_jct(), env_b.avg_jct());
  EXPECT_EQ(env_a.trace().size(), env_b.trace().size());
}

TEST(EmbeddingCacheAgent, DecideWithSessionCacheMatchesSchedule) {
  // decide(env, &cache) across a session's consecutive events must keep
  // matching the mutable schedule() path (which runs its own cache).
  core::AgentConfig config;
  config.seed = 10;
  core::DecimaAgent agent(config);
  const auto served = agent.clone();
  gnn::EmbeddingCache session_cache;

  sim::ClusterEnv env(small_env());
  workload::load(env, staggered_jobs(25, 4));
  struct Check : sim::Scheduler {
    core::DecimaAgent* mutable_agent = nullptr;
    const core::DecimaAgent* snapshot = nullptr;
    gnn::EmbeddingCache* cache = nullptr;
    int checked = 0;
    sim::Action schedule(const sim::ClusterEnv& e) override {
      const sim::Action a = mutable_agent->schedule(e);
      const sim::Action b = snapshot->decide(e, cache);
      EXPECT_EQ(a.node.job, b.node.job);
      EXPECT_EQ(a.node.stage, b.node.stage);
      EXPECT_EQ(a.limit, b.limit);
      EXPECT_EQ(a.exec_class, b.exec_class);
      ++checked;
      return a;
    }
    std::string name() const override { return "check"; }
  } check;
  check.mutable_agent = &agent;
  check.snapshot = served.get();
  check.cache = &session_cache;
  env.run(check);
  EXPECT_TRUE(env.all_done());
  EXPECT_GT(check.checked, 20);
  EXPECT_GT(session_cache.stats().graphs_reused +
                session_cache.stats().epoch_fast_hits,
            0u);
}

TEST(EmbeddingCacheAgent, TrainingWithCachedRolloutsIsUnchanged) {
  // Rollout sampling goes through schedule(); with the cache on, the sampled
  // probabilities — and therefore the whole training run — must be
  // identical. Replay itself never uses the cache (gradients need the tape).
  auto train = [](bool cache_on) {
    core::AgentConfig agent_config;
    agent_config.seed = 11;
    agent_config.embed_cache = cache_on;
    core::DecimaAgent agent(agent_config);
    rl::TrainConfig train_config;
    train_config.num_iterations = 2;
    train_config.episodes_per_iter = 2;
    train_config.rollout_threads = 2;
    train_config.env.num_executors = 10;
    train_config.sampler = [](std::uint64_t seed) {
      Rng rng(seed);
      return workload::batched(workload::sample_tpch_batch(rng, 3));
    };
    rl::ReinforceTrainer trainer(agent, train_config);
    trainer.train();
    std::vector<double> values;
    for (const nn::Param* p : agent.params().params()) {
      values.insert(values.end(), p->value.raw().begin(), p->value.raw().end());
    }
    return values;
  };
  const auto with_cache = train(true);
  const auto without = train(false);
  ASSERT_EQ(with_cache.size(), without.size());
  for (std::size_t i = 0; i < with_cache.size(); ++i) {
    EXPECT_NEAR(with_cache[i], without[i], kTol) << "param " << i;
  }
}

}  // namespace
}  // namespace decima
