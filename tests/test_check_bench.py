#!/usr/bin/env python3
"""Unit tests for scripts/check_bench.py (the CI perf-regression gate).

Runs under plain ``python3 tests/test_check_bench.py`` (the ctest
``check_bench_unit`` entry) and is collected by pytest unchanged.
"""

import json
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

import check_bench  # noqa: E402
from check_bench import (BenchError, check_rows, collect_rows,  # noqa: E402
                         floor_for, load_bench_file)


class FloorTest(unittest.TestCase):
    REGISTRY = {"BENCH_a.json": {"hot_speedup": 1.5}}

    def test_min_ratio_is_the_default_floor(self):
        self.assertEqual(
            floor_for("BENCH_a.json", "other_speedup", 0.9,
                      registry=self.REGISTRY), 0.9)

    def test_registry_floor_overrides_min_ratio(self):
        self.assertEqual(
            floor_for("BENCH_a.json", "hot_speedup", 0.9,
                      registry=self.REGISTRY), 1.5)

    def test_registry_floor_is_per_file(self):
        self.assertEqual(
            floor_for("BENCH_b.json", "hot_speedup", 0.9,
                      registry=self.REGISTRY), 0.9)

    def test_cli_strict_key_wins_over_registry(self):
        self.assertEqual(
            floor_for("BENCH_a.json", "hot_speedup", 0.9,
                      strict={"hot_speedup": 2.0}, registry=self.REGISTRY),
            2.0)


class CheckRowsTest(unittest.TestCase):
    def test_all_above_floor_passes(self):
        rows = [("BENCH_a.json", "x_speedup", 1.2),
                ("BENCH_a.json", "y_speedup", 0.95)]
        failures, lines = check_rows(rows, min_ratio=0.9)
        self.assertEqual(failures, [])
        self.assertEqual(len(lines), 2 + len(rows))  # header + rows

    def test_ratio_below_floor_is_a_failure(self):
        rows = [("BENCH_a.json", "x_speedup", 0.8)]
        failures, _ = check_rows(rows, min_ratio=0.9)
        self.assertEqual(failures, [("BENCH_a.json", "x_speedup", 0.8, 0.9)])

    def test_registry_floor_catches_headline_regression(self):
        # 1.2x clears the generic floor but not the registered 1.5x one.
        rows = [("BENCH_a.json", "hot_speedup", 1.2)]
        registry = {"BENCH_a.json": {"hot_speedup": 1.5}}
        failures, _ = check_rows(rows, 0.9, registry=registry)
        self.assertEqual(failures, [("BENCH_a.json", "hot_speedup", 1.2, 1.5)])

    def test_value_exactly_at_floor_passes(self):
        failures, _ = check_rows([("BENCH_a.json", "x_speedup", 0.9)], 0.9)
        self.assertEqual(failures, [])


class CollectRowsTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def write(self, name, payload):
        path = self.dir / name
        path.write_text(payload if isinstance(payload, str)
                        else json.dumps(payload))
        return path

    def test_collects_only_numeric_speedup_keys(self):
        self.write("BENCH_a.json", {"x_speedup": 1.5, "latency_us": 12.0,
                                    "note_speedup": "fast", "flag_speedup": True})
        _, rows = collect_rows(self.dir)
        self.assertEqual(rows, [("BENCH_a.json", "x_speedup", 1.5)])

    def test_missing_dir_is_a_clear_error(self):
        with self.assertRaisesRegex(BenchError, "does not exist"):
            collect_rows(self.dir / "nope")

    def test_malformed_json_is_a_clear_error(self):
        path = self.write("BENCH_a.json", '{"x_speedup": 1.')
        with self.assertRaisesRegex(BenchError, "not valid JSON"):
            load_bench_file(path)
        with self.assertRaises(BenchError):
            collect_rows(self.dir)

    def test_non_object_top_level_is_a_clear_error(self):
        path = self.write("BENCH_a.json", [1, 2, 3])
        with self.assertRaisesRegex(BenchError, "flat JSON object"):
            load_bench_file(path)

    def test_unregistered_bench_file_is_rejected(self):
        self.write("BENCH_rogue.json", {"x_speedup": 9.0})
        with self.assertRaisesRegex(BenchError, "unregistered"):
            collect_rows(self.dir, registry={"BENCH_a.json": {}})

    def test_registry_listed_indicator_keys_are_collected(self):
        # Indicator metrics (no "speedup" in the name) are gathered — and
        # therefore gated — when the registry lists them.
        self.write("BENCH_a.json", {"all_answered": 1.0, "x_speedup": 1.2,
                                    "raw_counter": 42.0})
        registry = {"BENCH_a.json": {"all_answered": 1.0}}
        _, rows = collect_rows(self.dir, registry=registry)
        self.assertEqual(sorted(rows),
                         [("BENCH_a.json", "all_answered", 1.0),
                          ("BENCH_a.json", "x_speedup", 1.2)])

    def test_missing_registered_key_in_present_file_is_rejected(self):
        self.write("BENCH_a.json", {"x_speedup": 1.2})
        registry = {"BENCH_a.json": {"all_answered": 1.0}}
        with self.assertRaisesRegex(BenchError, "all_answered"):
            collect_rows(self.dir, registry=registry)

    def test_non_numeric_registered_key_is_rejected(self):
        self.write("BENCH_a.json", {"all_answered": "yes"})
        registry = {"BENCH_a.json": {"all_answered": 1.0}}
        with self.assertRaisesRegex(BenchError, "all_answered"):
            collect_rows(self.dir, registry=registry)

    def test_indicator_below_floor_fails_the_gate(self):
        # A tripped invariant reports 0.0 against its 1.0 floor.
        rows = [("BENCH_a.json", "all_answered", 0.0)]
        registry = {"BENCH_a.json": {"all_answered": 1.0}}
        failures, _ = check_rows(rows, 0.9, registry=registry)
        self.assertEqual(failures,
                         [("BENCH_a.json", "all_answered", 0.0, 1.0)])

    def test_missing_registered_file_is_rejected_unless_allowed(self):
        self.write("BENCH_a.json", {"x_speedup": 1.1})
        registry = {"BENCH_a.json": {}, "BENCH_b.json": {}}
        with self.assertRaisesRegex(BenchError, "BENCH_b.json"):
            collect_rows(self.dir, registry=registry)
        files, rows = collect_rows(self.dir, registry=registry,
                                   allow_missing=True)
        self.assertEqual(len(files), 1)
        self.assertEqual(rows, [("BENCH_a.json", "x_speedup", 1.1)])


class RegistryTest(unittest.TestCase):
    def test_every_registry_floor_is_a_sane_ratio(self):
        # Registered keys are speedup ratios or indicator metrics (1.0 =
        # invariant held) with floors >= 1.0, except overhead ratios
        # (``*_vs_off_ratio``): their ideal is exactly 1.0 (the compared arm
        # should cost nothing), so their floor sits just under it as a noise
        # tolerance — never below 0.95.
        for fname, floors in check_bench.BENCH_REGISTRY.items():
            self.assertTrue(fname.startswith("BENCH_") and
                            fname.endswith(".json"), fname)
            for key, floor in floors.items():
                if key.endswith("_vs_off_ratio"):
                    self.assertGreaterEqual(floor, 0.95, key)
                    self.assertLess(floor, 1.0, key)
                else:
                    self.assertGreaterEqual(floor, 1.0, key)

    def test_observability_registry_gates_the_overhead_ratio(self):
        floors = check_bench.BENCH_REGISTRY["BENCH_observability.json"]
        self.assertIn("metrics_on_vs_off_ratio", floors)

    def test_scenarios_registry_gates_the_overload_invariants(self):
        floors = check_bench.BENCH_REGISTRY["BENCH_scenarios.json"]
        for key in ("clean_policy_vs_worst_heuristic_speedup",
                    "overload_all_answered", "overload_bounded_queue",
                    "overload_fallback_nonzero"):
            self.assertIn(key, floors)


if __name__ == "__main__":
    unittest.main()
