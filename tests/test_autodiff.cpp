// Gradient correctness of the autodiff tape: every operator is verified
// against central finite differences. This is the foundation the GNN and
// policy-gradient training rest on.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/tape.h"
#include "util/rng.h"

namespace decima::nn {
namespace {

// Finite-difference check: builds the graph with `forward` (which must use
// the provided params), compares analytic parameter gradients to central
// differences. Returns the max relative error.
double grad_check(std::vector<Param*> params,
                  const std::function<Var(Tape&)>& forward,
                  double eps = 1e-6) {
  // Analytic gradients.
  for (Param* p : params) p->zero_grad();
  {
    Tape tape;
    Var out = forward(tape);
    tape.backward(out);
  }
  double max_err = 0.0;
  for (Param* p : params) {
    for (std::size_t i = 0; i < p->value.raw().size(); ++i) {
      const double orig = p->value.raw()[i];
      p->value.raw()[i] = orig + eps;
      double f_plus;
      {
        Tape tape;
        f_plus = tape.value(forward(tape))(0, 0);
      }
      p->value.raw()[i] = orig - eps;
      double f_minus;
      {
        Tape tape;
        f_minus = tape.value(forward(tape))(0, 0);
      }
      p->value.raw()[i] = orig;
      const double numeric = (f_plus - f_minus) / (2 * eps);
      const double analytic = p->grad.raw()[i];
      const double scale = std::max({std::abs(numeric), std::abs(analytic), 1.0});
      max_err = std::max(max_err, std::abs(numeric - analytic) / scale);
    }
  }
  return max_err;
}

Param make_param(const std::string& name, std::size_t r, std::size_t c,
                 std::uint64_t seed) {
  Param p(name, r, c);
  Rng rng(seed);
  for (double& v : p.value.raw()) v = rng.uniform(-1.0, 1.0);
  return p;
}

TEST(Autodiff, MatmulGradient) {
  Param a = make_param("a", 1, 4, 1);
  Param b = make_param("b", 4, 3, 2);
  Param c = make_param("c", 3, 1, 3);
  const double err = grad_check({&a, &b, &c}, [&](Tape& t) {
    return t.matmul(t.matmul(t.param(a), t.param(b)), t.param(c));
  });
  EXPECT_LT(err, 1e-6);
}

TEST(Autodiff, AddAndScale) {
  Param a = make_param("a", 1, 1, 4);
  Param b = make_param("b", 1, 1, 5);
  const double err = grad_check({&a, &b}, [&](Tape& t) {
    return t.add(t.scale(t.param(a), 2.5), t.param(b));
  });
  EXPECT_LT(err, 1e-6);
}

TEST(Autodiff, AddBiasBroadcast) {
  Param x = make_param("x", 3, 2, 6);
  Param b = make_param("b", 1, 2, 7);
  Param w = make_param("w", 2, 1, 8);
  const double err = grad_check({&x, &b, &w}, [&](Tape& t) {
    Var h = t.add_bias(t.param(x), t.param(b));  // 3x2
    return t.matmul(t.sum_rows(h), t.param(w));  // 1x1
  });
  EXPECT_LT(err, 1e-6);
}

TEST(Autodiff, LeakyReluGradient) {
  Param a = make_param("a", 1, 6, 9);
  Param w = make_param("w", 6, 1, 10);
  const double err = grad_check({&a, &w}, [&](Tape& t) {
    return t.matmul(t.leaky_relu(t.param(a), 0.2), t.param(w));
  });
  EXPECT_LT(err, 1e-5);  // kink at 0 tolerated via random values
}

TEST(Autodiff, TanhGradient) {
  Param a = make_param("a", 1, 4, 11);
  Param w = make_param("w", 4, 1, 12);
  const double err = grad_check({&a, &w}, [&](Tape& t) {
    return t.matmul(t.tanh(t.param(a)), t.param(w));
  });
  EXPECT_LT(err, 1e-6);
}

TEST(Autodiff, AddnGradient) {
  Param a = make_param("a", 1, 3, 13);
  Param b = make_param("b", 1, 3, 14);
  Param c = make_param("c", 1, 3, 15);
  Param w = make_param("w", 3, 1, 16);
  const double err = grad_check({&a, &b, &c, &w}, [&](Tape& t) {
    Var s = t.addn({t.param(a), t.param(b), t.param(c)});
    return t.matmul(s, t.param(w));
  });
  EXPECT_LT(err, 1e-6);
}

TEST(Autodiff, ConcatColsGradient) {
  Param a = make_param("a", 1, 2, 17);
  Param b = make_param("b", 1, 3, 18);
  Param w = make_param("w", 5, 1, 19);
  const double err = grad_check({&a, &b, &w}, [&](Tape& t) {
    return t.matmul(t.concat_cols({t.param(a), t.param(b)}), t.param(w));
  });
  EXPECT_LT(err, 1e-6);
}

TEST(Autodiff, RowAndElementGradient) {
  Param a = make_param("a", 3, 3, 20);
  Param w = make_param("w", 3, 1, 21);
  const double err = grad_check({&a, &w}, [&](Tape& t) {
    Var r = t.row(t.param(a), 1);
    Var e = t.element(t.param(a), 2, 2);
    return t.add(t.matmul(r, t.param(w)), e);
  });
  EXPECT_LT(err, 1e-6);
}

TEST(Autodiff, SumRowsGradient) {
  Param a = make_param("a", 4, 2, 22);
  Param w = make_param("w", 2, 1, 23);
  const double err = grad_check({&a, &w}, [&](Tape& t) {
    return t.matmul(t.sum_rows(t.param(a)), t.param(w));
  });
  EXPECT_LT(err, 1e-6);
}

TEST(Autodiff, ConcatScalarsAndLogProbPick) {
  Param a = make_param("a", 1, 1, 24);
  Param b = make_param("b", 1, 1, 25);
  Param c = make_param("c", 1, 1, 26);
  const double err = grad_check({&a, &b, &c}, [&](Tape& t) {
    Var logits = t.concat_scalars({t.param(a), t.param(b), t.param(c)});
    return t.log_prob_pick(logits, 1);
  });
  EXPECT_LT(err, 1e-6);
}

TEST(Autodiff, EntropyGradient) {
  Param a = make_param("a", 1, 5, 27);
  const double err = grad_check({&a}, [&](Tape& t) {
    return t.entropy(t.param(a));
  });
  EXPECT_LT(err, 1e-5);
}

TEST(Autodiff, SharedParamAccumulates) {
  // The same parameter used twice must receive the sum of both paths.
  Param a = make_param("a", 1, 1, 28);
  const double err = grad_check({&a}, [&](Tape& t) {
    Var x = t.param(a);
    return t.add(t.scale(x, 2.0), t.scale(x, 3.0));  // f = 5a
  });
  EXPECT_LT(err, 1e-8);
  // And the absolute value: df/da = 5.
  a.zero_grad();
  Tape t;
  Var x = t.param(a);
  Var out = t.add(t.scale(x, 2.0), t.scale(x, 3.0));
  t.backward(out);
  EXPECT_NEAR(a.grad(0, 0), 5.0, 1e-12);
}

TEST(Autodiff, BackwardSeedScalesGradient) {
  Param a = make_param("a", 1, 1, 29);
  a.zero_grad();
  Tape t;
  Var out = t.scale(t.param(a), 4.0);
  t.backward(out, -2.5);
  EXPECT_NEAR(a.grad(0, 0), -10.0, 1e-12);
}

TEST(Autodiff, SoftmaxValuesSumToOne) {
  Tape t;
  Var logits = t.constant(Matrix(1, 4, {0.1, 2.0, -1.0, 0.5}));
  const auto p = t.softmax_values(logits);
  double sum = 0.0;
  for (double v : p) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(p[1], p[2]);  // larger logit, larger probability
}

TEST(Autodiff, LogProbMatchesSoftmax) {
  Tape t;
  Var logits = t.constant(Matrix(1, 3, {1.0, 2.0, 3.0}));
  const auto p = t.softmax_values(logits);
  const Var lp = t.log_prob_pick(logits, 2);
  EXPECT_NEAR(t.value(lp)(0, 0), std::log(p[2]), 1e-12);
}

TEST(Autodiff, SegmentedLogProbMatchesPerSegment) {
  // A stacked 3-segment logits column vs three per-segment log_prob_picks:
  // values and gradients must agree exactly.
  Param logits = make_param("logits", 7, 1, 44);
  const std::vector<std::size_t> starts = {0, 3, 4};
  const std::vector<std::size_t> picks = {2, 0, 1};
  const std::vector<std::size_t> ends = {3, 4, 7};
  const Matrix weights(3, 1, {0.7, -1.3, 0.4});

  logits.zero_grad();
  Tape ts;
  const Var seg = ts.log_prob_pick_segments(ts.param(logits), starts, picks);
  ts.backward(ts.matmul(seg, ts.constant(weights)));
  const Matrix seg_grad = logits.grad;
  const Matrix seg_val = ts.value(seg);

  logits.zero_grad();
  Tape tr;
  const Var col = tr.param(logits);
  std::vector<Var> lps;
  for (std::size_t s = 0; s < starts.size(); ++s) {
    std::vector<Var> rows;
    for (std::size_t r = starts[s]; r < ends[s]; ++r) {
      rows.push_back(tr.element(col, r, 0));
    }
    lps.push_back(tr.scale(
        tr.log_prob_pick(tr.concat_scalars(rows), picks[s]), weights(s, 0)));
  }
  tr.backward(tr.addn(lps));
  for (std::size_t s = 0; s < starts.size(); ++s) {
    EXPECT_NEAR(seg_val(0, s), tr.value(lps[s])(0, 0) / weights(s, 0), 1e-12);
  }
  for (std::size_t i = 0; i < logits.grad.raw().size(); ++i) {
    EXPECT_NEAR(seg_grad.raw()[i], logits.grad.raw()[i], 1e-14) << "row " << i;
  }

  const double err = grad_check({&logits}, [&](Tape& t) {
    return t.matmul(t.log_prob_pick_segments(t.param(logits), starts, picks),
                    t.constant(weights));
  });
  EXPECT_LT(err, 1e-5);
}

TEST(Autodiff, SegmentedEntropyMatchesPerSegment) {
  Param logits = make_param("logits", 6, 1, 45);
  const std::vector<std::size_t> starts = {0, 2, 5};  // last segment size 1
  const std::vector<std::size_t> ends = {2, 5, 6};
  const Matrix weights(3, 1, {1.0, -0.5, 2.0});

  logits.zero_grad();
  Tape ts;
  const Var seg = ts.entropy_segments(ts.param(logits), starts);
  ts.backward(ts.matmul(seg, ts.constant(weights)));
  const Matrix seg_grad = logits.grad;
  const Matrix seg_val = ts.value(seg);
  // Singleton segment: zero entropy and zero gradient, exactly.
  EXPECT_EQ(seg_val(0, 2), 0.0);

  logits.zero_grad();
  Tape tr;
  const Var col = tr.param(logits);
  std::vector<Var> hs;
  for (std::size_t s = 0; s < starts.size(); ++s) {
    std::vector<Var> rows;
    for (std::size_t r = starts[s]; r < ends[s]; ++r) {
      rows.push_back(tr.element(col, r, 0));
    }
    hs.push_back(
        tr.scale(tr.entropy(tr.concat_scalars(rows)), weights(s, 0)));
  }
  tr.backward(tr.addn(hs));
  for (std::size_t s = 0; s < starts.size(); ++s) {
    EXPECT_NEAR(seg_val(0, s), tr.value(hs[s])(0, 0) / weights(s, 0), 1e-12);
  }
  for (std::size_t i = 0; i < logits.grad.raw().size(); ++i) {
    EXPECT_NEAR(seg_grad.raw()[i], logits.grad.raw()[i], 1e-14) << "row " << i;
  }

  const double err = grad_check({&logits}, [&](Tape& t) {
    return t.matmul(t.entropy_segments(t.param(logits), starts),
                    t.constant(weights));
  });
  EXPECT_LT(err, 1e-5);
}

TEST(Autodiff, ConstantsHaveNoGradientPath) {
  Param a = make_param("a", 1, 1, 30);
  a.zero_grad();
  Tape t;
  Var c = t.constant(Matrix(1, 1, {3.0}));
  Var out = t.add(t.param(a), c);
  t.backward(out);
  EXPECT_NEAR(a.grad(0, 0), 1.0, 1e-12);  // flows through param only
}

// Property-style sweep: random small MLP-like compositions gradcheck clean.
class RandomGraphGradcheck : public ::testing::TestWithParam<int> {};

TEST_P(RandomGraphGradcheck, MlpLikeComposition) {
  const int seed = GetParam();
  Param w1 = make_param("w1", 4, 8, static_cast<std::uint64_t>(seed * 3 + 1));
  Param b1 = make_param("b1", 1, 8, static_cast<std::uint64_t>(seed * 3 + 2));
  Param w2 = make_param("w2", 8, 1, static_cast<std::uint64_t>(seed * 3 + 3));
  Rng rng(static_cast<std::uint64_t>(seed));
  Matrix x(2, 4);
  for (double& v : x.raw()) v = rng.uniform(-1, 1);
  const double err = grad_check({&w1, &b1, &w2}, [&](Tape& t) {
    Var h = t.leaky_relu(t.add_bias(t.matmul(t.constant(x), t.param(w1)),
                                    t.param(b1)));
    return t.sum_rows(t.matmul(h, t.param(w2)));
  });
  EXPECT_LT(err, 1e-5) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphGradcheck,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace decima::nn
