// The batched inference path (GnnConfig::batched / AgentConfig::
// batched_inference) must be a pure performance change: embeddings and
// gradients have to match the one-node-at-a-time reference implementation to
// floating-point noise, and REINFORCE training must stay deterministic across
// thread counts.
#include <gtest/gtest.h>

#include <cmath>

#include "gnn/graph_embedding.h"
#include "rl/reinforce.h"

namespace decima {
namespace {

constexpr double kTol = 1e-10;

gnn::JobGraph random_dag(std::uint64_t seed, int n) {
  return gnn::random_job_graph(seed, n);
}

// Two GraphEmbeddings with identical weights, one per configuration.
struct Pair {
  Rng rng_b{7};
  Rng rng_r{7};
  gnn::GraphEmbedding batched;
  gnn::GraphEmbedding reference;

  explicit Pair(bool two_level = true)
      : batched(config(true, two_level), rng_b),
        reference(config(false, two_level), rng_r) {}

  static gnn::GnnConfig config(bool batched, bool two_level) {
    gnn::GnnConfig c;
    c.batched = batched;
    c.two_level_aggregation = two_level;
    return c;
  }
};

void expect_matrix_near(const nn::Matrix& a, const nn::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.raw().size(); ++i) {
    EXPECT_NEAR(a.raw()[i], b.raw()[i], kTol);
  }
}

// A scalar reduction over every embedding level, built the same way on both
// tapes so gradient flow is comparable.
nn::Var embedding_loss(nn::Tape& tape, const gnn::Embeddings& emb,
                       std::size_t emb_dim) {
  std::vector<nn::Var> parts = emb.node_mat;
  parts.push_back(emb.job_mat);
  parts.push_back(emb.global_emb);
  const nn::Var total = tape.sum_rows(tape.concat_rows(parts));
  const nn::Var ones = tape.constant(nn::Matrix(emb_dim, 1, 1.0));
  return tape.matmul(total, ones);
}

TEST(BatchedEquivalence, ForwardEmbeddingsMatch) {
  for (bool two_level : {true, false}) {
    Pair gnns(two_level);
    const std::vector<gnn::JobGraph> graphs = {random_dag(1, 50),
                                               random_dag(2, 17),
                                               random_dag(3, 1)};
    nn::Tape tb(false), tr(false);
    const auto eb = gnns.batched.embed(tb, graphs);
    const auto er = gnns.reference.embed(tr, graphs);
    for (std::size_t g = 0; g < graphs.size(); ++g) {
      expect_matrix_near(tb.value(eb.node_mat[g]), tr.value(er.node_mat[g]));
      expect_matrix_near(tb.value(eb.proj_mat[g]), tr.value(er.proj_mat[g]));
      for (std::size_t v = 0; v < eb.node_emb[g].size(); ++v) {
        expect_matrix_near(tb.value(eb.node_emb[g][v]),
                           tr.value(er.node_emb[g][v]));
      }
    }
    expect_matrix_near(tb.value(eb.job_mat), tr.value(er.job_mat));
    expect_matrix_near(tb.value(eb.global_emb), tr.value(er.global_emb));
  }
}

TEST(BatchedEquivalence, GradientsMatchReference) {
  Pair gnns;
  const std::vector<gnn::JobGraph> graphs = {random_dag(11, 50),
                                             random_dag(12, 23)};
  const std::size_t d =
      static_cast<std::size_t>(gnns.batched.config().emb_dim);

  auto grads = [&](gnn::GraphEmbedding& gnn) {
    auto params = gnn.param_set();
    params.zero_grads();
    nn::Tape tape;
    const auto emb = gnn.embed(tape, graphs);
    tape.backward(embedding_loss(tape, emb, d));
    return params.flat_grads();
  };
  const auto gb = grads(gnns.batched);
  const auto gr = grads(gnns.reference);
  ASSERT_EQ(gb.size(), gr.size());
  double max_abs = 0.0;
  for (std::size_t i = 0; i < gb.size(); ++i) {
    EXPECT_NEAR(gb[i], gr[i], kTol);
    max_abs = std::max(max_abs, std::abs(gb[i]));
  }
  // The comparison must be over real gradients, not a sea of zeros.
  EXPECT_GT(max_abs, 1e-3);
}

// --- Full-pipeline checks through the trainer -------------------------------

sim::EnvConfig tiny_env() {
  sim::EnvConfig c;
  c.num_executors = 3;
  return c;
}

rl::WorkloadSampler sampler() {
  return [](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<sim::JobSpec> jobs;
    for (int i = 0; i < 3; ++i) {
      sim::JobBuilder b("job" + std::to_string(i));
      const int stages = rng.uniform_int(2, 5);
      for (int s = 0; s < stages; ++s) {
        b.stage(rng.uniform_int(1, 6), rng.uniform(0.5, 2.0),
                s > 0 ? std::vector<int>{s - 1} : std::vector<int>{});
      }
      jobs.push_back(b.build());
    }
    return workload::batched(std::move(jobs));
  };
}

rl::TrainConfig train_config(int threads) {
  rl::TrainConfig c;
  c.num_iterations = 2;
  c.episodes_per_iter = 4;
  c.num_threads = threads;
  c.curriculum = false;
  c.differential_reward = false;
  c.env = tiny_env();
  c.sampler = sampler();
  c.seed = 5;
  return c;
}

std::vector<double> flat_params(core::DecimaAgent& agent) {
  std::vector<double> out;
  for (const nn::Param* p : agent.params().params()) {
    out.insert(out.end(), p->value.raw().begin(), p->value.raw().end());
  }
  return out;
}

TEST(BatchedEquivalence, FullTrainingIterationMatchesReference) {
  core::AgentConfig ab;
  ab.seed = 9;
  core::AgentConfig ar = ab;
  ar.batched_inference = false;
  core::DecimaAgent batched(ab), reference(ar);

  rl::ReinforceTrainer tb(batched, train_config(2));
  rl::ReinforceTrainer tr(reference, train_config(2));
  const auto sb = tb.train();
  const auto sr = tr.train();

  // Same seeds + numerically equivalent policies must take the same actions
  // and land on the same parameters after full sample/replay/Adam iterations.
  ASSERT_EQ(sb.size(), sr.size());
  for (std::size_t i = 0; i < sb.size(); ++i) {
    EXPECT_EQ(sb[i].total_actions, sr[i].total_actions);
    EXPECT_NEAR(sb[i].grad_norm, sr[i].grad_norm, kTol);
  }
  const auto pb = flat_params(batched);
  const auto pr = flat_params(reference);
  ASSERT_EQ(pb.size(), pr.size());
  for (std::size_t i = 0; i < pb.size(); ++i) EXPECT_NEAR(pb[i], pr[i], kTol);
}

TEST(BatchedEquivalence, TrainerDeterministicAcrossThreadCounts) {
  core::AgentConfig ac;
  ac.seed = 13;
  core::DecimaAgent one(ac), eight(ac);

  rl::ReinforceTrainer t1(one, train_config(1));
  rl::ReinforceTrainer t8(eight, train_config(8));
  t1.train();
  t8.train();

  const auto p1 = flat_params(one);
  const auto p8 = flat_params(eight);
  ASSERT_EQ(p1.size(), p8.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i], p8[i]) << "param " << i;
  }
}

}  // namespace
}  // namespace decima
