// The batched paths (GnnConfig::batched / AgentConfig::batched_inference /
// AgentConfig::batched_replay) must be pure performance changes: embeddings
// and gradients have to match the one-node-at-a-time, one-tape-per-action
// reference implementations to floating-point noise, and REINFORCE training
// must stay deterministic across thread counts.
#include <gtest/gtest.h>

#include <cmath>

#include "gnn/graph_embedding.h"
#include "rl/reinforce.h"
#include "workload/tpch.h"

namespace decima {
namespace {

constexpr double kTol = 1e-10;

gnn::JobGraph random_dag(std::uint64_t seed, int n) {
  return gnn::random_job_graph(seed, n);
}

// Two GraphEmbeddings with identical weights, one per configuration.
struct Pair {
  Rng rng_b{7};
  Rng rng_r{7};
  gnn::GraphEmbedding batched;
  gnn::GraphEmbedding reference;

  explicit Pair(bool two_level = true)
      : batched(config(true, two_level), rng_b),
        reference(config(false, two_level), rng_r) {}

  static gnn::GnnConfig config(bool batched, bool two_level) {
    gnn::GnnConfig c;
    c.batched = batched;
    c.two_level_aggregation = two_level;
    return c;
  }
};

void expect_matrix_near(const nn::Matrix& a, const nn::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.raw().size(); ++i) {
    EXPECT_NEAR(a.raw()[i], b.raw()[i], kTol);
  }
}

// A scalar reduction over every embedding level, built the same way on both
// tapes so gradient flow is comparable.
nn::Var embedding_loss(nn::Tape& tape, const gnn::Embeddings& emb,
                       std::size_t emb_dim) {
  std::vector<nn::Var> parts = emb.node_mat;
  parts.push_back(emb.job_mat);
  parts.push_back(emb.global_emb);
  const nn::Var total = tape.sum_rows(tape.concat_rows(parts));
  const nn::Var ones = tape.constant(nn::Matrix(emb_dim, 1, 1.0));
  return tape.matmul(total, ones);
}

TEST(BatchedEquivalence, ForwardEmbeddingsMatch) {
  for (bool two_level : {true, false}) {
    Pair gnns(two_level);
    const std::vector<gnn::JobGraph> graphs = {random_dag(1, 50),
                                               random_dag(2, 17),
                                               random_dag(3, 1)};
    nn::Tape tb(false), tr(false);
    const auto eb = gnns.batched.embed(tb, graphs);
    const auto er = gnns.reference.embed(tr, graphs);
    for (std::size_t g = 0; g < graphs.size(); ++g) {
      expect_matrix_near(tb.value(eb.node_mat[g]), tr.value(er.node_mat[g]));
      expect_matrix_near(tb.value(eb.proj_mat[g]), tr.value(er.proj_mat[g]));
      for (std::size_t v = 0; v < eb.node_emb[g].size(); ++v) {
        expect_matrix_near(tb.value(eb.node_emb[g][v]),
                           tr.value(er.node_emb[g][v]));
      }
    }
    expect_matrix_near(tb.value(eb.job_mat), tr.value(er.job_mat));
    expect_matrix_near(tb.value(eb.global_emb), tr.value(er.global_emb));
  }
}

TEST(BatchedEquivalence, GradientsMatchReference) {
  Pair gnns;
  const std::vector<gnn::JobGraph> graphs = {random_dag(11, 50),
                                             random_dag(12, 23)};
  const std::size_t d =
      static_cast<std::size_t>(gnns.batched.config().emb_dim);

  auto grads = [&](gnn::GraphEmbedding& gnn) {
    auto params = gnn.param_set();
    params.zero_grads();
    nn::Tape tape;
    const auto emb = gnn.embed(tape, graphs);
    tape.backward(embedding_loss(tape, emb, d));
    return params.flat_grads();
  };
  const auto gb = grads(gnns.batched);
  const auto gr = grads(gnns.reference);
  ASSERT_EQ(gb.size(), gr.size());
  double max_abs = 0.0;
  for (std::size_t i = 0; i < gb.size(); ++i) {
    EXPECT_NEAR(gb[i], gr[i], kTol);
    max_abs = std::max(max_abs, std::abs(gb[i]));
  }
  // The comparison must be over real gradients, not a sea of zeros.
  EXPECT_GT(max_abs, 1e-3);
}

// Episode-batched embedding vs the per-event batched embed: node, job, and
// global levels must agree event by event.
TEST(BatchedEquivalence, EpisodeEmbeddingMatchesPerEventEmbed) {
  for (bool two_level : {true, false}) {
    Pair gnns(two_level);
    const std::vector<std::vector<gnn::JobGraph>> events = {
        {random_dag(21, 50), random_dag(22, 17)},
        {random_dag(23, 9)},
        {random_dag(24, 1), random_dag(25, 3), random_dag(26, 12)}};

    std::vector<const gnn::JobGraph*> flat;
    std::vector<std::size_t> event_of_graph;
    for (std::size_t t = 0; t < events.size(); ++t) {
      for (const auto& g : events[t]) {
        flat.push_back(&g);
        event_of_graph.push_back(t);
      }
    }
    nn::Tape te(false);
    const auto ep =
        gnns.batched.embed_episode(te, flat, event_of_graph, events.size());

    std::size_t graph_idx = 0;
    for (std::size_t t = 0; t < events.size(); ++t) {
      nn::Tape tp(false);
      const auto per_event = gnns.batched.embed(tp, events[t]);
      for (std::size_t g = 0; g < events[t].size(); ++g, ++graph_idx) {
        const nn::Matrix& want = tp.value(per_event.node_mat[g]);
        const nn::Matrix& all = te.value(ep.node_all);
        const std::size_t off = ep.node_offset[graph_idx];
        for (std::size_t v = 0; v < want.rows(); ++v) {
          for (std::size_t c = 0; c < want.cols(); ++c) {
            EXPECT_NEAR(all(off + v, c), want(v, c), kTol);
          }
        }
        const nn::Matrix& jobs = te.value(ep.job_mat);
        for (std::size_t c = 0; c < jobs.cols(); ++c) {
          EXPECT_NEAR(jobs(graph_idx, c), tp.value(per_event.job_mat)(g, c),
                      kTol);
        }
      }
      const nn::Matrix& glob = te.value(ep.global_mat);
      for (std::size_t c = 0; c < glob.cols(); ++c) {
        EXPECT_NEAR(glob(t, c), tp.value(per_event.global_emb)(0, c), kTol);
      }
    }
  }
}

// --- Replay-path checks ------------------------------------------------------

// Rolls out one recorded episode and expects the batched replay to reproduce
// the reference loop's gradients.
void expect_replay_grads_match(const core::AgentConfig& base,
                               const sim::EnvConfig& env_config,
                               const std::vector<workload::ArrivingJob>& jobs,
                               int replay_batch = 0) {
  core::AgentConfig ab = base;
  ab.batched_replay = true;
  ab.replay_batch = replay_batch;
  core::AgentConfig ar = base;
  ar.batched_replay = false;
  ar.batched_inference = false;
  core::DecimaAgent batched(ab), reference(ar);  // same seed, same weights

  batched.set_mode(core::Mode::kSample);
  batched.set_sample_seed(31);
  batched.start_recording();
  sim::ClusterEnv env(env_config);
  workload::load(env, jobs);
  env.run(batched);
  const auto recorded = batched.take_recorded();
  ASSERT_FALSE(recorded.empty());

  std::vector<double> weights(recorded.size());
  for (std::size_t k = 0; k < weights.size(); ++k) {
    weights[k] = (k % 2 ? 1.0 : -1.0) * (0.5 + 0.1 * static_cast<double>(k));
  }
  auto grads = [&](core::DecimaAgent& agent) {
    agent.params().zero_grads();
    agent.start_replay(recorded, weights, /*entropy_weight=*/0.1);
    sim::ClusterEnv replay_env(env_config);
    workload::load(replay_env, jobs);
    replay_env.run(agent);
    agent.finish_replay();
    EXPECT_EQ(agent.replay_cursor(), recorded.size());
    return agent.params().flat_grads();
  };
  const auto gb = grads(batched);
  const auto gr = grads(reference);
  ASSERT_EQ(gb.size(), gr.size());
  double max_abs = 0.0;
  for (std::size_t i = 0; i < gb.size(); ++i) {
    EXPECT_NEAR(gb[i], gr[i], kTol) << "grad " << i;
    max_abs = std::max(max_abs, std::abs(gb[i]));
  }
  EXPECT_GT(max_abs, 1e-4);
}

std::vector<workload::ArrivingJob> tpch_jobs(std::uint64_t seed, int n) {
  Rng rng(seed);
  return workload::batched(workload::sample_tpch_batch(rng, n));
}

TEST(BatchedEquivalence, ReplayGradientsMatchReference) {
  core::AgentConfig ac;
  ac.seed = 21;
  sim::EnvConfig env;
  env.num_executors = 4;
  expect_replay_grads_match(ac, env, tpch_jobs(3, 4));
}

TEST(BatchedEquivalence, ReplayGradientsMatchAcrossVariants) {
  sim::EnvConfig env;
  env.num_executors = 4;
  const auto jobs = tpch_jobs(5, 3);
  for (core::LimitEncoding enc :
       {core::LimitEncoding::kStageLevel,
        core::LimitEncoding::kSeparateOutputs}) {
    core::AgentConfig ac;
    ac.seed = 23;
    ac.limit_encoding = enc;
    expect_replay_grads_match(ac, env, jobs);
  }
  core::AgentConfig no_gnn;
  no_gnn.seed = 24;
  no_gnn.use_gnn = false;
  expect_replay_grads_match(no_gnn, env, jobs);
  core::AgentConfig no_limits;
  no_limits.seed = 25;
  no_limits.parallelism_control = false;
  expect_replay_grads_match(no_limits, env, jobs);
}

TEST(BatchedEquivalence, ReplayGradientsMatchWithExecutorClasses) {
  sim::EnvConfig env;
  env.num_executors = 6;
  env.classes = {{0.5, "s"}, {1.0, "l"}};
  Rng rng(4);
  std::vector<sim::JobSpec> jobs;
  for (int i = 0; i < 3; ++i) {
    auto j = workload::sample_tpch_job(rng);
    workload::assign_memory_requests(j, rng);
    jobs.push_back(std::move(j));
  }
  core::AgentConfig ac;
  ac.seed = 27;
  ac.multi_resource = true;
  expect_replay_grads_match(ac, env, workload::batched(std::move(jobs)));
}

TEST(BatchedEquivalence, ChunkedReplayMatchesWholeEpisode) {
  // replay_batch caps the events per tape; chunked scoring must reproduce the
  // single-tape episode gradients (and therefore the reference's).
  core::AgentConfig ac;
  ac.seed = 29;
  sim::EnvConfig env;
  env.num_executors = 3;
  expect_replay_grads_match(ac, env, tpch_jobs(7, 3), /*replay_batch=*/2);
}

// --- Full-pipeline checks through the trainer -------------------------------

sim::EnvConfig tiny_env() {
  sim::EnvConfig c;
  c.num_executors = 3;
  return c;
}

rl::WorkloadSampler sampler() {
  return [](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<sim::JobSpec> jobs;
    for (int i = 0; i < 3; ++i) {
      sim::JobBuilder b("job" + std::to_string(i));
      const int stages = rng.uniform_int(2, 5);
      for (int s = 0; s < stages; ++s) {
        b.stage(rng.uniform_int(1, 6), rng.uniform(0.5, 2.0),
                s > 0 ? std::vector<int>{s - 1} : std::vector<int>{});
      }
      jobs.push_back(b.build());
    }
    return workload::batched(std::move(jobs));
  };
}

rl::TrainConfig train_config(int threads) {
  rl::TrainConfig c;
  c.num_iterations = 2;
  c.episodes_per_iter = 4;
  c.rollout_threads = threads;
  c.curriculum = false;
  c.differential_reward = false;
  c.env = tiny_env();
  c.sampler = sampler();
  c.seed = 5;
  return c;
}

std::vector<double> flat_params(core::DecimaAgent& agent) {
  std::vector<double> out;
  for (const nn::Param* p : agent.params().params()) {
    out.insert(out.end(), p->value.raw().begin(), p->value.raw().end());
  }
  return out;
}

TEST(BatchedEquivalence, FullTrainingIterationMatchesReference) {
  core::AgentConfig ab;
  ab.seed = 9;
  core::AgentConfig ar = ab;
  ar.batched_inference = false;
  ar.batched_replay = false;
  core::DecimaAgent batched(ab), reference(ar);

  rl::ReinforceTrainer tb(batched, train_config(2));
  rl::ReinforceTrainer tr(reference, train_config(2));
  const auto sb = tb.train();
  const auto sr = tr.train();

  // Same seeds + numerically equivalent policies must take the same actions
  // and land on the same parameters after full sample/replay/Adam iterations.
  ASSERT_EQ(sb.size(), sr.size());
  for (std::size_t i = 0; i < sb.size(); ++i) {
    EXPECT_EQ(sb[i].total_actions, sr[i].total_actions);
    EXPECT_NEAR(sb[i].grad_norm, sr[i].grad_norm, kTol);
  }
  const auto pb = flat_params(batched);
  const auto pr = flat_params(reference);
  ASSERT_EQ(pb.size(), pr.size());
  for (std::size_t i = 0; i < pb.size(); ++i) EXPECT_NEAR(pb[i], pr[i], kTol);
}

TEST(BatchedEquivalence, TrainerDeterministicAcrossThreadCounts) {
  core::AgentConfig ac;
  ac.seed = 13;
  core::DecimaAgent one(ac), eight(ac);

  rl::ReinforceTrainer t1(one, train_config(1));
  rl::ReinforceTrainer t8(eight, train_config(8));
  t1.train();
  t8.train();

  const auto p1 = flat_params(one);
  const auto p8 = flat_params(eight);
  ASSERT_EQ(p1.size(), p8.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i], p8[i]) << "param " << i;
  }
}

// Thread-count determinism pinned explicitly for the batched replay path:
// training with 1 and 8 worker threads must produce bit-identical parameters.
TEST(BatchedEquivalence, BatchedReplayDeterministicAcrossThreadCounts) {
  core::AgentConfig ac;
  ac.seed = 17;
  ac.batched_inference = true;
  ac.batched_replay = true;
  core::DecimaAgent one(ac), eight(ac);

  rl::ReinforceTrainer t1(one, train_config(1));
  rl::ReinforceTrainer t8(eight, train_config(8));
  t1.train();
  t8.train();

  const auto p1 = flat_params(one);
  const auto p8 = flat_params(eight);
  ASSERT_EQ(p1.size(), p8.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i], p8[i]) << "param " << i;
  }
}

}  // namespace
}  // namespace decima
