#include <gtest/gtest.h>

#include <cstdio>

#include "core/agent.h"
#include "sim/validate.h"
#include "workload/tpch.h"

namespace decima::core {
namespace {

sim::EnvConfig config(int execs) {
  sim::EnvConfig c;
  c.num_executors = execs;
  c.enable_moving_delay = false;
  c.enable_wave_effect = false;
  c.enable_inflation = false;
  return c;
}

AgentConfig agent_config() {
  AgentConfig c;
  c.seed = 7;
  return c;
}

sim::JobSpec job(const std::string& name, int tasks, double dur) {
  sim::JobBuilder b(name);
  b.stage(tasks, dur);
  return b.build();
}

TEST(Agent, UntrainedPolicyCompletesWorkload) {
  DecimaAgent agent(agent_config());
  agent.set_mode(Mode::kSample);
  agent.set_sample_seed(1);
  sim::ClusterEnv env(config(5));
  env.add_job(job("a", 10, 1.0), 0.0);
  env.add_job(job("b", 4, 2.0), 1.0);
  env.run(agent);
  EXPECT_TRUE(env.all_done());
  std::string err;
  EXPECT_TRUE(sim::validate_trace(env, &err)) << err;
}

TEST(Agent, GreedyIsDeterministic) {
  auto run = [] {
    DecimaAgent agent(agent_config());
    agent.set_mode(Mode::kGreedy);
    sim::ClusterEnv env(config(4));
    decima::Rng rng(5);
    for (auto& j : workload::sample_tpch_batch(rng, 4)) env.add_job(j, 0.0);
    env.run(agent);
    return env.avg_jct();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Agent, SamplingVariesWithSeed) {
  auto run = [](std::uint64_t seed) {
    DecimaAgent agent(agent_config());
    agent.set_mode(Mode::kSample);
    agent.set_sample_seed(seed);
    sim::ClusterEnv env(config(4));
    decima::Rng rng(5);
    for (auto& j : workload::sample_tpch_batch(rng, 6)) env.add_job(j, 0.0);
    env.run(agent);
    return env.avg_jct();
  };
  // Not guaranteed to differ, but over a few seeds at least one should.
  const double base = run(1);
  bool varied = false;
  for (std::uint64_t s = 2; s <= 5; ++s) varied |= run(s) != base;
  EXPECT_TRUE(varied);
}

TEST(Agent, RecordingCapturesAllActions) {
  DecimaAgent agent(agent_config());
  agent.set_mode(Mode::kSample);
  agent.set_sample_seed(3);
  agent.start_recording();
  sim::ClusterEnv env(config(3));
  env.add_job(job("a", 6, 1.0), 0.0);
  env.run(agent);
  const auto recorded = agent.take_recorded();
  EXPECT_EQ(recorded.size(), env.action_times().size());
  for (const auto& r : recorded) {
    EXPECT_TRUE(r.action.valid());
    EXPECT_GE(r.node_choice, 0);
  }
}

TEST(Agent, ReplayReproducesRolloutExactly) {
  const auto cfg = agent_config();
  // Rollout.
  DecimaAgent agent(cfg);
  agent.set_mode(Mode::kSample);
  agent.set_sample_seed(11);
  agent.start_recording();
  sim::ClusterEnv env1(config(4));
  env1.add_job(job("a", 8, 1.0), 0.0);
  env1.add_job(job("b", 3, 2.0), 0.5);
  env1.run(agent);
  const auto recorded = agent.take_recorded();
  const double jct1 = env1.avg_jct();

  // Replay with a fresh but identically-seeded environment.
  auto clone = agent.clone();
  clone->params().zero_grads();
  std::vector<double> weights(recorded.size(), 1.0);
  clone->start_replay(recorded, weights, 0.01);
  sim::ClusterEnv env2(config(4));
  env2.add_job(job("a", 8, 1.0), 0.0);
  env2.add_job(job("b", 3, 2.0), 0.5);
  env2.run(*clone);
  clone->finish_replay();

  EXPECT_DOUBLE_EQ(env2.avg_jct(), jct1);
  EXPECT_EQ(clone->replay_cursor(), recorded.size());
  // Replay accumulated nonzero gradients.
  double gnorm = 0.0;
  for (const auto* p : clone->params().params()) gnorm += p->grad.squared_norm();
  EXPECT_GT(gnorm, 0.0);
}

TEST(Agent, ZeroAdvantageGivesEntropyOnlyGradient) {
  const auto cfg = agent_config();
  DecimaAgent agent(cfg);
  agent.set_mode(Mode::kSample);
  agent.set_sample_seed(2);
  agent.start_recording();
  sim::ClusterEnv env(config(3));
  env.add_job(job("a", 5, 1.0), 0.0);
  env.run(agent);
  const auto recorded = agent.take_recorded();

  auto clone = agent.clone();
  clone->params().zero_grads();
  clone->start_replay(recorded, std::vector<double>(recorded.size(), 0.0),
                      /*entropy_weight=*/0.0);
  sim::ClusterEnv env2(config(3));
  env2.add_job(job("a", 5, 1.0), 0.0);
  env2.run(*clone);
  clone->finish_replay();
  for (const auto* p : clone->params().params()) {
    EXPECT_DOUBLE_EQ(p->grad.squared_norm(), 0.0);
  }
}

TEST(Agent, CloneSharesValuesNotState) {
  DecimaAgent agent(agent_config());
  auto copy = agent.clone();
  const auto& pa = agent.params().params();
  const auto& pb = copy->params().params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i]->value.raw(), pb[i]->value.raw());
    EXPECT_NE(pa[i], pb[i]);  // distinct storage
  }
}

TEST(Agent, SaveLoadRoundTrip) {
  DecimaAgent agent(agent_config());
  const std::string path = testing::TempDir() + "/decima_agent_test.model";
  ASSERT_TRUE(agent.save(path));
  AgentConfig other = agent_config();
  other.seed = 999;  // different init
  DecimaAgent loaded(other);
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(agent.params().params()[0]->value.raw(),
            loaded.params().params()[0]->value.raw());
  std::remove(path.c_str());
}

TEST(Agent, NoParallelismControlAlwaysMaxLimit) {
  AgentConfig cfg = agent_config();
  cfg.parallelism_control = false;
  DecimaAgent agent(cfg);
  agent.set_mode(Mode::kSample);
  agent.set_sample_seed(1);
  agent.start_recording();
  sim::ClusterEnv env(config(6));
  env.add_job(job("a", 10, 1.0), 0.0);
  env.run(agent);
  for (const auto& r : agent.take_recorded()) {
    EXPECT_EQ(r.action.limit, 6);
    EXPECT_EQ(r.limit_choice, -1);
  }
}

TEST(Agent, NoGnnStillSchedules) {
  AgentConfig cfg = agent_config();
  cfg.use_gnn = false;
  DecimaAgent agent(cfg);
  agent.set_mode(Mode::kGreedy);
  sim::ClusterEnv env(config(4));
  env.add_job(job("a", 6, 1.0), 0.0);
  env.run(agent);
  EXPECT_TRUE(env.all_done());
}

TEST(Agent, LimitEncodingVariantsSchedule) {
  for (LimitEncoding enc :
       {LimitEncoding::kScalarInput, LimitEncoding::kSeparateOutputs,
        LimitEncoding::kStageLevel}) {
    AgentConfig cfg = agent_config();
    cfg.limit_encoding = enc;
    DecimaAgent agent(cfg);
    agent.set_mode(Mode::kSample);
    agent.set_sample_seed(4);
    sim::ClusterEnv env(config(5));
    env.add_job(job("a", 8, 1.0), 0.0);
    env.run(agent);
    EXPECT_TRUE(env.all_done());
  }
}

TEST(Agent, SeparateOutputsHasMoreParameters) {
  AgentConfig scalar = agent_config();
  AgentConfig sep = agent_config();
  sep.limit_encoding = LimitEncoding::kSeparateOutputs;
  EXPECT_GT(DecimaAgent(sep).num_parameters(),
            DecimaAgent(scalar).num_parameters());
}

TEST(Agent, ParameterCountMatchesPaperOrder) {
  // The paper's model: 12,736 parameters. Ours is the same order of
  // magnitude (exact count differs with embedding sizes).
  DecimaAgent agent(agent_config());
  EXPECT_GT(agent.num_parameters(), 3000u);
  EXPECT_LT(agent.num_parameters(), 40000u);
}

}  // namespace
}  // namespace decima::core
