// The runtime observability layer (docs/observability.md):
//
//   * fixed-bucket histogram semantics — bucketing, counts/sums, and
//     interpolated p50/p95/p99 against known sample sets, including the
//     overflow-bucket floor;
//   * the registry contract — stable shared handles, reset-in-place,
//     name enumeration;
//   * lock-free recording — concurrent counter/histogram traffic from many
//     threads lands exactly (this suite runs in the TSan CI job, so the
//     same cases are the race proof);
//   * the global-off contract — with the layer disabled every recording
//     call is inert: counters/gauges/histograms stay zero and the trace
//     buffer stays empty (no events, no allocation);
//   * export formats — the Chrome trace JSON and the metrics dump parse
//     with Python's json module (the same parser chrome://tracing uses is
//     stricter than none at all);
//   * the observation-only contract — training with metrics+tracing
//     enabled is byte-identical to disabled at rollout_threads 1 and 8
//     (same discipline as tests/test_parallel_rollout.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rl/reinforce.h"

namespace decima {
namespace {

// Every test starts and ends with the layer off and the global buffers
// clean, so suites cannot leak state into each other.
class Observability : public testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::Registry::instance().reset();
    obs::Tracer::instance().clear();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::Registry::instance().reset();
    obs::Tracer::instance().clear();
  }
};

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + name;
}

bool python3_available() {
  return std::system("python3 --version > /dev/null 2>&1") == 0;
}

// `python3 -c "import json,sys; json.load(open(sys.argv[1]))" <path>` — the
// round-trip the ISSUE pins: the artifact must be real JSON, not just
// JSON-shaped.
bool json_loads(const std::string& path) {
  const std::string cmd =
      "python3 -c \"import json,sys; json.load(open(sys.argv[1]))\" '" +
      path + "' > /dev/null 2>&1";
  return std::system(cmd.c_str()) == 0;
}

// --- Histogram semantics ----------------------------------------------------

TEST_F(Observability, HistogramBucketsSamplesByUpperBound) {
  obs::set_metrics_enabled(true);
  obs::Histogram h("test.buckets", {1.0, 2.0, 4.0, 8.0});
  for (double v : {0.5, 1.0, 1.5, 3.0, 8.0, 100.0}) h.observe(v);

  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 3.0 + 8.0 + 100.0);
  // A sample lands in the first bucket whose bound >= sample; the 5th
  // entry is the overflow bucket.
  const std::vector<std::uint64_t> want = {2, 1, 1, 1, 1};
  EXPECT_EQ(h.bucket_counts(), want);
}

TEST_F(Observability, HistogramPercentilesInterpolateWithinBuckets) {
  obs::set_metrics_enabled(true);
  // 100 one-unit buckets, samples 1..100: every bucket holds exactly one
  // sample, so interpolated percentiles are exact.
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) bounds.push_back(static_cast<double>(i));
  obs::Histogram h("test.pct", bounds);
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));

  EXPECT_NEAR(h.percentile(50.0), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(95.0), 95.0, 1.0);
  EXPECT_NEAR(h.percentile(99.0), 99.0, 1.0);
  EXPECT_NEAR(h.percentile(100.0), 100.0, 1.0);
  EXPECT_LE(h.percentile(1.0), 2.0);
}

TEST_F(Observability, HistogramEmptyAndOverflowEdges) {
  obs::set_metrics_enabled(true);
  obs::Histogram h("test.edges", {1.0, 10.0});
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);  // empty: 0, not NaN

  // Everything past the last bound: the overflow bucket reports the last
  // bound — a floor, never an invented value.
  for (int i = 0; i < 8; ++i) h.observe(1e6);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 10.0);
  EXPECT_EQ(h.count(), 8u);
}

TEST_F(Observability, ExponentialBoundsSpanTheRequestedRange) {
  const std::vector<double> b =
      obs::Histogram::exponential_bounds(1.0, 1e6, 30);
  ASSERT_EQ(b.size(), 30u);
  EXPECT_DOUBLE_EQ(b.front(), 1.0);
  EXPECT_NEAR(b.back(), 1e6, 1e6 * 1e-9);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_GT(b[i], b[i - 1]);
  // The default ladder is this shape over 1µs–10s.
  const std::vector<double> d = obs::Histogram::default_latency_bounds_us();
  EXPECT_EQ(d.size(), 60u);
  EXPECT_DOUBLE_EQ(d.front(), 1.0);
}

// --- Registry contract ------------------------------------------------------

TEST_F(Observability, RegistryReturnsStableSharedHandles) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& a = reg.counter("test.reg_counter");
  obs::Counter& b = reg.counter("test.reg_counter");
  EXPECT_EQ(&a, &b);
  obs::Gauge& g1 = reg.gauge("test.reg_gauge");
  obs::Gauge& g2 = reg.gauge("test.reg_gauge");
  EXPECT_EQ(&g1, &g2);
  // Bounds are fixed at first registration; later callers share the layout.
  obs::Histogram& h1 = reg.histogram("test.reg_hist", {1.0, 2.0});
  obs::Histogram& h2 = reg.histogram("test.reg_hist", {5.0, 6.0, 7.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);

  const std::vector<std::string> names = reg.metric_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.reg_counter"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "test.reg_hist"),
            names.end());
}

TEST_F(Observability, ResetZeroesValuesButKeepsRegistrations) {
  obs::set_metrics_enabled(true);
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& c = reg.counter("test.reset_counter");
  obs::Histogram& h = reg.histogram("test.reset_hist", {1.0});
  c.inc(5);
  h.observe(0.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  // The handle survives reset — same address, still registered.
  EXPECT_EQ(&reg.counter("test.reset_counter"), &c);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

// --- Lock-free recording under contention (TSan proof) ----------------------

TEST_F(Observability, ConcurrentCountersAndHistogramsLandExactly) {
  obs::set_metrics_enabled(true);
  obs::Registry& reg = obs::Registry::instance();
  // Handles are resolved concurrently too: registration is part of the
  // thread-safety surface, not just recording.
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      obs::Counter& c = reg.counter("test.conc_counter");
      obs::Counter& c3 = reg.counter("test.conc_counter3");
      obs::Histogram& h = reg.histogram("test.conc_hist", {1.0, 2.0});
      obs::Gauge& g = reg.gauge("test.conc_gauge");
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        c3.inc(3);
        h.observe(1.0);  // integral values: the CAS double sum is exact
        g.set(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto total = static_cast<std::uint64_t>(kThreads) * kIters;
  EXPECT_EQ(reg.counter("test.conc_counter").value(), total);
  EXPECT_EQ(reg.counter("test.conc_counter3").value(), 3 * total);
  EXPECT_EQ(reg.histogram("test.conc_hist").count(), total);
  EXPECT_DOUBLE_EQ(reg.histogram("test.conc_hist").sum(),
                   static_cast<double>(total));
  EXPECT_DOUBLE_EQ(reg.gauge("test.conc_gauge").value(), 1.0);
}

TEST_F(Observability, ConcurrentSpansAllRecord) {
  obs::set_tracing_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpans = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        obs::Span span("test.conc_span", "test");
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(obs::Tracer::instance().size(),
            static_cast<std::size_t>(kThreads) * kSpans);
  EXPECT_EQ(obs::Tracer::instance().dropped(), 0u);
}

// --- The global-off contract ------------------------------------------------

TEST_F(Observability, DisabledLayerIsCompletelyInert) {
  ASSERT_FALSE(obs::metrics_enabled());
  ASSERT_FALSE(obs::tracing_enabled());
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& c = reg.counter("test.off_counter");
  obs::Gauge& g = reg.gauge("test.off_gauge");
  obs::Histogram& h = reg.histogram("test.off_hist", {1.0});

  c.inc(100);
  g.set(42.0);
  h.observe(0.5);
  { obs::ScopedLatencyUs lat(h); }
  { obs::Span span("test.off_span", "test"); }

  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  // The trace buffer never saw the span — no event, hence no allocation.
  EXPECT_EQ(obs::Tracer::instance().size(), 0u);
  EXPECT_EQ(obs::Tracer::instance().dropped(), 0u);
}

TEST_F(Observability, SpanArmsAtConstructionNotDestruction) {
  // A span opened while disabled never records, even if tracing flips on
  // before it closes (the check is once, at construction).
  {
    obs::Span span("test.late_enable", "test");
    obs::set_tracing_enabled(true);
  }
  EXPECT_EQ(obs::Tracer::instance().size(), 0u);
  // And the reverse: opened enabled, closed after disable — still records.
  {
    obs::Span span("test.early_disable", "test");
    obs::set_tracing_enabled(false);
  }
  EXPECT_EQ(obs::Tracer::instance().size(), 1u);
}

TEST_F(Observability, TracerBoundsItsBufferAndCountsDrops) {
  obs::set_tracing_enabled(true);
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.set_capacity(16);
  for (int i = 0; i < 40; ++i) {
    obs::Span span("test.drop", "test");
  }
  EXPECT_EQ(tracer.size(), 16u);
  EXPECT_EQ(tracer.dropped(), 24u);
  tracer.set_capacity(std::size_t{1} << 18);  // restore the default
}

// --- Export formats ---------------------------------------------------------

TEST_F(Observability, ScopedLatencyRecordsMicroseconds) {
  obs::set_metrics_enabled(true);
  obs::Histogram h("test.scoped_lat", obs::Histogram::exponential_bounds(
                                          1.0, 1e6, 20));
  { obs::ScopedLatencyUs lat(h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
  EXPECT_LT(h.sum(), 1e6);  // an empty scope is far under a second
}

TEST_F(Observability, TraceJsonRoundTripsThroughPython) {
  obs::set_tracing_enabled(true);
  {
    obs::Span outer(obs::names::kSpanTrainIteration, "train");
    obs::Span inner(obs::names::kSpanTrainRollout, "train");
    // Names with JSON-hostile characters must be escaped on export.
    obs::Span hostile("quote\"back\\slash\nnewline", "test");
  }
  ASSERT_EQ(obs::Tracer::instance().size(), 3u);

  const std::string json = obs::Tracer::instance().chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find(obs::names::kSpanTrainRollout), std::string::npos);

  const std::string path = tmp_path("obs_trace_roundtrip.json");
  ASSERT_TRUE(obs::Tracer::instance().write_chrome_json(path));
  if (!python3_available()) GTEST_SKIP() << "python3 not on PATH";
  EXPECT_TRUE(json_loads(path)) << "chrome trace JSON failed json.loads";
}

TEST_F(Observability, MetricsDumpsRoundTripThroughPython) {
  obs::set_metrics_enabled(true);
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("test.dump_counter").inc(7);
  reg.gauge("test.dump_gauge").set(0.5);
  reg.histogram("test.dump_hist", {1.0, 2.0}).observe(1.5);

  const std::string text = reg.text_dump();
  EXPECT_NE(text.find("test.dump_counter"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);

  const std::string path = tmp_path("obs_metrics_roundtrip.json");
  ASSERT_TRUE(reg.write_json(path));
  const std::string json = reg.json_dump();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  if (!python3_available()) GTEST_SKIP() << "python3 not on PATH";
  EXPECT_TRUE(json_loads(path)) << "metrics JSON failed json.loads";
}

// --- The observation-only contract (training byte-identity) -----------------

sim::EnvConfig tiny_env() {
  sim::EnvConfig c;
  c.num_executors = 3;
  c.enable_moving_delay = false;
  c.enable_wave_effect = false;
  c.enable_inflation = false;
  return c;
}

rl::WorkloadSampler dag_sampler() {
  return [](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<sim::JobSpec> jobs;
    for (int i = 0; i < 3; ++i) {
      sim::JobBuilder b("job" + std::to_string(i));
      const int stages = rng.uniform_int(2, 4);
      for (int s = 0; s < stages; ++s) {
        b.stage(rng.uniform_int(1, 5), rng.uniform(0.5, 2.0),
                s > 0 ? std::vector<int>{s - 1} : std::vector<int>{});
      }
      jobs.push_back(b.build());
    }
    return workload::batched(std::move(jobs));
  };
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

struct RunResult {
  std::vector<std::vector<double>> params;
  std::string checkpoint;
  std::vector<rl::IterationStats> curve;
};

bool dynamics_equal(const rl::IterationStats& a, const rl::IterationStats& b) {
  return a.iteration == b.iteration && a.tau == b.tau &&
         a.mean_total_reward == b.mean_total_reward &&
         a.mean_avg_jct == b.mean_avg_jct &&
         a.total_actions == b.total_actions && a.grad_norm == b.grad_norm &&
         a.entropy_weight == b.entropy_weight;
}

RunResult run_training(int threads, bool obs_on, const std::string& tag) {
  obs::set_enabled(obs_on);
  core::AgentConfig ac;
  ac.seed = 7;
  rl::TrainConfig cfg;
  cfg.num_iterations = 2;
  cfg.episodes_per_iter = 4;
  cfg.rollout_threads = threads;
  cfg.curriculum = false;
  cfg.differential_reward = false;
  cfg.entropy_weight = 0.05;
  cfg.env = tiny_env();
  cfg.sampler = dag_sampler();
  cfg.seed = 31;
  core::DecimaAgent agent(ac);
  rl::ReinforceTrainer trainer(agent, cfg);
  RunResult r;
  r.curve = trainer.train();
  for (const nn::Param* p : agent.params().params()) {
    r.params.push_back(p->value.raw());
  }
  const std::string path = tmp_path("obs_identity_" + tag + ".ckpt");
  EXPECT_TRUE(trainer.save_checkpoint(path));
  r.checkpoint = file_bytes(path);
  EXPECT_FALSE(r.checkpoint.empty());
  obs::set_enabled(false);
  return r;
}

TEST_F(Observability, TrainingIsByteIdenticalWithObsEnabled) {
  for (int threads : {1, 8}) {
    SCOPED_TRACE("rollout_threads=" + std::to_string(threads));
    const std::string tag = "t" + std::to_string(threads);
    const RunResult off = run_training(threads, /*obs_on=*/false, tag + "_off");
    const RunResult on = run_training(threads, /*obs_on=*/true, tag + "_on");

    EXPECT_EQ(on.params, off.params);
    EXPECT_EQ(on.checkpoint, off.checkpoint);
    ASSERT_EQ(on.curve.size(), off.curve.size());
    for (std::size_t i = 0; i < off.curve.size(); ++i) {
      EXPECT_TRUE(dynamics_equal(on.curve[i], off.curve[i]))
          << "iteration " << i << " dynamics drifted with obs enabled";
    }
    // And the instrumented run actually observed something — the contract
    // is "recorded without perturbing", not "did nothing".
    EXPECT_EQ(obs::Registry::instance()
                  .counter(obs::names::kTrainIterations)
                  .value(),
              2u);
    EXPECT_GT(obs::Tracer::instance().size(), 0u);
    obs::Registry::instance().reset();
    obs::Tracer::instance().clear();
  }
}

}  // namespace
}  // namespace decima
