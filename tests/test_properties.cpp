// Property-based sweeps: for random workloads and every scheduler (all seven
// heuristics plus an untrained Decima agent), the produced schedule must
// satisfy the global invariants checked by validate_trace(), and basic
// performance bounds must hold (JCT at least the critical-path lower bound).
#include <gtest/gtest.h>

#include <memory>

#include "core/agent.h"
#include "sched/heuristics.h"
#include "sim/validate.h"
#include "workload/tpch.h"
#include "workload/trace.h"

namespace decima {
namespace {

std::unique_ptr<sim::Scheduler> make_scheduler(const std::string& kind) {
  using namespace sched;
  if (kind == "fifo") return std::make_unique<FifoScheduler>();
  if (kind == "sjf") return std::make_unique<SjfCpScheduler>();
  if (kind == "fair") return std::make_unique<WeightedFairScheduler>(0.0);
  if (kind == "naive") return std::make_unique<WeightedFairScheduler>(1.0);
  if (kind == "tuned") return std::make_unique<WeightedFairScheduler>(-1.0);
  if (kind == "tetris") return std::make_unique<TetrisScheduler>();
  if (kind == "graphene") return std::make_unique<GrapheneScheduler>();
  core::AgentConfig ac;
  ac.seed = 31;
  auto agent = std::make_unique<core::DecimaAgent>(ac);
  agent->set_mode(core::Mode::kSample);
  agent->set_sample_seed(7);
  return agent;
}

struct Case {
  std::string scheduler;
  std::uint64_t seed;
};

class ScheduleInvariants : public ::testing::TestWithParam<Case> {};

TEST_P(ScheduleInvariants, RandomWorkloadValidates) {
  const Case c = GetParam();
  Rng rng(c.seed);

  sim::EnvConfig env_config;
  env_config.num_executors = rng.uniform_int(3, 20);
  env_config.moving_delay = rng.uniform(0.0, 3.0);
  env_config.duration_noise = rng.bernoulli(0.5) ? 0.2 : 0.0;
  env_config.seed = rng.fork();

  sim::ClusterEnv env(env_config);
  const int num_jobs = rng.uniform_int(2, 8);
  std::vector<sim::JobSpec> specs;
  for (int i = 0; i < num_jobs; ++i) {
    auto j = workload::sample_tpch_job(rng);
    specs.push_back(j);
    env.add_job(std::move(j), rng.uniform(0.0, 30.0));
  }

  auto sched = make_scheduler(c.scheduler);
  env.run(*sched);

  EXPECT_TRUE(env.all_done()) << c.scheduler << " seed " << c.seed;
  std::string err;
  EXPECT_TRUE(sim::validate_trace(env, &err))
      << c.scheduler << " seed " << c.seed << ": " << err;

  // Lower bound: no job can beat its critical-path duration (without noise;
  // noisy runs only check positivity).
  for (std::size_t j = 0; j < env.jobs().size(); ++j) {
    const double jct = env.jobs()[j].jct();
    EXPECT_GT(jct, 0.0);
    if (env_config.duration_noise == 0.0) {
      EXPECT_GE(jct + 1e-6, specs[j].critical_path_duration())
          << c.scheduler << " job " << j;
    }
  }
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  for (const std::string s : {"fifo", "sjf", "fair", "naive", "tuned",
                              "tetris", "graphene", "decima"}) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      cases.push_back({s, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduleInvariants, ::testing::ValuesIn(make_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      return info.param.scheduler + "_" + std::to_string(info.param.seed);
    });

// Work conservation: with a single job and no overheads, FIFO achieves the
// wave-optimal runtime for a single stage.
class WaveOptimal : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WaveOptimal, SingleStageRuntimeIsCeilWaves) {
  const int tasks = std::get<0>(GetParam());
  const int execs = std::get<1>(GetParam());
  sim::EnvConfig c;
  c.num_executors = execs;
  c.enable_moving_delay = false;
  c.enable_wave_effect = false;
  c.enable_inflation = false;
  sim::ClusterEnv env(c);
  sim::JobBuilder b("w");
  b.stage(tasks, 1.0);
  env.add_job(b.build(), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo);
  const double waves = std::ceil(static_cast<double>(tasks) / execs);
  EXPECT_DOUBLE_EQ(env.jobs()[0].finish, waves);
}

INSTANTIATE_TEST_SUITE_P(TasksByExecs, WaveOptimal,
                         ::testing::Combine(::testing::Values(1, 3, 8, 20),
                                            ::testing::Values(1, 2, 5)));

// Trace-synthesizer property: every generated job schedules cleanly.
class TraceJobs : public ::testing::TestWithParam<int> {};

TEST_P(TraceJobs, EveryTraceJobRunsAlone) {
  workload::TraceConfig cfg;
  cfg.num_jobs = 30;
  cfg.seed = static_cast<std::uint64_t>(GetParam());
  const auto trace = workload::synthesize_trace(cfg);
  sim::EnvConfig c;
  c.num_executors = 10;
  // Multi-resource classes so memory requests are exercised.
  c.classes = {{0.25, "s"}, {0.5, "m"}, {0.75, "l"}, {1.0, "xl"}};
  for (const auto& arriving : trace) {
    sim::ClusterEnv env(c);
    env.add_job(arriving.spec, 0.0);
    sched::TetrisScheduler tetris;
    env.run(tetris);
    ASSERT_TRUE(env.all_done()) << arriving.spec.name;
    std::string err;
    ASSERT_TRUE(sim::validate_trace(env, &err)) << err;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceJobs, ::testing::Values(1, 2));

}  // namespace
}  // namespace decima
