// Checkpoint round-trips (src/io): policy save/load bit-exactness, corrupt-
// and mismatched-file rejection, and the trainer resume-determinism contract
//   train(N) == train(k) + save_checkpoint + resume + train(N-k)
// compared bit for bit on every parameter and Adam moment.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "io/checkpoint.h"
#include "rl/reinforce.h"

namespace decima {
namespace {

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + name;
}

sim::EnvConfig tiny_env() {
  sim::EnvConfig c;
  c.num_executors = 2;
  c.enable_moving_delay = false;
  c.enable_wave_effect = false;
  c.enable_inflation = false;
  return c;
}

sim::JobSpec job(const std::string& name, int tasks, double dur) {
  sim::JobBuilder b(name);
  b.stage(tasks, dur);
  return b.build();
}

rl::WorkloadSampler skew_sampler() {
  return [](std::uint64_t) {
    return workload::batched(
        {job("long", 16, 1.0), job("short1", 2, 1.0), job("short2", 2, 1.0)});
  };
}

rl::TrainConfig train_config() {
  rl::TrainConfig c;
  c.num_iterations = 6;
  c.episodes_per_iter = 4;
  c.rollout_threads = 2;
  c.curriculum = false;
  c.differential_reward = true;  // exercises the reward-rate moving average
  c.entropy_weight = 0.05;
  c.env = tiny_env();
  c.sampler = skew_sampler();
  c.seed = 77;
  return c;
}

std::vector<std::vector<double>> all_values(const nn::ParamSet& set) {
  std::vector<std::vector<double>> out;
  for (const nn::Param* p : set.params()) out.push_back(p->value.raw());
  return out;
}

TEST(PolicyCheckpoint, RoundTripIsBitExact) {
  core::AgentConfig ac;
  ac.seed = 11;
  ac.multi_resource = true;  // include the class head in the param set
  core::DecimaAgent agent(ac);
  const std::string path = tmp_path("policy_roundtrip.ckpt");
  ASSERT_TRUE(io::save_policy(agent, path));

  // The embedded config is readable standalone and round-trips every field.
  const auto embedded = io::read_policy_config(path);
  ASSERT_TRUE(embedded.has_value());
  EXPECT_TRUE(io::agent_config_equal(*embedded, ac));

  // Fresh agent from the embedded config, different initial weights.
  auto loaded = io::load_policy_agent(path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_TRUE(io::agent_config_equal(loaded->config(), ac));
  EXPECT_EQ(all_values(loaded->params()), all_values(agent.params()));
}

TEST(PolicyCheckpoint, LoadIntoMatchingAgentOverwritesValues) {
  core::AgentConfig ac;
  ac.seed = 11;
  core::DecimaAgent a(ac), b([] {
    core::AgentConfig c;
    c.seed = 999;  // same structure, different init
    return c;
  }());
  const std::string path = tmp_path("policy_overwrite.ckpt");
  ASSERT_TRUE(io::save_policy(a, path));
  ASSERT_NE(all_values(b.params()), all_values(a.params()));
  ASSERT_TRUE(io::load_policy(b, path));
  EXPECT_EQ(all_values(b.params()), all_values(a.params()));
}

TEST(PolicyCheckpoint, RejectsStructuralMismatch) {
  core::AgentConfig ac;
  ac.seed = 11;
  core::DecimaAgent agent(ac);
  const std::string path = tmp_path("policy_mismatch.ckpt");
  ASSERT_TRUE(io::save_policy(agent, path));

  core::AgentConfig other = ac;
  other.emb_dim = 4;  // different parameter shapes
  core::DecimaAgent small(other);
  const auto before = all_values(small.params());
  EXPECT_FALSE(io::load_policy(small, path));
  EXPECT_EQ(all_values(small.params()), before) << "failed load must not mutate";

  // Shape-preserving but meaning-changing config: same parameter structure,
  // different feature normalization — the weights would silently misread
  // their inputs, so the load must refuse.
  core::AgentConfig scaled = ac;
  scaled.features.task_scale = 1.0;
  core::DecimaAgent rescaled(scaled);
  EXPECT_FALSE(io::load_policy(rescaled, path));
}

TEST(PolicyCheckpoint, RejectsCorruptFiles) {
  core::AgentConfig ac;
  core::DecimaAgent agent(ac);
  const std::string path = tmp_path("policy_corrupt.ckpt");
  ASSERT_TRUE(io::save_policy(agent, path));

  // Truncated file.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(tmp_path("policy_truncated.ckpt"), std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_EQ(io::load_policy_agent(tmp_path("policy_truncated.ckpt")), nullptr);

  // Wrong magic.
  {
    std::ofstream out(tmp_path("policy_badmagic.ckpt"), std::ios::binary);
    const std::uint32_t junk = 0xDEADBEEF;
    out.write(reinterpret_cast<const char*>(&junk), sizeof junk);
  }
  EXPECT_EQ(io::load_policy_agent(tmp_path("policy_badmagic.ckpt")), nullptr);
  EXPECT_EQ(io::load_policy_agent(tmp_path("no_such_file.ckpt")), nullptr);
}

TEST(TrainerCheckpoint, ResumeContinuesBitExactly) {
  const std::string path = tmp_path("trainer_resume.ckpt");
  const int total_iters = 6, split = 3;

  // Uninterrupted run.
  core::AgentConfig ac;
  ac.seed = 5;
  core::DecimaAgent straight_agent(ac);
  rl::ReinforceTrainer straight(straight_agent, train_config());
  for (int i = 0; i < total_iters; ++i) straight.iterate();

  // Interrupted run: train(split), checkpoint, then resume in a brand-new
  // trainer + agent (fresh RNGs, fresh Adam) and finish.
  {
    core::DecimaAgent agent(ac);
    rl::ReinforceTrainer trainer(agent, train_config());
    for (int i = 0; i < split; ++i) trainer.iterate();
    ASSERT_TRUE(trainer.save_checkpoint(path));
  }
  core::DecimaAgent resumed_agent(ac);
  rl::ReinforceTrainer resumed(resumed_agent, train_config());
  ASSERT_TRUE(resumed.resume(path));
  EXPECT_EQ(resumed.iteration(), split);
  for (int i = split; i < total_iters; ++i) resumed.iterate();

  EXPECT_EQ(all_values(resumed_agent.params()), all_values(straight_agent.params()));
}

TEST(TrainerCheckpoint, SaveLoadRestoresAdamAndSchedules) {
  const std::string path = tmp_path("trainer_state.ckpt");
  core::AgentConfig ac;
  ac.seed = 5;
  auto cfg = train_config();
  cfg.curriculum = true;
  cfg.tau_mean_init = 50.0;
  cfg.tau_mean_growth = 10.0;

  core::DecimaAgent agent(ac);
  rl::ReinforceTrainer trainer(agent, cfg);
  trainer.iterate();
  trainer.iterate();
  ASSERT_TRUE(trainer.save_checkpoint(path));

  core::DecimaAgent restored_agent(ac);
  rl::ReinforceTrainer restored(restored_agent, cfg);
  ASSERT_TRUE(restored.resume(path));
  EXPECT_EQ(restored.iteration(), 2);
  EXPECT_EQ(restored.tau_mean(), trainer.tau_mean());
  EXPECT_EQ(all_values(restored_agent.params()), all_values(agent.params()));
}

TEST(TrainerCheckpoint, RejectsConfigMismatch) {
  const std::string path = tmp_path("trainer_mismatch.ckpt");
  core::AgentConfig ac;
  ac.seed = 5;
  {
    core::DecimaAgent agent(ac);
    rl::ReinforceTrainer trainer(agent, train_config());
    trainer.iterate();
    ASSERT_TRUE(trainer.save_checkpoint(path));
  }

  // Different learning rate: the checkpoint must be refused.
  auto other = train_config();
  other.lr = 5e-4;
  core::DecimaAgent agent(ac);
  rl::ReinforceTrainer trainer(agent, other);
  EXPECT_FALSE(trainer.resume(path));
  EXPECT_EQ(trainer.iteration(), 0) << "failed resume must not mutate";

  // Different environment (dynamics-affecting even with equal RL knobs).
  auto env_cfg = train_config();
  env_cfg.env.num_executors = 3;
  core::DecimaAgent env_agent(ac);
  rl::ReinforceTrainer env_trainer(env_agent, env_cfg);
  EXPECT_FALSE(env_trainer.resume(path));

  // Different agent seed (clone reconstruction fingerprint).
  core::AgentConfig other_ac = ac;
  other_ac.seed = 6;
  core::DecimaAgent other_agent(other_ac);
  rl::ReinforceTrainer trainer2(other_agent, train_config());
  EXPECT_FALSE(trainer2.resume(path));

  // rollout_threads may legitimately differ (determinism is thread-invariant).
  auto threads = train_config();
  threads.rollout_threads = 1;
  core::DecimaAgent agent3(ac);
  rl::ReinforceTrainer trainer3(agent3, threads);
  EXPECT_TRUE(trainer3.resume(path));
}

TEST(TrainerCheckpoint, ResumeAcrossThreadCountsBitExact) {
  // The parallel-rollout determinism contract composed with resume
  // (docs/training.md): train(N, threads=8) must equal
  // train(k, threads=8) + save + resume(threads=2) + train(N−k) bit for
  // bit — the checkpoint deliberately excludes rollout_threads, so a run
  // may be suspended on one machine size and finished on another.
  const std::string path = tmp_path("trainer_resume_threads.ckpt");
  const int total_iters = 6, split = 3;
  core::AgentConfig ac;
  ac.seed = 5;

  auto cfg8 = train_config();
  cfg8.rollout_threads = 8;
  core::DecimaAgent straight_agent(ac);
  rl::ReinforceTrainer straight(straight_agent, cfg8);
  for (int i = 0; i < total_iters; ++i) straight.iterate();

  {
    core::DecimaAgent agent(ac);
    rl::ReinforceTrainer trainer(agent, cfg8);
    for (int i = 0; i < split; ++i) trainer.iterate();
    ASSERT_TRUE(trainer.save_checkpoint(path));
  }
  auto cfg2 = train_config();
  cfg2.rollout_threads = 2;
  core::DecimaAgent resumed_agent(ac);
  rl::ReinforceTrainer resumed(resumed_agent, cfg2);
  ASSERT_TRUE(resumed.resume(path));
  EXPECT_EQ(resumed.iteration(), split);
  for (int i = split; i < total_iters; ++i) resumed.iterate();

  EXPECT_EQ(all_values(resumed_agent.params()),
            all_values(straight_agent.params()));

  // The final checkpoints — params, Adam moments, RNG stream, schedules —
  // must be byte-identical too, not merely value-equal.
  const std::string straight_path = tmp_path("trainer_straight8.ckpt");
  const std::string resumed_path = tmp_path("trainer_resumed2.ckpt");
  ASSERT_TRUE(straight.save_checkpoint(straight_path));
  ASSERT_TRUE(resumed.save_checkpoint(resumed_path));
  const auto bytes = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  ASSERT_FALSE(bytes(straight_path).empty());
  EXPECT_EQ(bytes(straight_path), bytes(resumed_path));
}

TEST(RngState, RoundTripReproducesDrawSequence) {
  Rng a(123);
  a.uniform();
  a.exponential(10.0);
  const std::string state = a.state_string();
  Rng b(0);
  ASSERT_TRUE(b.set_state_string(state));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.fork(), b.fork());
    EXPECT_EQ(a.uniform(), b.uniform());
  }
  EXPECT_FALSE(b.set_state_string("not a valid engine state"));
}

}  // namespace
}  // namespace decima
