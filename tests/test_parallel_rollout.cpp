// The parallel-rollout determinism contract (docs/training.md):
//
//   train(N) with TrainConfig::rollout_threads ∈ {1, 2, 8} produces
//   byte-equal parameters, byte-equal checkpoints, and bit-equal
//   per-iteration dynamics stats (rewards, JCTs, action counts, grad
//   norms, τ) — the thread count changes wall-clock and nothing else.
//
// rollout_threads = 1 is the sequential reference path; every other value
// is pinned against it here, clean and under fault plans, across the
// training ablations and multi-resource mode, plus a seeded property sweep
// over random FaultPlans × thread counts. This suite runs in the ASan and
// TSan CI jobs, so the same cases double as the memory/race proof of the
// worker pool. Also here: the util::WorkerPool unit tests and the
// IterationStats phase-timer invariants (no double-counting of concurrent
// work).
#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>

#include "rl/reinforce.h"
#include "sim/faults.h"
#include "util/sync.h"

namespace decima {
namespace {

sim::EnvConfig tiny_env(int execs = 3) {
  sim::EnvConfig c;
  c.num_executors = execs;
  c.enable_moving_delay = false;
  c.enable_wave_effect = false;
  c.enable_inflation = false;
  return c;
}

// Small randomized DAGs so episodes exercise real structure (levels,
// parallelism choices) without inflating TSan runtime.
rl::WorkloadSampler dag_sampler() {
  return [](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<sim::JobSpec> jobs;
    for (int i = 0; i < 3; ++i) {
      sim::JobBuilder b("job" + std::to_string(i));
      const int stages = rng.uniform_int(2, 4);
      for (int s = 0; s < stages; ++s) {
        b.stage(rng.uniform_int(1, 5), rng.uniform(0.5, 2.0),
                s > 0 ? std::vector<int>{s - 1} : std::vector<int>{});
      }
      jobs.push_back(b.build());
    }
    return workload::batched(std::move(jobs));
  };
}

rl::TrainConfig base_config() {
  rl::TrainConfig c;
  c.num_iterations = 2;
  c.episodes_per_iter = 4;
  c.rollout_threads = 1;
  c.curriculum = false;
  c.differential_reward = false;
  c.entropy_weight = 0.05;
  c.env = tiny_env();
  c.sampler = dag_sampler();
  c.seed = 31;
  return c;
}

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// Everything a training run may not change when only the thread count
// changes: final parameter bytes, checkpoint bytes, and the dynamics
// fields of every IterationStats (timings excluded — those are exactly
// what the thread count is allowed to change).
struct RunResult {
  std::vector<std::vector<double>> params;
  std::string checkpoint;
  std::vector<rl::IterationStats> curve;
};

bool dynamics_equal(const rl::IterationStats& a, const rl::IterationStats& b) {
  return a.iteration == b.iteration && a.tau == b.tau &&
         a.mean_total_reward == b.mean_total_reward &&
         a.mean_avg_jct == b.mean_avg_jct &&
         a.total_actions == b.total_actions && a.grad_norm == b.grad_norm &&
         a.entropy_weight == b.entropy_weight;
}

RunResult run_training(const core::AgentConfig& ac, rl::TrainConfig cfg,
                       int threads, const std::string& tag) {
  cfg.rollout_threads = threads;
  core::DecimaAgent agent(ac);
  rl::ReinforceTrainer trainer(agent, cfg);
  RunResult r;
  r.curve = trainer.train();
  for (const nn::Param* p : agent.params().params()) {
    r.params.push_back(p->value.raw());
  }
  const std::string path =
      tmp_path("par_rollout_" + tag + "_t" + std::to_string(threads) + ".ckpt");
  EXPECT_TRUE(trainer.save_checkpoint(path));
  r.checkpoint = file_bytes(path);
  EXPECT_FALSE(r.checkpoint.empty());
  return r;
}

// Pins threads ∈ {1, 2, 8} (sequential reference first) to byte equality.
void expect_thread_invariant(const core::AgentConfig& ac,
                             const rl::TrainConfig& cfg,
                             const std::string& tag) {
  const RunResult ref = run_training(ac, cfg, 1, tag);
  ASSERT_FALSE(ref.curve.empty());
  EXPECT_GT(ref.curve.front().total_actions, 0);
  for (int threads : {2, 8}) {
    SCOPED_TRACE(tag + " @ rollout_threads=" + std::to_string(threads));
    const RunResult got = run_training(ac, cfg, threads, tag);
    EXPECT_EQ(got.params, ref.params);
    EXPECT_EQ(got.checkpoint, ref.checkpoint);
    ASSERT_EQ(got.curve.size(), ref.curve.size());
    for (std::size_t i = 0; i < ref.curve.size(); ++i) {
      EXPECT_TRUE(dynamics_equal(got.curve[i], ref.curve[i]))
          << "iteration " << i << " stats drifted";
    }
  }
}

// --- The equivalence suite --------------------------------------------------

TEST(ParallelRollout, CleanTrainingIsThreadCountInvariant) {
  core::AgentConfig ac;
  ac.seed = 7;
  expect_thread_invariant(ac, base_config(), "clean");
}

TEST(ParallelRollout, FaultPlanTrainingIsThreadCountInvariant) {
  core::AgentConfig ac;
  ac.seed = 7;
  auto cfg = base_config();
  cfg.env = tiny_env(4);
  cfg.env.faults.failures = {{1, 2.0, 9.0}, {3, 4.0, sim::kInfTime}};
  cfg.env.faults.stragglers = {0.25, 4.0};
  cfg.env.faults.executor_speeds = {1.0, 0.5, 1.0, 0.75};
  cfg.env.faults.seed = 99;
  expect_thread_invariant(ac, cfg, "faults");
}

TEST(ParallelRollout, AblationsAreThreadCountInvariant) {
  // Every training-dynamics switch crosses the worker pool differently
  // (per-episode workload seeds, the reward-rate moving average, τ draws,
  // the reference replay path, cache off) — each must stay bit-identical.
  struct Variant {
    std::string tag;
    std::function<void(core::AgentConfig&, rl::TrainConfig&)> apply;
  };
  const std::vector<Variant> variants = {
      {"unfixed_sequences",
       [](core::AgentConfig&, rl::TrainConfig& t) {
         t.fixed_sequences = false;
       }},
      {"differential_curriculum",
       [](core::AgentConfig&, rl::TrainConfig& t) {
         t.differential_reward = true;
         t.curriculum = true;
         t.tau_mean_init = 20.0;
         t.tau_mean_growth = 5.0;
       }},
      {"makespan",
       [](core::AgentConfig&, rl::TrainConfig& t) {
         t.objective = rl::Objective::kMakespan;
         t.normalize_advantages = false;
       }},
      {"no_gnn",
       [](core::AgentConfig& a, rl::TrainConfig&) { a.use_gnn = false; }},
      {"reference_replay",
       [](core::AgentConfig& a, rl::TrainConfig&) {
         a.batched_replay = false;
       }},
      {"no_embed_cache",
       [](core::AgentConfig& a, rl::TrainConfig&) { a.embed_cache = false; }},
  };
  for (const Variant& v : variants) {
    SCOPED_TRACE(v.tag);
    core::AgentConfig ac;
    ac.seed = 7;
    auto cfg = base_config();
    cfg.num_iterations = 1;  // one iteration per variant keeps TSan runtime sane
    v.apply(ac, cfg);
    expect_thread_invariant(ac, cfg, v.tag);
  }
}

TEST(ParallelRollout, MultiResourceTrainingIsThreadCountInvariant) {
  core::AgentConfig ac;
  ac.seed = 7;
  ac.multi_resource = true;
  auto cfg = base_config();
  cfg.env.classes = {{0.5, "small"}, {1.0, "large"}};
  cfg.env.num_executors = 4;
  expect_thread_invariant(ac, cfg, "multi_resource");
}

TEST(ParallelRollout, MoreThreadsThanEpisodes) {
  // 8 workers, 3 episodes: idle workers must not perturb anything.
  core::AgentConfig ac;
  ac.seed = 7;
  auto cfg = base_config();
  cfg.episodes_per_iter = 3;
  expect_thread_invariant(ac, cfg, "overprovisioned");
}

// --- Seeded property sweep: random FaultPlans × thread counts ---------------

TEST(ParallelRollout, RandomFaultPlanSweepMatchesSequentialReference) {
  for (std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    SCOPED_TRACE("fault plan seed " + std::to_string(seed));
    Rng rng(seed);
    auto cfg = base_config();
    cfg.num_iterations = 1;
    cfg.env = tiny_env(4);
    cfg.env.faults.failures =
        sim::random_failures(rng, 4, rng.uniform_int(1, 3), 20.0, 8.0);
    cfg.env.faults.stragglers = {rng.uniform(0.0, 0.3), 4.0};
    cfg.env.faults.executor_speeds =
        sim::heterogeneous_speeds(rng, 4, 0.5, 2.0);
    cfg.env.faults.seed = rng.fork();
    cfg.seed = rng.fork();
    core::AgentConfig ac;
    ac.seed = 7 + seed;
    expect_thread_invariant(ac, cfg, "sweep" + std::to_string(seed));
  }
}

// --- Phase-timer invariants (IterationStats) --------------------------------

TEST(ParallelRollout, PhaseTimersNeverDoubleCountConcurrentWork) {
  for (int threads : {1, 3}) {
    SCOPED_TRACE("rollout_threads=" + std::to_string(threads));
    core::AgentConfig ac;
    ac.seed = 7;
    auto cfg = base_config();
    cfg.rollout_threads = threads;
    core::DecimaAgent agent(ac);
    rl::ReinforceTrainer trainer(agent, cfg);
    const rl::IterationStats s = trainer.iterate();

    // Phases are disjoint sub-spans of the iteration on one monotonic
    // clock: wall-clock timers are non-negative and partition the total.
    EXPECT_GE(s.rollout_seconds, 0.0);
    EXPECT_GE(s.replay_seconds, 0.0);
    EXPECT_GE(s.step_seconds, 0.0);
    EXPECT_NEAR(s.rollout_seconds + s.replay_seconds + s.step_seconds,
                s.total_seconds, 1e-12);

    // Per-worker busy seconds: actual compute happened, and each worker's
    // busy spans nest inside the phase span, so the aggregate can never
    // exceed threads × phase wall-clock (the double-counting bound).
    EXPECT_GT(s.rollout_cpu_seconds, 0.0);
    EXPECT_GT(s.replay_cpu_seconds, 0.0);
    EXPECT_LE(s.rollout_cpu_seconds,
              threads * s.rollout_seconds * (1.0 + 1e-9));
    EXPECT_LE(s.replay_cpu_seconds, threads * s.replay_seconds * (1.0 + 1e-9));
  }
}

// --- util::WorkerPool -------------------------------------------------------

TEST(WorkerPool, RunsEveryTaskExactlyOnceWithValidWorkerIndex) {
  util::WorkerPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  const int n = 64;
  std::vector<int> runs(n, 0);
  std::vector<int> worker_of(n, -1);
  pool.parallel_for(n, [&](int task, int worker) {
    runs[static_cast<std::size_t>(task)] += 1;
    worker_of[static_cast<std::size_t>(task)] = worker;
  });
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(runs[static_cast<std::size_t>(i)], 1) << "task " << i;
    EXPECT_GE(worker_of[static_cast<std::size_t>(i)], 0);
    EXPECT_LT(worker_of[static_cast<std::size_t>(i)], pool.size());
  }
}

TEST(WorkerPool, ReusableAcrossBatchesAndTaskCounts) {
  util::WorkerPool pool(3);
  for (int batch = 0; batch < 5; ++batch) {
    const int n = 1 + batch * 2;  // includes fewer tasks than workers
    std::vector<int> runs(static_cast<std::size_t>(n), 0);
    pool.parallel_for(n, [&](int task, int) {
      runs[static_cast<std::size_t>(task)] += 1;
    });
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(runs[static_cast<std::size_t>(i)], 1);
    }
  }
}

TEST(WorkerPool, ZeroAndNegativeTaskCountsAreNoOps) {
  util::WorkerPool pool(2);
  int ran = 0;
  pool.parallel_for(0, [&](int, int) { ++ran; });
  pool.parallel_for(-3, [&](int, int) { ++ran; });
  EXPECT_EQ(ran, 0);
}

TEST(WorkerPool, PropagatesTaskExceptionAfterDrainingTheBatch) {
  util::WorkerPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [&](int task, int) {
                          if (task == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a throwing batch.
  int ran = 0;
  util::Mutex mu;
  pool.parallel_for(4, [&](int, int) {
    util::MutexLock lk(mu);
    ++ran;
  });
  EXPECT_EQ(ran, 4);
}

}  // namespace
}  // namespace decima
