// End-to-end gradient check: finite differences through the *entire*
// pipeline — graph embedding (three levels), score function, masked softmax
// log-probability — against the tape's analytic gradients. This is the
// strongest guarantee that ∇_θ log π_θ(s, a), the quantity REINFORCE relies
// on, is computed correctly.
#include <gtest/gtest.h>

#include <cmath>

#include "gnn/graph_embedding.h"
#include "nn/mlp.h"

namespace decima {
namespace {

gnn::JobGraph make_graph(Rng& rng, int n) {
  gnn::JobGraph g;
  g.env_job = 0;
  g.features = nn::Matrix(static_cast<std::size_t>(n), 5);
  for (double& v : g.features.raw()) v = rng.uniform(-0.5, 0.5);
  g.children.resize(static_cast<std::size_t>(n));
  for (int v = 1; v < n; ++v) {
    g.children[static_cast<std::size_t>(rng.uniform_int(0, v - 1))].push_back(v);
  }
  g.topo.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) g.topo[static_cast<std::size_t>(v)] = v;
  g.runnable.assign(static_cast<std::size_t>(n), true);
  return g;
}

// Builds log pi(node = pick) over all nodes of two DAGs using the full GNN.
double forward_logp(gnn::GraphEmbedding& gnn, nn::Mlp& q,
                    const std::vector<gnn::JobGraph>& graphs,
                    std::size_t pick, nn::Tape& tape) {
  const auto emb = gnn.embed(tape, graphs);
  std::vector<nn::Var> scores;
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    const nn::Var x = tape.constant(graphs[g].features);
    for (std::size_t v = 0; v < graphs[g].runnable.size(); ++v) {
      const nn::Var in = tape.concat_cols({tape.row(x, v), emb.node_emb[g][v],
                                           emb.job_emb[g], emb.global_emb});
      scores.push_back(q.apply(tape, in));
    }
  }
  const nn::Var logits = tape.concat_scalars(scores);
  const nn::Var lp = tape.log_prob_pick(logits, pick);
  return tape.value(lp)(0, 0);
}

class PolicyGradcheck : public ::testing::TestWithParam<int> {};

TEST_P(PolicyGradcheck, FullPipelineMatchesFiniteDifferences) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  gnn::GnnConfig cfg;
  Rng init(99);
  gnn::GraphEmbedding gnn(cfg, init);
  nn::Mlp q("q", 5 + 3 * 8, 1);
  q.init(init);
  nn::ParamSet params = gnn.param_set();
  params.add(q.params());

  std::vector<gnn::JobGraph> graphs = {make_graph(rng, rng.uniform_int(2, 6)),
                                       make_graph(rng, rng.uniform_int(2, 6))};
  const std::size_t total_nodes =
      graphs[0].runnable.size() + graphs[1].runnable.size();
  const std::size_t pick =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(total_nodes) - 1));

  // Analytic gradient.
  params.zero_grads();
  {
    nn::Tape tape;
    const auto emb = gnn.embed(tape, graphs);
    std::vector<nn::Var> scores;
    for (std::size_t g = 0; g < graphs.size(); ++g) {
      const nn::Var x = tape.constant(graphs[g].features);
      for (std::size_t v = 0; v < graphs[g].runnable.size(); ++v) {
        const nn::Var in = tape.concat_cols({tape.row(x, v), emb.node_emb[g][v],
                                             emb.job_emb[g], emb.global_emb});
        scores.push_back(q.apply(tape, in));
      }
    }
    const nn::Var logits = tape.concat_scalars(scores);
    tape.backward(tape.log_prob_pick(logits, pick));
  }
  const std::vector<double> analytic = params.flat_grads();

  // Finite differences on a random sample of parameters (the full set is
  // ~9k entries; a spread-out sample keeps the test fast but thorough).
  std::vector<double> flat_values;
  for (nn::Param* p : params.params()) {
    flat_values.insert(flat_values.end(), p->value.raw().begin(),
                       p->value.raw().end());
  }
  auto set_flat = [&](std::size_t idx, double value) {
    std::size_t offset = 0;
    for (nn::Param* p : params.params()) {
      if (idx < offset + p->value.raw().size()) {
        p->value.raw()[idx - offset] = value;
        return;
      }
      offset += p->value.raw().size();
    }
  };

  const double eps = 1e-6;
  int checked = 0;
  for (int s = 0; s < 60; ++s) {
    const std::size_t idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(flat_values.size()) - 1));
    const double orig = flat_values[idx];
    set_flat(idx, orig + eps);
    nn::Tape t1(false);
    const double f_plus = forward_logp(gnn, q, graphs, pick, t1);
    set_flat(idx, orig - eps);
    nn::Tape t2(false);
    const double f_minus = forward_logp(gnn, q, graphs, pick, t2);
    set_flat(idx, orig);
    const double numeric = (f_plus - f_minus) / (2 * eps);
    const double scale =
        std::max({std::abs(numeric), std::abs(analytic[idx]), 1e-3});
    EXPECT_NEAR(analytic[idx], numeric, scale * 1e-4)
        << "param index " << idx << " seed " << GetParam();
    ++checked;
  }
  EXPECT_EQ(checked, 60);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyGradcheck, ::testing::Range(0, 5));

}  // namespace
}  // namespace decima
