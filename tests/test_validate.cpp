// Tests of the trace validator itself: fabricated traces with specific
// violations must be rejected with the right diagnostic.
#include <gtest/gtest.h>

#include "sim/validate.h"

namespace decima::sim {
namespace {

// A completed one-job fixture: 1 stage with 2 tasks, plus a child stage with
// 1 task, run on 2 executors.
struct Fixture {
  std::vector<TaskRecord> trace;
  std::vector<JobState> jobs;
  std::vector<ExecutorClass> classes{{1.0, "default"}};
  std::vector<ExecutorState> executors;

  Fixture() {
    JobBuilder b("j");
    const int s0 = b.stage(2, 1.0);
    b.stage(1, 1.0, {s0});
    JobState job;
    job.spec = b.build();
    job.children = job.spec.children();
    job.arrival = 0.0;
    job.finish = 2.0;
    job.stages.resize(2);
    job.stages[0].finished = 2;
    job.stages[1].finished = 1;
    job.stages_complete = 2;
    job.arrived = true;
    jobs.push_back(std::move(job));

    executors.resize(2);
    executors[0].id = 0;
    executors[1].id = 1;

    auto task = [](int stage, int idx, int exec, double start, double end) {
      TaskRecord t;
      t.job = 0;
      t.stage = stage;
      t.task_index = idx;
      t.executor = exec;
      t.dispatched = start;
      t.start = start;
      t.end = end;
      return t;
    };
    trace = {task(0, 0, 0, 0.0, 1.0), task(0, 1, 1, 0.0, 1.0),
             task(1, 0, 0, 1.0, 2.0)};
  }

  bool valid(std::string* err = nullptr) const {
    return validate_trace_data(trace, jobs, classes, executors, err);
  }
};

TEST(Validator, AcceptsConsistentTrace) {
  Fixture f;
  std::string err;
  EXPECT_TRUE(f.valid(&err)) << err;
}

TEST(Validator, CatchesMissingTask) {
  Fixture f;
  f.trace.pop_back();  // stage 1 ran 0 of 1 tasks
  std::string err;
  EXPECT_FALSE(f.valid(&err));
  EXPECT_NE(err.find("expected"), std::string::npos);
}

TEST(Validator, CatchesExtraTask) {
  Fixture f;
  f.trace.push_back(f.trace.back());  // duplicate stage-1 task
  f.trace.back().dispatched = 5.0;    // avoid tripping the overlap check
  f.trace.back().start = 5.0;
  f.trace.back().end = 6.0;
  std::string err;
  EXPECT_FALSE(f.valid(&err));
}

TEST(Validator, CatchesExecutorDoubleBooking) {
  Fixture f;
  f.trace[1].executor = 0;  // both stage-0 tasks on executor 0 at [0,1)
  std::string err;
  EXPECT_FALSE(f.valid(&err));
  EXPECT_NE(err.find("double-booked"), std::string::npos);
}

TEST(Validator, CatchesDependencyViolation) {
  Fixture f;
  // Child task dispatched at t=0.5 while a parent task ends at 1.0. Use a
  // fresh executor so the overlap check does not mask the dependency error.
  f.executors.resize(3);
  f.executors[2].id = 2;
  f.trace[2].dispatched = 0.5;
  f.trace[2].start = 0.5;
  f.trace[2].end = 1.5;
  f.trace[2].executor = 2;
  f.jobs[0].finish = 1.5;
  std::string err;
  EXPECT_FALSE(f.valid(&err));
  EXPECT_NE(err.find("parent"), std::string::npos);
}

TEST(Validator, CatchesPreArrivalDispatch) {
  Fixture f;
  f.jobs[0].arrival = 0.5;  // stage-0 tasks were dispatched at 0.0
  std::string err;
  EXPECT_FALSE(f.valid(&err));
  EXPECT_NE(err.find("arrival"), std::string::npos);
}

TEST(Validator, CatchesFinishTimeMismatch) {
  Fixture f;
  f.jobs[0].finish = 10.0;
  std::string err;
  EXPECT_FALSE(f.valid(&err));
  EXPECT_NE(err.find("finish"), std::string::npos);
}

TEST(Validator, CatchesMemoryMisfit) {
  Fixture f;
  f.jobs[0].spec.stages[0].mem_req = 0.9;
  f.classes[0].mem = 0.5;
  std::string err;
  EXPECT_FALSE(f.valid(&err));
  EXPECT_NE(err.find("memory"), std::string::npos);
}

TEST(Validator, IgnoresUnfinishedJobsForCounts) {
  Fixture f;
  f.jobs[0].finish = -1.0;  // job marked incomplete
  f.jobs[0].stages_complete = 1;
  f.trace.pop_back();  // missing stage-1 task is fine: job not done
  std::string err;
  EXPECT_TRUE(f.valid(&err)) << err;
}

}  // namespace
}  // namespace decima::sim
