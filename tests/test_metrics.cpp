#include <gtest/gtest.h>

#include "metrics/experiment.h"
#include "metrics/timeseries.h"
#include "sched/heuristics.h"

namespace decima::metrics {
namespace {

sim::EnvConfig config(int execs) {
  sim::EnvConfig c;
  c.num_executors = execs;
  c.enable_moving_delay = false;
  c.enable_wave_effect = false;
  c.enable_inflation = false;
  return c;
}

sim::JobSpec job(const std::string& name, int tasks, double dur) {
  sim::JobBuilder b(name);
  b.stage(tasks, dur);
  return b.build();
}

TEST(RunEpisode, SummarizesCompletedRun) {
  sched::FifoScheduler fifo;
  const auto w = workload::batched({job("a", 2, 1.0), job("b", 2, 1.0)});
  const auto r = run_episode(config(2), w, fifo);
  EXPECT_TRUE(r.all_done);
  EXPECT_EQ(r.jobs_completed, 2);
  EXPECT_EQ(r.jobs_total, 2);
  EXPECT_GT(r.avg_jct, 0.0);
  EXPECT_GE(r.makespan, r.jcts[0]);
}

TEST(RunEpisode, PartialRunReportsIncomplete) {
  sched::FifoScheduler fifo;
  const auto w = workload::batched({job("long", 100, 1.0)});
  const auto r = run_episode(config(1), w, fifo, /*until=*/5.0);
  EXPECT_FALSE(r.all_done);
  EXPECT_EQ(r.jobs_completed, 0);
}

TEST(ConcurrentJobs, TracksArrivalsAndDepartures) {
  sim::ClusterEnv env(config(1));
  env.add_job(job("a", 2, 1.0), 0.0);   // runs [0, 2)
  env.add_job(job("b", 2, 1.0), 1.0);   // queued, runs [2, 4)
  sched::FifoScheduler fifo;
  env.run(fifo);
  const auto series = concurrent_jobs_series(env, 0.5);
  ASSERT_FALSE(series.empty());
  // At t=1.5 both jobs are in the system.
  EXPECT_DOUBLE_EQ(series[3], 2.0);
  // After t=4 none are.
  EXPECT_DOUBLE_EQ(series.back(), 0.0);
}

TEST(MeanExecutors, MatchesAllocation) {
  sim::ClusterEnv env(config(4));
  env.add_job(job("a", 8, 1.0), 0.0);  // 4 executors, 2 waves
  sched::FifoScheduler fifo;
  env.run(fifo);
  const auto mean_execs = mean_executors_per_job(env);
  ASSERT_EQ(mean_execs.size(), 1u);
  EXPECT_NEAR(mean_execs[0], 4.0, 1e-9);
}

TEST(ExecutedWork, MatchesSpecWithoutInflation) {
  sim::ClusterEnv env(config(2));
  env.add_job(job("a", 4, 1.5), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo);
  const auto work = executed_work_per_job(env);
  EXPECT_NEAR(work[0], 6.0, 1e-9);
}

TEST(ClassUsage, CountsTasksPerClass) {
  sim::EnvConfig c = config(4);
  c.classes = {{0.5, "s"}, {1.0, "l"}};
  sim::ClusterEnv env(c);
  env.add_job(job("a", 4, 1.0), 0.0);
  sched::TetrisScheduler tetris;
  env.run(tetris);
  const auto usage = class_usage_per_job(env);
  ASSERT_EQ(usage.size(), 1u);
  ASSERT_EQ(usage[0].size(), 2u);
  EXPECT_EQ(usage[0][0] + usage[0][1], 4);
}

TEST(Gantt, RendersGrid) {
  sim::ClusterEnv env(config(3));
  env.add_job(job("a", 6, 1.0), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo);
  const std::string g = ascii_gantt(env, 40);
  EXPECT_NE(g.find('A'), std::string::npos);
  // 3 executor rows + legend line.
  EXPECT_EQ(std::count(g.begin(), g.end(), '\n'), 4);
}

}  // namespace
}  // namespace decima::metrics
