#include <gtest/gtest.h>

#include "sched/heuristics.h"
#include "sim/cluster_env.h"
#include "sim/validate.h"

namespace decima::sim {
namespace {

EnvConfig basic_config(int execs = 4) {
  EnvConfig c;
  c.num_executors = execs;
  c.moving_delay = 0.0;
  c.enable_moving_delay = false;
  c.enable_wave_effect = false;
  c.enable_inflation = false;
  c.duration_noise = 0.0;
  return c;
}

JobSpec one_stage_job(const std::string& name, int tasks, double dur) {
  JobBuilder b(name);
  b.stage(tasks, dur);
  return b.build();
}

TEST(ClusterEnv, SingleStageRunsToCompletion) {
  ClusterEnv env(basic_config(2));
  env.add_job(one_stage_job("j", 4, 1.0), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo);
  EXPECT_TRUE(env.all_done());
  // 4 tasks on 2 executors at 1s each = 2 waves = 2 seconds.
  EXPECT_DOUBLE_EQ(env.jobs()[0].finish, 2.0);
  EXPECT_DOUBLE_EQ(env.avg_jct(), 2.0);
  std::string err;
  EXPECT_TRUE(validate_trace(env, &err)) << err;
}

TEST(ClusterEnv, DependenciesGateChildStages) {
  ClusterEnv env(basic_config(4));
  JobBuilder b("dep");
  const int s0 = b.stage(2, 1.0);
  b.stage(2, 1.0, {s0});
  env.add_job(b.build(), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo);
  EXPECT_TRUE(env.all_done());
  EXPECT_DOUBLE_EQ(env.jobs()[0].finish, 2.0);  // sequential stages
  std::string err;
  EXPECT_TRUE(validate_trace(env, &err)) << err;
}

TEST(ClusterEnv, ArrivalTimeRespected) {
  ClusterEnv env(basic_config(2));
  env.add_job(one_stage_job("late", 1, 1.0), 5.0);
  sched::FifoScheduler fifo;
  env.run(fifo);
  EXPECT_DOUBLE_EQ(env.jobs()[0].finish, 6.0);
  EXPECT_DOUBLE_EQ(env.jobs()[0].jct(), 1.0);
}

TEST(ClusterEnv, MovingDelayAppliedAcrossJobs) {
  EnvConfig c = basic_config(1);
  c.enable_moving_delay = true;
  c.moving_delay = 2.0;
  ClusterEnv env(c);
  env.add_job(one_stage_job("a", 1, 1.0), 0.0);
  env.add_job(one_stage_job("b", 1, 1.0), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo);
  EXPECT_TRUE(env.all_done());
  // Executor pays the 2s delay for job a (first binding) and again for b.
  EXPECT_DOUBLE_EQ(env.jobs()[0].finish, 3.0);
  EXPECT_DOUBLE_EQ(env.jobs()[1].finish, 6.0);
}

TEST(ClusterEnv, NoMovingDelayWithinSameJob) {
  EnvConfig c = basic_config(1);
  c.enable_moving_delay = true;
  c.moving_delay = 2.0;
  ClusterEnv env(c);
  JobBuilder b("two-stage");
  const int s0 = b.stage(1, 1.0);
  b.stage(1, 1.0, {s0});
  env.add_job(b.build(), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo);
  // Delay paid once on first binding; the second stage reuses the local
  // executor without a new delay: 2 + 1 + 1 = 4.
  EXPECT_DOUBLE_EQ(env.jobs()[0].finish, 4.0);
}

TEST(ClusterEnv, FirstWaveSlowdown) {
  EnvConfig c = basic_config(2);
  c.enable_wave_effect = true;
  c.first_wave_factor = 1.5;
  ClusterEnv env(c);
  env.add_job(one_stage_job("w", 4, 1.0), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo);
  // First wave (2 tasks) at 1.5s, second wave at 1.0s => finish at 2.5s.
  EXPECT_DOUBLE_EQ(env.jobs()[0].finish, 2.5);
  int first_wave = 0;
  for (const auto& t : env.trace()) first_wave += t.first_wave ? 1 : 0;
  EXPECT_EQ(first_wave, 2);
}

TEST(ClusterEnv, WorkInflationSlowsWideAllocations) {
  EnvConfig c = basic_config(8);
  c.enable_inflation = true;
  ClusterEnv env(c);
  JobSpec j = one_stage_job("inflate", 8, 1.0);
  j.sweet_spot = 2.0;
  j.inflation = 1.0;
  env.add_job(j, 0.0);
  sched::FifoScheduler fifo;  // grabs all 8 executors
  env.run(fifo);
  // With 8 executors and sweet spot 2: multiplier grows as executors bind.
  // Whatever the exact value, it must exceed the uninflated 1s runtime.
  EXPECT_GT(env.jobs()[0].finish, 1.0);
  EXPECT_GT(env.jobs()[0].executed_work, 8.0);
}

TEST(ClusterEnv, ParallelismLimitCapsAllocation) {
  // A scheduler that always sets limit 2 on the only job.
  struct LimitTwo : Scheduler {
    Action schedule(const ClusterEnv& env) override {
      const auto nodes = env.runnable_nodes();
      if (nodes.empty()) return Action::none();
      if (env.jobs()[0].executors >= 2) return Action::none();
      Action a;
      a.node = nodes[0];
      a.limit = 2;
      return a;
    }
    std::string name() const override { return "limit2"; }
  };
  ClusterEnv env(basic_config(4));
  env.add_job(one_stage_job("j", 8, 1.0), 0.0);
  LimitTwo sched;
  env.run(sched);
  EXPECT_TRUE(env.all_done());
  // 8 tasks at parallelism 2 => 4 waves => 4 seconds.
  EXPECT_DOUBLE_EQ(env.jobs()[0].finish, 4.0);
}

TEST(ClusterEnv, RunnableNodesTracksFrontier) {
  ClusterEnv env(basic_config(1));
  JobBuilder b("f");
  const int s0 = b.stage(1, 1.0);
  b.stage(1, 1.0, {s0});
  env.add_job(b.build(), 0.0);
  // Before run: nothing arrived yet (arrival event pending).
  EXPECT_TRUE(env.runnable_nodes().empty());
  sched::FifoScheduler fifo;
  env.run(fifo);
  EXPECT_TRUE(env.runnable_nodes().empty());  // all done
}

TEST(ClusterEnv, ActionRewardPenalizesQueuedJobs) {
  ClusterEnv env(basic_config(1));
  env.add_job(one_stage_job("a", 1, 1.0), 0.0);
  env.add_job(one_stage_job("b", 1, 1.0), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo);
  const auto rewards = env.action_rewards();
  double total = 0.0;
  for (double r : rewards) total += r;
  // Integral of J(t): 2 jobs during [0,1), 1 job during [1,2) => -(2+1) = -3.
  EXPECT_NEAR(total, -3.0, 1e-9);
}

TEST(ClusterEnv, MakespanRewardSumsToNegativeMakespan) {
  ClusterEnv env(basic_config(2));
  env.add_job(one_stage_job("a", 4, 1.0), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo);
  const auto rewards = env.action_rewards_makespan();
  double total = 0.0;
  for (double r : rewards) total += r;
  EXPECT_NEAR(total, -env.makespan(), 1e-9);
}

TEST(ClusterEnv, EarlyTerminationStopsAtTau) {
  ClusterEnv env(basic_config(1));
  env.add_job(one_stage_job("long", 100, 1.0), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo, /*until=*/10.0);
  EXPECT_FALSE(env.all_done());
  EXPECT_LE(env.now(), 10.0 + 1e-9);
  // Resume to completion.
  env.run(fifo);
  EXPECT_TRUE(env.all_done());
}

TEST(ClusterEnv, RejectsInvalidJob) {
  ClusterEnv env(basic_config(1));
  JobSpec bad;
  bad.name = "bad";
  EXPECT_THROW(env.add_job(bad, 0.0), std::invalid_argument);
  EXPECT_THROW(env.add_job(one_stage_job("x", 1, 1.0), -1.0),
               std::invalid_argument);
}

TEST(ClusterEnv, RejectsBadConfig) {
  EnvConfig c;
  c.num_executors = 0;
  EXPECT_THROW(ClusterEnv{c}, std::invalid_argument);
  EnvConfig c2;
  c2.classes.clear();
  EXPECT_THROW(ClusterEnv{c2}, std::invalid_argument);
}

TEST(ClusterEnv, DeterministicWithSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    EnvConfig c = basic_config(3);
    c.duration_noise = 0.3;
    c.seed = seed;
    ClusterEnv env(c);
    env.add_job(one_stage_job("a", 10, 1.0), 0.0);
    env.add_job(one_stage_job("b", 5, 2.0), 1.0);
    sched::FifoScheduler fifo;
    env.run(fifo);
    return env.avg_jct();
  };
  EXPECT_DOUBLE_EQ(run_once(11), run_once(11));
  EXPECT_NE(run_once(11), run_once(12));
}

TEST(ClusterEnv, LocalFreeExecutorsTracked) {
  EnvConfig c = basic_config(2);
  ClusterEnv env(c);
  JobBuilder b("l");
  const int s0 = b.stage(1, 1.0);
  b.stage(1, 5.0, {s0});
  env.add_job(b.build(), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo);
  // Each stage has a single task, so exactly one executor ever served job 0
  // and remains "local" to it after completion.
  EXPECT_EQ(env.local_free_executors(0), 1);
}

TEST(ClusterEnv, DecisionLatenciesRecorded) {
  ClusterEnv env(basic_config(2));
  env.add_job(one_stage_job("j", 4, 1.0), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo);
  EXPECT_FALSE(env.decision_latencies().empty());
}

}  // namespace
}  // namespace decima::sim
