#include <gtest/gtest.h>

#include "core/agent.h"
#include "sched/heuristics.h"
#include "sim/validate.h"
#include "workload/tpch.h"

namespace decima {
namespace {

sim::EnvConfig multi_config(int execs = 8) {
  sim::EnvConfig c;
  c.num_executors = execs;
  c.classes = {{0.25, "s"}, {0.5, "m"}, {0.75, "l"}, {1.0, "xl"}};
  c.enable_moving_delay = false;
  c.enable_wave_effect = false;
  c.enable_inflation = false;
  return c;
}

TEST(MultiResource, ClassesSplitEvenly) {
  sim::ClusterEnv env(multi_config(8));
  for (int cls = 0; cls < 4; ++cls) {
    EXPECT_EQ(env.free_executor_count_of_class(cls), 2);
  }
}

TEST(MultiResource, TaskOnlyRunsOnFittingClass) {
  sim::ClusterEnv env(multi_config(8));
  sim::JobBuilder b("hungry");
  b.stage(4, 1.0, {}, 0.8);  // only the 1.0-mem class fits
  env.add_job(b.build(), 0.0);
  sched::TetrisScheduler tetris;
  env.run(tetris);
  EXPECT_TRUE(env.all_done());
  for (const auto& t : env.trace()) {
    const int cls = env.executors()[static_cast<std::size_t>(t.executor)].cls;
    EXPECT_GE(env.executor_classes()[static_cast<std::size_t>(cls)].mem, 0.8);
  }
}

TEST(MultiResource, UnsatisfiableStageStallsOnlyThatJob) {
  // mem_req 1.0 jobs can still run; a 0.9-req stage cannot use small classes.
  sim::ClusterEnv env(multi_config(4));  // classes .25/.5/.75/1.0, one each
  sim::JobBuilder b1("big");
  b1.stage(2, 1.0, {}, 0.9);
  sim::JobBuilder b2("small");
  b2.stage(2, 1.0, {}, 0.1);
  env.add_job(b1.build(), 0.0);
  env.add_job(b2.build(), 0.0);
  sched::TetrisScheduler tetris;
  env.run(tetris);
  EXPECT_TRUE(env.all_done());
  std::string err;
  EXPECT_TRUE(sim::validate_trace(env, &err)) << err;
}

TEST(MultiResource, ExplicitClassRequestHonored) {
  struct PickLargest : sim::Scheduler {
    sim::Action schedule(const sim::ClusterEnv& env) override {
      const auto nodes = env.runnable_nodes();
      if (nodes.empty()) return sim::Action::none();
      if (env.free_executor_count_of_class(3) == 0) return sim::Action::none();
      sim::Action a;
      a.node = nodes[0];
      a.limit = env.total_executors();
      a.exec_class = 3;  // xl only
      return a;
    }
    std::string name() const override { return "xl-only"; }
  } sched;
  sim::ClusterEnv env(multi_config(8));
  sim::JobBuilder b("j");
  b.stage(2, 1.0, {}, 0.1);
  env.add_job(b.build(), 0.0);
  env.run(sched);
  EXPECT_TRUE(env.all_done());
  for (const auto& t : env.trace()) {
    EXPECT_EQ(env.executors()[static_cast<std::size_t>(t.executor)].cls, 3);
  }
}

TEST(MultiResource, DecimaAgentSchedulesWithClassHead) {
  core::AgentConfig ac;
  ac.multi_resource = true;
  ac.seed = 11;
  core::DecimaAgent agent(ac);
  agent.set_mode(core::Mode::kSample);
  agent.set_sample_seed(3);

  sim::ClusterEnv env(multi_config(8));
  Rng rng(5);
  for (int i = 0; i < 4; ++i) {
    auto j = workload::sample_tpch_job(rng);
    workload::assign_memory_requests(j, rng);
    env.add_job(std::move(j), static_cast<double>(i));
  }
  env.run(agent);
  EXPECT_TRUE(env.all_done());
  std::string err;
  EXPECT_TRUE(sim::validate_trace(env, &err)) << err;
}

TEST(MultiResource, AgentReplayIsExactWithClasses) {
  core::AgentConfig ac;
  ac.multi_resource = true;
  ac.seed = 13;
  core::DecimaAgent agent(ac);
  agent.set_mode(core::Mode::kSample);
  agent.set_sample_seed(17);
  agent.start_recording();

  auto build_env = [] {
    sim::ClusterEnv env(multi_config(8));
    Rng rng(8);
    for (int i = 0; i < 3; ++i) {
      auto j = workload::sample_tpch_job(rng);
      workload::assign_memory_requests(j, rng);
      env.add_job(std::move(j), 0.0);
    }
    return env;
  };
  auto env1 = build_env();
  env1.run(agent);
  const auto recorded = agent.take_recorded();
  ASSERT_FALSE(recorded.empty());

  auto clone = agent.clone();
  clone->params().zero_grads();
  clone->start_replay(recorded, std::vector<double>(recorded.size(), 1.0), 0.0);
  auto env2 = build_env();
  env2.run(*clone);
  clone->finish_replay();
  EXPECT_DOUBLE_EQ(env1.avg_jct(), env2.avg_jct());
  EXPECT_EQ(clone->replay_cursor(), recorded.size());
  // The batched replay scored the episode (class head included) on one tape.
  double gnorm = 0.0;
  for (const auto* p : clone->params().params()) {
    gnorm += p->grad.squared_norm();
  }
  EXPECT_GT(gnorm, 0.0);
}

TEST(MultiResource, GrapheneAndTetrisComplete) {
  Rng rng(21);
  for (sim::Scheduler* s :
       std::initializer_list<sim::Scheduler*>{nullptr}) {
    (void)s;
  }
  sched::TetrisScheduler tetris;
  sched::GrapheneScheduler graphene;
  for (sim::Scheduler* s :
       std::vector<sim::Scheduler*>{&tetris, &graphene}) {
    sim::ClusterEnv env(multi_config(12));
    Rng wl(3);
    for (int i = 0; i < 5; ++i) {
      auto j = workload::sample_tpch_job(wl);
      workload::assign_memory_requests(j, wl);
      env.add_job(std::move(j), 0.0);
    }
    env.run(*s);
    EXPECT_TRUE(env.all_done()) << s->name();
    std::string err;
    EXPECT_TRUE(sim::validate_trace(env, &err)) << s->name() << ": " << err;
  }
}

}  // namespace
}  // namespace decima
