#include <gtest/gtest.h>

#include "sim/job.h"

namespace decima::sim {
namespace {

JobSpec diamond() {
  // Diamond: 0 -> {1, 2} -> 3.
  JobBuilder b("diamond");
  const int s0 = b.stage(2, 1.0);
  const int s1 = b.stage(4, 2.0, {s0});
  const int s2 = b.stage(1, 10.0, {s0});
  b.stage(3, 1.0, {s1, s2});
  return b.build();
}

TEST(JobSpec, TotalWork) {
  const JobSpec j = diamond();
  EXPECT_DOUBLE_EQ(j.total_work(), 2 * 1.0 + 4 * 2.0 + 1 * 10.0 + 3 * 1.0);
}

TEST(JobSpec, ChildrenAdjacency) {
  const auto kids = diamond().children();
  EXPECT_EQ(kids[0], (std::vector<int>{1, 2}));
  EXPECT_EQ(kids[1], (std::vector<int>{3}));
  EXPECT_EQ(kids[2], (std::vector<int>{3}));
  EXPECT_TRUE(kids[3].empty());
}

TEST(JobSpec, TopoOrderRespectsDependencies) {
  const JobSpec j = diamond();
  const auto order = j.topo_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  for (std::size_t v = 0; v < 4; ++v) {
    for (int p : j.stages[v].parents) {
      EXPECT_LT(pos[static_cast<std::size_t>(p)], pos[v]);
    }
  }
}

TEST(JobSpec, CriticalPathValues) {
  const JobSpec j = diamond();
  const auto cp = j.critical_path();
  // cp(3) = 3, cp(2) = 10 + 3 = 13, cp(1) = 8 + 3 = 11, cp(0) = 2 + 13 = 15.
  EXPECT_DOUBLE_EQ(cp[3], 3.0);
  EXPECT_DOUBLE_EQ(cp[2], 13.0);
  EXPECT_DOUBLE_EQ(cp[1], 11.0);
  EXPECT_DOUBLE_EQ(cp[0], 15.0);
}

TEST(JobSpec, CriticalPathDuration) {
  const JobSpec j = diamond();
  // Longest duration chain: 0 (1s) -> 2 (10s) -> 3 (1s) = 12s.
  EXPECT_DOUBLE_EQ(j.critical_path_duration(), 12.0);
}

TEST(JobSpec, ValidateAcceptsDiamond) {
  std::string err;
  EXPECT_TRUE(diamond().validate(&err)) << err;
}

TEST(JobSpec, ValidateRejectsEmpty) {
  JobSpec j;
  j.name = "empty";
  std::string err;
  EXPECT_FALSE(j.validate(&err));
  EXPECT_NE(err.find("no stages"), std::string::npos);
}

TEST(JobSpec, ValidateRejectsCycle) {
  JobSpec j;
  j.name = "cycle";
  StageSpec a, b;
  a.num_tasks = 1;
  a.task_duration = 1;
  a.parents = {1};
  b.num_tasks = 1;
  b.task_duration = 1;
  b.parents = {0};
  j.stages = {a, b};
  std::string err;
  EXPECT_FALSE(j.validate(&err));
  EXPECT_NE(err.find("cycle"), std::string::npos);
}

TEST(JobSpec, ValidateRejectsBadParentIndex) {
  JobBuilder b("bad");
  b.stage(1, 1.0, {5});
  std::string err;
  EXPECT_FALSE(b.build().validate(&err));
}

TEST(JobSpec, ValidateRejectsSelfParent) {
  JobSpec j;
  j.name = "self";
  StageSpec s;
  s.num_tasks = 1;
  s.task_duration = 1;
  s.parents = {0};
  j.stages = {s};
  EXPECT_FALSE(j.validate());
}

TEST(JobSpec, ValidateRejectsNonPositiveTasksOrDuration) {
  {
    JobBuilder b("t");
    b.stage(0, 1.0);
    EXPECT_FALSE(b.build().validate());
  }
  {
    JobBuilder b("d");
    b.stage(1, 0.0);
    EXPECT_FALSE(b.build().validate());
  }
}

TEST(JobSpec, ValidateRejectsMemOutOfRange) {
  JobBuilder b("m");
  b.stage(1, 1.0, {}, 1.5);
  EXPECT_FALSE(b.build().validate());
}

TEST(JobBuilder, AssignsNamesAndIndices) {
  JobBuilder b("j");
  EXPECT_EQ(b.stage(1, 1.0), 0);
  EXPECT_EQ(b.stage(1, 1.0), 1);
  const JobSpec j = b.build();
  EXPECT_EQ(j.stages[1].name, "j/s1");
}

TEST(JobSpec, SingleStageChainCriticalPath) {
  JobBuilder b("chain");
  int prev = b.stage(1, 2.0);
  for (int i = 0; i < 4; ++i) prev = b.stage(1, 2.0, {prev});
  const JobSpec j = b.build();
  const auto cp = j.critical_path();
  EXPECT_DOUBLE_EQ(cp[0], 10.0);  // 5 stages x 2s
  EXPECT_DOUBLE_EQ(j.critical_path_duration(), 10.0);
}

}  // namespace
}  // namespace decima::sim
