#include <gtest/gtest.h>

#include "nn/matrix.h"

namespace decima::nn {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, RowVector) {
  const Matrix r = Matrix::row_vector({1.0, 2.0, 3.0});
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_EQ(r.cols(), 3u);
  EXPECT_DOUBLE_EQ(r(0, 2), 3.0);
}

TEST(Matrix, Matmul) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = a.matmul(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, TransposedMatmulMatchesExplicit) {
  Matrix a(3, 2, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  // a^T b: (2x3)(3x2) = 2x2
  const Matrix c = a.transposed_matmul(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  // a^T = [[1,3,5],[2,4,6]]
  EXPECT_DOUBLE_EQ(c(0, 0), 1 * 7 + 3 * 9 + 5 * 11);
  EXPECT_DOUBLE_EQ(c(1, 1), 2 * 8 + 4 * 10 + 6 * 12);
}

TEST(Matrix, MatmulTransposed) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(2, 3, {7, 8, 9, 10, 11, 12});
  // a b^T: 2x2
  const Matrix c = a.matmul_transposed(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 1 * 7 + 2 * 8 + 3 * 9);
  EXPECT_DOUBLE_EQ(c(1, 0), 4 * 7 + 5 * 8 + 6 * 9);
}

TEST(Matrix, AddAndAxpy) {
  Matrix a(1, 3, {1, 2, 3});
  Matrix b(1, 3, {10, 20, 30});
  a.add_in_place(b);
  EXPECT_DOUBLE_EQ(a(0, 2), 33.0);
  a.axpy(0.5, b);
  EXPECT_DOUBLE_EQ(a(0, 0), 11.0 + 5.0);
}

TEST(Matrix, SumAndNorm) {
  Matrix a(1, 3, {3, 4, 0});
  EXPECT_DOUBLE_EQ(a.sum(), 7.0);
  EXPECT_DOUBLE_EQ(a.squared_norm(), 25.0);
}

TEST(Matrix, FillZero) {
  Matrix a(2, 2, 5.0);
  a.zero();
  EXPECT_DOUBLE_EQ(a.sum(), 0.0);
  a.fill(2.0);
  EXPECT_DOUBLE_EQ(a.sum(), 8.0);
}

TEST(Matrix, ShapeChecks) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  Matrix c(3, 2);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
  EXPECT_EQ(a.shape_str(), "2x3");
}

}  // namespace
}  // namespace decima::nn
