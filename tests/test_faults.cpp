// Fault-injection semantics (sim/faults.h, docs/robustness.md): executor
// failures kill and reschedule running tasks, recoveries restore capacity,
// stragglers and heterogeneous speeds shape durations — and a default
// FaultPlan changes nothing at all.
#include <gtest/gtest.h>

#include <algorithm>

#include "sched/heuristics.h"
#include "sim/cluster_env.h"
#include "sim/faults.h"
#include "sim/validate.h"
#include "workload/arrivals.h"
#include "workload/tpch.h"

namespace decima::sim {
namespace {

EnvConfig plain_config(int execs) {
  EnvConfig c;
  c.num_executors = execs;
  c.moving_delay = 0.0;
  c.enable_moving_delay = false;
  c.enable_wave_effect = false;
  c.enable_inflation = false;
  c.duration_noise = 0.0;
  return c;
}

JobSpec one_stage_job(const std::string& name, int tasks, double dur) {
  JobBuilder b(name);
  b.stage(tasks, dur);
  return b.build();
}

TEST(Faults, MidTaskFailureKillsAndReschedules) {
  EnvConfig c = plain_config(2);
  c.faults.failures = {{/*executor=*/0, /*fail_at=*/4.0}};
  ClusterEnv env(c);
  env.add_job(one_stage_job("j", 4, 10.0), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo);

  EXPECT_TRUE(env.all_done());
  // Executor 0 is lost at t=4 with its task; executor 1 runs 4 tasks back to
  // back (the killed one is re-run), so the job finishes at t=40.
  EXPECT_DOUBLE_EQ(env.jobs()[0].finish, 40.0);

  int killed = 0;
  for (const TaskRecord& t : env.trace()) {
    if (t.killed) {
      ++killed;
      EXPECT_EQ(t.executor, 0);
      EXPECT_DOUBLE_EQ(t.end, 4.0);  // clamped to the kill time
    }
  }
  EXPECT_EQ(killed, 1);
  EXPECT_EQ(env.trace().size(), 5u);  // 4 completions + 1 killed attempt

  // executed_work counts the 4 full tasks plus the killed partial run.
  EXPECT_DOUBLE_EQ(env.jobs()[0].executed_work, 44.0);

  std::string err;
  EXPECT_TRUE(validate_trace(env, &err)) << err;
}

TEST(Faults, RecoveryRestoresCapacity) {
  EnvConfig c = plain_config(2);
  c.faults.failures = {{/*executor=*/1, /*fail_at=*/0.5, /*recover_at=*/2.5}};
  ClusterEnv env(c);
  env.add_job(one_stage_job("j", 6, 1.0), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo);

  EXPECT_TRUE(env.all_done());
  // Nothing may run on executor 1 inside the outage, and something should
  // run on it after recovery (FIFO grabs the fresh capacity).
  bool post_recovery_use = false;
  for (const TaskRecord& t : env.trace()) {
    if (t.executor != 1 || t.killed) continue;
    EXPECT_TRUE(t.end <= 0.5 + 1e-9 || t.dispatched >= 2.5 - 1e-9)
        << "task on executor 1 overlaps its outage";
    if (t.dispatched >= 2.5 - 1e-9) post_recovery_use = true;
  }
  EXPECT_TRUE(post_recovery_use);
  std::string err;
  EXPECT_TRUE(validate_trace(env, &err)) << err;
}

TEST(Faults, IdleFailureShrinksFreeCountUntilRecovery) {
  EnvConfig c = plain_config(2);
  c.faults.failures = {{/*executor=*/0, /*fail_at=*/1.0, /*recover_at=*/3.0}};
  ClusterEnv env(c);
  env.add_job(one_stage_job("late", 1, 1.0), 2.0);
  sched::FifoScheduler fifo;

  env.run(fifo, /*until=*/1.5);
  EXPECT_EQ(env.free_executor_count(), 1);  // failed executor is invisible

  env.run(fifo);
  EXPECT_TRUE(env.all_done());
  EXPECT_EQ(env.free_executor_count(), 2);  // recovered
  EXPECT_EQ(env.trace()[0].executor, 1);    // only choice at dispatch time
}

TEST(Faults, FailureBumpsFeatureAndJobEpochs) {
  EnvConfig c = plain_config(2);
  c.faults.failures = {{/*executor=*/0, /*fail_at=*/4.0}};
  ClusterEnv env(c);
  env.add_job(one_stage_job("j", 4, 10.0), 0.0);
  sched::FifoScheduler fifo;

  env.run(fifo, /*until=*/2.0);
  const std::uint64_t feat_before = env.feature_epoch();
  const std::uint64_t job_before = env.jobs()[0].mut_epoch;
  env.run(fifo, /*until=*/5.0);
  // The failure killed a running task of job 0: both the global feature
  // epoch (free-executor count) and the job's mut_epoch (waiting tasks,
  // executor allocation) must move so the embedding cache re-diffes it.
  EXPECT_GT(env.feature_epoch(), feat_before);
  EXPECT_GT(env.jobs()[0].mut_epoch, job_before);
}

TEST(Faults, StragglersInflateDurations) {
  EnvConfig c = plain_config(2);
  c.faults.stragglers = {/*prob=*/1.0, /*factor=*/3.0};
  ClusterEnv env(c);
  env.add_job(one_stage_job("j", 2, 2.0), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo);
  EXPECT_TRUE(env.all_done());
  EXPECT_DOUBLE_EQ(env.jobs()[0].finish, 6.0);  // every task straggles: 2s*3
}

TEST(Faults, HeterogeneousSpeedsScalePerExecutor) {
  EnvConfig c = plain_config(2);
  c.faults.executor_speeds = {1.0, 0.25};
  ClusterEnv env(c);
  env.add_job(one_stage_job("j", 2, 1.0), 0.0);
  sched::FifoScheduler fifo;
  env.run(fifo);
  EXPECT_TRUE(env.all_done());
  for (const TaskRecord& t : env.trace()) {
    const double dur = t.end - t.start;
    if (t.executor == 0) {
      EXPECT_DOUBLE_EQ(dur, 1.0);
    }
    if (t.executor == 1) {
      EXPECT_DOUBLE_EQ(dur, 4.0);  // quarter speed
    }
  }
}

TEST(Faults, InertPlanIsBitIdenticalToNoPlan) {
  // A plan with nothing in it (even with a different fault seed) must leave
  // the stochastic simulation untouched — no extra events, no extra draws.
  EnvConfig base = plain_config(3);
  base.duration_noise = 0.4;
  base.seed = 77;
  EnvConfig with_plan = base;
  with_plan.faults.seed = 999;  // differs, but the plan is empty
  ASSERT_FALSE(with_plan.faults.any());

  ClusterEnv a(base), b(with_plan);
  for (ClusterEnv* env : {&a, &b}) {
    env->add_job(one_stage_job("x", 6, 1.0), 0.0);
    env->add_job(one_stage_job("y", 4, 2.0), 1.0);
    sched::SjfCpScheduler sjf;
    env->run(sjf);
  }
  ASSERT_EQ(a.trace().size(), b.trace().size());
  for (std::size_t i = 0; i < a.trace().size(); ++i) {
    EXPECT_EQ(a.trace()[i].executor, b.trace()[i].executor);
    EXPECT_DOUBLE_EQ(a.trace()[i].start, b.trace()[i].start);
    EXPECT_DOUBLE_EQ(a.trace()[i].end, b.trace()[i].end);
  }
}

TEST(Faults, PlanValidationRejectsNonsense) {
  EnvConfig c = plain_config(2);
  c.faults.failures = {{/*executor=*/5, /*fail_at=*/1.0}};
  EXPECT_THROW(ClusterEnv{c}, std::invalid_argument);

  c = plain_config(2);
  c.faults.failures = {{/*executor=*/0, /*fail_at=*/3.0, /*recover_at=*/2.0}};
  EXPECT_THROW(ClusterEnv{c}, std::invalid_argument);

  c = plain_config(2);
  c.faults.executor_speeds = {1.0, 0.0};
  EXPECT_THROW(ClusterEnv{c}, std::invalid_argument);

  c = plain_config(2);
  c.faults.stragglers.prob = 1.5;
  EXPECT_THROW(ClusterEnv{c}, std::invalid_argument);
}

TEST(Faults, GeneratorsAreDeterministicAndInRange) {
  Rng r1(11), r2(11);
  const auto f1 = random_failures(r1, 8, 5, 100.0, 20.0);
  const auto f2 = random_failures(r2, 8, 5, 100.0, 20.0);
  ASSERT_EQ(f1.size(), 5u);
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_EQ(f1[i].executor, f2[i].executor);
    EXPECT_DOUBLE_EQ(f1[i].fail_at, f2[i].fail_at);
    EXPECT_DOUBLE_EQ(f1[i].recover_at, f2[i].recover_at);
    EXPECT_GE(f1[i].executor, 0);
    EXPECT_LT(f1[i].executor, 8);
    EXPECT_GE(f1[i].fail_at, 0.0);
    EXPECT_LT(f1[i].fail_at, 100.0);
    EXPECT_GT(f1[i].recover_at, f1[i].fail_at);
  }

  Rng r3(12);
  const auto permanent = random_failures(r3, 4, 3, 50.0, /*mean_downtime=*/0.0);
  for (const auto& f : permanent) EXPECT_EQ(f.recover_at, kInfTime);

  Rng r4(13);
  const auto speeds = heterogeneous_speeds(r4, 100, 0.3, 2.0);
  ASSERT_EQ(speeds.size(), 100u);
  int slow = 0;
  for (double s : speeds) {
    EXPECT_TRUE(s == 1.0 || s == 0.5);
    if (s == 0.5) ++slow;
  }
  EXPECT_GT(slow, 10);  // ~30 expected
  EXPECT_LT(slow, 60);
}

TEST(Faults, SchedulersCompleteUnderRandomFaultSweeps) {
  // Property sweep: every heuristic finishes every job and keeps a valid
  // trace under combined failures + stragglers + heterogeneity.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    EnvConfig c = plain_config(6);
    c.enable_moving_delay = true;
    c.moving_delay = 1.0;
    Rng frng(seed);
    c.faults.failures =
        random_failures(frng, c.num_executors, 4, 60.0, /*mean_downtime=*/25.0);
    c.faults.stragglers = {/*prob=*/0.1, /*factor=*/4.0};
    c.faults.executor_speeds =
        heterogeneous_speeds(frng, c.num_executors, 0.3, 2.0);
    c.faults.seed = seed;

    Rng jrng(100 + seed);
    auto specs = workload::sample_tpch_batch(jrng, 5);
    Rng arng(jrng.fork());
    const auto jobs = workload::continuous(std::move(specs), arng, 10.0);

    sched::FifoScheduler fifo;
    sched::SjfCpScheduler sjf;
    sched::WeightedFairScheduler fair(0.0);
    for (sim::Scheduler* sched :
         std::initializer_list<sim::Scheduler*>{&fifo, &sjf, &fair}) {
      ClusterEnv env(c);
      workload::load(env, jobs);
      env.run(*sched);
      EXPECT_TRUE(env.all_done())
          << sched->name() << " left jobs unfinished at seed " << seed;
      std::string err;
      EXPECT_TRUE(validate_trace(env, &err)) << sched->name() << ": " << err;
    }
  }
}

}  // namespace
}  // namespace decima::sim
