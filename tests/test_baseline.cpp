#include <gtest/gtest.h>

#include "rl/baseline.h"

namespace decima::rl {
namespace {

TEST(ReturnsToGo, SuffixSumsExcludeOwnReward) {
  // rewards[j] arrives after action j-1; K = 3 actions, 4 reward entries.
  const auto r = returns_to_go({-1.0, -2.0, -3.0, -4.0});
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r[0], -9.0);  // -2 -3 -4
  EXPECT_DOUBLE_EQ(r[1], -7.0);
  EXPECT_DOUBLE_EQ(r[2], -4.0);
}

TEST(ReturnsToGo, EmptyAndSingle) {
  EXPECT_TRUE(returns_to_go({}).empty());
  EXPECT_TRUE(returns_to_go({-5.0}).empty());  // 0 actions
}

TEST(Baselines, IdenticalEpisodesZeroAdvantage) {
  EpisodeReturns ep;
  ep.times = {1.0, 2.0, 3.0};
  ep.returns = {-10.0, -6.0, -3.0};
  const auto b = time_aligned_baselines({ep, ep, ep});
  ASSERT_EQ(b.size(), 3u);
  for (const auto& per_ep : b) {
    ASSERT_EQ(per_ep.size(), 3u);
    EXPECT_DOUBLE_EQ(per_ep[0], -10.0);
    EXPECT_DOUBLE_EQ(per_ep[1], -6.0);
    EXPECT_DOUBLE_EQ(per_ep[2], -3.0);
  }
}

TEST(Baselines, AveragesAcrossEpisodes) {
  EpisodeReturns a, b;
  a.times = {1.0};
  a.returns = {-10.0};
  b.times = {1.0};
  b.returns = {-20.0};
  const auto out = time_aligned_baselines({a, b});
  EXPECT_DOUBLE_EQ(out[0][0], -15.0);
  EXPECT_DOUBLE_EQ(out[1][0], -15.0);
}

TEST(Baselines, TimeAlignmentUsesNextActionAtOrAfterT) {
  // Episode b has actions at different times; querying at t=1.5 should pick
  // b's return at t=2 (first action at or after the query time).
  EpisodeReturns a, b;
  a.times = {1.5};
  a.returns = {-8.0};
  b.times = {1.0, 2.0};
  b.returns = {-9.0, -4.0};
  const auto out = time_aligned_baselines({a, b});
  // Baseline for a's single step: mean(-8 [a at 1.5], -4 [b at 2.0]).
  EXPECT_DOUBLE_EQ(out[0][0], -6.0);
}

TEST(Baselines, EndedEpisodesContributeZero) {
  EpisodeReturns a, b;
  a.times = {1.0, 10.0};
  a.returns = {-10.0, -2.0};
  b.times = {1.0};  // ends early
  b.returns = {-6.0};
  const auto out = time_aligned_baselines({a, b});
  // At t=10, b has no outstanding reward: baseline = mean(-2, 0) = -1.
  EXPECT_DOUBLE_EQ(out[0][1], -1.0);
}

TEST(Baselines, VarianceReductionOnSyntheticArrivals) {
  // Synthetic demonstration of §5.3 challenge #2: two "arrival sequences"
  // give very different returns. Sequence-specific baselines (same-sequence
  // averaging) yield smaller advantage magnitudes than a global baseline.
  EpisodeReturns heavy1{{1, 2}, {-100, -50}};
  EpisodeReturns heavy2{{1, 2}, {-110, -55}};
  EpisodeReturns light1{{1, 2}, {-10, -5}};
  EpisodeReturns light2{{1, 2}, {-12, -6}};

  // Input-dependent: baseline per sequence.
  const auto b_heavy = time_aligned_baselines({heavy1, heavy2});
  const auto b_light = time_aligned_baselines({light1, light2});
  double max_adv_dependent = 0.0;
  for (std::size_t k = 0; k < 2; ++k) {
    max_adv_dependent = std::max(
        max_adv_dependent, std::abs(heavy1.returns[k] - b_heavy[0][k]));
    max_adv_dependent = std::max(
        max_adv_dependent, std::abs(light1.returns[k] - b_light[0][k]));
  }
  // Sequence-agnostic: baseline across all four episodes.
  const auto b_all =
      time_aligned_baselines({heavy1, heavy2, light1, light2});
  double max_adv_global = 0.0;
  for (std::size_t k = 0; k < 2; ++k) {
    max_adv_global =
        std::max(max_adv_global, std::abs(heavy1.returns[k] - b_all[0][k]));
  }
  EXPECT_LT(max_adv_dependent, max_adv_global);
}

}  // namespace
}  // namespace decima::rl
