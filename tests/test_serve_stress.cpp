// ThreadSanitizer stress for the PolicyServer locking discipline — the exact
// interleavings src/util/sync.h's annotations claim safe at compile time,
// exercised at runtime so TSan can veto them: session threads churning
// (starting, finishing, restarting) while swap_policy() hot-swaps the
// snapshot under load and readers poll stats()/policy() against the
// dispatcher. The CI thread-sanitizer job runs this binary; it also runs in
// the plain suite, where the assertions below (counter conservation,
// liveness, swap visibility) are the signal.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "serve/policy_server.h"

namespace decima {
namespace {

core::AgentConfig agent_config(std::uint64_t seed) {
  core::AgentConfig c;
  c.seed = seed;
  return c;
}

sim::JobSpec chain_job(const std::string& name, int tasks, double dur) {
  sim::JobBuilder b(name);
  const int root = b.stage(tasks, dur);
  b.stage(tasks, dur, {root});
  return b.build();
}

std::vector<workload::ArrivingJob> session_jobs(std::uint64_t variant) {
  const int tasks = 1 + static_cast<int>(variant % 3);
  return workload::batched({chain_job("s", tasks, 1.0),
                            chain_job("t", tasks + 1, 0.5)});
}

sim::EnvConfig serve_env() {
  sim::EnvConfig c;
  c.num_executors = 3;
  return c;
}

// Session churn + snapshot hot-swap + concurrent readers, all at once. Every
// session must complete (no decision may be lost across a swap), the served
// decision counter must conserve the sessions' query counts, and every swap
// must be visible in stats(). Run at shards=1 (the reference dispatcher) and
// shards=4 (cross-shard hot-swap: every shard's dispatcher pins and retires
// snapshots independently while sessions churn across all of them).
void churn_under_swaps_and_readers(int shards) {
  constexpr int kSessionThreads = 4;
  constexpr int kSessionsPerThread = 3;
  constexpr int kSwaps = 12;

  serve::ServeConfig cfg;
  cfg.shards = shards;
  auto server = std::make_unique<serve::PolicyServer>(
      std::make_unique<const core::DecimaAgent>(agent_config(19)), cfg);

  std::atomic<std::uint64_t> decisions{0};
  std::atomic<int> completed_sessions{0};
  std::vector<std::thread> threads;

  // Churn: each thread runs short sessions back-to-back, so sessions are
  // continuously joining and leaving the dispatcher's cross-session batches.
  for (int t = 0; t < kSessionThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int s = 0; s < kSessionsPerThread; ++s) {
        const auto r = serve::run_session(
            *server, serve_env(),
            session_jobs(static_cast<std::uint64_t>(t * 31 + s)));
        decisions += r.decisions;
        if (r.completed > 0) ++completed_sessions;
      }
    });
  }

  // Hot-swapper: alternates two different-weight snapshots under load, so
  // batches straddle retirements and pinned snapshots outlive the swap.
  threads.emplace_back([&] {
    for (int i = 0; i < kSwaps; ++i) {
      server->swap_policy(std::make_unique<const core::DecimaAgent>(
          agent_config(i % 2 == 0 ? 97 : 19)));
      std::this_thread::yield();
    }
  });

  // Readers: stats() snapshots and policy() pins racing the dispatcher's
  // stats updates and the swapper's publishes.
  std::atomic<bool> stop_readers{false};
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      std::uint64_t last = 0;
      while (!stop_readers.load()) {
        const auto s = server->stats();
        EXPECT_GE(s.decisions, last);  // monotone under one consistent lock
        last = s.decisions;
        const auto pinned = server->policy();
        EXPECT_NE(pinned, nullptr);
        std::this_thread::yield();
      }
    });
  }

  for (int t = 0; t < kSessionThreads + 1; ++t) threads[static_cast<std::size_t>(t)].join();
  stop_readers = true;
  for (std::size_t t = kSessionThreads + 1; t < threads.size(); ++t) threads[t].join();

  const auto stats = server->stats();
  EXPECT_EQ(stats.decisions, decisions.load());
  EXPECT_EQ(stats.snapshot_swaps, static_cast<std::uint64_t>(kSwaps));
  EXPECT_EQ(completed_sessions.load(), kSessionThreads * kSessionsPerThread);
  EXPECT_GE(stats.batches, 1u);
  // Per-shard books must sum to the aggregate — no decision is double- or
  // un-counted when stats() folds the shards together.
  std::uint64_t per_shard_sum = 0;
  for (int s = 0; s < server->num_shards(); ++s) {
    per_shard_sum += server->shard_stats(s).decisions;
  }
  EXPECT_EQ(per_shard_sum, stats.decisions);
}

TEST(ServeStress, SessionChurnUnderSnapshotSwapsAndReaders) {
  churn_under_swaps_and_readers(1);
}

TEST(ServeStress, SessionChurnUnderSnapshotSwapsAndReadersShards4) {
  churn_under_swaps_and_readers(4);
}

// swap_policy with null must be a no-op, and a snapshot pinned through
// policy() must stay valid (and answer decide() identically) after the
// server retires it and even after the server dies.
TEST(ServeStress, PinnedSnapshotOutlivesSwapAndServer) {
  auto server = std::make_unique<serve::PolicyServer>(
      std::make_unique<const core::DecimaAgent>(agent_config(19)));

  const auto pinned = server->policy();
  server->swap_policy(nullptr);  // ignored
  EXPECT_EQ(server->stats().snapshot_swaps, 0u);

  server->swap_policy(
      std::make_unique<const core::DecimaAgent>(agent_config(97)));
  EXPECT_EQ(server->stats().snapshot_swaps, 1u);
  EXPECT_NE(server->policy(), pinned);

  sim::ClusterEnv env(serve_env());
  workload::load(env, session_jobs(0));
  const auto before = pinned->decide(env);
  server.reset();  // server gone; the pin keeps the snapshot alive
  const auto after = pinned->decide(env);
  EXPECT_EQ(before.node.job, after.node.job);
  EXPECT_EQ(before.node.stage, after.node.stage);
  EXPECT_EQ(before.limit, after.limit);
}

// Concurrent stop() callers: exactly one joins the dispatcher, every caller
// returns only after it is gone, and queries afterwards answer none. This is
// the join_once_ race the annotations cannot express (std::once_flag carries
// its own synchronization), so TSan is the checker here.
TEST(ServeStress, ConcurrentStopIsIdempotent) {
  auto server = std::make_unique<serve::PolicyServer>(
      std::make_unique<const core::DecimaAgent>(agent_config(19)));

  // Load it first so stop() has in-flight history behind it.
  const auto r = serve::run_session(*server, serve_env(), session_jobs(1));
  EXPECT_GT(r.decisions, 0u);

  std::vector<std::thread> stoppers;
  for (int t = 0; t < 4; ++t) {
    stoppers.emplace_back([&] { server->stop(); });
  }
  for (auto& t : stoppers) t.join();

  sim::ClusterEnv env(serve_env());
  workload::load(env, session_jobs(2));
  EXPECT_FALSE(server->decide(env).valid());
}

// Overload/saturation: hundreds of sessions against a tiny bounded queue and
// a tight deadline (the CI TSan job runs this interleaving too). The gates:
// queue depth stays bounded, every request resolves with an explicit status
// (zero lost, no hang — the test finishing is itself the liveness check),
// degradation is exactly accounted, fallback answers keep every session
// completing its jobs, and saturation actually produced fallbacks. Run at
// shards=1 and shards=4: the ladder is enforced shard-locally (max_queue
// bounds each shard's ring; deadlines abandon on each shard independently)
// and the aggregated books must still balance to the request.
void overload_backpressure_and_fairness(int shards) {
  constexpr int kThreads = 16;
  constexpr int kSessionsPerThread = 16;  // 256 sessions total

  serve::ServeConfig cfg;
  cfg.shards = shards;
  cfg.max_queue = 4;
  cfg.deadline = 2e-4;
  cfg.heuristic_fallback = true;
  auto server = std::make_unique<serve::PolicyServer>(
      std::make_unique<const core::DecimaAgent>(agent_config(19)), cfg);

  std::atomic<std::uint64_t> queries{0}, answered{0}, ok{0}, timeouts{0},
      rejections{0}, fallbacks{0};
  std::atomic<int> completed_sessions{0}, starved_sessions{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int s = 0; s < kSessionsPerThread; ++s) {
        const auto r = serve::run_session(
            *server, serve_env(),
            session_jobs(static_cast<std::uint64_t>(t * 131 + s)));
        queries += r.decisions;
        answered += r.degradation.answered();
        ok += r.degradation.ok;
        timeouts += r.degradation.timeouts;
        rejections += r.degradation.rejections;
        fallbacks += r.degradation.fallbacks;
        // Fairness floor: under saturation every session still finishes its
        // jobs (degraded answers keep it moving) — nobody starves.
        if (r.completed == 2) {
          ++completed_sessions;
        } else {
          ++starved_sessions;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Zero lost requests: every query resolved with exactly one status.
  EXPECT_EQ(queries.load(), answered.load());
  EXPECT_EQ(starved_sessions.load(), 0);
  EXPECT_EQ(completed_sessions.load(), kThreads * kSessionsPerThread);

  const auto stats = server->stats();
  // The server's books agree with the sessions' books, event for event.
  EXPECT_EQ(stats.decisions, ok.load());
  EXPECT_EQ(stats.timeouts, timeouts.load());
  EXPECT_EQ(stats.rejections, rejections.load());
  EXPECT_EQ(stats.fallbacks, fallbacks.load());
  EXPECT_EQ(stats.fallbacks, stats.timeouts + stats.rejections);
  EXPECT_EQ(stats.stopped_answers, 0u);
  // Bounded queue held its bound — per shard: stats() reports the max over
  // shards, each of which admits at most max_queue requests to its ring.
  // 256 sessions on 4-deep queues with a 200µs deadline cannot all be
  // served by the policy.
  EXPECT_LE(stats.max_queue_depth, 4u);
  EXPECT_GT(stats.fallbacks, 0u) << "overload never triggered degradation";
  // Exact accounting holds per shard too, not just in aggregate.
  std::uint64_t shard_ok = 0, shard_rej = 0, shard_to = 0, shard_fb = 0;
  for (int s = 0; s < server->num_shards(); ++s) {
    const auto st = server->shard_stats(s);
    EXPECT_LE(st.max_queue_depth, 4u) << "shard " << s;
    shard_ok += st.decisions;
    shard_rej += st.rejections;
    shard_to += st.timeouts;
    shard_fb += st.fallbacks;
  }
  EXPECT_EQ(shard_ok, stats.decisions);
  EXPECT_EQ(shard_rej, stats.rejections);
  EXPECT_EQ(shard_to, stats.timeouts);
  EXPECT_EQ(shard_fb, stats.fallbacks);
}

TEST(ServeStress, OverloadBackpressureAndFairnessAcrossHundredsOfSessions) {
  overload_backpressure_and_fairness(1);
}

TEST(ServeStress, OverloadBackpressureAndFairnessShards4) {
  overload_backpressure_and_fairness(4);
}

}  // namespace
}  // namespace decima
