#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "nn/adam.h"
#include "nn/mlp.h"

namespace decima::nn {
namespace {

TEST(Mlp, ShapesAndParamCount) {
  Mlp mlp("m", 5, 3, {32, 16});
  // 5*32+32 + 32*16+16 + 16*3+3 = 192 + 528 + 51
  EXPECT_EQ(mlp.num_parameters(), 5u * 32 + 32 + 32u * 16 + 16 + 16u * 3 + 3);
  Rng rng(1);
  mlp.init(rng);
  Tape tape;
  Var x = tape.constant(Matrix(4, 5, 0.3));
  Var y = mlp.apply(tape, x);
  EXPECT_EQ(tape.value(y).rows(), 4u);
  EXPECT_EQ(tape.value(y).cols(), 3u);
}

TEST(Mlp, DeterministicInit) {
  Mlp a("m", 3, 2), b("m", 3, 2);
  Rng r1(9), r2(9);
  a.init(r1);
  b.init(r2);
  const auto pa = a.params();
  const auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i]->value.raw(), pb[i]->value.raw());
  }
}

TEST(ParamSet, FlatGradsRoundTrip) {
  Mlp mlp("m", 2, 2, {4});
  Rng rng(3);
  mlp.init(rng);
  ParamSet set;
  set.add(mlp.params());
  EXPECT_EQ(set.num_parameters(), mlp.num_parameters());
  set.zero_grads();
  std::vector<double> flat(set.num_parameters(), 0.5);
  set.add_flat_to_grads(flat, 2.0);
  const auto out = set.flat_grads();
  for (double g : out) EXPECT_DOUBLE_EQ(g, 1.0);
}

TEST(ParamSet, CopyAndAccumulate) {
  Mlp a("m", 2, 2, {4});
  Mlp b("m", 2, 2, {4});
  Rng r1(1), r2(2);
  a.init(r1);
  b.init(r2);
  ParamSet sa, sb;
  sa.add(a.params());
  sb.add(b.params());
  sb.copy_values_from(sa);
  EXPECT_EQ(a.params()[0]->value.raw(), b.params()[0]->value.raw());

  sa.zero_grads();
  sb.zero_grads();
  for (Param* p : sb.params()) p->grad.fill(3.0);
  sa.accumulate_grads_from(sb, 0.5);
  EXPECT_DOUBLE_EQ(sa.params()[0]->grad.raw()[0], 1.5);
}

TEST(ParamSet, GradClipScalesDown) {
  Param p("p", 1, 4);
  p.grad = Matrix(1, 4, {3.0, 0.0, 4.0, 0.0});  // norm 5
  ParamSet set;
  set.add(&p);
  set.clip_grad_norm(1.0);
  EXPECT_NEAR(set.grad_norm(), 1.0, 1e-12);
  set.clip_grad_norm(10.0);  // already below: unchanged
  EXPECT_NEAR(set.grad_norm(), 1.0, 1e-12);
}

TEST(Adam, MinimizesQuadratic) {
  // f(x) = (x - 3)^2, gradient 2(x - 3).
  Param x("x", 1, 1);
  x.value(0, 0) = -5.0;
  ParamSet set;
  set.add(&x);
  Adam adam(&set, {.lr = 0.1});
  for (int i = 0; i < 500; ++i) {
    set.zero_grads();
    x.grad(0, 0) = 2.0 * (x.value(0, 0) - 3.0);
    adam.step();
  }
  EXPECT_NEAR(x.value(0, 0), 3.0, 1e-3);
  EXPECT_EQ(adam.steps_taken(), 500);
}

TEST(Adam, TrainsMlpOnRegression) {
  // Teach a tiny MLP y = 2 x0 - x1 via SGD with Adam.
  Mlp mlp("m", 2, 1, {8});
  Rng rng(7);
  mlp.init(rng);
  ParamSet set;
  set.add(mlp.params());
  Adam adam(&set, {.lr = 0.01});
  double final_loss = 1e9;
  for (int it = 0; it < 800; ++it) {
    const double x0 = rng.uniform(-1, 1), x1 = rng.uniform(-1, 1);
    const double target = 2 * x0 - x1;
    set.zero_grads();
    Tape tape;
    Var out = mlp.apply(tape, tape.constant(Matrix(1, 2, {x0, x1})));
    const double pred = tape.value(out)(0, 0);
    // d(pred-target)^2/dpred = 2 (pred - target)
    tape.backward(out, 2.0 * (pred - target));
    adam.step();
    final_loss = (pred - target) * (pred - target);
  }
  EXPECT_LT(final_loss, 0.05);
}

TEST(Serialize, SaveLoadRoundTrip) {
  Mlp a("m", 3, 2, {4});
  Rng r(5);
  a.init(r);
  ParamSet sa;
  sa.add(a.params());
  const std::string path = testing::TempDir() + "/decima_params_test.txt";
  ASSERT_TRUE(save_params(sa, path));

  Mlp b("m", 3, 2, {4});
  Rng r2(99);
  b.init(r2);
  ParamSet sb;
  sb.add(b.params());
  ASSERT_TRUE(load_params(sb, path));
  EXPECT_EQ(a.params()[0]->value.raw(), b.params()[0]->value.raw());
  std::remove(path.c_str());
}

TEST(Serialize, RejectsStructureMismatch) {
  Mlp a("m", 3, 2, {4});
  Rng r(5);
  a.init(r);
  ParamSet sa;
  sa.add(a.params());
  const std::string path = testing::TempDir() + "/decima_params_test2.txt";
  ASSERT_TRUE(save_params(sa, path));

  Mlp c("other", 3, 2, {4});  // different names
  Rng r3(1);
  c.init(r3);
  ParamSet sc;
  sc.add(c.params());
  EXPECT_FALSE(load_params(sc, path));

  Mlp d("m", 3, 3, {4});  // different shape
  Rng r4(1);
  d.init(r4);
  ParamSet sd;
  sd.add(d.params());
  EXPECT_FALSE(load_params(sd, path));
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileFails) {
  ParamSet empty;
  EXPECT_FALSE(load_params(empty, "/nonexistent/decima.model"));
}

}  // namespace
}  // namespace decima::nn
