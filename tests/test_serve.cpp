// The serving subsystem (src/serve) and the const read-only inference path
// (DecimaAgent::decide / decide_batch). The load-bearing contract: a served
// decision is bit-identical to the decision the greedy agent makes alone, no
// matter how many sessions' events are coalesced into one batch — so served
// sessions are deterministic regardless of thread timing, and cross-session
// batching can only change throughput, never behavior.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "io/checkpoint.h"
#include "sched/heuristics.h"
#include "serve/policy_server.h"

namespace decima {
namespace {

// A small diamond DAG (fan-out + join) whose scheduling order matters.
sim::JobSpec diamond_job(const std::string& name, int tasks, double dur) {
  sim::JobBuilder b(name);
  const int root = b.stage(tasks, dur);
  const int left = b.stage(tasks, dur * 2.0, {root});
  const int right = b.stage(tasks / 2 + 1, dur, {root});
  b.stage(tasks, dur, {left, right});
  return b.build();
}

std::vector<workload::ArrivingJob> session_jobs(std::uint64_t variant) {
  const int tasks = 2 + static_cast<int>(variant % 3);
  return workload::batched({diamond_job("a", tasks, 1.0),
                            diamond_job("b", tasks + 1, 0.5),
                            diamond_job("c", 2, 2.0)});
}

sim::EnvConfig serve_env() {
  sim::EnvConfig c;
  c.num_executors = 4;
  return c;
}

core::AgentConfig agent_config() {
  core::AgentConfig c;
  c.seed = 19;
  return c;
}

// Mid-episode env states to query: each env runs its session's jobs with the
// greedy agent until `until`, leaving realistic in-flight state behind.
std::vector<std::unique_ptr<sim::ClusterEnv>> mid_episode_envs(
    core::DecimaAgent& agent, int count, double until) {
  std::vector<std::unique_ptr<sim::ClusterEnv>> envs;
  agent.set_mode(core::Mode::kGreedy);
  for (int s = 0; s < count; ++s) {
    auto env = std::make_unique<sim::ClusterEnv>(serve_env());
    workload::load(*env, session_jobs(static_cast<std::uint64_t>(s)));
    env->run(agent, until);
    envs.push_back(std::move(env));
  }
  return envs;
}

void expect_same_action(const sim::Action& a, const sim::Action& b) {
  EXPECT_EQ(a.node.job, b.node.job);
  EXPECT_EQ(a.node.stage, b.node.stage);
  EXPECT_EQ(a.limit, b.limit);
  EXPECT_EQ(a.exec_class, b.exec_class);
}

TEST(DecideBatch, MatchesSingleSessionDecide) {
  core::DecimaAgent agent(agent_config());
  const auto envs = mid_episode_envs(agent, 5, 2.0);
  std::vector<const sim::ClusterEnv*> ptrs;
  for (const auto& e : envs) ptrs.push_back(e.get());

  const auto batched = agent.decide_batch(ptrs);
  ASSERT_EQ(batched.size(), ptrs.size());
  for (std::size_t s = 0; s < ptrs.size(); ++s) {
    expect_same_action(batched[s], agent.decide(*ptrs[s]));
  }
}

TEST(DecideBatch, MatchesGreedySchedule) {
  core::DecimaAgent agent(agent_config());
  const auto envs = mid_episode_envs(agent, 4, 3.0);
  agent.set_mode(core::Mode::kGreedy);
  for (const auto& env : envs) {
    expect_same_action(agent.decide(*env), agent.schedule(*env));
  }
}

TEST(DecideBatch, MatchesDecideAcrossAblations) {
  for (core::LimitEncoding enc :
       {core::LimitEncoding::kScalarInput, core::LimitEncoding::kSeparateOutputs,
        core::LimitEncoding::kStageLevel}) {
    for (bool use_gnn : {true, false}) {
      core::AgentConfig ac = agent_config();
      ac.limit_encoding = enc;
      ac.use_gnn = use_gnn;
      core::DecimaAgent agent(ac);
      const auto envs = mid_episode_envs(agent, 3, 2.0);
      std::vector<const sim::ClusterEnv*> ptrs;
      for (const auto& e : envs) ptrs.push_back(e.get());
      const auto batched = agent.decide_batch(ptrs);
      for (std::size_t s = 0; s < ptrs.size(); ++s) {
        expect_same_action(batched[s], agent.decide(*ptrs[s]));
      }
    }
  }
}

TEST(DecideBatch, MatchesDecideMultiResource) {
  core::AgentConfig ac = agent_config();
  ac.multi_resource = true;
  core::DecimaAgent agent(ac);

  sim::EnvConfig env_cfg = serve_env();
  env_cfg.num_executors = 8;
  env_cfg.classes = {sim::ExecutorClass{0.5, "small"},
                     sim::ExecutorClass{1.0, "large"}};
  std::vector<std::unique_ptr<sim::ClusterEnv>> envs;
  agent.set_mode(core::Mode::kGreedy);
  for (int s = 0; s < 4; ++s) {
    sim::JobBuilder b("mem" + std::to_string(s));
    const int root = b.stage(2, 1.0, {}, 0.25);
    b.stage(3, 1.0, {root}, 0.75);  // needs the large class
    auto env = std::make_unique<sim::ClusterEnv>(env_cfg);
    workload::load(*env, workload::batched({b.build()}));
    env->run(agent, 1.0 + 0.5 * s);
    envs.push_back(std::move(env));
  }
  std::vector<const sim::ClusterEnv*> ptrs;
  for (const auto& e : envs) ptrs.push_back(e.get());
  const auto batched = agent.decide_batch(ptrs);
  for (std::size_t s = 0; s < ptrs.size(); ++s) {
    expect_same_action(batched[s], agent.decide(*ptrs[s]));
  }
}

TEST(DecideBatch, SessionCachesMatchUncachedAcrossBatches) {
  // Per-session embedding caches reused across successive cross-session
  // batches (the dispatcher pattern) must never change a decision, with
  // sessions joining and leaving the batch between rounds.
  core::DecimaAgent agent(agent_config());
  const auto envs = mid_episode_envs(agent, 5, 2.0);
  std::vector<gnn::EmbeddingCache> caches(envs.size());
  for (double until : {2.5, 3.0, 4.0}) {
    std::vector<const sim::ClusterEnv*> ptrs;
    std::vector<gnn::EmbeddingCache*> cache_ptrs;
    for (std::size_t s = 0; s < envs.size(); ++s) {
      if (until > 2.5 && s == 2) continue;  // session 2 drops out, rejoins
      ptrs.push_back(envs[s].get());
      cache_ptrs.push_back(&caches[s]);
    }
    const auto batched = agent.decide_batch(ptrs, cache_ptrs);
    for (std::size_t i = 0; i < ptrs.size(); ++i) {
      expect_same_action(batched[i], agent.decide(*ptrs[i]));
    }
    agent.set_mode(core::Mode::kGreedy);
    for (const auto& env : envs) env->run(agent, until);  // states advance
  }
  std::uint64_t reused = 0;
  for (const auto& c : caches) {
    reused += c.stats().graphs_reused + c.stats().epoch_fast_hits;
  }
  EXPECT_GT(reused, 0u);
}

TEST(DecideBatch, SessionCacheSurvivesSnapshotSwap) {
  // A session keeps its cache while the policy snapshot behind the server
  // changes: the parameter-version check must invalidate the cached
  // activations, never serve the old snapshot's embeddings.
  core::AgentConfig other = agent_config();
  other.seed = 97;  // different weights
  core::DecimaAgent before(agent_config());
  core::DecimaAgent after(other);
  const auto envs = mid_episode_envs(before, 3, 2.0);

  gnn::EmbeddingCache session_cache;
  for (const auto& env : envs) {
    before.decide(*env, &session_cache);  // warm under the old snapshot
  }
  for (const auto& env : envs) {
    expect_same_action(after.decide(*env, &session_cache),
                       after.decide(*env));
  }
}

TEST(DecideBatch, EmptyAndFinishedSessionsAnswerNone) {
  core::DecimaAgent agent(agent_config());
  sim::ClusterEnv empty(serve_env());  // no jobs at all
  const auto actions = agent.decide_batch({&empty});
  EXPECT_FALSE(actions[0].valid());
  EXPECT_TRUE(agent.decide_batch({}).empty());
}

std::string checkpoint_of_fresh_agent(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  core::DecimaAgent agent(agent_config());
  EXPECT_TRUE(io::save_policy(agent, path));
  return path;
}

TEST(PolicyServer, ServedSessionMatchesLocalGreedyRun) {
  const std::string ckpt = checkpoint_of_fresh_agent("serve_local.ckpt");
  auto server = serve::PolicyServer::from_checkpoint(ckpt);
  ASSERT_NE(server, nullptr);
  const auto jobs = session_jobs(1);
  const auto served = serve::run_session(*server, serve_env(), jobs);

  core::DecimaAgent local(agent_config());
  local.set_mode(core::Mode::kGreedy);
  sim::ClusterEnv env(serve_env());
  workload::load(env, jobs);
  env.run(local);

  EXPECT_EQ(served.avg_jct, env.avg_jct());
  EXPECT_EQ(served.end_time, env.now());
  EXPECT_EQ(served.completed, static_cast<int>(env.jcts().size()));
  EXPECT_GT(served.decisions, 0u);
}

std::vector<serve::SessionResult> run_concurrent_sessions(
    serve::PolicyServer& server, int sessions) {
  std::vector<serve::SessionResult> results(
      static_cast<std::size_t>(sessions));
  std::vector<std::thread> threads;
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      results[static_cast<std::size_t>(s)] =
          serve::run_session(server, serve_env(),
                             session_jobs(static_cast<std::uint64_t>(s)));
    });
  }
  for (auto& t : threads) t.join();
  return results;
}

TEST(PolicyServer, CrossSessionBatchingMatchesSequential) {
  const std::string ckpt = checkpoint_of_fresh_agent("serve_modes.ckpt");
  serve::ServeConfig batched_cfg;
  batched_cfg.cross_session_batching = true;
  serve::ServeConfig sequential_cfg;
  sequential_cfg.cross_session_batching = false;

  auto batched = serve::PolicyServer::from_checkpoint(ckpt, batched_cfg);
  auto sequential = serve::PolicyServer::from_checkpoint(ckpt, sequential_cfg);
  ASSERT_NE(batched, nullptr);
  ASSERT_NE(sequential, nullptr);

  const auto rb = run_concurrent_sessions(*batched, 6);
  const auto rs = run_concurrent_sessions(*sequential, 6);
  for (std::size_t s = 0; s < rb.size(); ++s) {
    EXPECT_EQ(rb[s].avg_jct, rs[s].avg_jct) << "session " << s;
    EXPECT_EQ(rb[s].end_time, rs[s].end_time) << "session " << s;
    EXPECT_EQ(rb[s].decisions, rs[s].decisions) << "session " << s;
  }
}

TEST(PolicyServer, ConcurrentSessionsAreDeterministic) {
  const std::string ckpt = checkpoint_of_fresh_agent("serve_determinism.ckpt");
  auto run_once = [&] {
    auto server = serve::PolicyServer::from_checkpoint(ckpt);
    auto results = run_concurrent_sessions(*server, 8);
    const auto stats = server->stats();
    std::uint64_t expected = 0;
    for (const auto& r : results) expected += r.decisions;
    EXPECT_EQ(stats.decisions, expected);
    EXPECT_GE(stats.batches, 1u);
    return results;
  };
  const auto a = run_once();
  const auto b = run_once();
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].avg_jct, b[s].avg_jct) << "session " << s;
    EXPECT_EQ(a[s].end_time, b[s].end_time) << "session " << s;
    EXPECT_EQ(a[s].decisions, b[s].decisions) << "session " << s;
  }
}

TEST(PolicyServer, MaxBatchCapsCoalescing) {
  const std::string ckpt = checkpoint_of_fresh_agent("serve_maxbatch.ckpt");
  serve::ServeConfig cfg;
  cfg.max_batch = 2;
  auto server = serve::PolicyServer::from_checkpoint(ckpt, cfg);
  run_concurrent_sessions(*server, 6);
  EXPECT_LE(server->stats().max_batch_size, 2u);
}

TEST(PolicyServer, FromCheckpointRejectsBadFiles) {
  EXPECT_EQ(serve::PolicyServer::from_checkpoint("no_such.ckpt"), nullptr);
}

TEST(PolicyServer, StopIsIdempotentAndAnswersAfterStopAreNone) {
  const std::string ckpt = checkpoint_of_fresh_agent("serve_stop.ckpt");
  auto server = serve::PolicyServer::from_checkpoint(ckpt);
  server->stop();
  server->stop();
  sim::ClusterEnv env(serve_env());
  workload::load(env, session_jobs(0));
  EXPECT_FALSE(server->decide(env).valid());
}

// The stop-vs-no-action ambiguity fix: an empty action from a live server
// (no runnable work) and an answer from a stopped server are the SAME
// Action::none() but carry different DecideStatus values.
TEST(PolicyServer, StatusDistinguishesStoppedFromEmptyAction) {
  const std::string ckpt = checkpoint_of_fresh_agent("serve_status.ckpt");
  auto server = serve::PolicyServer::from_checkpoint(ckpt);
  sim::ClusterEnv empty_env(serve_env());  // no jobs: nothing to schedule

  const auto live = server->decide_with_status(empty_env);
  EXPECT_EQ(live.status, serve::DecideStatus::kOk);
  EXPECT_FALSE(live.action.valid());
  EXPECT_FALSE(live.fallback);

  server->stop();
  const auto stopped = server->decide_with_status(empty_env);
  EXPECT_EQ(stopped.status, serve::DecideStatus::kStopped);
  EXPECT_FALSE(stopped.action.valid());
  EXPECT_FALSE(stopped.fallback);  // stopped servers never fall back
  EXPECT_GE(server->stats().stopped_answers, 1u);
}

// Regression pin for shutdown with queued requests: every query issued
// around a concurrent stop() resolves as either a real kOk answer (the
// dispatcher drains its queue before exiting) or an explicit kStopped —
// never a hang, never a lost request.
TEST(PolicyServer, ShutdownWithQueuedRequestsDrainsOrReportsStopped) {
  const std::string ckpt = checkpoint_of_fresh_agent("serve_shutdown.ckpt");
  auto server = serve::PolicyServer::from_checkpoint(ckpt);

  core::DecimaAgent agent(agent_config());
  const auto envs = mid_episode_envs(agent, 8, 2.0);

  std::atomic<std::uint64_t> ok{0}, stopped{0}, other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 40; ++i) {
        const auto r = server->decide_with_status(*envs[
            static_cast<std::size_t>(t)]);
        switch (r.status) {
          case serve::DecideStatus::kOk: ++ok; break;
          case serve::DecideStatus::kStopped: ++stopped; break;
          default: ++other; break;
        }
      }
    });
  }
  server->stop();  // races the queries above on purpose
  for (auto& th : threads) th.join();

  EXPECT_EQ(ok + stopped, 8u * 40u);  // every request resolved, one way only
  EXPECT_EQ(other, 0u);               // default config: nothing degrades
  const auto stats = server->stats();
  EXPECT_EQ(stats.decisions, ok);
  EXPECT_EQ(stats.stopped_answers, stopped);
}

// Backpressure + deadline + fallback under saturation: a bounded queue and a
// tight deadline force degraded answers, which must come from SJF-CP and be
// counted — and the accounting must balance exactly.
TEST(PolicyServer, SaturationDegradesToSjfCpWithExactAccounting) {
  const std::string ckpt = checkpoint_of_fresh_agent("serve_saturate.ckpt");
  serve::ServeConfig cfg;
  cfg.max_queue = 1;
  cfg.deadline = 5e-5;
  cfg.heuristic_fallback = true;
  auto server = serve::PolicyServer::from_checkpoint(ckpt, cfg);

  core::DecimaAgent agent(agent_config());
  const auto envs = mid_episode_envs(agent, 8, 2.0);
  // Precompute each env's SJF-CP answer: envs are static here, so every
  // degraded answer must equal it bit for bit.
  std::vector<sim::Action> sjf_want;
  for (const auto& env : envs) {
    sched::SjfCpScheduler sjf;
    sjf_want.push_back(sjf.schedule(*env));
  }

  std::atomic<std::uint64_t> issued{0}, resolved{0};
  std::atomic<bool> mismatch{false};
  // Degradation depends on thread timing; retry waves until we have seen it
  // (max_queue=1 against 8 threads makes the first wave all but certain).
  for (int wave = 0; wave < 50; ++wave) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        const auto& env = *envs[static_cast<std::size_t>(t)];
        for (int i = 0; i < 10; ++i) {
          ++issued;
          const auto r = server->decide_with_status(env);
          ++resolved;
          if (r.status == serve::DecideStatus::kRejected ||
              r.status == serve::DecideStatus::kTimedOut) {
            if (!r.fallback) mismatch = true;
            const auto& want = sjf_want[static_cast<std::size_t>(t)];
            if (r.action.node.job != want.node.job ||
                r.action.node.stage != want.node.stage ||
                r.action.limit != want.limit ||
                r.action.exec_class != want.exec_class) {
              mismatch = true;
            }
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    const auto s = server->stats();
    if (s.rejections + s.timeouts > 0) break;
  }

  EXPECT_FALSE(mismatch) << "degraded answer differed from SJF-CP";
  const auto stats = server->stats();
  EXPECT_GT(stats.rejections + stats.timeouts, 0u) << "never saturated";
  EXPECT_EQ(stats.fallbacks, stats.rejections + stats.timeouts);
  EXPECT_EQ(stats.decisions + stats.rejections + stats.timeouts,
            resolved.load());
  EXPECT_EQ(issued.load(), resolved.load());
  EXPECT_LE(stats.max_queue_depth, 1u);
}

// fallback off: degraded answers are explicit empty actions, still counted.
TEST(PolicyServer, FallbackOffReturnsNoneOnRejection) {
  const std::string ckpt = checkpoint_of_fresh_agent("serve_nofall.ckpt");
  serve::ServeConfig cfg;
  cfg.max_queue = 1;
  cfg.heuristic_fallback = false;
  auto server = serve::PolicyServer::from_checkpoint(ckpt, cfg);

  core::DecimaAgent agent(agent_config());
  const auto envs = mid_episode_envs(agent, 6, 2.0);
  std::atomic<bool> bad_reject{false};
  for (int wave = 0; wave < 50 && server->stats().rejections == 0; ++wave) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 6; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 10; ++i) {
          const auto r =
              server->decide_with_status(*envs[static_cast<std::size_t>(t)]);
          if (r.status == serve::DecideStatus::kRejected &&
              (r.fallback || r.action.valid())) {
            bad_reject = true;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_GT(server->stats().rejections, 0u);
  EXPECT_EQ(server->stats().fallbacks, 0u);
  EXPECT_FALSE(bad_reject);
}

// --- Sharded serving plane + Session API (docs/serving.md) ------------------

TEST(ServeConfigValidate, RejectsNonsenseLoudly) {
  EXPECT_NO_THROW(serve::ServeConfig{}.validate());

  serve::ServeConfig cfg;
  cfg.shards = 0;  // zero shards would serve nothing
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = {};
  cfg.deadline = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = {};
  cfg.max_queue = 2;
  cfg.max_batch = 8;  // a full batch could never assemble
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = {};
  cfg.ring_capacity = 4;
  cfg.max_queue = 16;  // admitted requests would not fit the ring
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = {};
  cfg.batch_wait_us = -5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  // The server construction path validates too — misconfiguration fails at
  // startup, not as silent serialization later.
  const std::string ckpt = checkpoint_of_fresh_agent("serve_validate.ckpt");
  serve::ServeConfig bad;
  bad.shards = -3;
  EXPECT_THROW(serve::PolicyServer::from_checkpoint(ckpt, bad),
               std::invalid_argument);
}

TEST(PolicyServerSharded, SessionAffinityPinsShardAndKeepsCacheWarm) {
  const std::string ckpt = checkpoint_of_fresh_agent("serve_affinity.ckpt");
  serve::ServeConfig cfg;
  cfg.shards = 4;
  auto server = serve::PolicyServer::from_checkpoint(ckpt, cfg);
  ASSERT_NE(server, nullptr);
  ASSERT_EQ(server->num_shards(), 4);

  core::DecimaAgent agent(agent_config());
  const auto envs = mid_episode_envs(agent, 1, 2.0);

  serve::Session session = server->open_session();
  EXPECT_TRUE(session.open());
  constexpr std::uint64_t kQueries = 12;
  for (std::uint64_t i = 0; i < kQueries; ++i) {
    const auto r = server->decide_with_status(session, *envs[0]);
    EXPECT_EQ(r.status, serve::DecideStatus::kOk);
  }
  // Every query landed on the session's shard and nowhere else — the
  // affinity that keeps its embedding cache on one dispatcher.
  for (int s = 0; s < server->num_shards(); ++s) {
    const auto st = server->shard_stats(s);
    EXPECT_EQ(st.decisions, s == session.shard() ? kQueries : 0u)
        << "shard " << s;
  }
  EXPECT_EQ(server->stats().decisions, kQueries);
  // Identical consecutive queries ride the cache's reuse paths: the shard
  // kept this session's cache hot across batches.
  const auto& cs = session.cache_stats();
  EXPECT_GT(cs.graphs_reused + cs.epoch_fast_hits, 0u);

  session.close();
  EXPECT_FALSE(session.open());
  // A closed handle still answers (uncached), and close is idempotent.
  EXPECT_EQ(server->decide_with_status(session, *envs[0]).status,
            serve::DecideStatus::kOk);
  session.close();
}

TEST(PolicyServerSharded, SessionsSpreadRoundRobinAcrossShards) {
  const std::string ckpt = checkpoint_of_fresh_agent("serve_rr.ckpt");
  serve::ServeConfig cfg;
  cfg.shards = 4;
  auto server = serve::PolicyServer::from_checkpoint(ckpt, cfg);
  std::vector<serve::Session> sessions;
  std::vector<int> per_shard(4, 0);
  for (int i = 0; i < 8; ++i) {
    sessions.push_back(server->open_session());
    ++per_shard[static_cast<std::size_t>(sessions.back().shard())];
  }
  for (int s = 0; s < 4; ++s) EXPECT_EQ(per_shard[static_cast<std::size_t>(s)], 2);
}

// FLAG_PINNED equivalence pin (scripts/check_invariants.py): shards=1 is the
// reference dispatcher, and shards=4 must produce bit-identical sessions —
// sharding, like batching, changes only throughput.
TEST(PolicyServerSharded, Shards4MatchesShards1) {
  const std::string ckpt = checkpoint_of_fresh_agent("serve_shards.ckpt");
  serve::ServeConfig one;
  one.shards = 1;
  serve::ServeConfig four;
  four.shards = 4;
  auto ref = serve::PolicyServer::from_checkpoint(ckpt, one);
  auto sharded = serve::PolicyServer::from_checkpoint(ckpt, four);
  ASSERT_NE(ref, nullptr);
  ASSERT_NE(sharded, nullptr);

  const auto r1 = run_concurrent_sessions(*ref, 8);
  const auto r4 = run_concurrent_sessions(*sharded, 8);
  for (std::size_t s = 0; s < r1.size(); ++s) {
    EXPECT_EQ(r1[s].avg_jct, r4[s].avg_jct) << "session " << s;
    EXPECT_EQ(r1[s].end_time, r4[s].end_time) << "session " << s;
    EXPECT_EQ(r1[s].decisions, r4[s].decisions) << "session " << s;
  }
  // All four dispatchers actually served (8 sessions round-robin over 4
  // shards), and the aggregate accounts for every decision.
  const auto agg = sharded->stats();
  std::uint64_t sum = 0;
  for (int s = 0; s < sharded->num_shards(); ++s) {
    const auto st = sharded->shard_stats(s);
    EXPECT_GT(st.decisions, 0u) << "shard " << s;
    sum += st.decisions;
  }
  EXPECT_EQ(sum, agg.decisions);
}

TEST(PolicyServerSharded, AdaptiveBoundedWaitChangesNothingButLatency) {
  const std::string ckpt = checkpoint_of_fresh_agent("serve_wait.ckpt");
  serve::ServeConfig waiting;
  waiting.shards = 2;
  waiting.batch_wait_us = 2000;
  auto ref = serve::PolicyServer::from_checkpoint(ckpt, serve::ServeConfig{});
  auto waited = serve::PolicyServer::from_checkpoint(ckpt, waiting);
  ASSERT_NE(waited, nullptr);

  const auto rr = run_concurrent_sessions(*ref, 6);
  const auto rw = run_concurrent_sessions(*waited, 6);
  for (std::size_t s = 0; s < rr.size(); ++s) {
    EXPECT_EQ(rr[s].avg_jct, rw[s].avg_jct) << "session " << s;
    EXPECT_EQ(rr[s].decisions, rw[s].decisions) << "session " << s;
  }
  const auto st = waited->stats();
  EXPECT_GT(st.decisions, 0u);
  EXPECT_LE(st.batches, st.decisions);
}

TEST(PolicyServerSharded, TinyRingBlocksProducersButLosesNothing) {
  const std::string ckpt = checkpoint_of_fresh_agent("serve_tinyring.ckpt");
  serve::ServeConfig cfg;
  cfg.ring_capacity = 2;  // far fewer slots than sessions; pushes must wait
  auto server = serve::PolicyServer::from_checkpoint(ckpt, cfg);
  ASSERT_NE(server, nullptr);

  const auto results = run_concurrent_sessions(*server, 6);
  for (const auto& r : results) {
    EXPECT_GT(r.decisions, 0u);
    EXPECT_EQ(r.degradation.ok, r.decisions);  // unbounded: nothing degraded
  }
}

}  // namespace
}  // namespace decima
