#include <gtest/gtest.h>

#include "gnn/graph_embedding.h"

namespace decima::gnn {
namespace {

// A hand-built 4-node diamond graph with distinguishable features.
JobGraph diamond_graph(int feat_dim = 5) {
  JobGraph g;
  g.env_job = 0;
  g.features = nn::Matrix(4, static_cast<std::size_t>(feat_dim));
  for (std::size_t v = 0; v < 4; ++v) {
    for (int f = 0; f < feat_dim; ++f) {
      g.features(v, static_cast<std::size_t>(f)) =
          0.1 * static_cast<double>(v + 1);
    }
  }
  g.children = {{1, 2}, {3}, {3}, {}};
  g.topo = {0, 1, 2, 3};
  g.runnable = {true, false, false, false};
  return g;
}

GnnConfig small_config() {
  GnnConfig c;
  c.feat_dim = 5;
  c.emb_dim = 8;
  return c;
}

TEST(GraphEmbedding, ShapesAreConsistent) {
  Rng rng(1);
  GraphEmbedding gnn(small_config(), rng);
  nn::Tape tape;
  const auto graphs = std::vector<JobGraph>{diamond_graph(), diamond_graph()};
  const auto emb = gnn.embed(tape, graphs);
  ASSERT_EQ(emb.node_emb.size(), 2u);
  ASSERT_EQ(emb.node_emb[0].size(), 4u);
  EXPECT_EQ(tape.value(emb.node_emb[0][0]).cols(), 8u);
  ASSERT_EQ(emb.job_emb.size(), 2u);
  EXPECT_EQ(tape.value(emb.job_emb[0]).cols(), 8u);
  EXPECT_EQ(tape.value(emb.global_emb).cols(), 8u);
}

TEST(GraphEmbedding, DeterministicForFixedSeed) {
  Rng rng1(9), rng2(9);
  GraphEmbedding a(small_config(), rng1), b(small_config(), rng2);
  nn::Tape ta, tb;
  const auto graphs = std::vector<JobGraph>{diamond_graph()};
  const auto ea = a.embed(ta, graphs);
  const auto eb = b.embed(tb, graphs);
  EXPECT_EQ(ta.value(ea.global_emb).raw(), tb.value(eb.global_emb).raw());
}

TEST(GraphEmbedding, InformationFlowsChildToParentOnly) {
  Rng rng(3);
  GraphEmbedding gnn(small_config(), rng);

  auto leaf_change_effect = [&](std::size_t change_node,
                                std::size_t observe_node) {
    JobGraph base = diamond_graph();
    nn::Tape t1;
    const auto e1 = gnn.embed(t1, {base});
    JobGraph mod = diamond_graph();
    mod.features(change_node, 0) += 1.0;
    nn::Tape t2;
    const auto e2 = gnn.embed(t2, {mod});
    double diff = 0.0;
    for (std::size_t c = 0; c < 8; ++c) {
      diff += std::abs(t1.value(e1.node_emb[0][observe_node])(0, c) -
                       t2.value(e2.node_emb[0][observe_node])(0, c));
    }
    return diff;
  };

  // Perturbing the sink (node 3) changes the root (node 0) embedding...
  EXPECT_GT(leaf_change_effect(3, 0), 1e-9);
  // ...but perturbing the root does not change the sink's embedding.
  EXPECT_LT(leaf_change_effect(0, 3), 1e-12);
}

TEST(GraphEmbedding, LeafEmbeddingEqualsProjection) {
  Rng rng(5);
  GraphEmbedding gnn(small_config(), rng);
  nn::Tape tape;
  std::vector<nn::Var> proj;
  const JobGraph g = diamond_graph();
  const auto emb = gnn.embed_nodes(tape, g, &proj);
  // Node 3 has no children: e_3 == proj(x_3).
  EXPECT_EQ(tape.value(emb[3]).raw(), tape.value(proj[3]).raw());
  // Node 0 has children: embeddings differ from the projection.
  double diff = 0.0;
  for (std::size_t c = 0; c < 8; ++c) {
    diff += std::abs(tape.value(emb[0])(0, c) - tape.value(proj[0])(0, c));
  }
  EXPECT_GT(diff, 1e-9);
}

TEST(GraphEmbedding, SingleLevelAblationDiffers) {
  Rng rng1(7), rng2(7);
  GnnConfig two = small_config();
  GnnConfig one = small_config();
  one.two_level_aggregation = false;
  GraphEmbedding g2(two, rng1), g1(one, rng2);
  nn::Tape t1, t2;
  const auto e2 = g2.embed(t1, {diamond_graph()});
  const auto e1 = g1.embed(t2, {diamond_graph()});
  double diff = 0.0;
  for (std::size_t c = 0; c < 8; ++c) {
    diff += std::abs(t1.value(e2.node_emb[0][0])(0, c) -
                     t2.value(e1.node_emb[0][0])(0, c));
  }
  EXPECT_GT(diff, 1e-9);
}

TEST(GraphEmbedding, GradientsReachAllTransforms) {
  Rng rng(11);
  GraphEmbedding gnn(small_config(), rng);
  auto params = gnn.param_set();
  params.zero_grads();
  nn::Tape tape;
  const auto emb = gnn.embed(tape, {diamond_graph()});
  // Scalar loss touching node, job, and global embeddings.
  nn::Var loss = tape.element(
      tape.concat_cols({emb.node_emb[0][0], emb.job_emb[0], emb.global_emb}),
      0, 0);
  nn::Var loss2 = tape.element(emb.global_emb, 0, 3);
  tape.backward(tape.add(loss, loss2));
  int with_grad = 0;
  for (const auto* p : params.params()) {
    if (p->grad.squared_norm() > 0.0) ++with_grad;
  }
  // Every transform (proj, f/g node, f/g job, f/g global) has weight params
  // receiving gradient; biases of late layers may be zero-grad by chance,
  // so just require a solid majority of parameter tensors to be touched.
  EXPECT_GT(with_grad, static_cast<int>(params.params().size()) / 2);
}

TEST(GraphEmbedding, ParamCountIsSmall) {
  // The paper's model is ~12.7k parameters; ours is the same order.
  Rng rng(1);
  GraphEmbedding gnn(small_config(), rng);
  auto params = gnn.param_set();
  EXPECT_GT(params.num_parameters(), 1000u);
  EXPECT_LT(params.num_parameters(), 30000u);
}

// Property sweep: embeddings are finite for random DAG shapes.
class RandomDagEmbed : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagEmbed, ProducesFiniteEmbeddings) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = rng.uniform_int(1, 12);
  JobGraph g;
  g.env_job = 0;
  g.features = nn::Matrix(static_cast<std::size_t>(n), 5);
  for (double& v : g.features.raw()) v = rng.uniform(-1, 1);
  g.children.resize(static_cast<std::size_t>(n));
  for (int v = 1; v < n; ++v) {
    const int p = rng.uniform_int(0, v - 1);
    g.children[static_cast<std::size_t>(p)].push_back(v);
  }
  g.topo.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) g.topo[static_cast<std::size_t>(v)] = v;
  g.runnable.assign(static_cast<std::size_t>(n), true);

  Rng init(99);
  GraphEmbedding gnn(small_config(), init);
  nn::Tape tape;
  const auto emb = gnn.embed(tape, {g});
  for (double v : tape.value(emb.global_emb).raw()) {
    EXPECT_TRUE(std::isfinite(v));
  }
  for (const auto& e : emb.node_emb[0]) {
    for (double v : tape.value(e).raw()) EXPECT_TRUE(std::isfinite(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, RandomDagEmbed, ::testing::Range(0, 15));

}  // namespace
}  // namespace decima::gnn
