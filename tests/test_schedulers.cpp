#include <gtest/gtest.h>

#include "metrics/experiment.h"
#include "sched/heuristics.h"
#include "sched/tuning.h"
#include "sim/validate.h"
#include "workload/tpch.h"

namespace decima::sched {
namespace {

using sim::EnvConfig;
using sim::JobBuilder;
using sim::JobSpec;

EnvConfig ideal_config(int execs) {
  EnvConfig c;
  c.num_executors = execs;
  c.enable_moving_delay = false;
  c.enable_wave_effect = false;
  c.enable_inflation = false;
  return c;
}

JobSpec simple_job(const std::string& name, int tasks, double dur) {
  JobBuilder b(name);
  b.stage(tasks, dur);
  return b.build();
}

std::vector<workload::ArrivingJob> two_jobs() {
  return workload::batched({simple_job("short", 2, 1.0), simple_job("long", 20, 1.0)});
}

TEST(Fifo, RunsJobsInArrivalOrder) {
  sim::ClusterEnv env(ideal_config(2));
  env.add_job(simple_job("first", 4, 1.0), 0.0);
  env.add_job(simple_job("second", 4, 1.0), 0.1);
  FifoScheduler fifo;
  env.run(fifo);
  EXPECT_TRUE(env.all_done());
  EXPECT_LT(env.jobs()[0].finish, env.jobs()[1].finish);
  std::string err;
  EXPECT_TRUE(sim::validate_trace(env, &err)) << err;
}

TEST(SjfCp, PrioritizesSmallJob) {
  sim::ClusterEnv env(ideal_config(2));
  env.add_job(simple_job("big", 20, 1.0), 0.0);
  env.add_job(simple_job("small", 2, 1.0), 0.0);
  SjfCpScheduler sjf;
  env.run(sjf);
  EXPECT_LT(env.jobs()[1].finish, env.jobs()[0].finish);
}

TEST(SjfCp, FollowsCriticalPathWithinJob) {
  // Two parallel branches: one long (critical), one short. SJF-CP must put
  // its single executor on the critical branch first.
  JobBuilder b("cp");
  const int root = b.stage(1, 1.0);
  b.stage(1, 10.0, {root});  // critical branch (stage 1)
  b.stage(1, 1.0, {root});   // short branch (stage 2)
  sim::ClusterEnv env(ideal_config(1));
  env.add_job(b.build(), 0.0);
  SjfCpScheduler sjf;
  env.run(sjf);
  // Find dispatch order of stage 1 vs stage 2.
  double t1 = -1, t2 = -1;
  for (const auto& t : env.trace()) {
    if (t.stage == 1) t1 = t.dispatched;
    if (t.stage == 2) t2 = t.dispatched;
  }
  EXPECT_LT(t1, t2);
}

TEST(Fair, SplitsExecutorsEqually) {
  sim::ClusterEnv env(ideal_config(4));
  env.add_job(simple_job("a", 40, 1.0), 0.0);
  env.add_job(simple_job("b", 40, 1.0), 0.0);
  WeightedFairScheduler fair(0.0);
  env.run(fair);
  // Both jobs progress concurrently: finishes within a wave of each other.
  EXPECT_NEAR(env.jobs()[0].finish, env.jobs()[1].finish, 2.0);
}

TEST(Fair, BackfillsWhenJobCannotUseShare) {
  // Job a has only 1 task; fair share would waste the 3 other executors if
  // not backfilled to job b.
  sim::ClusterEnv env(ideal_config(4));
  env.add_job(simple_job("a", 1, 10.0), 0.0);
  env.add_job(simple_job("b", 30, 1.0), 0.0);
  WeightedFairScheduler fair(0.0);
  env.run(fair);
  // b gets 3 executors: 30 tasks / 3 = 10 waves = 10s (not 15s with 2).
  EXPECT_LE(env.jobs()[1].finish, 11.0);
}

TEST(WeightedFair, AlphaNegativeFavorsSmallJobs) {
  const auto workload = two_jobs();
  WeightedFairScheduler inv(-1.0);
  WeightedFairScheduler naive(1.0);
  const auto r_inv = metrics::run_episode(ideal_config(4), workload, inv);
  const auto r_naive = metrics::run_episode(ideal_config(4), workload, naive);
  // Inverse weighting completes the short job sooner on average.
  EXPECT_LE(r_inv.avg_jct, r_naive.avg_jct + 1e-9);
}

TEST(WeightedFair, NamesDistinguishVariants) {
  EXPECT_EQ(WeightedFairScheduler(0.0).name(), "Fair");
  EXPECT_EQ(WeightedFairScheduler(1.0).name(), "NaiveWeightedFair");
  EXPECT_NE(WeightedFairScheduler(-1.0).name().find("WeightedFair"),
            std::string::npos);
}

TEST(Tuning, AlphaGridMatchesPaper) {
  const auto grid = alpha_grid(0.1);
  ASSERT_EQ(grid.size(), 41u);
  EXPECT_DOUBLE_EQ(grid.front(), -2.0);
  EXPECT_NEAR(grid.back(), 2.0, 1e-9);
}

TEST(Tuning, FindsBestAlphaOnSkewedMix) {
  decima::Rng rng(1);
  std::vector<std::vector<workload::ArrivingJob>> workloads;
  for (int i = 0; i < 3; ++i) {
    workloads.push_back(workload::batched(
        {simple_job("s1", 2, 1.0), simple_job("s2", 3, 1.0),
         simple_job("l1", 40, 1.0), simple_job("l2", 50, 1.0)}));
  }
  const auto best =
      tune_weighted_fair_alpha(ideal_config(8), workloads, {-1.0, 0.0, 1.0});
  // On a skewed mix, inverse (or flat) weighting beats naive weighting.
  EXPECT_LE(best.alpha, 0.5);
  EXPECT_GT(best.avg_jct, 0.0);
}

TEST(Tetris, PicksBestFittingClass) {
  sim::EnvConfig c = ideal_config(4);
  c.classes = {{0.25, "s"}, {0.5, "m"}, {0.75, "l"}, {1.0, "xl"}};
  sim::ClusterEnv env(c);
  JobBuilder b("mem");
  b.stage(4, 1.0, {}, 0.6);  // needs mem >= 0.6: only l/xl fit
  env.add_job(b.build(), 0.0);
  TetrisScheduler tetris;
  env.run(tetris);
  EXPECT_TRUE(env.all_done());
  std::string err;
  EXPECT_TRUE(sim::validate_trace(env, &err)) << err;
}

TEST(Graphene, DetectsTroublesomeStages) {
  JobBuilder b("t");
  b.stage(1, 100.0);            // dominates work
  b.stage(1, 1.0, {}, 0.9);     // memory hungry
  b.stage(1, 1.0);              // benign
  GrapheneConfig cfg;
  cfg.work_threshold = 0.5;
  cfg.mem_threshold = 0.5;
  const auto t = GrapheneScheduler::troublesome_stages(b.build(), cfg);
  EXPECT_EQ(t, (std::vector<int>{0, 1}));
}

TEST(Graphene, CompletesWorkloads) {
  decima::Rng rng(2);
  auto jobs = workload::sample_tpch_batch(rng, 6);
  const auto w = workload::batched(std::move(jobs));
  GrapheneScheduler g;
  sim::ClusterEnv env(ideal_config(10));
  workload::load(env, w);
  env.run(g);
  EXPECT_TRUE(env.all_done());
  std::string err;
  EXPECT_TRUE(sim::validate_trace(env, &err)) << err;
}

TEST(AllHeuristics, CompleteTpchBatchAndValidate) {
  decima::Rng rng(3);
  auto jobs = workload::sample_tpch_batch(rng, 8);
  const auto w = workload::batched(std::move(jobs));

  FifoScheduler fifo;
  SjfCpScheduler sjf;
  WeightedFairScheduler fair(0.0);
  WeightedFairScheduler naive(1.0);
  WeightedFairScheduler tuned(-1.0);
  TetrisScheduler tetris;
  GrapheneScheduler graphene;
  std::vector<sim::Scheduler*> all = {&fifo, &sjf,    &fair,    &naive,
                                      &tuned, &tetris, &graphene};
  for (sim::Scheduler* s : all) {
    sim::EnvConfig c;
    c.num_executors = 20;
    sim::ClusterEnv env(c);
    workload::load(env, w);
    env.run(*s);
    EXPECT_TRUE(env.all_done()) << s->name();
    std::string err;
    EXPECT_TRUE(sim::validate_trace(env, &err)) << s->name() << ": " << err;
    EXPECT_GT(env.avg_jct(), 0.0) << s->name();
  }
}

TEST(Ordering, FairBeatsFifoOnSkewedBatch) {
  // The §2.3 observation: fair scheduling beats FIFO on a heavy-tailed mix.
  decima::Rng rng(17);
  auto jobs = workload::sample_tpch_batch(rng, 10);
  const auto w = workload::batched(std::move(jobs));
  FifoScheduler fifo;
  WeightedFairScheduler fair(0.0);
  sim::EnvConfig c;
  c.num_executors = 50;
  const auto r_fifo = metrics::run_episode(c, w, fifo);
  const auto r_fair = metrics::run_episode(c, w, fair);
  EXPECT_LT(r_fair.avg_jct, r_fifo.avg_jct);
}

}  // namespace
}  // namespace decima::sched
