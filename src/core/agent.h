// The Decima scheduling agent (§5.2): graph neural network + policy network.
//
// On every invocation the agent embeds the current cluster state, scores all
// schedulable nodes with q(e_v, y_i, z), softmax-samples a stage, then scores
// parallelism limits with w(y_i, z, l) and softmax-samples a limit for the
// chosen stage's job (plus an executor class in multi-resource mode). All of
// it is differentiable, so ∇_θ log π_θ(s, a) is available for REINFORCE.
//
// Ablation switches reproduce the variants of Fig. 14 / Fig. 15a / App. J:
//   use_gnn = false            -> raw features only ("w/o graph embedding")
//   parallelism_control = false-> always grab every executor
//   limit_encoding             -> scalar-l input (paper), one-output-per-limit
//                                 ("w/o limit input"), or stage-level limits
//   features.use_task_duration -> incomplete-information study
#pragma once

#include <memory>
#include <optional>

#include "gnn/graph_embedding.h"
#include "nn/adam.h"
#include "sim/scheduler.h"

namespace decima::core {

enum class LimitEncoding {
  kScalarInput,      // w(y, z, l) with l as an input — the paper's design
  kSeparateOutputs,  // one output head per limit value (Fig. 15a yellow)
  kStageLevel,       // limit conditioned on e_v too (Fig. 15a green)
};

struct AgentConfig {
  gnn::FeatureConfig features;
  int emb_dim = 8;
  bool use_gnn = true;
  bool two_level_aggregation = true;
  bool parallelism_control = true;
  LimitEncoding limit_encoding = LimitEncoding::kScalarInput;
  bool multi_resource = false;  // adds the executor-class head (§7.3)
  // false falls back to the one-node-at-a-time GNN sweep (the pre-batching
  // reference path; used by equivalence tests and latency benchmarks).
  bool batched_inference = true;
  // Incremental embedding cache (docs/incremental_embedding.md): inference
  // keeps the previous event's per-job GNN activations and re-embeds only
  // nodes whose features changed, plus their ancestors in message flow;
  // numerically identical to the full recompute. Inference-only — the
  // replay paths differentiate through the embedding and never use it.
  // false = re-embed everything every event (the reference behaviour).
  bool embed_cache = true;
  // Episode-batched REINFORCE replay (docs/training.md): while the recorded
  // actions re-drive the simulator, each scheduling event is snapshotted
  // instead of scored; the snapshots are then evaluated in replay_batch-event
  // chunks, each chunk one tape with one backward pass. false falls back to
  // the one-tape-per-action reference loop (equivalence tests).
  bool batched_replay = true;
  // Events per batched-replay tape: the episode is scored in chunks of this
  // many scheduling events (one backward per chunk) so the tape's working
  // set stays cache-resident; 0 holds the whole episode on one tape. 8 was
  // the throughput sweet spot on the 50-node-DAG training bench — larger
  // chunks pay DRAM traffic, smaller ones re-pay per-tape overhead.
  int replay_batch = 8;
  // Limits are discretized in steps of this size to keep the limit softmax
  // small on big clusters (1 = every integer limit).
  int limit_step = 1;
  std::uint64_t seed = 42;
};

enum class Mode { kGreedy, kSample, kReplay };

// The sampled indices of one action — enough to replay it deterministically.
struct RecordedAction {
  int node_choice = 0;
  int limit_choice = -1;  // -1 when parallelism control is off
  int class_choice = -1;  // -1 in single-resource mode
  sim::Action action;     // the concrete action handed to the environment
};

class DecimaAgent : public sim::Scheduler {
 public:
  explicit DecimaAgent(const AgentConfig& config);

  sim::Action schedule(const sim::ClusterEnv& env) override;
  std::string name() const override { return "Decima"; }

  // --- Read-only inference (the serving path, src/serve) -------------------
  // One greedy decision for `env` on a forward-only tape, touching no agent
  // state: safe to call concurrently from many threads sharing one agent, as
  // long as nothing mutates the parameters meanwhile. An optional
  // caller-owned `cache` makes consecutive decisions for the same session
  // incremental (config().embed_cache); each cache must only ever be touched
  // by one thread at a time.
  sim::Action decide(const sim::ClusterEnv& env,
                     gnn::EmbeddingCache* cache = nullptr) const;
  // Greedy decisions for many *independent sessions'* scheduling events,
  // batched into one forward evaluation: a cross-session embed_episode (each
  // session = one "event") plus one batched pass per policy head — the
  // serving analogue of the episode-batched replay. Entry i is the decision
  // for envs[i], bit-identical to decide(*envs[i]). `caches`, when
  // non-empty, must be envs-aligned per-session caches (entries may be
  // null: that session computes without caching).
  std::vector<sim::Action> decide_batch(
      const std::vector<const sim::ClusterEnv*>& envs,
      const std::vector<gnn::EmbeddingCache*>& caches = {}) const;

  // --- Modes ----------------------------------------------------------------
  void set_mode(Mode m) { mode_ = m; }
  Mode mode() const { return mode_; }
  void set_sample_seed(std::uint64_t seed) { sample_rng_ = Rng(seed); }

  // Rollout recording (kSample): collects the action sequence of an episode.
  void start_recording();
  std::vector<RecordedAction> take_recorded();

  // Replay (kReplay): re-executes `actions` while accumulating
  // −Σ_k weight_k · ∇ log π(s_k, a_k) − β · ∇ H(π(s_k)) into the parameter
  // gradients (a *descent* direction for Adam; weights are the advantages).
  // With config().batched_replay the gradients land in finish_replay();
  // the reference path accumulates them action by action during the run.
  void start_replay(std::vector<RecordedAction> actions,
                    std::vector<double> weights, double entropy_weight);
  // Scores the pending batched-replay snapshots (chunked per replay_batch)
  // and accumulates the episode's gradients. Call after the replayed
  // episode's env.run(); a no-op on the reference path.
  void finish_replay();
  // Number of replay actions consumed so far.
  std::size_t replay_cursor() const { return replay_cursor_; }

  // --- Parameters ---------------------------------------------------------------
  nn::ParamSet& params() { return params_; }
  const nn::ParamSet& params() const { return params_; }
  const AgentConfig& config() const { return config_; }
  std::size_t num_parameters() const { return params_.num_parameters(); }
  std::unique_ptr<DecimaAgent> clone() const;
  // Re-snapshots this worker copy's parameter values from `master` (which
  // must be the agent this one was clone()d from: identical structure). The
  // training rollout pool calls this once per iteration so persistent
  // workers track the master's Adam updates without reallocating; the
  // version bump makes the worker's embedding cache re-validate against the
  // new snapshot (gnn/embedding_cache.h layer 1). Everything else — sample
  // RNG, recording/replay state, caches — is left untouched, and `master`
  // is only read.
  void snapshot_params_from(const DecimaAgent& master);
  bool save(const std::string& path) const;
  bool load(const std::string& path);

  // Table 2: the observed mean interarrival time, fed as a feature when
  // features.iat_hint is on.
  void set_observed_iat(double iat) { observed_iat_ = iat; }

  // --- Embedding cache ------------------------------------------------------
  // Runtime toggle for the schedule()-path cache (tests and A/B benches);
  // the cache is cleared either way so re-enabling starts from scratch.
  void set_embed_cache(bool on) {
    config_.embed_cache = on;
    embed_cache_.invalidate();
  }
  const gnn::EmbeddingCacheStats& embed_cache_stats() const {
    return embed_cache_.stats();
  }

 private:
  struct Candidate {
    int graph = 0;  // index into the extracted graphs
    int node = 0;   // stage index within the graph/job
    sim::NodeRef ref;
  };

  // Snapshot of one scheduling event, taken while the recorded actions drive
  // the environment (batched replay phase 1); phase 2 scores a batch of these
  // on one tape in score_replay_batch().
  struct ReplayEvent {
    std::vector<gnn::JobGraph> graphs;
    std::vector<Candidate> candidates;
    int node_choice = 0;
    int limit_choice = -1;
    int class_choice = -1;
    int chosen_graph = 0;  // graph/node of the chosen candidate
    int chosen_node = 0;
    std::vector<int> limit_values;  // candidate limits (empty: control off)
    nn::Matrix limit_feat;  // |limit_values| x 1 scaled limit inputs
    nn::Matrix class_feat;  // |valid classes| x 2 [mem, free fraction]
    double weight = 0.0;    // advantage A_k of the replayed action
  };

  int pick(const std::vector<double>& probs, int recorded_choice);
  // Scores events [begin, end) on one tape with a single backward pass.
  void score_replay_batch(const std::vector<ReplayEvent>& events,
                          std::size_t begin, std::size_t end);
  // Chunked scoring of a whole snapshot list per config_.replay_batch.
  void score_replay_events(std::vector<ReplayEvent>& events);

  // --- Shared, state-free scoring inputs (schedule() and the serving path) --
  bool multi_class(const sim::ClusterEnv& env) const;
  // Executor classes with enough memory for `mem_req` and free capacity.
  std::vector<int> valid_classes(const sim::ClusterEnv& env,
                                 double mem_req) const;
  // Candidate parallelism limits for `job` (> its current allocation).
  std::vector<int> limit_values_for(const sim::JobState& job,
                                    int total_execs) const;
  static nn::Matrix limit_feature_col(const std::vector<int>& values,
                                      int total_execs);
  nn::Matrix class_feature_mat(const sim::ClusterEnv& env,
                               const std::vector<int>& values) const;
  // The action set A_t: runnable nodes of jobs that can still take executors
  // and (multi-resource) have a fitting class with free capacity.
  std::vector<Candidate> build_candidates(
      const sim::ClusterEnv& env, const std::vector<gnn::JobGraph>& graphs) const;
  // Zero-embedding stand-ins for the no-GNN ablation in episode-batched form.
  gnn::EpisodeEmbeddings zero_episode_embeddings(
      nn::Tape& tape, const std::vector<const gnn::JobGraph*>& graphs,
      std::size_t num_events) const;

  AgentConfig config_;
  Rng init_rng_;
  Rng sample_rng_;
  gnn::GraphEmbedding gnn_;
  nn::Mlp q_;          // node score
  nn::Mlp w_;          // parallelism score (scalar-l input / stage-level)
  nn::Mlp w_sep_;      // per-limit outputs variant
  nn::Mlp class_head_; // executor-class score
  nn::ParamSet params_;

  // schedule()'s own per-episode-stream cache (serving sessions bring their
  // own through decide()/decide_batch()).
  gnn::EmbeddingCache embed_cache_;

  Mode mode_ = Mode::kGreedy;
  bool recording_ = false;
  std::vector<RecordedAction> recorded_;
  std::vector<RecordedAction> replay_actions_;
  std::vector<double> replay_weights_;
  std::vector<ReplayEvent> replay_events_;  // pending batched-replay snapshots
  double entropy_weight_ = 0.0;
  std::size_t replay_cursor_ = 0;
  double observed_iat_ = 0.0;
};

}  // namespace decima::core
