#include "core/agent.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace decima::core {

namespace {
// Sizing hint for the per-limit-output ablation head (Fig. 15a): one output
// per possible limit value up to this many executors.
constexpr std::size_t kMaxSeparateLimitOutputs = 128;
}  // namespace

DecimaAgent::DecimaAgent(const AgentConfig& config)
    : config_(config),
      init_rng_(config.seed),
      sample_rng_(config.seed ^ 0x9e3779b9ULL),
      gnn_(
          [&] {
            gnn::GnnConfig g;
            g.feat_dim = config.features.dim();
            g.emb_dim = config.emb_dim;
            g.two_level_aggregation = config.two_level_aggregation;
            g.batched = config.batched_inference;
            return g;
          }(),
          init_rng_),
      q_("policy/q",
         static_cast<std::size_t>(config.features.dim() + 3 * config.emb_dim),
         1),
      w_("policy/w",
         config.limit_encoding == LimitEncoding::kStageLevel
             ? static_cast<std::size_t>(3 * config.emb_dim + 1)
             : static_cast<std::size_t>(2 * config.emb_dim + 1),
         1),
      w_sep_("policy/w_sep", static_cast<std::size_t>(2 * config.emb_dim),
             kMaxSeparateLimitOutputs),
      class_head_("policy/class",
                  static_cast<std::size_t>(2 * config.emb_dim + 2), 1) {
  q_.init(init_rng_);
  w_.init(init_rng_);
  w_sep_.init(init_rng_);
  class_head_.init(init_rng_);
  params_ = gnn_.param_set();
  params_.add(q_.params());
  if (config_.parallelism_control) {
    if (config_.limit_encoding == LimitEncoding::kSeparateOutputs) {
      params_.add(w_sep_.params());
    } else {
      params_.add(w_.params());
    }
  }
  if (config_.multi_resource) params_.add(class_head_.params());
}

void DecimaAgent::start_recording() {
  recording_ = true;
  recorded_.clear();
}

std::vector<RecordedAction> DecimaAgent::take_recorded() {
  recording_ = false;
  return std::move(recorded_);
}

void DecimaAgent::start_replay(std::vector<RecordedAction> actions,
                               std::vector<double> weights,
                               double entropy_weight) {
  // Leftover snapshots mean the previous batched replay was never finished —
  // its tail chunk (< replay_batch events) contributed no gradients. Fail
  // loudly instead of silently training on partial gradients.
  assert(replay_events_.empty() &&
         "batched replay not finished: call finish_replay() after env.run()");
  replay_events_.clear();
  replay_actions_ = std::move(actions);
  replay_weights_ = std::move(weights);
  entropy_weight_ = entropy_weight;
  replay_cursor_ = 0;
  mode_ = Mode::kReplay;
}

void DecimaAgent::finish_replay() {
  score_replay_events(replay_events_);
  replay_events_.clear();
}

void DecimaAgent::score_replay_events(std::vector<ReplayEvent>& events) {
  const std::size_t chunk = config_.replay_batch > 0
                                ? static_cast<std::size_t>(config_.replay_batch)
                                : events.size();
  for (std::size_t begin = 0; begin < events.size(); begin += chunk) {
    score_replay_batch(events, begin, std::min(begin + chunk, events.size()));
  }
}

int DecimaAgent::pick(const std::vector<double>& probs, int recorded_choice) {
  switch (mode_) {
    case Mode::kGreedy: {
      int best = 0;
      for (std::size_t i = 1; i < probs.size(); ++i) {
        if (probs[i] > probs[static_cast<std::size_t>(best)]) {
          best = static_cast<int>(i);
        }
      }
      return best;
    }
    case Mode::kSample:
      return static_cast<int>(sample_rng_.weighted_index(probs));
    case Mode::kReplay:
      return recorded_choice;
  }
  return 0;
}

sim::Action DecimaAgent::schedule(const sim::ClusterEnv& env) {
  const RecordedAction* replayed = nullptr;
  if (mode_ == Mode::kReplay) {
    if (replay_cursor_ >= replay_actions_.size()) return sim::Action::none();
    replayed = &replay_actions_[replay_cursor_];
  }

  auto graphs = gnn::extract_graphs(env, config_.features, observed_iat_);
  if (graphs.empty()) return sim::Action::none();

  const int total_execs = env.total_executors();
  const bool multi = multi_class(env);

  std::vector<Candidate> candidates = build_candidates(env, graphs);
  if (candidates.empty()) return sim::Action::none();

  if (mode_ == Mode::kReplay && config_.batched_replay) {
    // Batched replay, phase 1: the action is already recorded, so no scoring
    // is needed to drive the environment — snapshot the event (graphs,
    // candidate set, head inputs, advantage) and move on. finish_replay()
    // scores every snapshot on one tape and runs a single backward pass.
    ReplayEvent ev;
    ev.node_choice = replayed->node_choice;
    ev.limit_choice = replayed->limit_choice;
    ev.class_choice = replayed->class_choice;
    const Candidate& chosen =
        candidates[static_cast<std::size_t>(ev.node_choice)];
    ev.chosen_graph = chosen.graph;
    ev.chosen_node = chosen.node;
    const auto& chosen_job =
        env.jobs()[static_cast<std::size_t>(chosen.ref.job)];
    if (config_.parallelism_control) {
      ev.limit_values = limit_values_for(chosen_job, total_execs);
      assert(!ev.limit_values.empty() && ev.limit_choice >= 0);
      ev.limit_feat = limit_feature_col(ev.limit_values, total_execs);
    }
    if (multi) {
      const std::vector<int> class_values = valid_classes(
          env, chosen_job.spec.stages[static_cast<std::size_t>(chosen.ref.stage)]
                   .mem_req);
      assert(!class_values.empty() && ev.class_choice >= 0);
      ev.class_feat = class_feature_mat(env, class_values);
    }
    ev.weight = replay_weights_[replay_cursor_];
    ev.graphs = std::move(graphs);
    ev.candidates = std::move(candidates);
    replay_events_.push_back(std::move(ev));
    ++replay_cursor_;
    if (config_.replay_batch > 0 &&
        replay_events_.size() >=
            static_cast<std::size_t>(config_.replay_batch)) {
      score_replay_batch(replay_events_, 0, replay_events_.size());
      replay_events_.clear();
    }
    return replayed->action;
  }

  const bool train = mode_ == Mode::kReplay;
  nn::Tape tape(/*track_gradients=*/train);

  // Embeddings (or zero stand-ins for the no-GNN ablation), consumed in
  // batched form: one n x emb_dim matrix per graph, one row per job summary,
  // one global row.
  const std::size_t d = static_cast<std::size_t>(config_.emb_dim);
  std::optional<gnn::Embeddings> emb;
  if (config_.use_gnn) {
    // Inference reuses the previous event's activations when the cache is
    // on; replay scoring differentiates through the embedding and must
    // rebuild the tape (and the reference sweep is its own baseline).
    if (config_.embed_cache && config_.batched_inference && !train) {
      embed_cache_.ensure_param_version(params_.version());
      emb = gnn_.embed_cached(tape, graphs, embed_cache_);
    } else {
      emb = gnn_.embed(tape, graphs);
    }
  }
  std::vector<nn::Var> node_mats(graphs.size());
  nn::Var job_mat, glob;
  if (config_.use_gnn) {
    node_mats = emb->node_mat;
    job_mat = emb->job_mat;
    glob = emb->global_emb;
  } else {
    for (std::size_t g = 0; g < graphs.size(); ++g) {
      node_mats[g] = tape.constant(nn::Matrix(graphs[g].features.rows(), d));
    }
    job_mat = tape.constant(nn::Matrix(graphs.size(), d));
    glob = tape.constant(nn::Matrix(1, d));
  }

  // Raw feature rows (the q function sees x_v alongside the embeddings, so
  // the no-GNN ablation still has the raw signal).
  std::vector<nn::Var> feature_rows(graphs.size());
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    feature_rows[g] = tape.constant(graphs[g].features);
  }

  // --- Stage selection: softmax over q(x_v, e_v, y_i, z) -------------------
  // Candidates are generated in graph order, so each graph's candidates form
  // a contiguous run; gather them into per-graph blocks and score all
  // candidates with a single q pass over one candidates x (feat + 3d) matrix.
  std::vector<nn::Var> blocks;
  for (std::size_t start = 0; start < candidates.size();) {
    const std::size_t g = static_cast<std::size_t>(candidates[start].graph);
    std::vector<std::size_t> picks;
    std::size_t i = start;
    for (; i < candidates.size() &&
           static_cast<std::size_t>(candidates[i].graph) == g;
         ++i) {
      picks.push_back(static_cast<std::size_t>(candidates[i].node));
    }
    const std::size_t m = picks.size();
    const nn::Var x = tape.rows(feature_rows[g], picks);
    const nn::Var e = tape.rows(node_mats[g], std::move(picks));
    blocks.push_back(
        tape.concat_cols({x, e, tape.broadcast_row(job_mat, g, m),
                          tape.broadcast_row(glob, 0, m)}));
    start = i;
  }
  const nn::Var q_in =
      blocks.size() == 1 ? blocks[0] : tape.concat_rows(blocks);
  const nn::Var node_logits = tape.as_row(q_.apply(tape, q_in));
  const std::vector<double> node_probs = tape.softmax_values(node_logits);
  const int node_choice =
      pick(node_probs, replayed ? replayed->node_choice : 0);
  const Candidate& chosen = candidates[static_cast<std::size_t>(node_choice)];
  const auto& chosen_job =
      env.jobs()[static_cast<std::size_t>(chosen.ref.job)];

  // --- Parallelism limit: softmax over w(y_i, z, l), l > current allocation
  int limit = total_execs;
  int limit_choice = -1;
  std::vector<int> limit_values;
  nn::Var limit_logits;
  if (config_.parallelism_control) {
    limit_values = limit_values_for(chosen_job, total_execs);
    assert(!limit_values.empty());
    const std::size_t cg = static_cast<std::size_t>(chosen.graph);
    if (config_.limit_encoding == LimitEncoding::kSeparateOutputs) {
      const nn::Var in = tape.concat_cols({tape.row(job_mat, cg), glob});
      const nn::Var all = w_sep_.apply(tape, in);
      std::vector<nn::Var> scores;
      scores.reserve(limit_values.size());
      for (int l : limit_values) {
        const std::size_t idx = std::min<std::size_t>(
            static_cast<std::size_t>(l - 1), kMaxSeparateLimitOutputs - 1);
        scores.push_back(tape.element(all, 0, idx));
      }
      limit_logits = tape.concat_scalars(scores);
    } else {
      // All candidate limits scored in one w pass: the rows differ only in
      // the scalar limit feature, so broadcast the embedding columns.
      const std::size_t nl = limit_values.size();
      const nn::Var lvar =
          tape.constant(limit_feature_col(limit_values, total_execs));
      std::vector<nn::Var> parts;
      if (config_.limit_encoding == LimitEncoding::kStageLevel) {
        parts = {tape.broadcast_row(node_mats[cg],
                                    static_cast<std::size_t>(chosen.node), nl),
                 tape.broadcast_row(job_mat, cg, nl),
                 tape.broadcast_row(glob, 0, nl), lvar};
      } else {
        parts = {tape.broadcast_row(job_mat, cg, nl),
                 tape.broadcast_row(glob, 0, nl), lvar};
      }
      limit_logits = tape.as_row(w_.apply(tape, tape.concat_cols(parts)));
    }
    const std::vector<double> limit_probs = tape.softmax_values(limit_logits);
    limit_choice = pick(limit_probs, replayed ? replayed->limit_choice : 0);
    limit = limit_values[static_cast<std::size_t>(limit_choice)];
  }

  // --- Executor class (multi-resource, §7.3) --------------------------------
  int exec_class = -1;
  int class_choice = -1;
  std::vector<int> class_values;
  nn::Var class_logits;
  if (multi) {
    class_values = valid_classes(
        env,
        chosen_job.spec.stages[static_cast<std::size_t>(chosen.ref.stage)].mem_req);
    // One class_head pass over all valid classes.
    const std::size_t nc = class_values.size();
    const std::size_t cg = static_cast<std::size_t>(chosen.graph);
    const nn::Var cvar = tape.constant(class_feature_mat(env, class_values));
    class_logits = tape.as_row(class_head_.apply(
        tape, tape.concat_cols({tape.broadcast_row(job_mat, cg, nc),
                                tape.broadcast_row(glob, 0, nc), cvar})));
    const std::vector<double> class_probs = tape.softmax_values(class_logits);
    class_choice = pick(class_probs, replayed ? replayed->class_choice : 0);
    exec_class = class_values[static_cast<std::size_t>(class_choice)];
  }

  sim::Action action;
  action.node = chosen.ref;
  action.limit = limit;
  action.exec_class = exec_class;

  if (train) {
    // Accumulate −A_k ∇log π − β ∇H into the parameter gradients.
    const double weight = replay_weights_[replay_cursor_];
    std::vector<nn::Var> logps;
    logps.push_back(
        tape.log_prob_pick(node_logits, static_cast<std::size_t>(node_choice)));
    if (config_.parallelism_control && limit_choice >= 0 &&
        limit_values.size() > 1) {
      logps.push_back(tape.log_prob_pick(
          limit_logits, static_cast<std::size_t>(limit_choice)));
    }
    if (multi && class_values.size() > 1) {
      logps.push_back(tape.log_prob_pick(
          class_logits, static_cast<std::size_t>(class_choice)));
    }
    nn::Var loss = tape.scale(tape.addn(logps), -weight);
    if (entropy_weight_ > 0.0 && candidates.size() > 1) {
      loss = tape.add(
          loss, tape.scale(tape.entropy(node_logits), -entropy_weight_));
    }
    tape.backward(loss);
    ++replay_cursor_;
    // Return the recorded action verbatim so the replayed episode evolves
    // exactly like the rollout.
    return replayed->action;
  }

  if (recording_ && mode_ == Mode::kSample) {
    RecordedAction rec;
    rec.node_choice = node_choice;
    rec.limit_choice = limit_choice;
    rec.class_choice = class_choice;
    rec.action = action;
    recorded_.push_back(rec);
  }
  return action;
}

void DecimaAgent::score_replay_batch(const std::vector<ReplayEvent>& all,
                                     std::size_t begin, std::size_t end) {
  if (begin >= end) return;
  const std::size_t K = end - begin;
  const ReplayEvent* events = all.data() + begin;  // chunk window

  // Flatten every event's graphs into one episode-wide list.
  std::vector<const gnn::JobGraph*> graphs;
  std::vector<std::size_t> event_of_graph;
  std::vector<std::size_t> graph_base(K);  // first global graph of event t
  for (std::size_t t = 0; t < K; ++t) {
    graph_base[t] = graphs.size();
    for (const auto& g : events[t].graphs) {
      graphs.push_back(&g);
      event_of_graph.push_back(t);
    }
  }

  nn::Tape tape(/*track_gradients=*/true);
  const gnn::EpisodeEmbeddings emb =
      config_.use_gnn ? gnn_.embed_episode(tape, graphs, event_of_graph, K)
                      : zero_episode_embeddings(tape, graphs, K);

  // Advantage column shared by the head losses: d(loss)/d(logp_t) = -A_t.
  nn::Matrix neg_w(K, 1);
  for (std::size_t t = 0; t < K; ++t) neg_w(t, 0) = -events[t].weight;
  const nn::Var neg_w_col = tape.constant(std::move(neg_w));
  std::vector<nn::Var> loss_parts;

  // --- Stage head: every candidate of every event through one q pass -------
  std::vector<std::size_t> cand_rows, cand_graphs, cand_events;
  std::vector<std::size_t> node_starts(K), node_picks(K);
  for (std::size_t t = 0; t < K; ++t) {
    node_starts[t] = cand_rows.size();
    node_picks[t] = static_cast<std::size_t>(events[t].node_choice);
    for (const Candidate& c : events[t].candidates) {
      const std::size_t gg = graph_base[t] + static_cast<std::size_t>(c.graph);
      cand_rows.push_back(emb.node_offset[gg] +
                          static_cast<std::size_t>(c.node));
      cand_graphs.push_back(gg);
      cand_events.push_back(t);
    }
  }
  std::vector<std::vector<std::size_t>> q_picks;
  q_picks.push_back(cand_rows);             // x_v
  q_picks.push_back(std::move(cand_rows));  // e_v (same rows)
  q_picks.push_back(std::move(cand_graphs));
  q_picks.push_back(std::move(cand_events));
  const nn::Var q_in = tape.gather_concat_cols(
      {emb.feat_all, emb.node_all, emb.job_mat, emb.global_mat},
      std::move(q_picks));
  const nn::Var q_out = q_.apply(tape, q_in);  // total candidates x 1
  loss_parts.push_back(tape.matmul(
      tape.log_prob_pick_segments(q_out, node_starts, std::move(node_picks)),
      neg_w_col));
  if (entropy_weight_ > 0.0) {
    // Single-candidate events contribute exactly zero entropy and gradient,
    // matching the reference path's candidates-size guard.
    loss_parts.push_back(
        tape.matmul(tape.entropy_segments(q_out, std::move(node_starts)),
                    tape.constant(nn::Matrix(K, 1, -entropy_weight_))));
  }

  // --- Parallelism head -----------------------------------------------------
  if (config_.parallelism_control) {
    if (config_.limit_encoding == LimitEncoding::kSeparateOutputs) {
      // One w_sep pass over the per-event [y_i, z] rows; per-event logits
      // are picked out of the shared output exactly as the reference does.
      std::vector<std::size_t> ev_graphs(K), ev_events(K);
      for (std::size_t t = 0; t < K; ++t) {
        ev_graphs[t] =
            graph_base[t] + static_cast<std::size_t>(events[t].chosen_graph);
        ev_events[t] = t;
      }
      const nn::Var all = w_sep_.apply(
          tape, tape.gather_concat_cols(
                    {emb.job_mat, emb.global_mat},
                    {std::move(ev_graphs), std::move(ev_events)}));
      std::vector<nn::Var> lps;
      lps.reserve(K);
      for (std::size_t t = 0; t < K; ++t) {
        std::vector<nn::Var> scores;
        scores.reserve(events[t].limit_values.size());
        for (int l : events[t].limit_values) {
          const std::size_t idx = std::min<std::size_t>(
              static_cast<std::size_t>(l - 1), kMaxSeparateLimitOutputs - 1);
          scores.push_back(tape.element(all, t, idx));
        }
        lps.push_back(tape.log_prob_pick(
            tape.concat_scalars(scores),
            static_cast<std::size_t>(events[t].limit_choice)));
      }
      loss_parts.push_back(tape.matmul(tape.concat_scalars(lps), neg_w_col));
    } else {
      // Every event's candidate limits stacked into one w pass.
      std::vector<std::size_t> l_graphs, l_events, l_nodes;
      std::vector<std::size_t> l_starts(K), l_picks(K);
      std::size_t total_l = 0;
      for (std::size_t t = 0; t < K; ++t) total_l += events[t].limit_values.size();
      nn::Matrix l_all(total_l, 1);
      std::size_t r = 0;
      const bool stage_level =
          config_.limit_encoding == LimitEncoding::kStageLevel;
      for (std::size_t t = 0; t < K; ++t) {
        l_starts[t] = r;
        l_picks[t] = static_cast<std::size_t>(events[t].limit_choice);
        const std::size_t gg =
            graph_base[t] + static_cast<std::size_t>(events[t].chosen_graph);
        for (std::size_t i = 0; i < events[t].limit_values.size(); ++i, ++r) {
          l_all(r, 0) = events[t].limit_feat(i, 0);
          l_graphs.push_back(gg);
          l_events.push_back(t);
          if (stage_level) {
            l_nodes.push_back(emb.node_offset[gg] +
                              static_cast<std::size_t>(events[t].chosen_node));
          }
        }
      }
      std::vector<nn::Var> srcs;
      std::vector<std::vector<std::size_t>> w_picks;
      if (stage_level) {
        srcs.push_back(emb.node_all);
        w_picks.push_back(std::move(l_nodes));
      }
      srcs.push_back(emb.job_mat);
      w_picks.push_back(std::move(l_graphs));
      srcs.push_back(emb.global_mat);
      w_picks.push_back(std::move(l_events));
      srcs.push_back(tape.constant(std::move(l_all)));
      std::vector<std::size_t> ident(total_l);
      for (std::size_t i = 0; i < total_l; ++i) ident[i] = i;
      w_picks.push_back(std::move(ident));
      const nn::Var w_out =
          w_.apply(tape, tape.gather_concat_cols(srcs, std::move(w_picks)));
      loss_parts.push_back(
          tape.matmul(tape.log_prob_pick_segments(w_out, std::move(l_starts),
                                                  std::move(l_picks)),
                      neg_w_col));
    }
  }

  // --- Executor-class head (multi-resource) ---------------------------------
  std::size_t total_c = 0;
  for (std::size_t t = 0; t < K; ++t) total_c += events[t].class_feat.rows();
  if (total_c > 0) {
    std::vector<std::size_t> c_graphs, c_events, c_starts, c_picks;
    std::vector<double> c_weights;
    nn::Matrix c_all(total_c, 2);
    std::size_t r = 0;
    for (std::size_t t = 0; t < K; ++t) {
      const std::size_t nc = events[t].class_feat.rows();
      if (nc == 0) continue;
      c_starts.push_back(r);
      c_picks.push_back(static_cast<std::size_t>(events[t].class_choice));
      c_weights.push_back(events[t].weight);
      const std::size_t gg =
          graph_base[t] + static_cast<std::size_t>(events[t].chosen_graph);
      for (std::size_t i = 0; i < nc; ++i, ++r) {
        c_all(r, 0) = events[t].class_feat(i, 0);
        c_all(r, 1) = events[t].class_feat(i, 1);
        c_graphs.push_back(gg);
        c_events.push_back(t);
      }
    }
    std::vector<std::size_t> c_ident(total_c);
    for (std::size_t i = 0; i < total_c; ++i) c_ident[i] = i;
    const nn::Var class_out = class_head_.apply(
        tape, tape.gather_concat_cols(
                  {emb.job_mat, emb.global_mat, tape.constant(std::move(c_all))},
                  {std::move(c_graphs), std::move(c_events),
                   std::move(c_ident)}));
    nn::Matrix neg_cw(c_weights.size(), 1);
    for (std::size_t i = 0; i < c_weights.size(); ++i) {
      neg_cw(i, 0) = -c_weights[i];
    }
    loss_parts.push_back(
        tape.matmul(tape.log_prob_pick_segments(class_out, std::move(c_starts),
                                                std::move(c_picks)),
                    tape.constant(std::move(neg_cw))));
  }

  // --- One backward for the whole batch -------------------------------------
  const nn::Var loss =
      loss_parts.size() == 1 ? loss_parts[0] : tape.addn(loss_parts);
  tape.backward(loss);
}

bool DecimaAgent::multi_class(const sim::ClusterEnv& env) const {
  return config_.multi_resource && env.executor_classes().size() > 1;
}

std::vector<int> DecimaAgent::valid_classes(const sim::ClusterEnv& env,
                                            double mem_req) const {
  const auto& classes = env.executor_classes();
  std::vector<int> out;
  for (std::size_t c = 0; c < classes.size(); ++c) {
    if (classes[c].mem + 1e-12 < mem_req) continue;
    if (env.free_executor_count_of_class(static_cast<int>(c)) == 0) continue;
    out.push_back(static_cast<int>(c));
  }
  return out;
}

std::vector<int> DecimaAgent::limit_values_for(const sim::JobState& job,
                                               int total_execs) const {
  std::vector<int> out;
  for (int l = job.executors + 1; l <= total_execs; l += config_.limit_step) {
    out.push_back(l);
  }
  return out;
}

nn::Matrix DecimaAgent::limit_feature_col(const std::vector<int>& values,
                                          int total_execs) {
  nn::Matrix lfeat(values.size(), 1);
  for (std::size_t i = 0; i < values.size(); ++i) {
    lfeat(i, 0) =
        static_cast<double>(values[i]) / static_cast<double>(total_execs);
  }
  return lfeat;
}

nn::Matrix DecimaAgent::class_feature_mat(const sim::ClusterEnv& env,
                                          const std::vector<int>& values) const {
  const auto& classes = env.executor_classes();
  const int total_execs = env.total_executors();
  nn::Matrix cfeat(values.size(), 2);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const int c = values[i];
    cfeat(i, 0) = classes[static_cast<std::size_t>(c)].mem;
    cfeat(i, 1) = static_cast<double>(env.free_executor_count_of_class(c)) /
                  static_cast<double>(total_execs);
  }
  return cfeat;
}

std::vector<DecimaAgent::Candidate> DecimaAgent::build_candidates(
    const sim::ClusterEnv& env, const std::vector<gnn::JobGraph>& graphs) const {
  const int total_execs = env.total_executors();
  const auto& classes = env.executor_classes();
  const bool multi = multi_class(env);
  std::vector<Candidate> candidates;
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    const auto& job = env.jobs()[static_cast<std::size_t>(graphs[g].env_job)];
    if (job.executors >= total_execs) continue;
    for (std::size_t v = 0; v < graphs[g].runnable.size(); ++v) {
      if (!graphs[g].runnable[v]) continue;
      const double req = job.spec.stages[v].mem_req;
      if (multi && valid_classes(env, req).empty()) continue;
      if (!multi && classes.size() == 1 && classes[0].mem + 1e-12 < req) {
        continue;
      }
      candidates.push_back(Candidate{
          static_cast<int>(g), static_cast<int>(v),
          sim::NodeRef{graphs[g].env_job, static_cast<int>(v)}});
    }
  }
  return candidates;
}

gnn::EpisodeEmbeddings DecimaAgent::zero_episode_embeddings(
    nn::Tape& tape, const std::vector<const gnn::JobGraph*>& graphs,
    std::size_t num_events) const {
  // Zero embedding stand-ins (the no-GNN ablation); q still sees raw x_v.
  const std::size_t G = graphs.size();
  const std::size_t d = static_cast<std::size_t>(config_.emb_dim);
  gnn::EpisodeEmbeddings emb;
  emb.node_offset.resize(G);
  std::size_t total = 0;
  for (std::size_t g = 0; g < G; ++g) {
    emb.node_offset[g] = total;
    total += graphs[g]->features.rows();
  }
  const std::size_t fd = static_cast<std::size_t>(config_.features.dim());
  nn::Matrix X(total, fd);
  for (std::size_t g = 0; g < G; ++g) {
    std::copy(graphs[g]->features.raw().begin(),
              graphs[g]->features.raw().end(),
              X.raw().begin() +
                  static_cast<std::ptrdiff_t>(emb.node_offset[g] * fd));
  }
  emb.feat_all = tape.constant(std::move(X));
  emb.node_all = tape.constant(nn::Matrix(total, d));
  emb.job_mat = tape.constant(nn::Matrix(G, d));
  emb.global_mat = tape.constant(nn::Matrix(num_events, d));
  return emb;
}

sim::Action DecimaAgent::decide(const sim::ClusterEnv& env,
                                gnn::EmbeddingCache* cache) const {
  return decide_batch({&env}, {cache})[0];
}

std::vector<sim::Action> DecimaAgent::decide_batch(
    const std::vector<const sim::ClusterEnv*>& envs,
    const std::vector<gnn::EmbeddingCache*>& caches) const {
  assert(caches.empty() || caches.size() == envs.size());
  std::vector<sim::Action> out(envs.size(), sim::Action::none());

  // Per-session scoring inputs; sessions with nothing to schedule answer
  // none() and drop out of the batch.
  struct SessionEvent {
    std::size_t session = 0;
    std::vector<gnn::JobGraph> graphs;
    std::vector<Candidate> candidates;
  };
  std::vector<SessionEvent> events;
  for (std::size_t s = 0; s < envs.size(); ++s) {
    SessionEvent ev;
    ev.session = s;
    ev.graphs = gnn::extract_graphs(*envs[s], config_.features, observed_iat_);
    if (ev.graphs.empty()) continue;
    ev.candidates = build_candidates(*envs[s], ev.graphs);
    if (ev.candidates.empty()) continue;
    events.push_back(std::move(ev));
  }
  if (events.empty()) return out;
  const std::size_t K = events.size();

  // Flatten every session's graphs; session index = "event" of embed_episode,
  // so global_mat row t is session t's z exactly as decide() computes it.
  std::vector<const gnn::JobGraph*> graphs;
  std::vector<std::size_t> event_of_graph;
  std::vector<std::size_t> graph_base(K);
  for (std::size_t t = 0; t < K; ++t) {
    graph_base[t] = graphs.size();
    for (const auto& g : events[t].graphs) {
      graphs.push_back(&g);
      event_of_graph.push_back(t);
    }
  }

  nn::Tape tape(/*track_gradients=*/false);
  // The size check repeats the precondition assert so a mismatched caches
  // vector degrades to uncached inference in release builds instead of
  // indexing out of bounds.
  const bool cached = config_.use_gnn && config_.embed_cache &&
                      caches.size() == envs.size();
  std::vector<gnn::EmbeddingCache*> event_caches;
  if (cached) {
    event_caches.resize(K);
    for (std::size_t t = 0; t < K; ++t) {
      event_caches[t] = caches[events[t].session];
      if (event_caches[t]) {
        event_caches[t]->ensure_param_version(params_.version());
      }
    }
  }
  const gnn::EpisodeEmbeddings emb =
      !config_.use_gnn ? zero_episode_embeddings(tape, graphs, K)
      : cached         ? gnn_.embed_episode_cached(tape, graphs,
                                                   event_of_graph, K,
                                                   event_caches)
                       : gnn_.embed_episode(tape, graphs, event_of_graph, K);

  // Greedy choice over raw logits, replicating pick()'s argmax over
  // Tape::softmax_values exactly — same max/exp/normalize sequence, same
  // first-maximum tie-break. Argmaxing the raw logits instead would be only
  // weakly order-preserving (distinct logits can round to equal
  // probabilities), which could flip an ulp-level tie against schedule().
  const auto greedy_pick = [](const std::vector<double>& logits) {
    double max_logit = logits[0];
    for (std::size_t i = 1; i < logits.size(); ++i) {
      max_logit = std::max(max_logit, logits[i]);
    }
    std::vector<double> p(logits.size());
    double denom = 0.0;
    for (std::size_t i = 0; i < logits.size(); ++i) {
      p[i] = std::exp(logits[i] - max_logit);
      denom += p[i];
    }
    for (double& v : p) v /= denom;
    std::size_t best = 0;
    for (std::size_t i = 1; i < p.size(); ++i) {
      if (p[i] > p[best]) best = i;
    }
    return best;
  };
  const auto argmax_segment = [&greedy_pick](const nn::Matrix& col,
                                             std::size_t begin,
                                             std::size_t end) {
    std::vector<double> logits(end - begin);
    for (std::size_t r = begin; r < end; ++r) logits[r - begin] = col(r, 0);
    return greedy_pick(logits);
  };

  // --- Stage head: every candidate of every session through one q pass -----
  std::vector<std::size_t> cand_rows, cand_graphs, cand_events;
  std::vector<std::size_t> node_starts(K);
  for (std::size_t t = 0; t < K; ++t) {
    node_starts[t] = cand_rows.size();
    for (const Candidate& c : events[t].candidates) {
      const std::size_t gg = graph_base[t] + static_cast<std::size_t>(c.graph);
      cand_rows.push_back(emb.node_offset[gg] +
                          static_cast<std::size_t>(c.node));
      cand_graphs.push_back(gg);
      cand_events.push_back(t);
    }
  }
  const std::size_t total_cands = cand_rows.size();
  std::vector<std::vector<std::size_t>> q_picks;
  q_picks.push_back(cand_rows);
  q_picks.push_back(std::move(cand_rows));
  q_picks.push_back(std::move(cand_graphs));
  q_picks.push_back(std::move(cand_events));
  const nn::Var q_out = q_.apply(
      tape, tape.gather_concat_cols(
                {emb.feat_all, emb.node_all, emb.job_mat, emb.global_mat},
                std::move(q_picks)));
  const nn::Matrix& q_vals = tape.value(q_out);

  // Per-session chosen candidate (greedy within the session's segment).
  std::vector<const Candidate*> chosen(K);
  std::vector<std::size_t> chosen_graph_row(K);  // row into emb.job_mat
  for (std::size_t t = 0; t < K; ++t) {
    const std::size_t seg_end =
        t + 1 < K ? node_starts[t + 1] : total_cands;
    const std::size_t choice = argmax_segment(q_vals, node_starts[t], seg_end);
    chosen[t] = &events[t].candidates[choice];
    chosen_graph_row[t] =
        graph_base[t] + static_cast<std::size_t>(chosen[t]->graph);
    out[events[t].session].node = chosen[t]->ref;
    out[events[t].session].limit = envs[events[t].session]->total_executors();
  }

  // --- Parallelism head: every session's candidate limits in one w pass ----
  if (config_.parallelism_control) {
    std::vector<std::vector<int>> limit_values(K);
    for (std::size_t t = 0; t < K; ++t) {
      const sim::ClusterEnv& env = *envs[events[t].session];
      limit_values[t] = limit_values_for(
          env.jobs()[static_cast<std::size_t>(chosen[t]->ref.job)],
          env.total_executors());
      assert(!limit_values[t].empty());
    }
    if (config_.limit_encoding == LimitEncoding::kSeparateOutputs) {
      // One w_sep pass over the per-session [y_i, z] rows; each session's
      // logits are picked out of its output row.
      std::vector<std::size_t> ev_events(K);
      for (std::size_t t = 0; t < K; ++t) ev_events[t] = t;
      const nn::Var all = w_sep_.apply(
          tape, tape.gather_concat_cols({emb.job_mat, emb.global_mat},
                                        {chosen_graph_row, ev_events}));
      const nn::Matrix& w_vals = tape.value(all);
      for (std::size_t t = 0; t < K; ++t) {
        std::vector<double> scores(limit_values[t].size());
        for (std::size_t i = 0; i < limit_values[t].size(); ++i) {
          const std::size_t idx = std::min<std::size_t>(
              static_cast<std::size_t>(limit_values[t][i] - 1),
              kMaxSeparateLimitOutputs - 1);
          scores[i] = w_vals(t, idx);
        }
        out[events[t].session].limit = limit_values[t][greedy_pick(scores)];
      }
    } else {
      const bool stage_level =
          config_.limit_encoding == LimitEncoding::kStageLevel;
      std::vector<std::size_t> l_graphs, l_events, l_nodes, l_starts(K);
      std::size_t total_l = 0;
      for (std::size_t t = 0; t < K; ++t) total_l += limit_values[t].size();
      nn::Matrix l_all(total_l, 1);
      std::size_t r = 0;
      for (std::size_t t = 0; t < K; ++t) {
        l_starts[t] = r;
        const int total_execs = envs[events[t].session]->total_executors();
        for (std::size_t i = 0; i < limit_values[t].size(); ++i, ++r) {
          l_all(r, 0) = static_cast<double>(limit_values[t][i]) /
                        static_cast<double>(total_execs);
          l_graphs.push_back(chosen_graph_row[t]);
          l_events.push_back(t);
          if (stage_level) {
            l_nodes.push_back(emb.node_offset[chosen_graph_row[t]] +
                              static_cast<std::size_t>(chosen[t]->node));
          }
        }
      }
      std::vector<nn::Var> srcs;
      std::vector<std::vector<std::size_t>> w_picks;
      if (stage_level) {
        srcs.push_back(emb.node_all);
        w_picks.push_back(std::move(l_nodes));
      }
      srcs.push_back(emb.job_mat);
      w_picks.push_back(std::move(l_graphs));
      srcs.push_back(emb.global_mat);
      w_picks.push_back(std::move(l_events));
      srcs.push_back(tape.constant(std::move(l_all)));
      std::vector<std::size_t> ident(total_l);
      for (std::size_t i = 0; i < total_l; ++i) ident[i] = i;
      w_picks.push_back(std::move(ident));
      const nn::Var w_out =
          w_.apply(tape, tape.gather_concat_cols(srcs, std::move(w_picks)));
      const nn::Matrix& w_vals = tape.value(w_out);
      for (std::size_t t = 0; t < K; ++t) {
        const std::size_t seg_end = t + 1 < K ? l_starts[t + 1] : total_l;
        const std::size_t choice =
            argmax_segment(w_vals, l_starts[t], seg_end);
        out[events[t].session].limit = limit_values[t][choice];
      }
    }
  }

  // --- Executor-class head (multi-resource sessions) ------------------------
  std::vector<std::vector<int>> class_values(K);
  std::size_t total_c = 0;
  for (std::size_t t = 0; t < K; ++t) {
    const sim::ClusterEnv& env = *envs[events[t].session];
    if (!multi_class(env)) continue;
    class_values[t] = valid_classes(
        env, env.jobs()[static_cast<std::size_t>(chosen[t]->ref.job)]
                 .spec.stages[static_cast<std::size_t>(chosen[t]->ref.stage)]
                 .mem_req);
    assert(!class_values[t].empty());
    total_c += class_values[t].size();
  }
  if (total_c > 0) {
    std::vector<std::size_t> c_graphs, c_events, c_starts, c_sessions;
    nn::Matrix c_all(total_c, 2);
    std::size_t r = 0;
    for (std::size_t t = 0; t < K; ++t) {
      if (class_values[t].empty()) continue;
      c_starts.push_back(r);
      c_sessions.push_back(t);
      const nn::Matrix cf =
          class_feature_mat(*envs[events[t].session], class_values[t]);
      for (std::size_t i = 0; i < class_values[t].size(); ++i, ++r) {
        c_all(r, 0) = cf(i, 0);
        c_all(r, 1) = cf(i, 1);
        c_graphs.push_back(chosen_graph_row[t]);
        c_events.push_back(t);
      }
    }
    std::vector<std::size_t> c_ident(total_c);
    for (std::size_t i = 0; i < total_c; ++i) c_ident[i] = i;
    const nn::Var class_out = class_head_.apply(
        tape,
        tape.gather_concat_cols(
            {emb.job_mat, emb.global_mat, tape.constant(std::move(c_all))},
            {std::move(c_graphs), std::move(c_events), std::move(c_ident)}));
    const nn::Matrix& c_vals = tape.value(class_out);
    for (std::size_t i = 0; i < c_starts.size(); ++i) {
      const std::size_t seg_end =
          i + 1 < c_starts.size() ? c_starts[i + 1] : total_c;
      const std::size_t t = c_sessions[i];
      const std::size_t choice = argmax_segment(c_vals, c_starts[i], seg_end);
      out[events[t].session].exec_class = class_values[t][choice];
    }
  }
  return out;
}

std::unique_ptr<DecimaAgent> DecimaAgent::clone() const {
  auto copy = std::make_unique<DecimaAgent>(config_);
  copy->params_.copy_values_from(params_);
  copy->observed_iat_ = observed_iat_;
  return copy;
}

void DecimaAgent::snapshot_params_from(const DecimaAgent& master) {
  params_.copy_values_from(master.params_);
  observed_iat_ = master.observed_iat_;
}

bool DecimaAgent::save(const std::string& path) const {
  return nn::save_params(params_, path);
}

bool DecimaAgent::load(const std::string& path) {
  return nn::load_params(params_, path);
}

}  // namespace decima::core
