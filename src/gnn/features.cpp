#include "gnn/features.h"

#include <algorithm>
#include <cstring>

#include "util/rng.h"

namespace decima::gnn {

std::vector<JobGraph> extract_graphs(const sim::ClusterEnv& env,
                                     const FeatureConfig& config,
                                     double observed_iat) {
  std::vector<JobGraph> out;
  const auto& jobs = env.jobs();
  const double total_execs = static_cast<double>(env.total_executors());
  const double free_execs = static_cast<double>(env.free_executor_count());

  // Fingerprint of the globally-shared feature inputs: the env's executor
  // state epoch, with the IAT hint value folded in when that column exists
  // (set_observed_iat changes every row without touching the env).
  std::uint64_t global_epoch = env.feature_epoch();
  if (config.iat_hint) {
    std::uint64_t iat_bits = 0;
    std::memcpy(&iat_bits, &observed_iat, sizeof(iat_bits));
    global_epoch ^= iat_bits * 0x9e3779b97f4a7c15ULL;
  }

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const sim::JobState& job = jobs[j];
    if (!job.arrived || job.done()) continue;
    JobGraph g;
    g.env_job = static_cast<int>(j);
    g.env_uid = env.uid();
    g.job_epoch = job.mut_epoch;
    g.global_epoch = global_epoch;
    const std::size_t n = job.spec.stages.size();
    g.features = nn::Matrix(n, static_cast<std::size_t>(config.dim()));
    g.children = job.children;
    g.topo = job.spec.topo_order();
    g.runnable.resize(n, false);
    const double local = env.local_free_executors(static_cast<int>(j)) > 0 ? 1.0 : 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      const auto& spec = job.spec.stages[v];
      const auto& st = job.stages[v];
      const double remaining = static_cast<double>(spec.num_tasks - st.finished);
      g.features(v, 0) = remaining / config.task_scale;
      g.features(v, 1) = config.use_task_duration
                             ? spec.task_duration / config.duration_scale
                             : 0.0;
      g.features(v, 2) = static_cast<double>(job.executors) / total_execs;
      g.features(v, 3) = free_execs / total_execs;
      g.features(v, 4) = local;
      if (config.iat_hint) g.features(v, 5) = observed_iat / config.iat_scale;
      g.runnable[v] = st.runnable();
    }
    out.push_back(std::move(g));
  }
  return out;
}

JobGraph random_job_graph(std::uint64_t seed, int num_nodes, int feat_dim) {
  Rng rng(seed);
  JobGraph g;
  g.env_job = 0;
  g.features = nn::Matrix(static_cast<std::size_t>(num_nodes),
                          static_cast<std::size_t>(feat_dim));
  for (double& v : g.features.raw()) v = rng.uniform(-1, 1);
  g.children.resize(static_cast<std::size_t>(num_nodes));
  for (int v = 1; v < num_nodes; ++v) {
    const int parents = rng.uniform_int(1, 3);
    for (int e = 0; e < parents; ++e) {
      const int p = rng.uniform_int(0, v - 1);
      auto& kids = g.children[static_cast<std::size_t>(p)];
      if (std::find(kids.begin(), kids.end(), v) == kids.end()) {
        kids.push_back(v);
      }
    }
  }
  g.topo.resize(static_cast<std::size_t>(num_nodes));
  for (int v = 0; v < num_nodes; ++v) g.topo[static_cast<std::size_t>(v)] = v;
  g.runnable.assign(static_cast<std::size_t>(num_nodes), true);
  return g;
}

}  // namespace decima::gnn
