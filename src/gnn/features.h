// Raw state featurization (§6.1): for each DAG node v of job i the feature
// vector x^i_v contains
//   (i)   the number of tasks remaining in the stage,
//   (ii)  the average task duration,
//   (iii) the number of executors currently working on the job,
//   (iv)  the number of available (free) executors,
//   (v)   whether available executors are local to the job,
// all normalized to comparable magnitudes. Optional extras: the observed job
// interarrival time (the "IAT hint" of Table 2) and masking of the task-
// duration feature (the incomplete-information study of Appendix J).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/matrix.h"
#include "sim/cluster_env.h"

namespace decima::gnn {

struct FeatureConfig {
  bool use_task_duration = true;  // false = Appendix J (unseen jobs)
  bool iat_hint = false;          // true = Table 2's interarrival-time input
  // Normalization scales (divide raw values by these).
  double task_scale = 200.0;
  double duration_scale = 10.0;
  double iat_scale = 100.0;

  int dim() const { return iat_hint ? 6 : 5; }
};

// One job DAG prepared for the graph neural network: node features plus
// adjacency in both directions and a topological order.
struct JobGraph {
  int env_job = -1;  // index into env.jobs()
  nn::Matrix features;  // n x feat_dim
  std::vector<std::vector<int>> children;
  std::vector<int> topo;  // parents before children
  std::vector<bool> runnable;  // node-level action mask (A_t of §5.2)

  // Embedding-cache identity (src/gnn/embedding_cache.h). env_uid names the
  // producing ClusterEnv; (env_uid, env_job) keys the cached activations.
  // job_epoch / global_epoch fingerprint every input the feature rows were
  // built from (the job's mutation counter; the env's globally-shared
  // executor state, folded with the IAT hint when that feature is on) — when
  // both match a cache entry, the entry is provably current and even the
  // per-row feature diff is skipped. env_uid < 0 (synthetic graphs) disables
  // the epoch fast path; the cache then always diffs, which is still exact.
  std::int64_t env_uid = -1;
  std::uint64_t job_epoch = 0;
  std::uint64_t global_epoch = 0;
};

// Extracts graphs for all arrived, unfinished jobs. `observed_iat` feeds the
// IAT hint feature when enabled (callers estimate it from recent arrivals).
std::vector<JobGraph> extract_graphs(const sim::ClusterEnv& env,
                                     const FeatureConfig& config,
                                     double observed_iat = 0.0);

// A seeded random DAG with uniform [-1, 1) features: node v > 0 gets 1-3
// distinct parents among earlier nodes, topo order 0..n-1, all runnable.
// Synthetic input for GNN equivalence tests and latency benchmarks.
JobGraph random_job_graph(std::uint64_t seed, int num_nodes, int feat_dim = 5);

}  // namespace decima::gnn
