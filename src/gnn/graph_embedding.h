// The graph neural network of §5.1.
//
// Three levels of summarization, each with its own pair of non-linear
// transforms f and g (six MLPs total, exactly as the paper):
//   per-node:  e_v = g(Σ_{u ∈ ξ(v)} f(e_u)) + proj(x_v)   (Eq. 1)
//   per-job:   y_i = g'(Σ_{v ∈ G_i} f'([proj(x_v), e_v]))
//   global:    z   = g''(Σ_i f''(y_i))
// Raw features are first lifted to the embedding dimension by a learned
// projection so the "+ x_v" residual of Eq. 1 is well-typed.
//
// The second non-linearity g is what lets the network express max-like
// aggregations such as a DAG's critical path (Appendix E); the single-level
// ablation (two_level_aggregation = false, used for Fig. 19) removes it:
//   e_v = Σ_{u ∈ ξ(v)} f(e_u) + proj(x_v).
#pragma once

#include <memory>
#include <vector>

#include "gnn/embedding_cache.h"
#include "gnn/features.h"
#include "nn/mlp.h"

namespace decima::gnn {

namespace detail {
// Groups nodes by message-passing depth: level 0 = leaves, every node's
// children at strictly lower levels (graph_embedding.cpp). Shared by the
// batched sweeps and the incremental embedding cache.
std::vector<std::vector<std::size_t>> levelize(const JobGraph& graph);
}  // namespace detail

struct GnnConfig {
  int feat_dim = 5;
  int emb_dim = 8;
  bool two_level_aggregation = true;  // false = Fig. 19 ablation
  std::vector<std::size_t> hidden = {32, 16};  // §6.1's layer sizes
  // true (default) evaluates each message-passing level as one row-batched
  // matrix per MLP; false keeps the original one-node-at-a-time reference
  // implementation (used by equivalence tests and latency benchmarks).
  bool batched = true;
};

// The embeddings produced for one state observation.
struct Embeddings {
  // Batched forms: all rows of one level in a single matrix.
  std::vector<nn::Var> node_mat;  // per graph, n_g x emb_dim (row v = e_v)
  std::vector<nn::Var> proj_mat;  // per graph, n_g x emb_dim (row v = proj x_v)
  nn::Var job_mat;                // num_graphs x emb_dim (row i = y_i)
  nn::Var global_emb;             // z, 1 x emb_dim
  // Per-node / per-job row views (slices of the batched forms above), for
  // call sites that address a single node or job.
  std::vector<std::vector<nn::Var>> node_emb;  // node_emb[g][v] = e_v
  // proj[g][v] — populated by the reference path only; the batched path
  // leaves it empty (slice proj_mat on demand instead).
  std::vector<std::vector<nn::Var>> proj;
  std::vector<nn::Var> job_emb;                // y_i per graph
};

// Embeddings for an entire episode of scheduling events on one tape (the
// batched REINFORCE replay). All events' graphs are flattened into one list;
// `node_offset[g]` locates graph g's rows inside the stacked matrices.
struct EpisodeEmbeddings {
  nn::Var feat_all;    // total_nodes x feat_dim constant (stacked raw x_v)
  nn::Var node_all;    // total_nodes x emb_dim; row node_offset[g] + v = e_v
  nn::Var job_mat;     // num_graphs x emb_dim (row g = y of graph g)
  nn::Var global_mat;  // num_events x emb_dim (row t = z of event t)
  std::vector<std::size_t> node_offset;  // first row of graph g
};

class GraphEmbedding {
 public:
  explicit GraphEmbedding(const GnnConfig& config, decima::Rng& rng);

  // Builds the full three-level embedding of `graphs` on `tape`.
  Embeddings embed(nn::Tape& tape, const std::vector<JobGraph>& graphs) const;

  // Episode-batched embedding: `graphs` holds every graph of every scheduling
  // event of an episode (or chunk), `event_of_graph[g]` names graph g's event
  // (non-decreasing, < num_events). Node and job levels are event-independent
  // and run fully batched — each of the six MLPs is applied once per
  // message-passing depth (not once per graph per event); the global level
  // segment-sums per event, so global_mat row t is exactly the z the
  // inference path computes for event t. Always uses the batched kernels
  // regardless of config().batched (callers gate on their own replay flag).
  EpisodeEmbeddings embed_episode(
      nn::Tape& tape, const std::vector<const JobGraph*>& graphs,
      const std::vector<std::size_t>& event_of_graph,
      std::size_t num_events) const;

  // Incremental inference path (src/gnn/embedding_cache.h): refreshes
  // `cache` against `graphs` — re-embedding only dirty nodes and their
  // ancestors in message flow — and returns the embeddings as forward-only
  // constants on `tape`. Numerically identical to embed() with
  // config().batched (the cache evaluates the same kernels in the same
  // order on the dirty rows and re-reduces summaries over mixed
  // cached/fresh rows). Unlike embed(), the per-node row views (node_emb,
  // proj) are left empty: no inference consumer reads them, and
  // materializing n views per graph would tax every event.
  // Callers must ensure_param_version() first; not usable for training
  // (constants carry no gradient).
  Embeddings embed_cached(nn::Tape& tape, const std::vector<JobGraph>& graphs,
                          EmbeddingCache& cache) const;

  // Cross-session cached embedding (the serving path): graphs of session t
  // are those with event_of_graph[g] == t and refresh caches[t] (one
  // per-session cache, nullptr = compute without caching). Produces the
  // same stacked layout as embed_episode, as tape constants.
  EpisodeEmbeddings embed_episode_cached(
      nn::Tape& tape, const std::vector<const JobGraph*>& graphs,
      const std::vector<std::size_t>& event_of_graph, std::size_t num_events,
      const std::vector<EmbeddingCache*>& caches) const;

  // Per-node embeddings only (used by the supervised expressiveness study).
  std::vector<nn::Var> embed_nodes(nn::Tape& tape, const JobGraph& graph,
                                   std::vector<nn::Var>* proj_out = nullptr) const;

  nn::ParamSet param_set();
  const GnnConfig& config() const { return config_; }

 private:
  // Batched per-node sweep: returns the n x emb_dim node matrix; also exposes
  // the n x emb_dim projection matrix and per-node row views. Applies Eq. 1's
  // f once per node per level and gathers the rows per edge (the same message
  // dedup as embed_episode), so multi-parent nodes cost one f evaluation.
  nn::Var embed_nodes_batched(nn::Tape& tape, const JobGraph& graph,
                              nn::Var* proj_mat,
                              std::vector<nn::Var>* node_rows) const;
  // Original one-node-at-a-time sweep (config_.batched = false).
  std::vector<nn::Var> embed_nodes_reference(
      nn::Tape& tape, const JobGraph& graph,
      std::vector<nn::Var>* proj_out) const;

  // Brings `cache`'s entry for `graph` up to date (embedding_cache.cpp):
  // validates structure and parameters, diffs feature rows unless the epoch
  // fast path proves the entry clean, and re-embeds dirty subgraphs.
  const EmbeddingCache::Entry& refresh_cache_entry(const JobGraph& graph,
                                                   EmbeddingCache& cache) const;
  // Recomputes `entry` for the nodes in `feat_dirty` (feature rows changed)
  // and everything downstream of them in message flow.
  void update_cache_entry(const JobGraph& graph,
                          const std::vector<std::size_t>& feat_dirty,
                          EmbeddingCache::Entry& entry,
                          EmbeddingCacheStats& stats) const;

  GnnConfig config_;
  nn::Mlp proj_;    // feat_dim -> emb_dim feature lift
  nn::Mlp f_node_, g_node_;
  nn::Mlp f_job_, g_job_;
  nn::Mlp f_glob_, g_glob_;
};

}  // namespace decima::gnn
