#include "gnn/graph_embedding.h"

#include <cassert>

namespace decima::gnn {

GraphEmbedding::GraphEmbedding(const GnnConfig& config, decima::Rng& rng)
    : config_(config),
      proj_("gnn/proj", static_cast<std::size_t>(config.feat_dim),
            static_cast<std::size_t>(config.emb_dim), {16}),
      f_node_("gnn/f_node", static_cast<std::size_t>(config.emb_dim),
              static_cast<std::size_t>(config.emb_dim), config.hidden),
      g_node_("gnn/g_node", static_cast<std::size_t>(config.emb_dim),
              static_cast<std::size_t>(config.emb_dim), config.hidden),
      f_job_("gnn/f_job", static_cast<std::size_t>(2 * config.emb_dim),
             static_cast<std::size_t>(config.emb_dim), config.hidden),
      g_job_("gnn/g_job", static_cast<std::size_t>(config.emb_dim),
             static_cast<std::size_t>(config.emb_dim), config.hidden),
      f_glob_("gnn/f_glob", static_cast<std::size_t>(config.emb_dim),
              static_cast<std::size_t>(config.emb_dim), config.hidden),
      g_glob_("gnn/g_glob", static_cast<std::size_t>(config.emb_dim),
              static_cast<std::size_t>(config.emb_dim), config.hidden) {
  proj_.init(rng);
  f_node_.init(rng);
  g_node_.init(rng);
  f_job_.init(rng);
  g_job_.init(rng);
  f_glob_.init(rng);
  g_glob_.init(rng);
}

std::vector<nn::Var> GraphEmbedding::embed_nodes(
    nn::Tape& tape, const JobGraph& graph,
    std::vector<nn::Var>* proj_out) const {
  const std::size_t n = graph.features.rows();
  const nn::Var x = tape.constant(graph.features);
  std::vector<nn::Var> proj(n), emb(n);
  for (std::size_t v = 0; v < n; ++v) {
    proj[v] = proj_.apply(tape, tape.row(x, v));
  }
  // Reverse topological sweep: every node's children are embedded before the
  // node itself, which realizes the leaves-to-roots message passing of
  // Fig. 5a in a single pass.
  for (auto it = graph.topo.rbegin(); it != graph.topo.rend(); ++it) {
    const std::size_t v = static_cast<std::size_t>(*it);
    const auto& kids = graph.children[v];
    if (kids.empty()) {
      emb[v] = proj[v];
      continue;
    }
    std::vector<nn::Var> messages;
    messages.reserve(kids.size());
    for (int u : kids) {
      messages.push_back(f_node_.apply(tape, emb[static_cast<std::size_t>(u)]));
    }
    nn::Var agg = tape.addn(messages);
    if (config_.two_level_aggregation) agg = g_node_.apply(tape, agg);
    emb[v] = tape.add(agg, proj[v]);
  }
  if (proj_out) *proj_out = std::move(proj);
  return emb;
}

Embeddings GraphEmbedding::embed(nn::Tape& tape,
                                 const std::vector<JobGraph>& graphs) const {
  Embeddings out;
  out.node_emb.reserve(graphs.size());
  out.proj.reserve(graphs.size());
  out.job_emb.reserve(graphs.size());

  for (const JobGraph& g : graphs) {
    std::vector<nn::Var> proj;
    out.node_emb.push_back(embed_nodes(tape, g, &proj));
    out.proj.push_back(std::move(proj));

    // Per-job summary: the DAG-level summary node takes every node of the
    // DAG as a child (Fig. 5b squares); its inputs are [proj(x_v), e_v].
    std::vector<nn::Var> messages;
    messages.reserve(out.node_emb.back().size());
    for (std::size_t v = 0; v < out.node_emb.back().size(); ++v) {
      const nn::Var joined =
          tape.concat_cols({out.proj.back()[v], out.node_emb.back()[v]});
      messages.push_back(f_job_.apply(tape, joined));
    }
    nn::Var agg = tape.addn(messages);
    if (config_.two_level_aggregation) agg = g_job_.apply(tape, agg);
    out.job_emb.push_back(agg);
  }

  // Global summary: the cluster-level node takes every DAG summary as a
  // child (Fig. 5b triangle).
  std::vector<nn::Var> messages;
  messages.reserve(out.job_emb.size());
  for (const nn::Var& y : out.job_emb) {
    messages.push_back(f_glob_.apply(tape, y));
  }
  assert(!messages.empty());
  nn::Var agg = tape.addn(messages);
  if (config_.two_level_aggregation) agg = g_glob_.apply(tape, agg);
  out.global_emb = agg;
  return out;
}

nn::ParamSet GraphEmbedding::param_set() {
  nn::ParamSet set;
  set.add(proj_.params());
  set.add(f_node_.params());
  set.add(g_node_.params());
  set.add(f_job_.params());
  set.add(g_job_.params());
  set.add(f_glob_.params());
  set.add(g_glob_.params());
  return set;
}

}  // namespace decima::gnn
