#include "gnn/graph_embedding.h"

#include <algorithm>
#include <cassert>

namespace decima::gnn {

namespace detail {

// Groups nodes by message-passing depth: level 0 = leaves (no children), and
// every node's children sit at strictly lower levels. All nodes of one level
// are independent, so each level is evaluated as one batched matrix. Shared
// with the incremental cache (embedding_cache.cpp), which stores the levels
// per job and sweeps only the dirty rows of each.
std::vector<std::vector<std::size_t>> levelize(const JobGraph& graph) {
  const std::size_t n = graph.features.rows();
  std::vector<int> depth(n, 0);
  int max_depth = 0;
  for (auto it = graph.topo.rbegin(); it != graph.topo.rend(); ++it) {
    const std::size_t v = static_cast<std::size_t>(*it);
    int d = 0;
    for (int u : graph.children[v]) {
      d = std::max(d, depth[static_cast<std::size_t>(u)] + 1);
    }
    depth[v] = d;
    max_depth = std::max(max_depth, d);
  }
  std::vector<std::vector<std::size_t>> levels(
      static_cast<std::size_t>(max_depth) + 1);
  for (std::size_t v = 0; v < n; ++v) {
    levels[static_cast<std::size_t>(depth[v])].push_back(v);
  }
  return levels;
}

}  // namespace detail

namespace {
using detail::levelize;
}  // namespace

GraphEmbedding::GraphEmbedding(const GnnConfig& config, decima::Rng& rng)
    : config_(config),
      proj_("gnn/proj", static_cast<std::size_t>(config.feat_dim),
            static_cast<std::size_t>(config.emb_dim), {16}),
      f_node_("gnn/f_node", static_cast<std::size_t>(config.emb_dim),
              static_cast<std::size_t>(config.emb_dim), config.hidden),
      g_node_("gnn/g_node", static_cast<std::size_t>(config.emb_dim),
              static_cast<std::size_t>(config.emb_dim), config.hidden),
      f_job_("gnn/f_job", static_cast<std::size_t>(2 * config.emb_dim),
             static_cast<std::size_t>(config.emb_dim), config.hidden),
      g_job_("gnn/g_job", static_cast<std::size_t>(config.emb_dim),
             static_cast<std::size_t>(config.emb_dim), config.hidden),
      f_glob_("gnn/f_glob", static_cast<std::size_t>(config.emb_dim),
              static_cast<std::size_t>(config.emb_dim), config.hidden),
      g_glob_("gnn/g_glob", static_cast<std::size_t>(config.emb_dim),
              static_cast<std::size_t>(config.emb_dim), config.hidden) {
  proj_.init(rng);
  f_node_.init(rng);
  g_node_.init(rng);
  f_job_.init(rng);
  g_job_.init(rng);
  f_glob_.init(rng);
  g_glob_.init(rng);
}

nn::Var GraphEmbedding::embed_nodes_batched(
    nn::Tape& tape, const JobGraph& graph, nn::Var* proj_mat,
    std::vector<nn::Var>* node_rows) const {
  const std::size_t n = graph.features.rows();
  const nn::Var x = tape.constant(graph.features);
  const nn::Var P = proj_.apply(tape, x);  // one batched lift for all nodes

  // Leaves-to-roots sweep (Fig. 5a), one level at a time. Eq. 1's message
  // f(e_u) depends only on the child u, so f runs ONCE per node (one f_node
  // pass over each source level's embedding matrix, built lazily) and its
  // rows are gathered per edge — the same dedup embed_episode uses, instead
  // of re-evaluating f for every extra parent of u. Gathered rows equal
  // per-edge evaluation bit for bit (f is row-independent), and the
  // per-source-level scatter positions each message at its (destination,
  // child) slot exactly once, so the final segment-sum adds children in the
  // original order — bit-identical to the pre-dedup sweep.
  const auto levels = levelize(graph);
  std::vector<std::size_t> level_of(n), row_in_level(n);
  for (std::size_t L = 0; L < levels.size(); ++L) {
    for (std::size_t i = 0; i < levels[L].size(); ++i) {
      level_of[levels[L][i]] = L;
      row_in_level[levels[L][i]] = i;
    }
  }
  std::vector<nn::Var> level_mat(levels.size());
  std::vector<nn::Var> f_mat(levels.size());
  auto f_of_level = [&](std::size_t S) {
    if (!f_mat[S].valid()) f_mat[S] = f_node_.apply(tape, level_mat[S]);
    return f_mat[S];
  };
  level_mat[0] = tape.rows(P, levels[0]);
  for (std::size_t L = 1; L < levels.size(); ++L) {
    const auto& level = levels[L];
    std::vector<std::size_t> seg_dst;
    std::vector<std::vector<std::size_t>> src_rows(L), src_pos(L);
    std::size_t n_children = 0;
    for (std::size_t i = 0; i < level.size(); ++i) {
      for (int u : graph.children[level[i]]) {
        const std::size_t uu = static_cast<std::size_t>(u);
        const std::size_t S = level_of[uu];
        src_rows[S].push_back(row_in_level[uu]);
        src_pos[S].push_back(n_children);
        seg_dst.push_back(i);
        ++n_children;
      }
    }
    std::vector<nn::Var> parts;
    for (std::size_t S = 0; S < L; ++S) {
      if (src_rows[S].empty()) continue;
      const nn::Var got = tape.rows(f_of_level(S), std::move(src_rows[S]));
      parts.push_back(
          tape.segment_sum_rows(got, std::move(src_pos[S]), n_children));
    }
    const nn::Var F = parts.size() == 1 ? parts[0] : tape.addn(parts);
    nn::Var agg = tape.segment_sum_rows(F, std::move(seg_dst), level.size());
    if (config_.two_level_aggregation) agg = g_node_.apply(tape, agg);
    level_mat[L] = tape.add(agg, tape.rows(P, level));
  }

  std::vector<nn::Var> emb(n);
  for (std::size_t L = 0; L < levels.size(); ++L) {
    for (std::size_t i = 0; i < levels[L].size(); ++i) {
      emb[levels[L][i]] = tape.row(level_mat[L], i);
    }
  }
  const nn::Var E = tape.concat_rows(emb);
  if (proj_mat) *proj_mat = P;
  if (node_rows) *node_rows = std::move(emb);
  return E;
}

std::vector<nn::Var> GraphEmbedding::embed_nodes_reference(
    nn::Tape& tape, const JobGraph& graph,
    std::vector<nn::Var>* proj_out) const {
  const std::size_t n = graph.features.rows();
  const nn::Var x = tape.constant(graph.features);
  std::vector<nn::Var> proj(n), emb(n);
  for (std::size_t v = 0; v < n; ++v) {
    proj[v] = proj_.apply(tape, tape.row(x, v));
  }
  // Reverse topological sweep: every node's children are embedded before the
  // node itself, which realizes the leaves-to-roots message passing of
  // Fig. 5a in a single pass.
  for (auto it = graph.topo.rbegin(); it != graph.topo.rend(); ++it) {
    const std::size_t v = static_cast<std::size_t>(*it);
    const auto& kids = graph.children[v];
    if (kids.empty()) {
      emb[v] = proj[v];
      continue;
    }
    std::vector<nn::Var> messages;
    messages.reserve(kids.size());
    for (int u : kids) {
      messages.push_back(f_node_.apply(tape, emb[static_cast<std::size_t>(u)]));
    }
    nn::Var agg = tape.addn(messages);
    if (config_.two_level_aggregation) agg = g_node_.apply(tape, agg);
    emb[v] = tape.add(agg, proj[v]);
  }
  if (proj_out) *proj_out = std::move(proj);
  return emb;
}

std::vector<nn::Var> GraphEmbedding::embed_nodes(
    nn::Tape& tape, const JobGraph& graph,
    std::vector<nn::Var>* proj_out) const {
  if (!config_.batched) return embed_nodes_reference(tape, graph, proj_out);
  nn::Var proj_mat;
  std::vector<nn::Var> rows;
  embed_nodes_batched(tape, graph, &proj_mat, &rows);
  if (proj_out) {
    const std::size_t n = graph.features.rows();
    proj_out->resize(n);
    for (std::size_t v = 0; v < n; ++v) (*proj_out)[v] = tape.row(proj_mat, v);
  }
  return rows;
}

Embeddings GraphEmbedding::embed(nn::Tape& tape,
                                 const std::vector<JobGraph>& graphs) const {
  assert(!graphs.empty());
  Embeddings out;
  out.node_mat.reserve(graphs.size());
  out.proj_mat.reserve(graphs.size());
  out.node_emb.reserve(graphs.size());
  out.proj.reserve(graphs.size());
  out.job_emb.reserve(graphs.size());

  if (!config_.batched) {
    // Reference path: the original one-node-at-a-time implementation at every
    // level (the "before" of the latency benchmarks); the batched matrices
    // are assembled afterwards so both paths expose the same interface.
    std::vector<nn::Var> job_rows;
    for (const JobGraph& g : graphs) {
      std::vector<nn::Var> proj;
      out.node_emb.push_back(embed_nodes_reference(tape, g, &proj));
      out.proj.push_back(std::move(proj));
      std::vector<nn::Var> messages;
      messages.reserve(out.node_emb.back().size());
      for (std::size_t v = 0; v < out.node_emb.back().size(); ++v) {
        const nn::Var joined =
            tape.concat_cols({out.proj.back()[v], out.node_emb.back()[v]});
        messages.push_back(f_job_.apply(tape, joined));
      }
      nn::Var agg = tape.addn(messages);
      if (config_.two_level_aggregation) agg = g_job_.apply(tape, agg);
      job_rows.push_back(agg);
      out.node_mat.push_back(tape.concat_rows(out.node_emb.back()));
      out.proj_mat.push_back(tape.concat_rows(out.proj.back()));
    }
    std::vector<nn::Var> messages;
    messages.reserve(job_rows.size());
    for (const nn::Var& y : job_rows) {
      messages.push_back(f_glob_.apply(tape, y));
    }
    nn::Var agg = tape.addn(messages);
    if (config_.two_level_aggregation) agg = g_glob_.apply(tape, agg);
    out.global_emb = agg;
    out.job_emb = std::move(job_rows);
    out.job_mat = tape.concat_rows(out.job_emb);
    return out;
  }

  // Per-graph aggregates, stacked so g' / f'' / g'' each run once over all
  // jobs instead of once per job.
  std::vector<nn::Var> job_aggs;
  job_aggs.reserve(graphs.size());

  for (const JobGraph& g : graphs) {
    nn::Var P;
    std::vector<nn::Var> node_rows;
    const nn::Var E = embed_nodes_batched(tape, g, &P, &node_rows);
    out.node_mat.push_back(E);
    out.proj_mat.push_back(P);
    out.node_emb.push_back(std::move(node_rows));
    // proj row views are left empty on the batched path: no batched consumer
    // reads them (slice proj_mat instead), and materializing n views per
    // graph would tax every scheduling event.
    out.proj.emplace_back();

    // Per-job summary: the DAG-level summary node takes every node of the
    // DAG as a child (Fig. 5b squares); its inputs are [proj(x_v), e_v],
    // batched as one n x 2d matrix through f'.
    const nn::Var joined = tape.concat_cols({P, E});
    job_aggs.push_back(tape.sum_rows(f_job_.apply(tape, joined)));
  }

  nn::Var job_stack = tape.concat_rows(job_aggs);
  if (config_.two_level_aggregation) job_stack = g_job_.apply(tape, job_stack);
  out.job_mat = job_stack;
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    out.job_emb.push_back(tape.row(out.job_mat, g));
  }

  // Global summary: the cluster-level node takes every DAG summary as a
  // child (Fig. 5b triangle); f'' runs once over the stacked job rows.
  nn::Var agg = tape.sum_rows(f_glob_.apply(tape, out.job_mat));
  if (config_.two_level_aggregation) agg = g_glob_.apply(tape, agg);
  out.global_emb = agg;
  return out;
}

EpisodeEmbeddings GraphEmbedding::embed_episode(
    nn::Tape& tape, const std::vector<const JobGraph*>& graphs,
    const std::vector<std::size_t>& event_of_graph,
    std::size_t num_events) const {
  assert(!graphs.empty());
  assert(event_of_graph.size() == graphs.size());
  const std::size_t G = graphs.size();
  const std::size_t fd = static_cast<std::size_t>(config_.feat_dim);

  EpisodeEmbeddings out;
  out.node_offset.resize(G);
  std::size_t total = 0;
  for (std::size_t g = 0; g < G; ++g) {
    out.node_offset[g] = total;
    total += graphs[g]->features.rows();
  }
  std::vector<std::size_t> graph_of(total);  // node row -> graph index
  for (std::size_t g = 0; g < G; ++g) {
    std::fill(graph_of.begin() + static_cast<std::ptrdiff_t>(out.node_offset[g]),
              graph_of.begin() +
                  static_cast<std::ptrdiff_t>(out.node_offset[g] +
                                              graphs[g]->features.rows()),
              g);
  }

  // One feature lift for every node of every event.
  nn::Matrix X(total, fd);
  for (std::size_t g = 0; g < G; ++g) {
    std::copy(graphs[g]->features.raw().begin(), graphs[g]->features.raw().end(),
              X.raw().begin() +
                  static_cast<std::ptrdiff_t>(out.node_offset[g] * fd));
  }
  out.feat_all = tape.constant(std::move(X));
  const nn::Var P = proj_.apply(tape, out.feat_all);

  // Cross-graph levelization: depth is a per-graph property, so nodes of one
  // depth are independent across every graph and every event — each level of
  // the leaves-to-roots sweep runs as ONE f/g application for the whole
  // episode.
  std::vector<std::vector<std::size_t>> glevels;  // level -> global node ids
  std::vector<std::size_t> level_of(total), row_in_level(total);
  for (std::size_t g = 0; g < G; ++g) {
    const auto levels = levelize(*graphs[g]);
    if (glevels.size() < levels.size()) glevels.resize(levels.size());
    for (std::size_t L = 0; L < levels.size(); ++L) {
      for (std::size_t v : levels[L]) {
        const std::size_t gid = out.node_offset[g] + v;
        level_of[gid] = L;
        row_in_level[gid] = glevels[L].size();
        glevels[L].push_back(gid);
      }
    }
  }

  std::vector<nn::Var> level_mat(glevels.size());
  // f(e_u) depends only on the child u, so it is computed ONCE per node (one
  // f_node pass over each level's rows, built lazily) and its rows are
  // gathered per edge — the same dedup embed_nodes_batched applies per graph,
  // here amortized across every graph of every event. The gathered rows are
  // bit-identical to per-edge evaluation.
  std::vector<nn::Var> f_mat(glevels.size());
  auto f_of_level = [&](std::size_t S) {
    if (!f_mat[S].valid()) f_mat[S] = f_node_.apply(tape, level_mat[S]);
    return f_mat[S];
  };
  level_mat[0] = tape.rows(P, glevels[0]);
  for (std::size_t L = 1; L < glevels.size(); ++L) {
    const auto& level = glevels[L];
    // Messages in (destination, child) order. Children live in earlier
    // level matrices; gather per source level and scatter into place (each
    // position is written exactly once, so the segment-sum is a pure
    // interleave and the values match a direct row gather bit for bit).
    std::vector<std::size_t> seg_dst;
    std::vector<std::vector<std::size_t>> src_rows(L), src_pos(L);
    std::size_t n_children = 0;
    for (std::size_t i = 0; i < level.size(); ++i) {
      const std::size_t gid = level[i];
      const std::size_t g = graph_of[gid];
      const std::size_t v = gid - out.node_offset[g];
      for (int u : graphs[g]->children[v]) {
        const std::size_t ugid =
            out.node_offset[g] + static_cast<std::size_t>(u);
        const std::size_t S = level_of[ugid];
        src_rows[S].push_back(row_in_level[ugid]);
        src_pos[S].push_back(n_children);
        seg_dst.push_back(i);
        ++n_children;
      }
    }
    std::vector<nn::Var> parts;
    for (std::size_t S = 0; S < L; ++S) {
      if (src_rows[S].empty()) continue;
      const nn::Var got = tape.rows(f_of_level(S), std::move(src_rows[S]));
      parts.push_back(
          tape.segment_sum_rows(got, std::move(src_pos[S]), n_children));
    }
    const nn::Var F = parts.size() == 1 ? parts[0] : tape.addn(parts);
    nn::Var agg = tape.segment_sum_rows(F, std::move(seg_dst), level.size());
    if (config_.two_level_aggregation) agg = g_node_.apply(tape, agg);
    level_mat[L] = tape.add(agg, tape.rows(P, level));
  }

  // Restore (graph, node) row order for consumers: one gather through the
  // level-major stack.
  if (glevels.size() == 1) {
    out.node_all = level_mat[0];
  } else {
    std::vector<std::size_t> level_base(glevels.size(), 0);
    for (std::size_t L = 1; L < glevels.size(); ++L) {
      level_base[L] = level_base[L - 1] + glevels[L - 1].size();
    }
    std::vector<std::size_t> lm_row(total);
    for (std::size_t gid = 0; gid < total; ++gid) {
      lm_row[gid] = level_base[level_of[gid]] + row_in_level[gid];
    }
    out.node_all = tape.rows(tape.concat_rows(level_mat), std::move(lm_row));
  }

  // Job level: f' over [proj(x_v), e_v] of every node of the episode at once,
  // segment-summed per graph (same node order per graph as embed()).
  const nn::Var joined = tape.concat_cols({P, out.node_all});
  nn::Var job_stack =
      tape.segment_sum_rows(f_job_.apply(tape, joined), std::move(graph_of), G);
  if (config_.two_level_aggregation) job_stack = g_job_.apply(tape, job_stack);
  out.job_mat = job_stack;

  // Global level: f'' over every job row, segment-summed per event — one z
  // row per scheduling event.
  nn::Var agg = tape.segment_sum_rows(f_glob_.apply(tape, out.job_mat),
                                      event_of_graph, num_events);
  if (config_.two_level_aggregation) agg = g_glob_.apply(tape, agg);
  out.global_mat = agg;
  return out;
}

nn::ParamSet GraphEmbedding::param_set() {
  nn::ParamSet set;
  set.add(proj_.params());
  set.add(f_node_.params());
  set.add(g_node_.params());
  set.add(f_job_.params());
  set.add(g_job_.params());
  set.add(f_glob_.params());
  set.add(g_glob_.params());
  return set;
}

}  // namespace decima::gnn
