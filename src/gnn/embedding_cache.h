// Incremental embedding cache (docs/incremental_embedding.md).
//
// Between two consecutive scheduling events only a handful of node features
// change (task counts, executor counts), yet the agent re-embeds every job
// DAG from scratch. This cache keeps the numeric forward activations of the
// last embedding per (env, job) — proj(x_v), e_v, f(e_v), f'([proj, e_v]),
// the job summary y and f''(y) — and lets GraphEmbedding::embed_cached /
// embed_episode_cached re-evaluate only nodes whose feature rows changed,
// plus their ancestors in message flow. Clean rows are gathered from the
// cache; job and global summaries are re-reduced by segment-sum over the
// mixed cached/fresh rows in the same order as the full batched pass, so the
// result is numerically identical to GraphEmbedding::embed.
//
// Dirty tracking is layered, cheapest first:
//   1. parameter version — a ParamSet::version() mismatch (Adam step,
//      checkpoint load, snapshot swap) clears the whole cache;
//   2. epoch fast path — if a graph's (env_uid, job_epoch, global_epoch)
//      match the entry, the simulator guarantees no feature input changed
//      and the entry is reused without looking at the features;
//   3. per-row feature diff — otherwise rows are compared against the
//      entry's copy; the diff is the ground truth, so the cache stays exact
//      even for graphs with no epoch information (env_uid < 0).
//
// Inference-only: training replay differentiates through the embedding, so
// it must rebuild the tape every time (embed_episode); a numeric cache has
// no gradient to offer. One cache serves one stream of events — the agent
// owns one for schedule(), each served session owns one for decide() — and
// must never be shared across threads without external ordering.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "nn/matrix.h"

namespace decima::gnn {

class GraphEmbedding;

struct EmbeddingCacheStats {
  std::uint64_t events = 0;            // embed_cached calls served
  std::uint64_t graphs_seen = 0;       // per-event per-graph refreshes
  std::uint64_t graphs_reused = 0;     // fully clean: no MLP work at all
  std::uint64_t graphs_rebuilt = 0;    // new job / structure change: full
  std::uint64_t epoch_fast_hits = 0;   // clean hits that skipped the diff
  std::uint64_t diff_refreshes = 0;    // diff path that re-embedded rows
  std::uint64_t nodes_total = 0;       // nodes presented for embedding
  std::uint64_t nodes_recomputed = 0;  // nodes actually re-embedded
  std::uint64_t invalidations = 0;     // full clears (parameter changes)
};

class EmbeddingCache {
 public:
  // Drops every entry (keeps the stats). Called automatically on parameter
  // version changes; call it manually after mutating Param values directly.
  void invalidate();

  // Clears the cache when `version` differs from the version the cached
  // activations were computed under (new Adam step, freshly loaded
  // checkpoint, different policy snapshot behind the same session).
  void ensure_param_version(std::uint64_t version);

  // Drops entries untouched for several events once the map outgrows the
  // live graph set (finished/removed jobs in a long session).
  void sweep(std::size_t live_graphs);

  const EmbeddingCacheStats& stats() const { return stats_; }
  std::size_t size() const { return entries_.size(); }

  // Hit/miss/dirty-row accounting, the ground truth the serving plane and
  // the ROADMAP cache refactor read (docs/observability.md). A hit reused
  // the entry with no MLP work (epoch fast path or an empty feature diff);
  // a miss did some — a full rebuild or a diff-path partial re-embed.
  std::uint64_t hits() const { return stats_.graphs_reused; }
  std::uint64_t misses() const {
    return stats_.graphs_seen - stats_.graphs_reused;
  }
  // Node rows actually re-embedded (dirty closure over message flow).
  std::uint64_t dirty_rows() const { return stats_.nodes_recomputed; }
  // hits() / graphs seen; 0 before the first refresh.
  double hit_rate() const {
    return stats_.graphs_seen == 0
               ? 0.0
               : static_cast<double>(stats_.graphs_reused) /
                     static_cast<double>(stats_.graphs_seen);
  }

 private:
  friend class GraphEmbedding;

  // Cached activations of one job DAG. Matrices are n x emb_dim in node
  // order unless noted; `feats` / `children` pin the inputs they were
  // computed from.
  struct Entry {
    std::uint64_t job_epoch = 0;
    std::uint64_t global_epoch = 0;
    bool has_epochs = false;  // epoch fast path armed (env-produced graphs)

    nn::Matrix feats;                        // features last embedded
    std::vector<std::vector<int>> children;  // structure pin
    std::vector<int> topo;                   // parents before children
    // Levelization (computed once per structure): level 0 = leaves, each
    // node's children at strictly lower levels — identical to the grouping
    // GraphEmbedding::embed_nodes_batched sweeps by.
    std::vector<std::vector<std::size_t>> levels;

    nn::Matrix P;   // proj(x_v)
    nn::Matrix E;   // e_v  (Eq. 1)
    nn::Matrix F;   // f(e_v); row v meaningful only while f_valid[v]
    std::vector<char> f_valid;
    nn::Matrix FJ;  // f'([proj(x_v), e_v])
    nn::Matrix y;   // 1 x d job summary g'(Σ_v FJ_v)
    nn::Matrix fg;  // 1 x d f''(y)

    std::uint64_t last_used = 0;  // event clock, for garbage collection
  };

  std::map<std::pair<std::int64_t, int>, Entry> entries_;  // (env_uid, job)
  std::uint64_t param_version_ = 0;
  bool has_param_version_ = false;
  std::uint64_t event_clock_ = 0;
  EmbeddingCacheStats stats_;
};

}  // namespace decima::gnn
