// The incremental refresh behind GraphEmbedding::embed_cached (see
// embedding_cache.h for the dirty-tracking contract). Everything here is
// tape-free numeric evaluation through Mlp::forward, whose per-row
// arithmetic is bit-identical to the Tape::linear forward the full batched
// pass runs — so a cached event and a full re-embedding agree exactly, not
// just within tolerance.
#include "gnn/embedding_cache.h"

#include <algorithm>
#include <cassert>

#include "gnn/graph_embedding.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace decima::gnn {

namespace {

// Process-wide cache counters (docs/observability.md): the per-cache
// EmbeddingCacheStats stay the exact per-session/per-agent ledger; these
// aggregate across every cache in the process so a serve run's global hit
// rate is one registry read. Registered once, recording is a relaxed
// atomic, and a no-op while metrics are disabled.
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& epoch_fast_hits;
  obs::Counter& diff_refreshes;
  obs::Counter& dirty_rows;
  obs::Counter& invalidations;

  static CacheMetrics& get() {
    static CacheMetrics* m = new CacheMetrics{
        obs::Registry::instance().counter(obs::names::kCacheGraphHits),
        obs::Registry::instance().counter(obs::names::kCacheGraphMisses),
        obs::Registry::instance().counter(obs::names::kCacheEpochFastHits),
        obs::Registry::instance().counter(obs::names::kCacheDiffRefreshes),
        obs::Registry::instance().counter(obs::names::kCacheDirtyRows),
        obs::Registry::instance().counter(obs::names::kCacheInvalidations)};
    return *m;
  }
};

// out row i = src row rows[i].
nn::Matrix gather_rows(const nn::Matrix& src,
                       const std::vector<std::size_t>& rows) {
  nn::Matrix out(rows.size(), src.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::copy(src.data() + rows[i] * src.cols(),
              src.data() + (rows[i] + 1) * src.cols(),
              out.data() + i * src.cols());
  }
  return out;
}

// dst row rows[i] = src row i.
void scatter_rows(const nn::Matrix& src, const std::vector<std::size_t>& rows,
                  nn::Matrix& dst) {
  assert(src.rows() == rows.size() && src.cols() == dst.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::copy(src.data() + i * src.cols(),
              src.data() + (i + 1) * src.cols(),
              dst.data() + rows[i] * dst.cols());
  }
}

}  // namespace

void EmbeddingCache::invalidate() {
  entries_.clear();
  ++stats_.invalidations;
  CacheMetrics::get().invalidations.inc();
}

void EmbeddingCache::ensure_param_version(std::uint64_t version) {
  if (has_param_version_ && param_version_ == version) return;
  if (has_param_version_) invalidate();
  has_param_version_ = true;
  param_version_ = version;
}

void EmbeddingCache::sweep(std::size_t live_graphs) {
  // Entries of finished/stale jobs are simply no longer refreshed; drop
  // anything untouched for a while once the map outgrows the live set, so a
  // long-lived serving session cannot accumulate unbounded state.
  if (entries_.size() <= 2 * live_graphs + 8) return;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.last_used + 8 < event_clock_) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void GraphEmbedding::update_cache_entry(
    const JobGraph& graph, const std::vector<std::size_t>& feat_dirty,
    EmbeddingCache::Entry& e, EmbeddingCacheStats& stats) const {
  const std::size_t n = graph.features.rows();
  const std::size_t d = static_cast<std::size_t>(config_.emb_dim);

  // Dirty closure over message flow: Eq. 1 feeds every node its children's
  // embeddings, so dirtiness propagates leaves -> roots. Reverse topological
  // order visits each node after all of its children.
  std::vector<char> dirty(n, 0);
  for (std::size_t v : feat_dirty) dirty[v] = 1;
  for (auto it = e.topo.rbegin(); it != e.topo.rend(); ++it) {
    const std::size_t v = static_cast<std::size_t>(*it);
    if (dirty[v]) continue;
    for (int u : e.children[v]) {
      if (dirty[static_cast<std::size_t>(u)]) {
        dirty[v] = 1;
        break;
      }
    }
  }

  // proj(x_v) depends only on the node's own features: one lift over the
  // feature-dirty rows, which also become the new diff baseline.
  {
    nn::Matrix xs = gather_rows(graph.features, feat_dirty);
    scatter_rows(xs, feat_dirty, e.feats);
    scatter_rows(proj_.forward(xs), feat_dirty, e.P);
  }

  // Leaves-to-roots sweep over the dirty rows of each level. Clean children
  // contribute their cached f(e_u) row; children re-embedded at a lower
  // level had f_valid cleared there and are recomputed in one f pass per
  // level. Message order per node is children order — the same order the
  // full pass's segment-sum adds them in.
  std::size_t recomputed = 0;
  for (std::size_t L = 0; L < e.levels.size(); ++L) {
    std::vector<std::size_t> dirty_level;
    for (std::size_t v : e.levels[L]) {
      if (dirty[v]) dirty_level.push_back(v);
    }
    if (dirty_level.empty()) continue;
    recomputed += dirty_level.size();
    if (L == 0) {
      // Leaves have no messages: e_v = proj(x_v).
      scatter_rows(gather_rows(e.P, dirty_level), dirty_level, e.E);
    } else {
      std::vector<std::size_t> need;  // children whose f row is stale
      for (std::size_t v : dirty_level) {
        for (int u : e.children[v]) {
          const std::size_t uu = static_cast<std::size_t>(u);
          if (!e.f_valid[uu]) {
            e.f_valid[uu] = 1;  // marks queued: dedups shared children
            need.push_back(uu);
          }
        }
      }
      if (!need.empty()) {
        scatter_rows(f_node_.forward(gather_rows(e.E, need)), need, e.F);
      }
      nn::Matrix agg(dirty_level.size(), d);
      for (std::size_t i = 0; i < dirty_level.size(); ++i) {
        for (int u : e.children[dirty_level[i]]) {
          const std::size_t uu = static_cast<std::size_t>(u);
          for (std::size_t c = 0; c < d; ++c) agg(i, c) += e.F(uu, c);
        }
      }
      if (config_.two_level_aggregation) agg = g_node_.forward(agg);
      for (std::size_t i = 0; i < dirty_level.size(); ++i) {
        const std::size_t v = dirty_level[i];
        for (std::size_t c = 0; c < d; ++c) e.E(v, c) = agg(i, c) + e.P(v, c);
      }
    }
    // These nodes' embeddings changed; their cached f rows are now stale.
    for (std::size_t v : dirty_level) e.f_valid[v] = 0;
  }
  stats.nodes_recomputed += recomputed;
  CacheMetrics::get().dirty_rows.inc(recomputed);

  // Job level: f'([proj(x_v), e_v]) for every changed node, then the summary
  // re-reduced over ALL rows in node order — the same summation order as the
  // full pass's sum_rows, so mixing cached and fresh rows is exact.
  std::vector<std::size_t> dirty_nodes;
  for (std::size_t v = 0; v < n; ++v) {
    if (dirty[v]) dirty_nodes.push_back(v);
  }
  {
    nn::Matrix joined(dirty_nodes.size(), 2 * d);
    for (std::size_t i = 0; i < dirty_nodes.size(); ++i) {
      const std::size_t v = dirty_nodes[i];
      for (std::size_t c = 0; c < d; ++c) {
        joined(i, c) = e.P(v, c);
        joined(i, d + c) = e.E(v, c);
      }
    }
    scatter_rows(f_job_.forward(joined), dirty_nodes, e.FJ);
  }
  nn::Matrix agg(1, d);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t c = 0; c < d; ++c) agg(0, c) += e.FJ(v, c);
  }
  e.y = config_.two_level_aggregation ? g_job_.forward(agg) : std::move(agg);
  e.fg = f_glob_.forward(e.y);
}

const EmbeddingCache::Entry& GraphEmbedding::refresh_cache_entry(
    const JobGraph& graph, EmbeddingCache& cache) const {
  EmbeddingCache::Entry& e =
      cache.entries_[{graph.env_uid, graph.env_job}];
  e.last_used = cache.event_clock_;
  ++cache.stats_.graphs_seen;
  const std::size_t n = graph.features.rows();
  const std::size_t d = static_cast<std::size_t>(config_.emb_dim);
  cache.stats_.nodes_total += n;

  const bool structure_matches = !e.feats.empty() && e.feats.rows() == n &&
                                 e.feats.cols() == graph.features.cols() &&
                                 e.children == graph.children;
  if (!structure_matches) {
    // New job behind this key (or a different graph recycling it): rebuild
    // from scratch — the shared update path with every node feature-dirty.
    ++cache.stats_.graphs_rebuilt;
    CacheMetrics::get().misses.inc();
    e = EmbeddingCache::Entry{};
    e.last_used = cache.event_clock_;
    e.children = graph.children;
    e.topo = graph.topo;
    e.levels = detail::levelize(graph);
    e.feats = nn::Matrix(n, graph.features.cols());
    e.P = nn::Matrix(n, d);
    e.E = nn::Matrix(n, d);
    e.F = nn::Matrix(n, d);
    e.f_valid.assign(n, 0);
    e.FJ = nn::Matrix(n, d);
    std::vector<std::size_t> all(n);
    for (std::size_t v = 0; v < n; ++v) all[v] = v;
    update_cache_entry(graph, all, e, cache.stats_);
  } else if (e.has_epochs && graph.env_uid >= 0 &&
             e.job_epoch == graph.job_epoch &&
             e.global_epoch == graph.global_epoch) {
    // The simulator's mutation hooks guarantee no feature input changed.
    ++cache.stats_.graphs_reused;
    ++cache.stats_.epoch_fast_hits;
    CacheMetrics::get().hits.inc();
    CacheMetrics::get().epoch_fast_hits.inc();
    return e;
  } else {
    std::vector<std::size_t> feat_dirty;
    for (std::size_t v = 0; v < n; ++v) {
      const double* fresh = graph.features.data() + v * graph.features.cols();
      const double* base = e.feats.data() + v * e.feats.cols();
      if (!std::equal(fresh, fresh + graph.features.cols(), base)) {
        feat_dirty.push_back(v);
      }
    }
    if (feat_dirty.empty()) {
      ++cache.stats_.graphs_reused;
      CacheMetrics::get().hits.inc();
    } else {
      ++cache.stats_.diff_refreshes;
      CacheMetrics::get().misses.inc();
      CacheMetrics::get().diff_refreshes.inc();
      update_cache_entry(graph, feat_dirty, e, cache.stats_);
    }
  }
  e.has_epochs = graph.env_uid >= 0;
  e.job_epoch = graph.job_epoch;
  e.global_epoch = graph.global_epoch;
  return e;
}

Embeddings GraphEmbedding::embed_cached(nn::Tape& tape,
                                        const std::vector<JobGraph>& graphs,
                                        EmbeddingCache& cache) const {
  assert(!graphs.empty());
  ++cache.event_clock_;
  ++cache.stats_.events;
  const std::size_t d = static_cast<std::size_t>(config_.emb_dim);

  Embeddings out;
  out.node_mat.reserve(graphs.size());
  out.proj_mat.reserve(graphs.size());
  nn::Matrix job_mat(graphs.size(), d);
  nn::Matrix glob_sum(1, d);
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    const EmbeddingCache::Entry& e = refresh_cache_entry(graphs[g], cache);
    out.node_mat.push_back(tape.constant(e.E));
    out.proj_mat.push_back(tape.constant(e.P));
    // Per-node row views stay empty on the cached path (header contract).
    out.node_emb.emplace_back();
    out.proj.emplace_back();
    for (std::size_t c = 0; c < d; ++c) {
      job_mat(g, c) = e.y(0, c);
      glob_sum(0, c) += e.fg(0, c);  // graph order — matches sum_rows
    }
  }
  out.job_mat = tape.constant(std::move(job_mat));
  out.global_emb = tape.constant(config_.two_level_aggregation
                                     ? g_glob_.forward(glob_sum)
                                     : std::move(glob_sum));
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    out.job_emb.push_back(tape.row(out.job_mat, g));
  }
  cache.sweep(graphs.size());
  return out;
}

EpisodeEmbeddings GraphEmbedding::embed_episode_cached(
    nn::Tape& tape, const std::vector<const JobGraph*>& graphs,
    const std::vector<std::size_t>& event_of_graph, std::size_t num_events,
    const std::vector<EmbeddingCache*>& caches) const {
  assert(!graphs.empty());
  assert(event_of_graph.size() == graphs.size());
  assert(caches.size() == num_events);
  const std::size_t G = graphs.size();
  const std::size_t d = static_cast<std::size_t>(config_.emb_dim);
  const std::size_t fd = static_cast<std::size_t>(config_.feat_dim);

  // Sessions without a caller-provided cache run through a scratch cache:
  // a full compute whose entries die with this call.
  EmbeddingCache scratch;
  std::vector<EmbeddingCache*> per_event(num_events);
  std::vector<std::size_t> live(num_events, 0);
  for (std::size_t t = 0; t < num_events; ++t) {
    per_event[t] = caches[t] ? caches[t] : &scratch;
    ++per_event[t]->event_clock_;
    ++per_event[t]->stats_.events;
  }

  EpisodeEmbeddings out;
  out.node_offset.resize(G);
  std::size_t total = 0;
  for (std::size_t g = 0; g < G; ++g) {
    out.node_offset[g] = total;
    total += graphs[g]->features.rows();
  }
  nn::Matrix X(total, fd);
  nn::Matrix node_all(total, d);
  nn::Matrix job_mat(G, d);
  nn::Matrix glob_sum(num_events, d);
  for (std::size_t g = 0; g < G; ++g) {
    const std::size_t t = event_of_graph[g];
    ++live[t];
    std::copy(graphs[g]->features.raw().begin(),
              graphs[g]->features.raw().end(),
              X.raw().begin() +
                  static_cast<std::ptrdiff_t>(out.node_offset[g] * fd));
    const EmbeddingCache::Entry& e =
        refresh_cache_entry(*graphs[g], *per_event[t]);
    std::copy(e.E.raw().begin(), e.E.raw().end(),
              node_all.raw().begin() +
                  static_cast<std::ptrdiff_t>(out.node_offset[g] * d));
    for (std::size_t c = 0; c < d; ++c) {
      job_mat(g, c) = e.y(0, c);
      // Graphs of one event are contiguous and ascending, so this adds the
      // event's f''(y_i) rows in the same order embed_episode's per-event
      // segment-sum does.
      glob_sum(t, c) += e.fg(0, c);
    }
  }
  out.feat_all = tape.constant(std::move(X));
  out.node_all = tape.constant(std::move(node_all));
  out.job_mat = tape.constant(std::move(job_mat));
  out.global_mat = tape.constant(config_.two_level_aggregation
                                     ? g_glob_.forward(glob_sum)
                                     : std::move(glob_sum));
  for (std::size_t t = 0; t < num_events; ++t) {
    if (caches[t]) caches[t]->sweep(live[t]);
  }
  return out;
}

}  // namespace decima::gnn
