#include "metrics/experiment.h"

namespace decima::metrics {

RunResult run_episode(sim::ClusterEnv& env,
                      const std::vector<workload::ArrivingJob>& workload,
                      sim::Scheduler& sched, sim::Time until) {
  workload::load(env, workload);
  env.run(sched, until);
  RunResult r;
  r.avg_jct = env.avg_jct();
  r.makespan = env.makespan();
  r.jcts = env.jcts();
  r.jobs_completed = static_cast<int>(r.jcts.size());
  r.jobs_total = static_cast<int>(env.jobs().size());
  r.all_done = env.all_done();
  return r;
}

RunResult run_episode(const sim::EnvConfig& config,
                      const std::vector<workload::ArrivingJob>& workload,
                      sim::Scheduler& sched, sim::Time until) {
  sim::ClusterEnv env(config);
  return run_episode(env, workload, sched, until);
}

}  // namespace decima::metrics
