#include "metrics/timeseries.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace decima::metrics {

std::vector<double> concurrent_jobs_series(const sim::ClusterEnv& env,
                                           double step) {
  const double end = std::max(env.makespan(), env.now());
  std::vector<double> out;
  if (step <= 0.0 || end <= 0.0) return out;
  const auto& jobs = env.jobs();
  const int n = static_cast<int>(std::ceil(end / step)) + 1;
  out.assign(static_cast<std::size_t>(n), 0.0);
  for (const auto& job : jobs) {
    if (!job.arrived) continue;
    const double finish = job.done() ? job.finish : env.now();
    for (int i = 0; i < n; ++i) {
      const double t = i * step;
      if (t >= job.arrival && t < finish) out[static_cast<std::size_t>(i)] += 1.0;
    }
  }
  return out;
}

std::vector<double> mean_executors_per_job(const sim::ClusterEnv& env) {
  const auto& jobs = env.jobs();
  std::vector<double> busy_seconds(jobs.size(), 0.0);
  for (const auto& t : env.trace()) {
    busy_seconds[static_cast<std::size_t>(t.job)] += t.end - t.start;
  }
  std::vector<double> out(jobs.size(), 0.0);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const double jct = jobs[j].done() ? jobs[j].jct() : env.now() - jobs[j].arrival;
    out[j] = jct > 0 ? busy_seconds[j] / jct : 0.0;
  }
  return out;
}

std::vector<double> executed_work_per_job(const sim::ClusterEnv& env) {
  std::vector<double> out(env.jobs().size(), 0.0);
  for (std::size_t j = 0; j < env.jobs().size(); ++j) {
    out[j] = env.jobs()[j].executed_work;
  }
  return out;
}

std::vector<std::vector<int>> class_usage_per_job(const sim::ClusterEnv& env) {
  const std::size_t num_classes = env.executor_classes().size();
  std::vector<std::vector<int>> out(env.jobs().size(),
                                    std::vector<int>(num_classes, 0));
  const auto& executors = env.executors();
  for (const auto& t : env.trace()) {
    const int cls = executors[static_cast<std::size_t>(t.executor)].cls;
    out[static_cast<std::size_t>(t.job)][static_cast<std::size_t>(cls)] += 1;
  }
  return out;
}

std::string ascii_gantt(const sim::ClusterEnv& env, int width) {
  const double end = std::max(env.makespan(), 1e-9);
  const int rows = env.total_executors();
  std::vector<std::string> grid(static_cast<std::size_t>(rows),
                                std::string(static_cast<std::size_t>(width), '.'));
  for (const auto& t : env.trace()) {
    const int c0 = std::clamp(
        static_cast<int>(t.start / end * width), 0, width - 1);
    const int c1 = std::clamp(static_cast<int>(t.end / end * width), c0, width - 1);
    const char sym = static_cast<char>('A' + t.job % 26);
    for (int c = c0; c <= c1; ++c) {
      grid[static_cast<std::size_t>(t.executor)][static_cast<std::size_t>(c)] = sym;
    }
  }
  std::ostringstream os;
  for (const auto& row : grid) os << row << '\n';
  os << "(time 0.." << end << "s; letters = jobs, '.' = idle)\n";
  return os.str();
}

}  // namespace decima::metrics
