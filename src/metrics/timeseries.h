// Time-series and per-job analyses backing Fig. 10 / Fig. 12 / Fig. 20/21:
// concurrent-job counts over time, executor usage per job, executed-work
// inflation, and executor-class usage profiles.
#pragma once

#include <vector>

#include "sim/cluster_env.h"

namespace decima::metrics {

// Number of jobs in the system sampled every `step` seconds over [0, end].
std::vector<double> concurrent_jobs_series(const sim::ClusterEnv& env,
                                           double step);

// Mean number of executors each job held while it was active (executor-
// seconds / JCT), indexed by job.
std::vector<double> mean_executors_per_job(const sim::ClusterEnv& env);

// Executed work (inflated, from the trace) per job, indexed by job. Compare
// with JobSpec::total_work() to measure work inflation (Fig. 10e).
std::vector<double> executed_work_per_job(const sim::ClusterEnv& env);

// For multi-resource experiments: the number of tasks each job ran on each
// executor class; result[job][class].
std::vector<std::vector<int>> class_usage_per_job(const sim::ClusterEnv& env);

// Renders the executor-by-time occupancy as ASCII art (Fig. 3 / Fig. 13
// schedule visualizations): one row per executor, one column per time step;
// letters identify jobs, '.' is idle.
std::string ascii_gantt(const sim::ClusterEnv& env, int width = 100);

}  // namespace decima::metrics
