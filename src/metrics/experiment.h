// One-stop experiment runner: builds an environment, loads a workload, runs a
// scheduler, and returns the metrics every bench/test consumes.
//
// Thread-safety: stateless free functions; safe from concurrent threads as
// long as each call owns its env/scheduler (the rollout-worker pattern,
// docs/concurrency.md) — which is why no util/sync.h lock lives here.
#pragma once

#include <vector>

#include "sim/cluster_env.h"
#include "sim/scheduler.h"
#include "workload/arrivals.h"

namespace decima::metrics {

struct RunResult {
  double avg_jct = 0.0;
  double makespan = 0.0;
  int jobs_completed = 0;
  int jobs_total = 0;
  std::vector<double> jcts;
  bool all_done = false;
};

// Runs one full episode (until all jobs complete or `until` simulated
// seconds elapse) and summarizes it.
RunResult run_episode(const sim::EnvConfig& config,
                      const std::vector<workload::ArrivingJob>& workload,
                      sim::Scheduler& sched, sim::Time until = sim::kInfTime);

// Same, but also hands back the environment for trace-level analysis.
RunResult run_episode(sim::ClusterEnv& env,
                      const std::vector<workload::ArrivingJob>& workload,
                      sim::Scheduler& sched, sim::Time until = sim::kInfTime);

}  // namespace decima::metrics
