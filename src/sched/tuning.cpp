#include "sched/tuning.h"

#include "metrics/experiment.h"

namespace decima::sched {

std::vector<double> alpha_grid(double step) {
  std::vector<double> out;
  for (double a = -2.0; a <= 2.0 + 1e-9; a += step) out.push_back(a);
  return out;
}

namespace {

// Mean avg-JCT of a scheduler across episodes; incomplete jobs are charged
// their age so far, so unstable policies score poorly instead of vacuously.
double evaluate(const sim::EnvConfig& config,
                const std::vector<std::vector<workload::ArrivingJob>>& workloads,
                sim::Scheduler& sched) {
  double total = 0.0;
  for (const auto& w : workloads) {
    sim::ClusterEnv env(config);
    workload::load(env, w);
    env.run(sched);
    double jct_sum = 0.0;
    for (const auto& job : env.jobs()) {
      jct_sum += job.done() ? job.jct() : env.now() - job.arrival;
    }
    total += jct_sum / static_cast<double>(env.jobs().size());
  }
  return total / static_cast<double>(workloads.size());
}

}  // namespace

TuneResult tune_weighted_fair_alpha(
    const sim::EnvConfig& config,
    const std::vector<std::vector<workload::ArrivingJob>>& workloads,
    const std::vector<double>& grid) {
  TuneResult best;
  bool first = true;
  for (double alpha : grid) {
    WeightedFairScheduler sched(alpha);
    const double jct = evaluate(config, workloads, sched);
    if (first || jct < best.avg_jct) {
      best.alpha = alpha;
      best.avg_jct = jct;
      first = false;
    }
  }
  return best;
}

GrapheneTuneResult tune_graphene(
    const sim::EnvConfig& config,
    const std::vector<std::vector<workload::ArrivingJob>>& workloads) {
  GrapheneTuneResult best;
  bool first = true;
  for (double work_th : {0.2, 0.3, 0.5}) {
    for (double mem_th : {0.4, 0.6, 0.8}) {
      for (double alpha : {-1.5, -1.0, -0.5}) {
        GrapheneConfig c;
        c.work_threshold = work_th;
        c.mem_threshold = mem_th;
        c.alpha = alpha;
        GrapheneScheduler sched(c);
        const double jct = evaluate(config, workloads, sched);
        if (first || jct < best.avg_jct) {
          best.config = c;
          best.avg_jct = jct;
          first = false;
        }
      }
    }
  }
  return best;
}

}  // namespace decima::sched
