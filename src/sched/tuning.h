// Hyperparameter tuning for the heuristic baselines, as the paper does:
//  - the tuned weighted fair scheme sweeps alpha over {-2, -1.9, ..., 2}
//    (§7.1 (5)) and keeps the value with the best average JCT;
//  - Graphene* grid-searches its thresholds (Appendix F).
#pragma once

#include <vector>

#include "sched/heuristics.h"
#include "workload/arrivals.h"

namespace decima::sched {

struct TuneResult {
  double alpha = 0.0;
  double avg_jct = 0.0;
};

// The paper's alpha grid {-2.0, -1.9, ..., 2.0}.
std::vector<double> alpha_grid(double step = 0.1);

// Evaluates WeightedFairScheduler over `workloads` (each a full episode) for
// every alpha in `grid` and returns the best. `coarse` grids (e.g. step 0.5)
// keep bench runtimes small without changing the outcome (optimum ≈ -1).
TuneResult tune_weighted_fair_alpha(
    const sim::EnvConfig& config,
    const std::vector<std::vector<workload::ArrivingJob>>& workloads,
    const std::vector<double>& grid);

struct GrapheneTuneResult {
  GrapheneConfig config;
  double avg_jct = 0.0;
};

// Grid search over Graphene*'s work/memory thresholds and alpha.
GrapheneTuneResult tune_graphene(
    const sim::EnvConfig& config,
    const std::vector<std::vector<workload::ArrivingJob>>& workloads);

}  // namespace decima::sched
