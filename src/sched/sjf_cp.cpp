#include "sched/heuristics.h"

namespace decima::sched {

// Shortest-job-first critical-path heuristic (§7.1 baseline (2)): strictly
// prioritizes the job with the least total work, and within that job runs
// tasks from the next stage on its critical path.
Action SjfCpScheduler::schedule(const ClusterEnv& env) {
  const auto candidates = jobs_with_runnable_stages(env);
  int best = -1;
  double best_work = sim::kInfTime;
  for (int j : candidates) {
    const auto& job = env.jobs()[static_cast<std::size_t>(j)];
    const double w = job.spec.total_work();
    if (w < best_work) {
      best_work = w;
      best = j;
    }
  }
  if (best < 0) return Action::none();
  const NodeRef node = critical_path_stage(env, best);
  if (!node.valid()) return Action::none();
  Action a;
  a.node = node;
  a.limit = env.total_executors();  // SJF dedicates all slots to the next job
  a.exec_class = best_fit_class(
      env, env.jobs()[static_cast<std::size_t>(best)]
               .spec.stages[static_cast<std::size_t>(node.stage)]
               .mem_req);
  return a;
}

}  // namespace decima::sched
