// The seven baseline scheduling algorithms of §7.1:
//   (1) FIFO (Spark default),
//   (2) SJF-CP: shortest-job-first by total work, critical-path stage order,
//   (3) Fair: equal executor shares, round-robin over runnable stages,
//   (4) Naive weighted fair: shares proportional to total job work,
//   (5) Tuned weighted fair: shares ∝ T_i^α with α swept over [-2, 2],
//   (6) Tetris: greedy multi-resource packing by demand·availability,
//   (7) Graphene*: troublesome-node grouping + tuned-fair parallelism +
//       best-fit executor class (Appendix F adaptation).
//
// All of them implement sim::Scheduler, so they run against the exact same
// environment protocol as Decima.
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "sim/cluster_env.h"
#include "sim/scheduler.h"

namespace decima::sched {

using sim::Action;
using sim::ClusterEnv;
using sim::NodeRef;

// --- Shared helpers ----------------------------------------------------------

// Runnable stage of `job` with the highest critical-path value (the stage a
// critical-path-first policy works on next). Invalid if none.
NodeRef critical_path_stage(const ClusterEnv& env, int job);

// First runnable stage (lowest index — Spark's default enqueue order).
NodeRef first_runnable_stage(const ClusterEnv& env, int job);

// Round-robin runnable stage using a caller-maintained cursor.
NodeRef round_robin_stage(const ClusterEnv& env, int job, int& cursor);

// Executor class with the smallest memory that satisfies `mem_req` and has a
// free executor; -1 if none (or if the environment has one class).
int best_fit_class(const ClusterEnv& env, double mem_req);

// Jobs that have arrived, are unfinished, and have at least one runnable
// stage right now.
std::vector<int> jobs_with_runnable_stages(const ClusterEnv& env);

// --- (1) FIFO ----------------------------------------------------------------

class FifoScheduler : public sim::Scheduler {
 public:
  Action schedule(const ClusterEnv& env) override;
  std::string name() const override { return "FIFO"; }
};

// --- (2) SJF-CP -----------------------------------------------------------------

class SjfCpScheduler : public sim::Scheduler {
 public:
  Action schedule(const ClusterEnv& env) override;
  std::string name() const override { return "SJF-CP"; }
};

// --- (3)-(5) (weighted) fair ---------------------------------------------------
//
// alpha = 0  -> simple fair (equal shares)
// alpha = 1  -> naive weighted fair (shares ∝ total work)
// tuned      -> sweep alpha via tune_weighted_fair_alpha() (usually ≈ -1).
class WeightedFairScheduler : public sim::Scheduler {
 public:
  explicit WeightedFairScheduler(double alpha) : alpha_(alpha) {}
  void reset() override { cursors_.clear(); }
  Action schedule(const ClusterEnv& env) override;
  std::string name() const override;
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  std::vector<int> cursors_;  // per-job round-robin stage cursor
};

// --- (6) Tetris -----------------------------------------------------------------

class TetrisScheduler : public sim::Scheduler {
 public:
  Action schedule(const ClusterEnv& env) override;
  std::string name() const override { return "Tetris"; }
};

// --- (7) Graphene* ---------------------------------------------------------------

struct GrapheneConfig {
  // A stage is "troublesome" if it holds more than this fraction of its
  // job's work, or requests more than mem_threshold memory (Graphene §4.1's
  // long/resource-hungry criterion adapted to our executor classes).
  double work_threshold = 0.3;
  double mem_threshold = 0.5;
  // Parallelism-control exponent shared with the tuned weighted fair scheme.
  double alpha = -1.0;
};

class GrapheneScheduler : public sim::Scheduler {
 public:
  explicit GrapheneScheduler(GrapheneConfig config = {}) : config_(config) {}
  void reset() override { troublesome_.clear(); }
  Action schedule(const ClusterEnv& env) override;
  std::string name() const override { return "Graphene*"; }
  const GrapheneConfig& config() const { return config_; }

  // Exposed for tests: the troublesome-stage group of a job spec.
  static std::vector<int> troublesome_stages(const sim::JobSpec& spec,
                                             const GrapheneConfig& config);

 private:
  GrapheneConfig config_;
  // Lazily computed per job index.
  std::vector<std::optional<std::set<int>>> troublesome_;
};

}  // namespace decima::sched
