#include "sched/heuristics.h"

#include <algorithm>
#include <cmath>

namespace decima::sched {

// Graphene* (§7.1 baseline (7), Appendix F): an adaptation of Graphene
// [OSDI'16] to discrete executor classes.
//  - Troublesome nodes: stages that carry a large fraction of their job's
//    work or have a large memory request (Graphene §4.1's long/resource-
//    hungry criterion). Their priority is suppressed until the *whole*
//    troublesome group of the DAG is simultaneously runnable, so the group
//    gets scheduled together (Graphene's offline planning essence).
//  - Parallelism control: tuned weighted fair shares (T_i^alpha).
//  - Packing: best-fit executor class by memory.
std::vector<int> GrapheneScheduler::troublesome_stages(
    const sim::JobSpec& spec, const GrapheneConfig& config) {
  std::vector<int> out;
  const double total = std::max(spec.total_work(), 1e-9);
  for (std::size_t v = 0; v < spec.stages.size(); ++v) {
    const bool long_stage = spec.stages[v].work() / total > config.work_threshold;
    const bool hungry = spec.stages[v].mem_req > config.mem_threshold;
    if (long_stage || hungry) out.push_back(static_cast<int>(v));
  }
  return out;
}

Action GrapheneScheduler::schedule(const ClusterEnv& env) {
  const auto& jobs = env.jobs();
  troublesome_.resize(jobs.size());

  // Weighted fair targets, as in WeightedFairScheduler.
  std::vector<int> active;
  double total_weight = 0.0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (!jobs[j].arrived || jobs[j].done()) continue;
    active.push_back(static_cast<int>(j));
    total_weight +=
        std::pow(std::max(jobs[j].spec.total_work(), 1e-9), config_.alpha);
  }
  if (active.empty()) return Action::none();
  auto target = [&](int j) {
    const double w = std::pow(
        std::max(jobs[static_cast<std::size_t>(j)].spec.total_work(), 1e-9),
        config_.alpha);
    return std::max(1, static_cast<int>(std::floor(
                           env.total_executors() * w / std::max(total_weight, 1e-12))));
  };

  const auto runnable = env.runnable_nodes();
  if (runnable.empty()) return Action::none();

  // Classify candidates: a troublesome node is eligible only when its job's
  // entire troublesome group is currently runnable or already finished.
  auto group_ready = [&](int j) {
    auto& memo = troublesome_[static_cast<std::size_t>(j)];
    if (!memo) {
      const auto t = troublesome_stages(jobs[static_cast<std::size_t>(j)].spec, config_);
      memo.emplace(t.begin(), t.end());
    }
    for (int v : *memo) {
      const auto& st = jobs[static_cast<std::size_t>(j)].stages[static_cast<std::size_t>(v)];
      const bool finished_or_running = st.waiting == 0;
      if (!st.runnable() && !finished_or_running) return false;
    }
    return true;
  };
  auto is_troublesome = [&](const NodeRef& n) {
    auto& memo = troublesome_[static_cast<std::size_t>(n.job)];
    return memo && memo->count(n.stage) > 0;
  };

  // Choose among candidates: prefer jobs under their fair-share target with
  // the largest deficit; among a job's runnable stages prefer (a) eligible
  // troublesome groups (schedule them together), then (b) critical-path order.
  NodeRef best;
  double best_key = -1e18;
  int best_limit = 0;
  for (const NodeRef node : runnable) {
    const int j = node.job;
    const bool ready = group_ready(j);
    if (is_troublesome(node) && !ready) continue;  // suppressed
    const int tgt = target(j);
    const int cur = jobs[static_cast<std::size_t>(j)].executors;
    const double deficit =
        static_cast<double>(tgt - cur) / static_cast<double>(std::max(tgt, 1));
    const auto cp = jobs[static_cast<std::size_t>(j)].spec.critical_path();
    double key = deficit * 1e6 + cp[static_cast<std::size_t>(node.stage)];
    if (is_troublesome(node) && ready) key += 1e9;  // group goes together
    if (key > best_key) {
      best_key = key;
      best = node;
      best_limit = cur < tgt ? tgt : cur + env.free_executor_count();
    }
  }
  if (!best.valid()) {
    // Everything runnable is a suppressed troublesome node; fall back to the
    // critical-path choice so the cluster is not left idle.
    best = runnable[0];
    best_limit = jobs[static_cast<std::size_t>(best.job)].executors +
                 env.free_executor_count();
  }

  Action a;
  a.node = best;
  a.limit = best_limit;
  a.exec_class = best_fit_class(
      env, jobs[static_cast<std::size_t>(best.job)]
               .spec.stages[static_cast<std::size_t>(best.stage)]
               .mem_req);
  return a;
}

}  // namespace decima::sched
