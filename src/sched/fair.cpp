#include "sched/heuristics.h"

#include <algorithm>
#include <cmath>

namespace decima::sched {

// Weighted fair scheduling (§7.1 baselines (3)-(5)): each unfinished job i
// receives a share of the executors proportional to T_i^alpha, where T_i is
// the job's total work. alpha = 0 is the simple fair scheme, alpha = 1 the
// naive weighted fair one, and the tuned variant sweeps alpha (usually to
// ≈ -1, i.e. shares inversely proportional to job size). Within a job the
// scheduler round-robins over runnable stages to drain all branches
// concurrently. When a job cannot absorb its share, the spare executors are
// backfilled to other jobs (work conservation).
Action WeightedFairScheduler::schedule(const ClusterEnv& env) {
  const auto& jobs = env.jobs();
  cursors_.resize(jobs.size(), 0);

  // Shares are computed over all active (arrived, unfinished) jobs, whether
  // or not they have a runnable stage at this instant.
  std::vector<int> active;
  double total_weight = 0.0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (!jobs[j].arrived || jobs[j].done()) continue;
    active.push_back(static_cast<int>(j));
    total_weight += std::pow(std::max(jobs[j].spec.total_work(), 1e-9), alpha_);
  }
  if (active.empty() || total_weight <= 0.0) return Action::none();

  const auto runnable = jobs_with_runnable_stages(env);
  if (runnable.empty()) return Action::none();

  // Target allocation per job (at least 1 to avoid starvation).
  auto target = [&](int j) {
    const double w =
        std::pow(std::max(jobs[static_cast<std::size_t>(j)].spec.total_work(), 1e-9), alpha_);
    return std::max(
        1, static_cast<int>(std::floor(env.total_executors() * w / total_weight)));
  };

  // First pass: most-deficit job below its target.
  int best = -1;
  double best_deficit = 0.0;
  for (int j : runnable) {
    const int t = target(j);
    const int cur = jobs[static_cast<std::size_t>(j)].executors;
    const double deficit =
        static_cast<double>(t - cur) / static_cast<double>(std::max(t, 1));
    if (cur < t && deficit > best_deficit) {
      best_deficit = deficit;
      best = j;
    }
  }

  int limit;
  if (best >= 0) {
    limit = target(best);
  } else {
    // Backfill: all runnable jobs are at/above target but executors remain
    // free. Give the spare capacity to the job with the fewest executors.
    best = runnable[0];
    for (int j : runnable) {
      if (jobs[static_cast<std::size_t>(j)].executors <
          jobs[static_cast<std::size_t>(best)].executors) {
        best = j;
      }
    }
    limit = jobs[static_cast<std::size_t>(best)].executors +
            env.free_executor_count();
  }

  const NodeRef node =
      round_robin_stage(env, best, cursors_[static_cast<std::size_t>(best)]);
  if (!node.valid()) return Action::none();
  Action a;
  a.node = node;
  a.limit = limit;
  a.exec_class = best_fit_class(
      env, jobs[static_cast<std::size_t>(best)]
               .spec.stages[static_cast<std::size_t>(node.stage)]
               .mem_req);
  return a;
}

std::string WeightedFairScheduler::name() const {
  if (alpha_ == 0.0) return "Fair";
  if (alpha_ == 1.0) return "NaiveWeightedFair";
  return "WeightedFair(alpha=" + std::to_string(alpha_).substr(0, 5) + ")";
}

}  // namespace decima::sched
