#include "sched/heuristics.h"

#include <algorithm>

namespace decima::sched {

// Tetris (§7.1 baseline (6)): greedily schedules the (stage, executor class)
// pair that maximizes the dot product of the stage's requested resource
// vector ⟨cpu, mem⟩ and the available resource vector of the class, then
// grants as much parallelism as the stage's tasks need. This is the packing
// ingredient without fairness or DAG-awareness (Appendix F).
Action TetrisScheduler::schedule(const ClusterEnv& env) {
  const auto runnable = env.runnable_nodes();
  if (runnable.empty()) return Action::none();
  const auto& classes = env.executor_classes();

  NodeRef best;
  int best_class = -1;
  double best_score = -1.0;
  for (const NodeRef node : runnable) {
    const auto& spec = env.jobs()[static_cast<std::size_t>(node.job)]
                           .spec.stages[static_cast<std::size_t>(node.stage)];
    for (std::size_t c = 0; c < classes.size(); ++c) {
      if (classes[c].mem + 1e-12 < spec.mem_req) continue;
      const int free_c = env.free_executor_count_of_class(static_cast<int>(c));
      if (free_c == 0) continue;
      // Demand ⟨cpu=1, mem_req⟩ · availability ⟨free slots, free memory⟩.
      const double avail_cpu = static_cast<double>(free_c);
      const double avail_mem = static_cast<double>(free_c) * classes[c].mem;
      const double score = spec.cpu_req * avail_cpu + spec.mem_req * avail_mem;
      if (score > best_score) {
        best_score = score;
        best = node;
        best_class = static_cast<int>(c);
      }
    }
  }
  if (!best.valid()) return Action::none();
  Action a;
  a.node = best;
  a.limit = env.total_executors();  // greedy: as much parallelism as possible
  a.exec_class = classes.size() == 1 ? -1 : best_class;
  return a;
}

}  // namespace decima::sched
