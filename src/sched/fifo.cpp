#include "sched/heuristics.h"

namespace decima::sched {

// Spark's default FIFO scheduling (§7.1 baseline (1)): jobs are served in
// arrival order and each job is granted as many executors as it can use (the
// behavior of a user requesting the whole cluster, the common default).
// Leftover executors spill over to the next job in arrival order because the
// environment re-queries within the same scheduling event.
Action FifoScheduler::schedule(const ClusterEnv& env) {
  const auto candidates = jobs_with_runnable_stages(env);
  int best = -1;
  double best_arrival = sim::kInfTime;
  for (int j : candidates) {
    const auto& job = env.jobs()[static_cast<std::size_t>(j)];
    if (job.arrival < best_arrival) {
      best_arrival = job.arrival;
      best = j;
    }
  }
  if (best < 0) return Action::none();
  const NodeRef node = first_runnable_stage(env, best);
  if (!node.valid()) return Action::none();
  Action a;
  a.node = node;
  a.limit = env.total_executors();
  a.exec_class = best_fit_class(
      env, env.jobs()[static_cast<std::size_t>(best)]
               .spec.stages[static_cast<std::size_t>(node.stage)]
               .mem_req);
  return a;
}

}  // namespace decima::sched
