#include "sched/heuristics.h"

#include <algorithm>

namespace decima::sched {

NodeRef critical_path_stage(const ClusterEnv& env, int job) {
  const sim::JobState& j = env.jobs()[static_cast<std::size_t>(job)];
  const auto cp = j.spec.critical_path();
  NodeRef best;
  double best_cp = -1.0;
  for (std::size_t v = 0; v < j.stages.size(); ++v) {
    if (!j.stages[v].runnable()) continue;
    if (cp[v] > best_cp) {
      best_cp = cp[v];
      best = NodeRef{job, static_cast<int>(v)};
    }
  }
  return best;
}

NodeRef first_runnable_stage(const ClusterEnv& env, int job) {
  const sim::JobState& j = env.jobs()[static_cast<std::size_t>(job)];
  for (std::size_t v = 0; v < j.stages.size(); ++v) {
    if (j.stages[v].runnable()) return NodeRef{job, static_cast<int>(v)};
  }
  return NodeRef{};
}

NodeRef round_robin_stage(const ClusterEnv& env, int job, int& cursor) {
  const sim::JobState& j = env.jobs()[static_cast<std::size_t>(job)];
  const int n = static_cast<int>(j.stages.size());
  for (int k = 0; k < n; ++k) {
    const int v = (cursor + k) % n;
    if (j.stages[static_cast<std::size_t>(v)].runnable()) {
      cursor = (v + 1) % n;
      return NodeRef{job, v};
    }
  }
  return NodeRef{};
}

int best_fit_class(const ClusterEnv& env, double mem_req) {
  const auto& classes = env.executor_classes();
  if (classes.size() == 1) return -1;  // single-resource setup: no preference
  int best = -1;
  double best_mem = 2.0;
  for (std::size_t c = 0; c < classes.size(); ++c) {
    if (classes[c].mem + 1e-12 < mem_req) continue;
    if (env.free_executor_count_of_class(static_cast<int>(c)) == 0) continue;
    if (classes[c].mem < best_mem) {
      best_mem = classes[c].mem;
      best = static_cast<int>(c);
    }
  }
  return best;
}

std::vector<int> jobs_with_runnable_stages(const ClusterEnv& env) {
  std::vector<int> out;
  const auto& jobs = env.jobs();
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const sim::JobState& job = jobs[j];
    if (!job.arrived || job.done()) continue;
    for (const auto& st : job.stages) {
      if (st.runnable()) {
        out.push_back(static_cast<int>(j));
        break;
      }
    }
  }
  return out;
}

}  // namespace decima::sched
