#include "nn/mlp.h"

#include <atomic>
#include <cmath>
#include <fstream>
#include <sstream>

namespace decima::nn {

Mlp::Mlp(std::string name, std::size_t in_dim, std::size_t out_dim,
         std::vector<std::size_t> hidden)
    : name_(std::move(name)), in_dim_(in_dim), out_dim_(out_dim) {
  std::vector<std::size_t> dims;
  dims.push_back(in_dim);
  dims.insert(dims.end(), hidden.begin(), hidden.end());
  dims.push_back(out_dim);
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    weights_.push_back(std::make_unique<Param>(
        name_ + "/W" + std::to_string(l), dims[l], dims[l + 1]));
    biases_.push_back(std::make_unique<Param>(
        name_ + "/b" + std::to_string(l), 1, dims[l + 1]));
  }
}

Var Mlp::apply(Tape& tape, Var x) const {
  Var h = x;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    // One fused node per layer (hidden layers leaky-ReLU, output linear).
    h = tape.linear(h, tape.param(*weights_[l]), tape.param(*biases_[l]),
                    /*leaky=*/l + 1 < weights_.size());
  }
  return h;
}

Matrix Mlp::forward(const Matrix& x) const {
  Matrix h = x;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    // Mirrors Tape::linear's forward exactly: matmul, then the row-broadcast
    // bias add, then leaky-ReLU on hidden layers — bit-identical to apply().
    Matrix out = h.matmul(weights_[l]->value);
    const Matrix& b = biases_[l]->value;
    for (std::size_t r = 0; r < out.rows(); ++r) {
      for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) += b(0, c);
    }
    if (l + 1 < weights_.size()) {
      for (double& v : out.raw()) v = v > 0.0 ? v : 0.2 * v;
    }
    h = std::move(out);
  }
  return h;
}

void Mlp::init(Rng& rng) {
  for (auto& w : weights_) {
    const double bound = std::sqrt(6.0 / static_cast<double>(w->value.rows()));
    for (double& v : w->value.raw()) v = rng.uniform(-bound, bound);
    w->grad.zero();
  }
  for (auto& b : biases_) {
    b->value.zero();
    b->grad.zero();
  }
}

std::vector<Param*> Mlp::params() {
  std::vector<Param*> out;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    out.push_back(weights_[l].get());
    out.push_back(biases_[l].get());
  }
  return out;
}

std::vector<const Param*> Mlp::params() const {
  std::vector<const Param*> out;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    out.push_back(weights_[l].get());
    out.push_back(biases_[l].get());
  }
  return out;
}

std::size_t Mlp::num_parameters() const {
  std::size_t n = 0;
  for (const auto& w : weights_) n += w->value.size();
  for (const auto& b : biases_) n += b->value.size();
  return n;
}

std::size_t ParamSet::num_parameters() const {
  std::size_t n = 0;
  for (const Param* p : params_) n += p->value.size();
  return n;
}

void ParamSet::zero_grads() {
  for (Param* p : params_) p->zero_grad();
}

void ParamSet::copy_values_from(const ParamSet& other) {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    params_[i]->value = other.params_[i]->value;
  }
  bump_version();
}

std::uint64_t ParamSet::next_version() {
  // Process-wide and callable from any thread (parallel replay workers bump
  // versions concurrently); relaxed is enough because only uniqueness
  // matters — version values are compared for equality, never ordered
  // across threads (docs/concurrency.md).
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

void ParamSet::bump_version() { version_ = next_version(); }

void ParamSet::accumulate_grads_from(const ParamSet& other, double scale) {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    params_[i]->grad.axpy(scale, other.params_[i]->grad);
  }
}

std::vector<double> ParamSet::flat_grads() const {
  std::vector<double> out;
  out.reserve(num_parameters());
  for (const Param* p : params_) {
    out.insert(out.end(), p->grad.raw().begin(), p->grad.raw().end());
  }
  return out;
}

void ParamSet::add_flat_to_grads(const std::vector<double>& flat, double scale) {
  std::size_t offset = 0;
  for (Param* p : params_) {
    for (double& g : p->grad.raw()) g += scale * flat[offset++];
  }
}

double ParamSet::grad_norm() const {
  double s = 0.0;
  for (const Param* p : params_) s += p->grad.squared_norm();
  return std::sqrt(s);
}

void ParamSet::clip_grad_norm(double max_norm) {
  const double norm = grad_norm();
  if (norm <= max_norm || norm == 0.0) return;
  const double scale = max_norm / norm;
  for (Param* p : params_) {
    for (double& g : p->grad.raw()) g *= scale;
  }
}

bool save_params(const ParamSet& set, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(17);
  out << "decima-model-v1 " << set.params().size() << "\n";
  for (const Param* p : set.params()) {
    out << p->name << ' ' << p->value.rows() << ' ' << p->value.cols() << '\n';
    for (double v : p->value.raw()) out << v << ' ';
    out << '\n';
  }
  return static_cast<bool>(out);
}

bool load_params(ParamSet& set, const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string magic;
  std::size_t count = 0;
  in >> magic >> count;
  if (magic != "decima-model-v1" || count != set.params().size()) return false;
  for (Param* p : set.params()) {
    std::string name;
    std::size_t rows = 0, cols = 0;
    in >> name >> rows >> cols;
    if (name != p->name || rows != p->value.rows() || cols != p->value.cols()) {
      return false;
    }
    for (double& v : p->value.raw()) in >> v;
  }
  if (in) set.bump_version();
  return static_cast<bool>(in);
}

}  // namespace decima::nn
