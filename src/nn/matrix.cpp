#include "nn/matrix.h"

#include <algorithm>

namespace decima::nn {

void Matrix::add_in_place(const Matrix& other) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::axpy(double scale, const Matrix& other) {
  assert(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

Matrix Matrix::matmul(const Matrix& rhs) const {
  assert(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a = data_.data() + i * cols_;
    double* o = out.data() + i * rhs.cols_;
    for (std::size_t k = 0; k < cols_; ++k) {
      const double av = a[k];
      if (av == 0.0) continue;
      const double* b = rhs.data() + k * rhs.cols_;
      for (std::size_t j = 0; j < rhs.cols_; ++j) o[j] += av * b[j];
    }
  }
  return out;
}

Matrix Matrix::transposed_matmul(const Matrix& rhs) const {
  // (cols_ x rows_) * (rows_ x rhs.cols_) -> cols_ x rhs.cols_
  assert(rows_ == rhs.rows_);
  Matrix out(cols_, rhs.cols());
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a = data_.data() + i * cols_;
    const double* b = rhs.data() + i * rhs.cols();
    for (std::size_t k = 0; k < cols_; ++k) {
      const double av = a[k];
      if (av == 0.0) continue;
      double* o = out.data() + k * rhs.cols();
      for (std::size_t j = 0; j < rhs.cols(); ++j) o[j] += av * b[j];
    }
  }
  return out;
}

Matrix Matrix::matmul_transposed(const Matrix& rhs) const {
  // (rows_ x cols_) * (rhs.cols x rhs.rows)^T requires cols_ == rhs.cols
  assert(cols_ == rhs.cols());
  Matrix out(rows_, rhs.rows());
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a = data_.data() + i * cols_;
    double* o = out.data() + i * rhs.rows();
    for (std::size_t j = 0; j < rhs.rows(); ++j) {
      const double* b = rhs.data() + j * rhs.cols();
      double acc = 0.0;
      for (std::size_t k = 0; k < cols_; ++k) acc += a[k] * b[k];
      o[j] = acc;
    }
  }
  return out;
}

void Matrix::matmul_transposed_acc(const Matrix& rhs, Matrix& dst) const {
  assert(cols_ == rhs.cols());
  assert(dst.rows() == rows_ && dst.cols() == rhs.rows());
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a = data_.data() + i * cols_;
    double* o = dst.data() + i * rhs.rows();
    for (std::size_t j = 0; j < rhs.rows(); ++j) {
      const double* b = rhs.data() + j * rhs.cols();
      double acc = 0.0;
      for (std::size_t k = 0; k < cols_; ++k) acc += a[k] * b[k];
      o[j] += acc;
    }
  }
}

void Matrix::transposed_matmul_acc(const Matrix& rhs, Matrix& dst) const {
  assert(rows_ == rhs.rows());
  assert(dst.rows() == cols_ && dst.cols() == rhs.cols());
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a = data_.data() + i * cols_;
    const double* b = rhs.data() + i * rhs.cols();
    for (std::size_t k = 0; k < cols_; ++k) {
      const double av = a[k];
      if (av == 0.0) continue;
      double* o = dst.data() + k * rhs.cols();
      for (std::size_t j = 0; j < rhs.cols(); ++j) o[j] += av * b[j];
    }
  }
}

double Matrix::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::squared_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

std::string Matrix::shape_str() const {
  return std::to_string(rows_) + "x" + std::to_string(cols_);
}

}  // namespace decima::nn
