#include "nn/adam.h"

#include <cmath>

namespace decima::nn {

Adam::Adam(ParamSet* params, AdamConfig config)
    : params_(params), config_(config) {
  for (const Param* p : params_->params()) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

bool Adam::restore_state(long long steps_taken, std::vector<Matrix> m,
                         std::vector<Matrix> v) {
  if (m.size() != m_.size() || v.size() != v_.size()) return false;
  for (std::size_t i = 0; i < m_.size(); ++i) {
    if (!m[i].same_shape(m_[i]) || !v[i].same_shape(v_[i])) return false;
  }
  t_ = steps_taken;
  m_ = std::move(m);
  v_ = std::move(v);
  return true;
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  const auto& ps = params_->params();
  for (std::size_t i = 0; i < ps.size(); ++i) {
    auto& value = ps[i]->value.raw();
    const auto& grad = ps[i]->grad.raw();
    auto& m = m_[i].raw();
    auto& v = v_[i].raw();
    for (std::size_t j = 0; j < value.size(); ++j) {
      m[j] = config_.beta1 * m[j] + (1.0 - config_.beta1) * grad[j];
      v[j] = config_.beta2 * v[j] + (1.0 - config_.beta2) * grad[j] * grad[j];
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      value[j] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
    }
  }
  params_->bump_version();
}

}  // namespace decima::nn
