// Tape-based reverse-mode automatic differentiation.
//
// All of Decima's operations — the graph neural network (Eq. 1), the summary
// levels, and the policy score functions — are expressed as tape ops, so that
// ∇_θ log π_θ(s, a) (needed by REINFORCE, Eq. 3) is computed exactly.
//
// Usage: build a fresh Tape per forward pass, obtain Vars from inputs/params,
// compose ops, call backward() on a scalar Var. Gradients of parameters are
// accumulated into their Param::grad storage.
#pragma once

#include <functional>
#include <vector>

#include "nn/matrix.h"

namespace decima::nn {

// A learnable parameter: value plus gradient accumulator.
struct Param {
  Matrix value;
  Matrix grad;
  std::string name;

  Param() = default;
  Param(std::string n, std::size_t rows, std::size_t cols)
      : value(rows, cols), grad(rows, cols), name(std::move(n)) {}

  void zero_grad() { grad.zero(); }
};

class Tape;

// Lightweight handle to a node on the tape.
struct Var {
  int idx = -1;
  bool valid() const { return idx >= 0; }
};

class Tape {
 public:
  // track_gradients = false builds a forward-only graph (inference mode):
  // parameters behave like constants, no gradient buffers or backward
  // closures are allocated, and backward() must not be called.
  explicit Tape(bool track_gradients = true)
      : track_gradients_(track_gradients) {}
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // --- Leaves -------------------------------------------------------------
  Var constant(Matrix value);          // no gradient tracked
  Var param(Param& p);                 // gradient accumulated into p.grad

  // --- Elementwise / linear ops -------------------------------------------
  Var matmul(Var a, Var b);
  Var add(Var a, Var b);               // same shape
  Var add_bias(Var a, Var bias);       // bias is 1 x cols, broadcast over rows
  Var addn(const std::vector<Var>& xs);// elementwise sum, same shapes
  Var scale(Var a, double c);
  Var leaky_relu(Var a, double slope = 0.2);
  Var tanh(Var a);

  // --- Shape ops ------------------------------------------------------------
  Var concat_cols(const std::vector<Var>& xs);  // all same row count
  Var row(Var a, std::size_t r);                // 1 x cols slice
  Var concat_scalars(const std::vector<Var>& xs);  // n scalars -> 1 x n
  Var sum_rows(Var a);                          // n x m -> 1 x m
  Var element(Var a, std::size_t r, std::size_t c);  // 1 x 1 slice

  // --- Row-batched shape ops -------------------------------------------------
  // These let callers assemble one large n x m operand (a single matmul per
  // MLP layer) instead of n separate 1 x m tape nodes — the batched GNN and
  // policy-scoring hot paths are built on them.
  Var concat_rows(const std::vector<Var>& xs);  // all same col count; vstack
  // Gather: out row i = a row picks[i] (repeats allowed).
  Var rows(Var a, std::vector<std::size_t> picks);
  // out(seg[r], :) += a(r, :) for every row r; out has num_segments rows.
  Var segment_sum_rows(Var a, std::vector<std::size_t> seg,
                       std::size_t num_segments);
  Var broadcast_row(Var a, std::size_t r, std::size_t n);  // tile row r, n rows
  Var as_row(Var a);  // row-major reshape to 1 x size (e.g. n x 1 -> logits)

  // --- Losses ---------------------------------------------------------------
  // log softmax(logits)[pick]; logits is 1 x n. Returns a 1 x 1 scalar.
  Var log_prob_pick(Var logits, std::size_t pick);

  // Entropy of softmax(logits) for a 1 x n logits row. Returns 1 x 1.
  // Used as an exploration bonus during policy-gradient training.
  Var entropy(Var logits);

  // Softmax probabilities of a 1 x n logits row (forward value only; the
  // backward path flows through log_prob_pick in training).
  std::vector<double> softmax_values(Var logits) const;

  // --- Access / backward ------------------------------------------------------
  const Matrix& value(Var v) const { return nodes_[v.idx].value; }
  const Matrix& grad(Var v) const { return nodes_[v.idx].grad; }
  std::size_t num_nodes() const { return nodes_.size(); }

  // Runs reverse-mode accumulation from `output` (must be 1x1) with seed
  // d(output)/d(output) = `seed`. Parameter grads accumulate into Param::grad.
  void backward(Var output, double seed = 1.0);

 private:
  struct Node {
    Matrix value;
    Matrix grad;
    Param* bound_param = nullptr;  // non-null for param leaves
    bool needs_grad = false;
    // Backward: given this node's grad, scatter into parents' grads.
    std::function<void(Tape&, Node&)> backward_fn;
  };

  int push(Matrix value, bool needs_grad, std::function<void(Tape&, Node&)> fn);
  Node& node(Var v) { return nodes_[v.idx]; }

  bool track_gradients_ = true;
  std::vector<Node> nodes_;
};

}  // namespace decima::nn
