// Tape-based reverse-mode automatic differentiation.
//
// All of Decima's operations — the graph neural network (Eq. 1), the summary
// levels, and the policy score functions — are expressed as tape ops, so that
// ∇_θ log π_θ(s, a) (needed by REINFORCE, Eq. 3) is computed exactly.
//
// Usage: build a fresh Tape per forward pass, obtain Vars from inputs/params,
// compose ops, call backward() on a scalar Var. Gradients of parameters are
// accumulated into their Param::grad storage.
#pragma once

#include <functional>
#include <vector>

#include "nn/matrix.h"

namespace decima::nn {

// A learnable parameter: value plus gradient accumulator.
struct Param {
  Matrix value;
  Matrix grad;
  std::string name;

  Param() = default;
  Param(std::string n, std::size_t rows, std::size_t cols)
      : value(rows, cols), grad(rows, cols), name(std::move(n)) {}

  void zero_grad() { grad.zero(); }
};

class Tape;

// Lightweight handle to a node on the tape.
struct Var {
  int idx = -1;
  bool valid() const { return idx >= 0; }
};

class Tape {
 public:
  // track_gradients = false builds a forward-only graph (inference mode):
  // parameters behave like constants, no gradient buffers or backward
  // closures are allocated, and backward() must not be called.
  explicit Tape(bool track_gradients = true)
      : track_gradients_(track_gradients) {}
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // --- Leaves -------------------------------------------------------------
  Var constant(Matrix value);          // no gradient tracked
  Var param(Param& p);                 // gradient accumulated into p.grad

  // --- Elementwise / linear ops -------------------------------------------
  Var matmul(Var a, Var b);
  Var add(Var a, Var b);               // same shape
  Var add_bias(Var a, Var bias);       // bias is 1 x cols, broadcast over rows
  Var addn(const std::vector<Var>& xs);// elementwise sum, same shapes
  Var scale(Var a, double c);
  Var leaky_relu(Var a, double slope = 0.2);
  Var tanh(Var a);

  // Fused affine layer x @ W + bias with an optional leaky-ReLU: one tape
  // node (one materialized matrix + grad) instead of the matmul / add_bias /
  // leaky_relu chain's three. Forward values match the unfused chain bit for
  // bit; backward weight gradients accumulate row by row instead of through
  // a zeroed temporary, which reorders the summation when the param grad is
  // already non-zero (ulp-level differences, inside the 1e-10 equivalence
  // contract). Every MLP layer runs through this, so it dominates both the
  // per-event inference cost and the episode-batched replay cost.
  Var linear(Var x, Var w, Var bias, bool leaky, double slope = 0.2);

  // --- Shape ops ------------------------------------------------------------
  Var concat_cols(const std::vector<Var>& xs);  // all same row count
  Var row(Var a, std::size_t r);                // 1 x cols slice
  Var concat_scalars(const std::vector<Var>& xs);  // n scalars -> 1 x n
  Var sum_rows(Var a);                          // n x m -> 1 x m
  Var element(Var a, std::size_t r, std::size_t c);  // 1 x 1 slice

  // --- Row-batched shape ops -------------------------------------------------
  // These let callers assemble one large n x m operand (a single matmul per
  // MLP layer) instead of n separate 1 x m tape nodes — the batched GNN and
  // policy-scoring hot paths are built on them.
  Var concat_rows(const std::vector<Var>& xs);  // all same col count; vstack
  // Gather: out row i = a row picks[i] (repeats allowed).
  Var rows(Var a, std::vector<std::size_t> picks);
  // out(seg[r], :) += a(r, :) for every row r; out has num_segments rows.
  Var segment_sum_rows(Var a, std::vector<std::size_t> seg,
                       std::size_t num_segments);
  Var broadcast_row(Var a, std::size_t r, std::size_t n);  // tile row r, n rows
  Var as_row(Var a);  // row-major reshape to 1 x size (e.g. n x 1 -> logits)
  // Fused gather + column concat: out row r = [xs[0] row picks[0][r],
  // xs[1] row picks[1][r], ...]. One materialized node instead of one rows()
  // per source plus a concat_cols — the policy heads of the episode-batched
  // replay assemble their inputs with this. Gradients scatter straight into
  // the sources, bit-identical to the unfused chain.
  Var gather_concat_cols(const std::vector<Var>& xs,
                         std::vector<std::vector<std::size_t>> picks);

  // --- Losses ---------------------------------------------------------------
  // log softmax(logits)[pick]; logits is 1 x n. Returns a 1 x 1 scalar.
  Var log_prob_pick(Var logits, std::size_t pick);

  // Entropy of softmax(logits) for a 1 x n logits row. Returns 1 x 1.
  // Used as an exploration bonus during policy-gradient training.
  Var entropy(Var logits);

  // --- Segment-batched losses -----------------------------------------------
  // The episode-batched REINFORCE replay stacks every scheduling event's
  // logits into one n x 1 column (the natural output shape of a row-batched
  // scoring MLP) and evaluates all per-event softmax losses in a single tape
  // node. Segment s spans rows [seg_start[s], seg_start[s+1]) (the last one
  // ends at n); per segment the math is identical to log_prob_pick / entropy,
  // so the results match the per-event ops bit for bit.
  //
  // Returns 1 x S with entry s = log softmax(segment s)[picks[s]] (picks are
  // segment-local indices).
  Var log_prob_pick_segments(Var logits, std::vector<std::size_t> seg_start,
                             std::vector<std::size_t> picks);
  // Returns 1 x S with entry s = H(softmax(segment s)).
  Var entropy_segments(Var logits, std::vector<std::size_t> seg_start);

  // Softmax probabilities of a 1 x n logits row (forward value only; the
  // backward path flows through log_prob_pick in training).
  std::vector<double> softmax_values(Var logits) const;

  // --- Access / backward ------------------------------------------------------
  const Matrix& value(Var v) const { return nodes_[v.idx].value; }
  const Matrix& grad(Var v) const { return nodes_[v.idx].grad; }
  std::size_t num_nodes() const { return nodes_.size(); }

  // Runs reverse-mode accumulation from `output` (must be 1x1) with seed
  // d(output)/d(output) = `seed`. Parameter grads accumulate into Param::grad.
  void backward(Var output, double seed = 1.0);

 private:
  struct Node {
    Matrix value;
    Matrix grad;
    Param* bound_param = nullptr;  // non-null for param leaves
    bool needs_grad = false;
    // Backward: given this node's grad, scatter into parents' grads.
    std::function<void(Tape&, Node&)> backward_fn;
  };

  int push(Matrix value, bool needs_grad, std::function<void(Tape&, Node&)> fn);
  Node& node(Var v) { return nodes_[v.idx]; }

  bool track_gradients_ = true;
  std::vector<Node> nodes_;
};

}  // namespace decima::nn
