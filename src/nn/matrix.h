// A small dense row-major matrix of doubles.
//
// This is the numeric workhorse of the from-scratch neural-network substrate
// (the paper used TensorFlow; Decima's model is ~12.7k parameters, so a
// straightforward CPU implementation is fully adequate — see DESIGN.md §2).
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace decima::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    assert(data_.size() == rows_ * cols_);
  }

  static Matrix row_vector(std::initializer_list<double> values) {
    return Matrix(1, values.size(), std::vector<double>(values));
  }
  static Matrix row_vector(const std::vector<double>& values) {
    return Matrix(1, values.size(), values);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& raw() { return data_; }
  const std::vector<double>& raw() const { return data_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }
  void zero() { fill(0.0); }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // this += other (shapes must match).
  void add_in_place(const Matrix& other);
  // this += scale * other.
  void axpy(double scale, const Matrix& other);

  // Matrix product: (rows x cols) * (cols x n) -> (rows x n).
  Matrix matmul(const Matrix& rhs) const;
  // this^T * rhs, without materializing the transpose.
  Matrix transposed_matmul(const Matrix& rhs) const;
  // this * rhs^T.
  Matrix matmul_transposed(const Matrix& rhs) const;
  // Accumulating forms of the two backward products, without materializing a
  // temporary product. dst += this * rhs^T computes each element's dot
  // product in a register before the single add, so it is bit-identical to
  // dst.add_in_place(matmul_transposed(rhs)); dst += this^T * rhs
  // accumulates row by row directly into dst, which reorders the summation
  // relative to the temporary-then-add form whenever dst is non-zero
  // (ulp-level differences only).
  void matmul_transposed_acc(const Matrix& rhs, Matrix& dst) const;
  void transposed_matmul_acc(const Matrix& rhs, Matrix& dst) const;

  double sum() const;
  double squared_norm() const;

  std::string shape_str() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace decima::nn
