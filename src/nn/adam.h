// Adam optimizer (Kingma & Ba, ICLR'15) — the optimizer the paper uses for
// policy-gradient descent (Appendix C; learning rate 1e-3).
#pragma once

#include "nn/mlp.h"

namespace decima::nn {

struct AdamConfig {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
};

class Adam {
 public:
  explicit Adam(ParamSet* params, AdamConfig config = {});

  // Applies one update from the gradients currently accumulated in the
  // ParamSet, then leaves the gradients untouched (caller zeroes them).
  void step();

  void set_lr(double lr) { config_.lr = lr; }
  double lr() const { return config_.lr; }
  long long steps_taken() const { return t_; }

  // Checkpoint access (src/io): the per-parameter first/second moment
  // accumulators, index-aligned with the bound ParamSet.
  const std::vector<Matrix>& first_moments() const { return m_; }
  const std::vector<Matrix>& second_moments() const { return v_; }
  // Restores optimizer state saved from another Adam bound to a ParamSet of
  // identical structure; returns false on shape mismatch (state unchanged).
  bool restore_state(long long steps_taken, std::vector<Matrix> m,
                     std::vector<Matrix> v);

 private:
  ParamSet* params_;
  AdamConfig config_;
  long long t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace decima::nn
