#include "nn/tape.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace decima::nn {

int Tape::push(Matrix value, bool needs_grad,
               std::function<void(Tape&, Node&)> fn) {
  needs_grad = needs_grad && track_gradients_;
  Node n;
  if (needs_grad) {
    n.grad = Matrix(value.rows(), value.cols());
    n.backward_fn = std::move(fn);
  }
  n.value = std::move(value);
  n.needs_grad = needs_grad;
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

Var Tape::constant(Matrix value) {
  return Var{push(std::move(value), false, nullptr)};
}

Var Tape::param(Param& p) {
  const int idx = push(p.value, track_gradients_, nullptr);
  if (track_gradients_) nodes_[static_cast<std::size_t>(idx)].bound_param = &p;
  return Var{idx};
}

Var Tape::matmul(Var a, Var b) {
  const Matrix& A = value(a);
  const Matrix& B = value(b);
  Matrix out = A.matmul(B);
  const bool ng = node(a).needs_grad || node(b).needs_grad;
  const int ai = a.idx, bi = b.idx;
  return Var{push(std::move(out), ng, [ai, bi](Tape& t, Node& self) {
    Node& na = t.nodes_[ai];
    Node& nb = t.nodes_[bi];
    if (na.needs_grad) na.grad.add_in_place(self.grad.matmul_transposed(nb.value));
    if (nb.needs_grad) nb.grad.add_in_place(na.value.transposed_matmul(self.grad));
  })};
}

Var Tape::add(Var a, Var b) {
  Matrix out = value(a);
  out.add_in_place(value(b));
  const bool ng = node(a).needs_grad || node(b).needs_grad;
  const int ai = a.idx, bi = b.idx;
  return Var{push(std::move(out), ng, [ai, bi](Tape& t, Node& self) {
    if (t.nodes_[ai].needs_grad) t.nodes_[ai].grad.add_in_place(self.grad);
    if (t.nodes_[bi].needs_grad) t.nodes_[bi].grad.add_in_place(self.grad);
  })};
}

Var Tape::add_bias(Var a, Var bias) {
  const Matrix& A = value(a);
  const Matrix& B = value(bias);
  assert(B.rows() == 1 && B.cols() == A.cols());
  Matrix out = A;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) += B(0, c);
  }
  const bool ng = node(a).needs_grad || node(bias).needs_grad;
  const int ai = a.idx, bi = bias.idx;
  return Var{push(std::move(out), ng, [ai, bi](Tape& t, Node& self) {
    Node& na = t.nodes_[ai];
    Node& nb = t.nodes_[bi];
    if (na.needs_grad) na.grad.add_in_place(self.grad);
    if (nb.needs_grad) {
      for (std::size_t r = 0; r < self.grad.rows(); ++r) {
        for (std::size_t c = 0; c < self.grad.cols(); ++c) {
          nb.grad(0, c) += self.grad(r, c);
        }
      }
    }
  })};
}

Var Tape::addn(const std::vector<Var>& xs) {
  assert(!xs.empty());
  Matrix out = value(xs[0]);
  bool ng = node(xs[0]).needs_grad;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    out.add_in_place(value(xs[i]));
    ng = ng || node(xs[i]).needs_grad;
  }
  std::vector<int> idxs;
  idxs.reserve(xs.size());
  for (Var v : xs) idxs.push_back(v.idx);
  return Var{push(std::move(out), ng, [idxs](Tape& t, Node& self) {
    for (int i : idxs) {
      if (t.nodes_[i].needs_grad) t.nodes_[i].grad.add_in_place(self.grad);
    }
  })};
}

Var Tape::scale(Var a, double c) {
  Matrix out = value(a);
  for (double& v : out.raw()) v *= c;
  const int ai = a.idx;
  return Var{push(std::move(out), node(a).needs_grad, [ai, c](Tape& t, Node& self) {
    if (t.nodes_[ai].needs_grad) t.nodes_[ai].grad.axpy(c, self.grad);
  })};
}

Var Tape::leaky_relu(Var a, double slope) {
  Matrix out = value(a);
  for (double& v : out.raw()) v = v > 0.0 ? v : slope * v;
  const int ai = a.idx;
  return Var{push(std::move(out), node(a).needs_grad,
                  [ai, slope](Tape& t, Node& self) {
    Node& na = t.nodes_[ai];
    if (!na.needs_grad) return;
    for (std::size_t i = 0; i < self.grad.raw().size(); ++i) {
      const double x = na.value.raw()[i];
      na.grad.raw()[i] += self.grad.raw()[i] * (x > 0.0 ? 1.0 : slope);
    }
  })};
}

Var Tape::linear(Var x, Var w, Var bias, bool leaky, double slope) {
  const Matrix& X = value(x);
  const Matrix& W = value(w);
  const Matrix& B = value(bias);
  assert(X.cols() == W.rows());
  assert(B.rows() == 1 && B.cols() == W.cols());
  Matrix out = X.matmul(W);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) out(r, c) += B(0, c);
  }
  if (leaky) {
    for (double& v : out.raw()) v = v > 0.0 ? v : slope * v;
  }
  const bool ng =
      node(x).needs_grad || node(w).needs_grad || node(bias).needs_grad;
  const int xi = x.idx, wi = w.idx, bi = bias.idx;
  return Var{push(std::move(out), ng,
                  [xi, wi, bi, leaky, slope](Tape& t, Node& self) {
    Node& nx = t.nodes_[xi];
    Node& nw = t.nodes_[wi];
    Node& nb = t.nodes_[bi];
    // leaky-ReLU preserves sign (slope > 0), so the activation mask is
    // recoverable from the output; self.grad is masked in place (this node's
    // gradient has no readers after its backward_fn runs) and the two
    // products accumulate straight into the parents' gradients.
    Matrix& dpre = self.grad;
    if (leaky) {
      for (std::size_t i = 0; i < dpre.raw().size(); ++i) {
        if (self.value.raw()[i] <= 0.0) dpre.raw()[i] *= slope;
      }
    }
    if (nx.needs_grad) dpre.matmul_transposed_acc(nw.value, nx.grad);
    if (nw.needs_grad) nx.value.transposed_matmul_acc(dpre, nw.grad);
    if (nb.needs_grad) {
      for (std::size_t r = 0; r < dpre.rows(); ++r) {
        for (std::size_t c = 0; c < dpre.cols(); ++c) {
          nb.grad(0, c) += dpre(r, c);
        }
      }
    }
  })};
}

Var Tape::tanh(Var a) {
  Matrix out = value(a);
  for (double& v : out.raw()) v = std::tanh(v);
  const int ai = a.idx;
  return Var{push(std::move(out), node(a).needs_grad, [ai](Tape& t, Node& self) {
    Node& na = t.nodes_[ai];
    if (!na.needs_grad) return;
    for (std::size_t i = 0; i < self.grad.raw().size(); ++i) {
      const double y = self.value.raw()[i];
      na.grad.raw()[i] += self.grad.raw()[i] * (1.0 - y * y);
    }
  })};
}

Var Tape::concat_cols(const std::vector<Var>& xs) {
  assert(!xs.empty());
  const std::size_t rows = value(xs[0]).rows();
  std::size_t cols = 0;
  bool ng = false;
  for (Var v : xs) {
    assert(value(v).rows() == rows);
    cols += value(v).cols();
    ng = ng || node(v).needs_grad;
  }
  Matrix out(rows, cols);
  std::size_t offset = 0;
  for (Var v : xs) {
    const Matrix& m = value(v);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < m.cols(); ++c) out(r, offset + c) = m(r, c);
    }
    offset += m.cols();
  }
  std::vector<int> idxs;
  for (Var v : xs) idxs.push_back(v.idx);
  return Var{push(std::move(out), ng, [idxs](Tape& t, Node& self) {
    std::size_t offset = 0;
    for (int i : idxs) {
      Node& ni = t.nodes_[i];
      const std::size_t c0 = offset;
      offset += ni.value.cols();
      if (!ni.needs_grad) continue;
      for (std::size_t r = 0; r < ni.value.rows(); ++r) {
        for (std::size_t c = 0; c < ni.value.cols(); ++c) {
          ni.grad(r, c) += self.grad(r, c0 + c);
        }
      }
    }
  })};
}

Var Tape::row(Var a, std::size_t r) {
  const Matrix& A = value(a);
  assert(r < A.rows());
  Matrix out(1, A.cols());
  for (std::size_t c = 0; c < A.cols(); ++c) out(0, c) = A(r, c);
  const int ai = a.idx;
  return Var{push(std::move(out), node(a).needs_grad, [ai, r](Tape& t, Node& self) {
    Node& na = t.nodes_[ai];
    if (!na.needs_grad) return;
    for (std::size_t c = 0; c < self.grad.cols(); ++c) na.grad(r, c) += self.grad(0, c);
  })};
}

Var Tape::concat_scalars(const std::vector<Var>& xs) {
  assert(!xs.empty());
  Matrix out(1, xs.size());
  bool ng = false;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    assert(value(xs[i]).size() == 1);
    out(0, i) = value(xs[i])(0, 0);
    ng = ng || node(xs[i]).needs_grad;
  }
  std::vector<int> idxs;
  for (Var v : xs) idxs.push_back(v.idx);
  return Var{push(std::move(out), ng, [idxs](Tape& t, Node& self) {
    for (std::size_t i = 0; i < idxs.size(); ++i) {
      Node& ni = t.nodes_[idxs[i]];
      if (ni.needs_grad) ni.grad(0, 0) += self.grad(0, i);
    }
  })};
}

Var Tape::sum_rows(Var a) {
  const Matrix& A = value(a);
  Matrix out(1, A.cols());
  for (std::size_t r = 0; r < A.rows(); ++r) {
    for (std::size_t c = 0; c < A.cols(); ++c) out(0, c) += A(r, c);
  }
  const int ai = a.idx;
  return Var{push(std::move(out), node(a).needs_grad, [ai](Tape& t, Node& self) {
    Node& na = t.nodes_[ai];
    if (!na.needs_grad) return;
    for (std::size_t r = 0; r < na.value.rows(); ++r) {
      for (std::size_t c = 0; c < na.value.cols(); ++c) {
        na.grad(r, c) += self.grad(0, c);
      }
    }
  })};
}

Var Tape::element(Var a, std::size_t r, std::size_t c) {
  const Matrix& A = value(a);
  assert(r < A.rows() && c < A.cols());
  Matrix out(1, 1);
  out(0, 0) = A(r, c);
  const int ai = a.idx;
  return Var{push(std::move(out), node(a).needs_grad,
                  [ai, r, c](Tape& t, Node& self) {
    Node& na = t.nodes_[ai];
    if (na.needs_grad) na.grad(r, c) += self.grad(0, 0);
  })};
}

Var Tape::concat_rows(const std::vector<Var>& xs) {
  assert(!xs.empty());
  const std::size_t cols = value(xs[0]).cols();
  std::size_t rows = 0;
  bool ng = false;
  for (Var v : xs) {
    assert(value(v).cols() == cols);
    rows += value(v).rows();
    ng = ng || node(v).needs_grad;
  }
  Matrix out(rows, cols);
  std::size_t r0 = 0;
  for (Var v : xs) {
    const Matrix& m = value(v);
    std::copy(m.raw().begin(), m.raw().end(), out.raw().begin() + static_cast<std::ptrdiff_t>(r0 * cols));
    r0 += m.rows();
  }
  std::vector<int> idxs;
  idxs.reserve(xs.size());
  for (Var v : xs) idxs.push_back(v.idx);
  return Var{push(std::move(out), ng, [idxs](Tape& t, Node& self) {
    std::size_t r0 = 0;
    for (int i : idxs) {
      Node& ni = t.nodes_[i];
      const std::size_t nr = ni.value.rows();
      if (ni.needs_grad) {
        for (std::size_t r = 0; r < nr; ++r) {
          for (std::size_t c = 0; c < ni.value.cols(); ++c) {
            ni.grad(r, c) += self.grad(r0 + r, c);
          }
        }
      }
      r0 += nr;
    }
  })};
}

Var Tape::rows(Var a, std::vector<std::size_t> picks) {
  const Matrix& A = value(a);
  Matrix out(picks.size(), A.cols());
  for (std::size_t i = 0; i < picks.size(); ++i) {
    assert(picks[i] < A.rows());
    for (std::size_t c = 0; c < A.cols(); ++c) out(i, c) = A(picks[i], c);
  }
  const int ai = a.idx;
  return Var{push(std::move(out), node(a).needs_grad,
                  [ai, picks = std::move(picks)](Tape& t, Node& self) {
    Node& na = t.nodes_[ai];
    if (!na.needs_grad) return;
    for (std::size_t i = 0; i < picks.size(); ++i) {
      for (std::size_t c = 0; c < self.grad.cols(); ++c) {
        na.grad(picks[i], c) += self.grad(i, c);
      }
    }
  })};
}

Var Tape::segment_sum_rows(Var a, std::vector<std::size_t> seg,
                           std::size_t num_segments) {
  const Matrix& A = value(a);
  assert(seg.size() == A.rows());
  Matrix out(num_segments, A.cols());
  for (std::size_t r = 0; r < A.rows(); ++r) {
    assert(seg[r] < num_segments);
    for (std::size_t c = 0; c < A.cols(); ++c) out(seg[r], c) += A(r, c);
  }
  const int ai = a.idx;
  return Var{push(std::move(out), node(a).needs_grad,
                  [ai, seg = std::move(seg)](Tape& t, Node& self) {
    Node& na = t.nodes_[ai];
    if (!na.needs_grad) return;
    for (std::size_t r = 0; r < na.value.rows(); ++r) {
      for (std::size_t c = 0; c < self.grad.cols(); ++c) {
        na.grad(r, c) += self.grad(seg[r], c);
      }
    }
  })};
}

Var Tape::broadcast_row(Var a, std::size_t r, std::size_t n) {
  const Matrix& A = value(a);
  assert(r < A.rows());
  Matrix out(n, A.cols());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < A.cols(); ++c) out(i, c) = A(r, c);
  }
  const int ai = a.idx;
  return Var{push(std::move(out), node(a).needs_grad,
                  [ai, r](Tape& t, Node& self) {
    Node& na = t.nodes_[ai];
    if (!na.needs_grad) return;
    for (std::size_t i = 0; i < self.grad.rows(); ++i) {
      for (std::size_t c = 0; c < self.grad.cols(); ++c) {
        na.grad(r, c) += self.grad(i, c);
      }
    }
  })};
}

Var Tape::as_row(Var a) {
  const Matrix& A = value(a);
  Matrix out(1, A.size(), A.raw());
  const int ai = a.idx;
  return Var{push(std::move(out), node(a).needs_grad, [ai](Tape& t, Node& self) {
    Node& na = t.nodes_[ai];
    if (!na.needs_grad) return;
    for (std::size_t i = 0; i < self.grad.raw().size(); ++i) {
      na.grad.raw()[i] += self.grad.raw()[i];
    }
  })};
}

Var Tape::gather_concat_cols(const std::vector<Var>& xs,
                             std::vector<std::vector<std::size_t>> picks) {
  assert(!xs.empty() && xs.size() == picks.size());
  const std::size_t n = picks[0].size();
  std::size_t cols = 0;
  bool ng = false;
  for (std::size_t s = 0; s < xs.size(); ++s) {
    assert(picks[s].size() == n);
    cols += value(xs[s]).cols();
    ng = ng || node(xs[s]).needs_grad;
  }
  Matrix out(n, cols);
  std::size_t c0 = 0;
  for (std::size_t s = 0; s < xs.size(); ++s) {
    const Matrix& m = value(xs[s]);
    for (std::size_t r = 0; r < n; ++r) {
      assert(picks[s][r] < m.rows());
      const double* src = m.data() + picks[s][r] * m.cols();
      double* dst = out.data() + r * cols + c0;
      std::copy(src, src + m.cols(), dst);
    }
    c0 += m.cols();
  }
  std::vector<int> idxs;
  idxs.reserve(xs.size());
  for (Var v : xs) idxs.push_back(v.idx);
  return Var{push(std::move(out), ng,
                  [idxs, picks = std::move(picks)](Tape& t, Node& self) {
    std::size_t c0 = 0;
    for (std::size_t s = 0; s < idxs.size(); ++s) {
      Node& ni = t.nodes_[idxs[s]];
      const std::size_t w = ni.value.cols();
      if (ni.needs_grad) {
        for (std::size_t r = 0; r < picks[s].size(); ++r) {
          const double* g = self.grad.data() + r * self.grad.cols() + c0;
          double* dst = ni.grad.data() + picks[s][r] * w;
          for (std::size_t c = 0; c < w; ++c) dst[c] += g[c];
        }
      }
      c0 += w;
    }
  })};
}

Var Tape::log_prob_pick(Var logits, std::size_t pick) {
  const Matrix& L = value(logits);
  assert(L.rows() == 1 && pick < L.cols());
  double max_logit = L(0, 0);
  for (std::size_t c = 1; c < L.cols(); ++c) max_logit = std::max(max_logit, L(0, c));
  double denom = 0.0;
  for (std::size_t c = 0; c < L.cols(); ++c) denom += std::exp(L(0, c) - max_logit);
  const double log_z = max_logit + std::log(denom);
  Matrix out(1, 1);
  out(0, 0) = L(0, pick) - log_z;
  const int ai = logits.idx;
  return Var{push(std::move(out), node(logits).needs_grad,
                  [ai, pick, log_z](Tape& t, Node& self) {
    Node& na = t.nodes_[ai];
    if (!na.needs_grad) return;
    const double g = self.grad(0, 0);
    for (std::size_t c = 0; c < na.value.cols(); ++c) {
      const double p = std::exp(na.value(0, c) - log_z);
      na.grad(0, c) += g * ((c == pick ? 1.0 : 0.0) - p);
    }
  })};
}

Var Tape::entropy(Var logits) {
  const std::vector<double> p = softmax_values(logits);
  double h = 0.0;
  for (double pi : p) {
    if (pi > 1e-12) h -= pi * std::log(pi);
  }
  Matrix out(1, 1);
  out(0, 0) = h;
  const int ai = logits.idx;
  return Var{push(std::move(out), node(logits).needs_grad,
                  [ai, p, h](Tape& t, Node& self) {
    Node& na = t.nodes_[ai];
    if (!na.needs_grad) return;
    const double g = self.grad(0, 0);
    // dH/dl_j = -p_j (log p_j + H)
    for (std::size_t c = 0; c < p.size(); ++c) {
      const double logp = p[c] > 1e-12 ? std::log(p[c]) : -27.6;
      na.grad(0, c) += g * (-p[c] * (logp + h));
    }
  })};
}

Var Tape::log_prob_pick_segments(Var logits, std::vector<std::size_t> seg_start,
                                 std::vector<std::size_t> picks) {
  const Matrix& L = value(logits);
  assert(L.cols() == 1);
  assert(seg_start.size() == picks.size());
  const std::size_t S = seg_start.size();
  // Per segment: the exact max/denom/log_z sequence of log_prob_pick, so the
  // segmented op is bitwise-identical to one log_prob_pick per segment.
  std::vector<double> log_z(S);
  Matrix out(1, S);
  for (std::size_t s = 0; s < S; ++s) {
    const std::size_t lo = seg_start[s];
    const std::size_t hi = s + 1 < S ? seg_start[s + 1] : L.rows();
    assert(lo < hi && hi <= L.rows() && picks[s] < hi - lo);
    double max_logit = L(lo, 0);
    for (std::size_t r = lo + 1; r < hi; ++r) {
      max_logit = std::max(max_logit, L(r, 0));
    }
    double denom = 0.0;
    for (std::size_t r = lo; r < hi; ++r) denom += std::exp(L(r, 0) - max_logit);
    log_z[s] = max_logit + std::log(denom);
    out(0, s) = L(lo + picks[s], 0) - log_z[s];
  }
  const int ai = logits.idx;
  return Var{push(std::move(out), node(logits).needs_grad,
                  [ai, seg_start = std::move(seg_start),
                   picks = std::move(picks),
                   log_z = std::move(log_z)](Tape& t, Node& self) {
    Node& na = t.nodes_[ai];
    if (!na.needs_grad) return;
    const std::size_t S = seg_start.size();
    for (std::size_t s = 0; s < S; ++s) {
      const std::size_t lo = seg_start[s];
      const std::size_t hi = s + 1 < S ? seg_start[s + 1] : na.value.rows();
      const double g = self.grad(0, s);
      for (std::size_t r = lo; r < hi; ++r) {
        const double p = std::exp(na.value(r, 0) - log_z[s]);
        na.grad(r, 0) += g * ((r == lo + picks[s] ? 1.0 : 0.0) - p);
      }
    }
  })};
}

Var Tape::entropy_segments(Var logits, std::vector<std::size_t> seg_start) {
  const Matrix& L = value(logits);
  assert(L.cols() == 1);
  const std::size_t S = seg_start.size();
  // Same probability/entropy sequence as softmax_values + entropy per segment.
  std::vector<double> probs(L.rows());
  std::vector<double> ent(S);
  Matrix out(1, S);
  for (std::size_t s = 0; s < S; ++s) {
    const std::size_t lo = seg_start[s];
    const std::size_t hi = s + 1 < S ? seg_start[s + 1] : L.rows();
    assert(lo < hi && hi <= L.rows());
    double max_logit = L(lo, 0);
    for (std::size_t r = lo + 1; r < hi; ++r) {
      max_logit = std::max(max_logit, L(r, 0));
    }
    double denom = 0.0;
    for (std::size_t r = lo; r < hi; ++r) {
      probs[r] = std::exp(L(r, 0) - max_logit);
      denom += probs[r];
    }
    double h = 0.0;
    for (std::size_t r = lo; r < hi; ++r) {
      probs[r] /= denom;
      if (probs[r] > 1e-12) h -= probs[r] * std::log(probs[r]);
    }
    ent[s] = h;
    out(0, s) = h;
  }
  const int ai = logits.idx;
  return Var{push(std::move(out), node(logits).needs_grad,
                  [ai, seg_start = std::move(seg_start),
                   probs = std::move(probs),
                   ent = std::move(ent)](Tape& t, Node& self) {
    Node& na = t.nodes_[ai];
    if (!na.needs_grad) return;
    const std::size_t S = seg_start.size();
    for (std::size_t s = 0; s < S; ++s) {
      const std::size_t lo = seg_start[s];
      const std::size_t hi = s + 1 < S ? seg_start[s + 1] : na.value.rows();
      const double g = self.grad(0, s);
      // dH/dl_r = -p_r (log p_r + H), as in the per-event entropy op.
      for (std::size_t r = lo; r < hi; ++r) {
        const double logp = probs[r] > 1e-12 ? std::log(probs[r]) : -27.6;
        na.grad(r, 0) += g * (-probs[r] * (logp + ent[s]));
      }
    }
  })};
}

std::vector<double> Tape::softmax_values(Var logits) const {
  const Matrix& L = value(logits);
  std::vector<double> out(L.cols());
  double max_logit = L(0, 0);
  for (std::size_t c = 1; c < L.cols(); ++c) max_logit = std::max(max_logit, L(0, c));
  double denom = 0.0;
  for (std::size_t c = 0; c < L.cols(); ++c) {
    out[c] = std::exp(L(0, c) - max_logit);
    denom += out[c];
  }
  for (double& v : out) v /= denom;
  return out;
}

void Tape::backward(Var output, double seed) {
  Node& out = node(output);
  assert(out.value.size() == 1);
  out.grad(0, 0) += seed;
  for (int i = output.idx; i >= 0; --i) {
    Node& n = nodes_[i];
    if (!n.needs_grad) continue;
    if (n.backward_fn) n.backward_fn(*this, n);
    if (n.bound_param) n.bound_param->grad.add_in_place(n.grad);
  }
}

}  // namespace decima::nn
