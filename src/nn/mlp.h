// Two-hidden-layer perceptron, the reusable building block of Decima.
//
// Per §6.1 of the paper: every non-linear transformation (the six GNN
// transforms f/g at the three summarization levels, and the two policy score
// functions q and w) is a two-hidden-layer network with 32 and 16 hidden
// units; the total model is ~12.7k parameters.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/tape.h"
#include "util/rng.h"

namespace decima::nn {

class Mlp {
 public:
  // hidden defaults to the paper's {32, 16}.
  Mlp(std::string name, std::size_t in_dim, std::size_t out_dim,
      std::vector<std::size_t> hidden = {32, 16});

  // Applies the network to `x` (n x in_dim) -> (n x out_dim) on `tape`.
  // Hidden activations are leaky ReLU; the output layer is linear.
  Var apply(Tape& tape, Var x) const;

  // Tape-free numeric forward pass: same layers, same kernels, same
  // arithmetic order as apply() (each layer is Matrix::matmul + bias add +
  // leaky-ReLU, exactly what Tape::linear's forward computes), so the result
  // matches apply()'s value bit for bit. Row r of the output depends only on
  // row r of `x`. This is what the incremental embedding cache
  // (src/gnn/embedding_cache.h) evaluates dirty rows with.
  Matrix forward(const Matrix& x) const;

  // Initializes weights (He-style scaled uniform) from `rng`. Biases zero.
  void init(Rng& rng);

  std::vector<Param*> params();
  std::vector<const Param*> params() const;
  std::size_t num_parameters() const;
  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::size_t in_dim_;
  std::size_t out_dim_;
  // Owned by unique_ptr so Param addresses stay stable if the Mlp moves.
  std::vector<std::unique_ptr<Param>> weights_;
  std::vector<std::unique_ptr<Param>> biases_;
};

// A named collection of parameters; the unit Adam and (de)serialization
// operate on. Does not own the parameters.
class ParamSet {
 public:
  void add(Param* p) { params_.push_back(p); }
  void add(const std::vector<Param*>& ps) {
    params_.insert(params_.end(), ps.begin(), ps.end());
  }
  const std::vector<Param*>& params() const { return params_; }
  std::size_t num_parameters() const;
  void zero_grads();
  // Copies values from another set with identical structure.
  void copy_values_from(const ParamSet& other);
  // Accumulates grads from another set (same structure) scaled by `scale`.
  void accumulate_grads_from(const ParamSet& other, double scale = 1.0);
  // Flattens all gradients into a single vector (for storage per action).
  std::vector<double> flat_grads() const;
  // Adds `scale * flat` into the grads.
  void add_flat_to_grads(const std::vector<double>& flat, double scale);
  double grad_norm() const;
  void clip_grad_norm(double max_norm);

  // Monotone fingerprint of the parameter VALUES, globally unique across
  // ParamSet instances (so two different policy snapshots never share one).
  // Every value-mutating entry point bumps it: Adam::step, load_params,
  // copy_values_from, and the binary checkpoint loaders. The incremental
  // embedding cache compares it to detect that cached activations were
  // computed under stale parameters. Direct writes to Param::value bypass
  // the counter — call bump_version() after such writes.
  std::uint64_t version() const { return version_; }
  void bump_version();

 private:
  static std::uint64_t next_version();

  std::vector<Param*> params_;
  std::uint64_t version_ = next_version();
};

// Saves/loads a ParamSet to a simple text format. Structure (names, shapes)
// must match on load. Returns false on mismatch or I/O error.
bool save_params(const ParamSet& set, const std::string& path);
bool load_params(ParamSet& set, const std::string& path);

}  // namespace decima::nn
