#include "rl/objectives.h"

#include <algorithm>
#include <cmath>

namespace decima::rl {

namespace {

// Applies `interval_penalty(t0, t1)` over the K+1 action-aligned intervals.
template <typename F>
std::vector<double> per_interval(const sim::ClusterEnv& env, F&& penalty) {
  const auto& times = env.action_times();
  std::vector<double> out;
  out.reserve(times.size() + 1);
  double prev = 0.0;
  for (double t : times) {
    out.push_back(-penalty(prev, t));
    prev = t;
  }
  out.push_back(-penalty(prev, env.now()));
  return out;
}

// ∫_{t0}^{t1} age_j(t) dt for one job active on a sub-interval.
double age_integral(double arrival, double finish, double t0, double t1) {
  const double lo = std::max(t0, arrival);
  const double hi = std::min(t1, finish);
  if (hi <= lo) return 0.0;
  const double a0 = lo - arrival;
  const double a1 = hi - arrival;
  return 0.5 * (a1 * a1 - a0 * a0);
}

}  // namespace

std::vector<double> avg_jct_rewards(const sim::ClusterEnv& env) {
  return env.action_rewards();
}

std::vector<double> makespan_rewards(const sim::ClusterEnv& env) {
  return env.action_rewards_makespan();
}

std::vector<double> tail_jct_rewards(const sim::ClusterEnv& env) {
  const auto& jobs = env.jobs();
  return per_interval(env, [&](double t0, double t1) {
    double total = 0.0;
    for (const auto& j : jobs) {
      if (!j.arrived) continue;
      const double fin = j.done() ? j.finish : env.now();
      total += age_integral(j.arrival, fin, t0, t1);
    }
    return total;
  });
}

std::vector<double> deadline_rewards(const sim::ClusterEnv& env,
                                     const DeadlineConfig& config) {
  const auto& jobs = env.jobs();
  // Precompute per-job deadline and miss time (the moment the miss becomes
  // definite: the late finish, or the deadline itself if still unfinished).
  std::vector<double> miss_at;
  for (const auto& j : jobs) {
    if (!j.arrived) continue;
    const double deadline =
        j.arrival + config.slack * j.spec.critical_path_duration();
    if (j.done()) {
      if (j.finish > deadline) miss_at.push_back(j.finish);
    } else if (env.now() > deadline) {
      miss_at.push_back(deadline);
    }
  }
  const auto base = env.action_rewards();
  const auto& times = env.action_times();
  std::vector<double> out = base;
  double prev = 0.0;
  for (std::size_t k = 0; k < out.size(); ++k) {
    const double t =
        k < times.size() ? times[k] : std::max(prev, env.now());
    for (double m : miss_at) {
      if (m > prev && m <= t) out[k] -= config.miss_penalty;
    }
    prev = t;
  }
  return out;
}

double deadline_hit_rate(const sim::ClusterEnv& env,
                         const DeadlineConfig& config) {
  int done = 0, hit = 0;
  for (const auto& j : env.jobs()) {
    if (!j.done()) continue;
    ++done;
    const double deadline =
        j.arrival + config.slack * j.spec.critical_path_duration();
    if (j.finish <= deadline) ++hit;
  }
  return done ? static_cast<double>(hit) / done : 0.0;
}

}  // namespace decima::rl
