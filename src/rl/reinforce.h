// REINFORCE training loop — Algorithm 1 of the paper.
//
// Per iteration:
//   1. sample an episode length τ ~ Exp(τ_mean) and grow τ_mean (curriculum
//      learning, §5.3 challenge #1; memoryless termination so the agent
//      cannot game a deterministic horizon);
//   2. sample a job arrival sequence, shared by all N episodes of the
//      iteration (input-dependent baseline, §5.3 challenge #2);
//   3. roll out N episodes (stochastic policy) — sequentially at
//      rollout_threads = 1 (the reference path), else on a persistent pool
//      of workers that each own a parameter-snapshot clone of the agent;
//      episode seeds pre-derived in episode order keep the result
//      bit-identical either way;
//   4. convert rewards to returns (optionally differential/average-reward,
//      Appendix B), compute time-aligned per-sequence baselines, normalize
//      advantages;
//   5. replay each episode, accumulating −Σ_k A_k ∇log π_θ(s_k, a_k) − β∇H.
//      Two equivalent paths (docs/training.md): with
//      AgentConfig::batched_replay (default) the recorded actions re-drive
//      the simulator while each scheduling event is snapshotted, then the
//      whole episode is scored and differentiated on ONE tape with a single
//      backward pass; the reference path builds one tape per action and
//      backwards through it immediately. Gradients match to <= 1e-10
//      (tests/test_batched_equivalence.cpp);
//   6. clip gradients and take an Adam step (lr 1e-3, Appendix C).
//
// Ablation switches reproduce Fig. 14: fixed_sequences = false disables the
// input-dependent baseline; batched samplers train on batch arrivals;
// agent-side flags disable the GNN or parallelism control.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/agent.h"
#include "nn/adam.h"
#include "rl/objectives.h"
#include "util/stats.h"
#include "util/sync.h"
#include "workload/arrivals.h"

namespace decima::rl {

// kAvgJct and kMakespan are the paper's evaluated objectives (§7); kTailJct
// and kDeadline implement the §8 reward-shaping extensions (objectives.h).
enum class Objective { kAvgJct, kMakespan, kTailJct, kDeadline };

// Produces the job arrival sequence for a given seed. The same seed must
// yield the same sequence (required by the input-dependent baseline and the
// replay pass).
using WorkloadSampler =
    std::function<std::vector<workload::ArrivingJob>(std::uint64_t seed)>;

struct TrainConfig {
  int num_iterations = 100;
  int episodes_per_iter = 8;
  // Rollout/replay worker pool (docs/training.md, "Parallel rollout & the
  // determinism contract"). 1 = the sequential reference path: every episode
  // runs inline on the calling thread. K > 1 spawns K persistent workers
  // (util::WorkerPool), each owning its own cloned agent (params
  // re-snapshotted from the master every iteration) and embedding cache.
  // Episode seeds are derived on the coordinator in episode-index order and
  // per-episode gradients reduce in that same order, so training is
  // bit-identical for every value of this knob — params, checkpoints, and
  // stats (tests/test_parallel_rollout.cpp pins threads ∈ {1, 2, 8}, clean
  // and under fault plans). Only wall-clock changes.
  int rollout_threads = 1;

  double lr = 1e-3;
  double grad_clip = 20.0;

  // Entropy bonus, decayed multiplicatively each iteration.
  double entropy_weight = 0.2;
  double entropy_decay = 0.97;
  double entropy_min = 0.005;

  // Curriculum (§5.3): episodes end after τ ~ Exp(τ_mean) simulated seconds;
  // τ_mean grows linearly per iteration.
  bool curriculum = true;
  double tau_mean_init = 600.0;
  double tau_mean_growth = 60.0;
  double tau_mean_max = 1e6;

  // Input-dependent baseline: same arrival sequence for all episodes of an
  // iteration. false = the "w/o variance reduction" ablation.
  bool fixed_sequences = true;

  // Average-reward (differential) formulation for continuous arrivals.
  bool differential_reward = true;
  double reward_rate_horizon = 1e3;  // moving-average horizon (samples)

  bool normalize_advantages = true;

  Objective objective = Objective::kAvgJct;
  DeadlineConfig deadline;  // used when objective == kDeadline
  sim::EnvConfig env;
  WorkloadSampler sampler;
  std::uint64_t seed = 123;
};

struct IterationStats {
  int iteration = 0;
  double tau = 0.0;
  double mean_total_reward = 0.0;  // across the N episodes (pre-baseline)
  double mean_avg_jct = 0.0;       // of completed jobs in the rollouts
  int total_actions = 0;
  double grad_norm = 0.0;
  double entropy_weight = 0.0;
  // Phase timers (BENCH_train.json). rollout/replay/step are *wall-clock*
  // seconds per Algorithm-1 phase, measured on the coordinating thread as
  // one span per phase: rollout = step 3, replay = step 5, step = everything
  // else (returns/baselines/reduction/Adam, the remainder of total_seconds).
  // Under a worker pool the per-episode spans overlap, so they are NEVER
  // summed into these — summing would double-count concurrent work. The
  // *_cpu_seconds fields carry that sum instead: per-worker busy seconds
  // aggregated over the phase's episodes (≈ wall-clock at rollout_threads =
  // 1; up to rollout_threads × wall-clock when the pool scales). Invariants,
  // pinned by tests/test_parallel_rollout.cpp:
  //   rollout_seconds + replay_seconds + step_seconds == total_seconds
  //   0 <= <phase>_cpu_seconds <= rollout_threads * <phase>_seconds
  double rollout_seconds = 0.0;
  double replay_seconds = 0.0;
  double step_seconds = 0.0;
  double total_seconds = 0.0;
  double rollout_cpu_seconds = 0.0;
  double replay_cpu_seconds = 0.0;
};

class ReinforceTrainer {
 public:
  // `agent` is the master policy; its parameters are updated in place.
  ReinforceTrainer(core::DecimaAgent& agent, TrainConfig config);

  // Runs one Algorithm-1 iteration.
  IterationStats iterate();

  // Full training run; returns the per-iteration learning curve.
  std::vector<IterationStats> train();

  double tau_mean() const { return tau_mean_; }
  const TrainConfig& config() const { return config_; }
  int iteration() const { return iteration_; }

  // --- Checkpointing (src/io, docs/serving.md) ------------------------------
  // Writes a versioned binary checkpoint of the full training state: the
  // agent's config + parameters, the Adam moments, and the trainer's RNG
  // stream and entropy/curriculum/reward-rate schedules. False on I/O error.
  bool save_checkpoint(const std::string& path) const;
  // Restores a checkpoint written by save_checkpoint into this trainer. The
  // trainer's TrainConfig (env included) and the agent's AgentConfig must
  // match the checkpoint on every dynamics-affecting field
  // (num_iterations/rollout_threads may differ — thread count provably does
  // not change results); returns false with the trainer untouched otherwise. The
  // WorkloadSampler cannot be fingerprinted (it is a std::function): the
  // caller must install the same sampler for the guarantee to hold. After a
  // successful resume the run continues bit-exactly where the saved one
  // stopped:
  //   train(N) == train(k) + save_checkpoint + resume + train(N-k).
  bool resume(const std::string& path);

 private:
  struct EpisodeData {
    std::vector<core::RecordedAction> actions;
    std::vector<double> rewards;       // K+1 entries (see baseline.h)
    std::vector<double> action_times;  // K entries
    double end_time = 0.0;             // simulated time when the episode ended
    double avg_jct = 0.0;
    int completed = 0;
    std::uint64_t env_seed = 0;
    std::uint64_t workload_seed = 0;
  };

  EpisodeData rollout(core::DecimaAgent& worker, std::uint64_t workload_seed,
                      std::uint64_t env_seed, std::uint64_t sample_seed,
                      double tau) const;
  void replay(core::DecimaAgent& worker, const EpisodeData& episode,
              std::vector<double> advantages, double tau) const;
  std::vector<double> episode_rewards(const sim::ClusterEnv& env) const;

  // Lazily builds the persistent worker agents (one clone of the master per
  // rollout thread) and, for rollout_threads > 1, the pool itself.
  void ensure_workers();
  // Runs fn(episode, worker) for every episode in [0, n) — inline on this
  // thread at rollout_threads = 1, else scattered over the pool. Returns the
  // busy seconds summed across workers (the *_cpu_seconds aggregate).
  double run_on_workers(int n, const util::WorkerPool::Task& fn);

  core::DecimaAgent& agent_;
  TrainConfig config_;
  Rng rng_;
  nn::Adam adam_;
  double tau_mean_;
  double entropy_weight_;
  MovingAverage reward_rate_;  // r̄ for the differential reward
  int iteration_ = 0;

  // Persistent per-worker agent clones: worker w touches worker_agents_[w]
  // and nothing else, only from the pool task currently naming w, so the
  // agents need no locks (docs/concurrency.md). Parameter values are
  // re-snapshotted from the master at every iteration start; the embedding
  // cache each clone owns then re-validates itself and stays warm across the
  // iteration's episodes. pool_ is declared after worker_agents_ so its
  // destructor joins the threads before the agents they borrow die.
  std::vector<std::unique_ptr<core::DecimaAgent>> worker_agents_;
  std::unique_ptr<util::WorkerPool> pool_;
};

// Greedy evaluation of a scheduler over full episodes; unfinished jobs are
// charged their age at episode end so unstable policies are penalized.
double evaluate_avg_jct(sim::Scheduler& sched, const sim::EnvConfig& config,
                        const std::vector<std::vector<workload::ArrivingJob>>&
                            workloads);

}  // namespace decima::rl
