// Reward shaping for alternative scheduling objectives (§8 "Other learning
// objectives"). The paper's evaluation uses average JCT and makespan; §8
// sketches deadline-aware and tail-focused rewards, which we implement as
// additional per-action reward generators:
//
//  - avg JCT:    r_k = −∫ J(t) dt            (Little's law, §5.3)
//  - makespan:   r_k = −(t_k − t_{k−1})
//  - tail JCT:   r_k = −∫ Σ_j age_j(t) dt    (penalizes old jobs
//                superlinearly: total penalty per job is JCT²/2, which
//                pushes down the tail of the JCT distribution)
//  - deadline:   avg-JCT penalty plus a fixed penalty for every job that
//                misses its deadline inside the interval; deadlines are
//                arrival + slack × critical-path duration.
//
// All generators return K+1 entries aligned with ClusterEnv::action_times()
// (the final entry covers the span from the last action to episode end),
// matching the convention in baseline.h.
#pragma once

#include <vector>

#include "sim/cluster_env.h"

namespace decima::rl {

std::vector<double> avg_jct_rewards(const sim::ClusterEnv& env);
std::vector<double> makespan_rewards(const sim::ClusterEnv& env);

// Integral of the total age of in-system jobs over each inter-action
// interval, negated.
std::vector<double> tail_jct_rewards(const sim::ClusterEnv& env);

struct DeadlineConfig {
  // deadline_j = arrival_j + slack * critical_path_duration_j.
  double slack = 4.0;
  // Penalty added when a job finishes past its deadline (or remains
  // unfinished past it at episode end).
  double miss_penalty = 100.0;
};

std::vector<double> deadline_rewards(const sim::ClusterEnv& env,
                                     const DeadlineConfig& config);

// Fraction of completed jobs that met their deadline (reporting helper).
double deadline_hit_rate(const sim::ClusterEnv& env,
                         const DeadlineConfig& config);

}  // namespace decima::rl
