#include "rl/reinforce.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "rl/baseline.h"

namespace decima::rl {

ReinforceTrainer::ReinforceTrainer(core::DecimaAgent& agent, TrainConfig config)
    : agent_(agent),
      config_(std::move(config)),
      rng_(config_.seed),
      adam_(&agent.params(), nn::AdamConfig{.lr = config_.lr}),
      tau_mean_(config_.tau_mean_init),
      entropy_weight_(config_.entropy_weight),
      reward_rate_(config_.reward_rate_horizon) {}

std::vector<double> ReinforceTrainer::episode_rewards(
    const sim::ClusterEnv& env) const {
  switch (config_.objective) {
    case Objective::kAvgJct:
      return avg_jct_rewards(env);
    case Objective::kMakespan:
      return makespan_rewards(env);
    case Objective::kTailJct:
      return tail_jct_rewards(env);
    case Objective::kDeadline:
      return deadline_rewards(env, config_.deadline);
  }
  return avg_jct_rewards(env);
}

ReinforceTrainer::EpisodeData ReinforceTrainer::rollout(
    core::DecimaAgent& worker, std::uint64_t workload_seed,
    std::uint64_t env_seed, std::uint64_t sample_seed, double tau) const {
  sim::EnvConfig env_config = config_.env;
  env_config.seed = env_seed;
  sim::ClusterEnv env(env_config);
  workload::load(env, config_.sampler(workload_seed));

  worker.set_mode(core::Mode::kSample);
  worker.set_sample_seed(sample_seed);
  worker.start_recording();
  env.run(worker, tau);

  EpisodeData data;
  data.actions = worker.take_recorded();
  data.rewards = episode_rewards(env);
  data.action_times.assign(env.action_times().begin(), env.action_times().end());
  data.avg_jct = env.avg_jct();
  data.end_time = env.now();
  data.completed = static_cast<int>(env.jcts().size());
  data.env_seed = env_seed;
  data.workload_seed = workload_seed;
  return data;
}

void ReinforceTrainer::replay(core::DecimaAgent& worker,
                              const EpisodeData& episode,
                              std::vector<double> advantages,
                              double tau) const {
  sim::EnvConfig env_config = config_.env;
  env_config.seed = episode.env_seed;
  sim::ClusterEnv env(env_config);
  workload::load(env, config_.sampler(episode.workload_seed));

  worker.params().zero_grads();
  worker.start_replay(episode.actions, std::move(advantages), entropy_weight_);
  env.run(worker, tau);
  // Batched replay (AgentConfig::batched_replay): the run above only
  // snapshotted the scheduling events; this scores them on chunked tapes,
  // each chunk differentiated by a single backward pass. No-op on the
  // reference path, which accumulated gradients action by action.
  worker.finish_replay();
}

IterationStats ReinforceTrainer::iterate() {
  using Clock = std::chrono::steady_clock;
  const auto seconds_since = [](Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  const auto t_iter = Clock::now();
  const int n = config_.episodes_per_iter;

  // (1) Episode length: memoryless termination with growing mean (§5.3).
  const double tau =
      config_.curriculum ? rng_.exponential(tau_mean_) : sim::kInfTime;
  tau_mean_ = std::min(tau_mean_ + config_.tau_mean_growth, config_.tau_mean_max);

  // (2) Arrival sequence(s). fixed_sequences shares one sequence across the
  // iteration's episodes (input-dependent baseline); the ablation draws a
  // fresh sequence per episode.
  const std::uint64_t shared_seq = rng_.fork();
  std::vector<std::uint64_t> workload_seeds(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> env_seeds(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> sample_seeds(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workload_seeds[static_cast<std::size_t>(i)] =
        config_.fixed_sequences ? shared_seq : rng_.fork();
    env_seeds[static_cast<std::size_t>(i)] = rng_.fork();
    sample_seeds[static_cast<std::size_t>(i)] = rng_.fork();
  }

  // Per-episode worker agents sharing the master's current parameters.
  std::vector<std::unique_ptr<core::DecimaAgent>> workers;
  workers.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers.push_back(agent_.clone());

  // (3) Parallel rollouts.
  const auto t_rollout = Clock::now();
  std::vector<EpisodeData> episodes(static_cast<std::size_t>(n));
  {
    const int threads = std::max(1, std::min(config_.num_threads, n));
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (int i = t; i < n; i += threads) {
          const std::size_t ii = static_cast<std::size_t>(i);
          episodes[ii] = rollout(*workers[ii], workload_seeds[ii],
                                 env_seeds[ii], sample_seeds[ii], tau);
        }
      });
    }
    for (auto& th : pool) th.join();
  }
  const double rollout_seconds = seconds_since(t_rollout);

  // (4) Returns, baselines, advantages.
  double mean_total_reward = 0.0;
  double mean_avg_jct = 0.0;
  int total_actions = 0;
  std::vector<EpisodeReturns> returns(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::size_t ii = static_cast<std::size_t>(i);
    std::vector<double> rewards = episodes[ii].rewards;
    // Differential (average) reward: subtract the moving-average reward rate
    // times each interval's simulated duration (Appendix B).
    if (config_.differential_reward) {
      const double end = episodes[ii].end_time;
      const auto& times = episodes[ii].action_times;
      double total_r = 0.0;
      for (double r : rewards) total_r += r;
      if (end > 0.0) reward_rate_.add(total_r / end);
      const double rate = reward_rate_.value();
      double prev_t = 0.0;
      for (std::size_t k = 0; k < rewards.size(); ++k) {
        const double t_k = k < times.size() ? times[k] : std::max(prev_t, end);
        rewards[k] -= rate * std::max(t_k - prev_t, 0.0);
        prev_t = t_k;
      }
    }
    returns[ii].times = episodes[ii].action_times;
    returns[ii].returns = returns_to_go(rewards);
    for (double r : episodes[ii].rewards) mean_total_reward += r;
    mean_avg_jct += episodes[ii].avg_jct;
    total_actions += static_cast<int>(episodes[ii].actions.size());
  }
  mean_total_reward /= std::max(n, 1);
  mean_avg_jct /= std::max(n, 1);

  const auto baselines = time_aligned_baselines(returns);
  std::vector<std::vector<double>> advantages(static_cast<std::size_t>(n));
  RunningStats adv_stats;
  for (int i = 0; i < n; ++i) {
    const std::size_t ii = static_cast<std::size_t>(i);
    advantages[ii].resize(returns[ii].returns.size());
    for (std::size_t k = 0; k < advantages[ii].size(); ++k) {
      advantages[ii][k] = returns[ii].returns[k] - baselines[ii][k];
      adv_stats.add(advantages[ii][k]);
    }
  }
  if (config_.normalize_advantages) {
    const double scale = adv_stats.stddev() > 1e-9 ? 1.0 / adv_stats.stddev() : 0.0;
    for (auto& ep : advantages) {
      for (double& a : ep) a *= scale;
    }
  }

  // (5) Parallel replays accumulate gradients into each worker's params.
  const auto t_replay = Clock::now();
  {
    const int threads = std::max(1, std::min(config_.num_threads, n));
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (int i = t; i < n; i += threads) {
          const std::size_t ii = static_cast<std::size_t>(i);
          replay(*workers[ii], episodes[ii], advantages[ii], tau);
        }
      });
    }
    for (auto& th : pool) th.join();
  }
  const double replay_seconds = seconds_since(t_replay);

  // (6) Reduce gradients (deterministic order), clip, Adam.
  agent_.params().zero_grads();
  for (int i = 0; i < n; ++i) {
    agent_.params().accumulate_grads_from(
        workers[static_cast<std::size_t>(i)]->params(), 1.0 / n);
  }
  agent_.params().clip_grad_norm(config_.grad_clip);
  const double grad_norm = agent_.params().grad_norm();
  adam_.step();
  agent_.params().zero_grads();

  entropy_weight_ =
      std::max(entropy_weight_ * config_.entropy_decay, config_.entropy_min);

  IterationStats stats;
  stats.iteration = iteration_++;
  stats.tau = tau;
  stats.mean_total_reward = mean_total_reward;
  stats.mean_avg_jct = mean_avg_jct;
  stats.total_actions = total_actions;
  stats.grad_norm = grad_norm;
  stats.entropy_weight = entropy_weight_;
  stats.rollout_seconds = rollout_seconds;
  stats.replay_seconds = replay_seconds;
  stats.step_seconds = seconds_since(t_iter) - rollout_seconds - replay_seconds;
  return stats;
}

std::vector<IterationStats> ReinforceTrainer::train() {
  std::vector<IterationStats> curve;
  curve.reserve(static_cast<std::size_t>(config_.num_iterations));
  for (int i = 0; i < config_.num_iterations; ++i) curve.push_back(iterate());
  return curve;
}

double evaluate_avg_jct(
    sim::Scheduler& sched, const sim::EnvConfig& config,
    const std::vector<std::vector<workload::ArrivingJob>>& workloads) {
  double total = 0.0;
  for (const auto& w : workloads) {
    sim::ClusterEnv env(config);
    workload::load(env, w);
    env.run(sched);
    double jct_sum = 0.0;
    for (const auto& job : env.jobs()) {
      jct_sum += job.done() ? job.jct() : env.now() - job.arrival;
    }
    total += jct_sum / static_cast<double>(env.jobs().size());
  }
  return total / static_cast<double>(workloads.size());
}

}  // namespace decima::rl
