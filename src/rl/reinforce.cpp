#include "rl/reinforce.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "io/checkpoint.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rl/baseline.h"

namespace decima::rl {

namespace {

// Training-plane metric handles (docs/observability.md). Observation only:
// clocks, counters, and gauges live entirely outside the RNG streams and
// the gradient path, so training with the obs layer enabled is byte-
// identical to disabled (tests/test_observability.cpp pins this at
// rollout_threads 1 and 8 — the PR 8 phase-timer discipline).
struct TrainMetrics {
  obs::Counter& iterations;
  obs::Counter& episodes;
  obs::Gauge& rollout_utilization;
  obs::Gauge& replay_utilization;
  obs::Histogram& iteration_us;

  static TrainMetrics& get() {
    static TrainMetrics* m = new TrainMetrics{
        obs::Registry::instance().counter(obs::names::kTrainIterations),
        obs::Registry::instance().counter(obs::names::kTrainEpisodes),
        obs::Registry::instance().gauge(obs::names::kTrainRolloutUtilization),
        obs::Registry::instance().gauge(obs::names::kTrainReplayUtilization),
        obs::Registry::instance().histogram(obs::names::kTrainIterationUs)};
    return *m;
  }
};

// Worker-pool busy fraction for one phase: busy CPU seconds over the
// threads × wall-clock capacity, from the IterationStats accounting.
double pool_utilization(double cpu_seconds, double wall_seconds,
                        int threads) {
  const double capacity = wall_seconds * static_cast<double>(threads);
  return capacity > 0.0 ? cpu_seconds / capacity : 0.0;
}

// The TrainConfig fields that shape the training dynamics, written to (and
// verified against) trainer checkpoints. num_iterations and rollout_threads
// are deliberately absent: iteration count is the caller's loop, and
// per-episode gradients reduce in a fixed order so the thread count cannot
// change results (tests/test_parallel_rollout.cpp and the resume-across-
// thread-counts case in tests/test_checkpoint.cpp pin this). The
// WorkloadSampler is a
// std::function and inherently unverifiable — resume() trusts the caller to
// install the same sampler (reinforce.h documents this).
struct TrainFingerprint {
  double lr, grad_clip;
  double entropy_weight, entropy_decay, entropy_min;
  bool curriculum;
  double tau_mean_init, tau_mean_growth, tau_mean_max;
  bool fixed_sequences, differential_reward, normalize_advantages;
  double reward_rate_horizon;
  std::uint32_t objective;
  std::uint32_t episodes_per_iter;
  double deadline_slack, deadline_miss_penalty;
  std::uint64_t seed;
  sim::EnvConfig env;  // every field is dynamics-affecting

  static TrainFingerprint of(const TrainConfig& c) {
    TrainFingerprint f;
    f.lr = c.lr;
    f.grad_clip = c.grad_clip;
    f.entropy_weight = c.entropy_weight;
    f.entropy_decay = c.entropy_decay;
    f.entropy_min = c.entropy_min;
    f.curriculum = c.curriculum;
    f.tau_mean_init = c.tau_mean_init;
    f.tau_mean_growth = c.tau_mean_growth;
    f.tau_mean_max = c.tau_mean_max;
    f.fixed_sequences = c.fixed_sequences;
    f.differential_reward = c.differential_reward;
    f.normalize_advantages = c.normalize_advantages;
    f.reward_rate_horizon = c.reward_rate_horizon;
    f.objective = static_cast<std::uint32_t>(c.objective);
    f.episodes_per_iter = static_cast<std::uint32_t>(c.episodes_per_iter);
    f.deadline_slack = c.deadline.slack;
    f.deadline_miss_penalty = c.deadline.miss_penalty;
    f.seed = c.seed;
    f.env = c.env;
    return f;
  }

  void write(io::BinaryWriter& w) const {
    w.f64(lr);
    w.f64(grad_clip);
    w.f64(entropy_weight);
    w.f64(entropy_decay);
    w.f64(entropy_min);
    w.boolean(curriculum);
    w.f64(tau_mean_init);
    w.f64(tau_mean_growth);
    w.f64(tau_mean_max);
    w.boolean(fixed_sequences);
    w.boolean(differential_reward);
    w.boolean(normalize_advantages);
    w.f64(reward_rate_horizon);
    w.u32(objective);
    w.u32(episodes_per_iter);
    w.f64(deadline_slack);
    w.f64(deadline_miss_penalty);
    w.u64(seed);
    w.u32(static_cast<std::uint32_t>(env.num_executors));
    w.u64(env.classes.size());
    for (const sim::ExecutorClass& c : env.classes) {
      w.f64(c.mem);
      w.str(c.name);
    }
    w.f64(env.moving_delay);
    w.boolean(env.enable_moving_delay);
    w.f64(env.first_wave_factor);
    w.boolean(env.enable_wave_effect);
    w.boolean(env.enable_inflation);
    w.f64(env.duration_noise);
    w.u64(env.seed);
    w.u64(env.max_events);
  }

  static TrainFingerprint read(io::BinaryReader& r) {
    TrainFingerprint f;
    f.lr = r.f64();
    f.grad_clip = r.f64();
    f.entropy_weight = r.f64();
    f.entropy_decay = r.f64();
    f.entropy_min = r.f64();
    f.curriculum = r.boolean();
    f.tau_mean_init = r.f64();
    f.tau_mean_growth = r.f64();
    f.tau_mean_max = r.f64();
    f.fixed_sequences = r.boolean();
    f.differential_reward = r.boolean();
    f.normalize_advantages = r.boolean();
    f.reward_rate_horizon = r.f64();
    f.objective = r.u32();
    f.episodes_per_iter = r.u32();
    f.deadline_slack = r.f64();
    f.deadline_miss_penalty = r.f64();
    f.seed = r.u64();
    f.env.num_executors = static_cast<int>(r.u32());
    f.env.classes.resize(static_cast<std::size_t>(
        std::min<std::uint64_t>(r.u64(), 1024)));
    for (sim::ExecutorClass& c : f.env.classes) {
      c.mem = r.f64();
      c.name = r.str();
    }
    f.env.moving_delay = r.f64();
    f.env.enable_moving_delay = r.boolean();
    f.env.first_wave_factor = r.f64();
    f.env.enable_wave_effect = r.boolean();
    f.env.enable_inflation = r.boolean();
    f.env.duration_noise = r.f64();
    f.env.seed = r.u64();
    f.env.max_events = r.u64();
    return f;
  }

  bool operator==(const TrainFingerprint& o) const {
    return lr == o.lr && grad_clip == o.grad_clip &&
           entropy_weight == o.entropy_weight &&
           entropy_decay == o.entropy_decay && entropy_min == o.entropy_min &&
           curriculum == o.curriculum && tau_mean_init == o.tau_mean_init &&
           tau_mean_growth == o.tau_mean_growth &&
           tau_mean_max == o.tau_mean_max &&
           fixed_sequences == o.fixed_sequences &&
           differential_reward == o.differential_reward &&
           normalize_advantages == o.normalize_advantages &&
           reward_rate_horizon == o.reward_rate_horizon &&
           objective == o.objective &&
           episodes_per_iter == o.episodes_per_iter &&
           deadline_slack == o.deadline_slack &&
           deadline_miss_penalty == o.deadline_miss_penalty &&
           seed == o.seed && same_env(o.env);
  }

  bool same_env(const sim::EnvConfig& o) const {
    if (env.num_executors != o.num_executors ||
        env.classes.size() != o.classes.size() ||
        env.moving_delay != o.moving_delay ||
        env.enable_moving_delay != o.enable_moving_delay ||
        env.first_wave_factor != o.first_wave_factor ||
        env.enable_wave_effect != o.enable_wave_effect ||
        env.enable_inflation != o.enable_inflation ||
        env.duration_noise != o.duration_noise || env.seed != o.seed ||
        env.max_events != o.max_events) {
      return false;
    }
    for (std::size_t i = 0; i < env.classes.size(); ++i) {
      if (env.classes[i].mem != o.classes[i].mem ||
          env.classes[i].name != o.classes[i].name) {
        return false;
      }
    }
    return true;
  }
};

}  // namespace

ReinforceTrainer::ReinforceTrainer(core::DecimaAgent& agent, TrainConfig config)
    : agent_(agent),
      config_(std::move(config)),
      rng_(config_.seed),
      adam_(&agent.params(), nn::AdamConfig{.lr = config_.lr}),
      tau_mean_(config_.tau_mean_init),
      entropy_weight_(config_.entropy_weight),
      reward_rate_(config_.reward_rate_horizon) {}

std::vector<double> ReinforceTrainer::episode_rewards(
    const sim::ClusterEnv& env) const {
  switch (config_.objective) {
    case Objective::kAvgJct:
      return avg_jct_rewards(env);
    case Objective::kMakespan:
      return makespan_rewards(env);
    case Objective::kTailJct:
      return tail_jct_rewards(env);
    case Objective::kDeadline:
      return deadline_rewards(env, config_.deadline);
  }
  return avg_jct_rewards(env);
}

ReinforceTrainer::EpisodeData ReinforceTrainer::rollout(
    core::DecimaAgent& worker, std::uint64_t workload_seed,
    std::uint64_t env_seed, std::uint64_t sample_seed, double tau) const {
  sim::EnvConfig env_config = config_.env;
  env_config.seed = env_seed;
  sim::ClusterEnv env(env_config);
  workload::load(env, config_.sampler(workload_seed));

  worker.set_mode(core::Mode::kSample);
  worker.set_sample_seed(sample_seed);
  worker.start_recording();
  env.run(worker, tau);

  EpisodeData data;
  data.actions = worker.take_recorded();
  data.rewards = episode_rewards(env);
  data.action_times.assign(env.action_times().begin(), env.action_times().end());
  data.avg_jct = env.avg_jct();
  data.end_time = env.now();
  data.completed = static_cast<int>(env.jcts().size());
  data.env_seed = env_seed;
  data.workload_seed = workload_seed;
  return data;
}

void ReinforceTrainer::replay(core::DecimaAgent& worker,
                              const EpisodeData& episode,
                              std::vector<double> advantages,
                              double tau) const {
  sim::EnvConfig env_config = config_.env;
  env_config.seed = episode.env_seed;
  sim::ClusterEnv env(env_config);
  workload::load(env, config_.sampler(episode.workload_seed));

  worker.params().zero_grads();
  worker.start_replay(episode.actions, std::move(advantages), entropy_weight_);
  env.run(worker, tau);
  // Batched replay (AgentConfig::batched_replay): the run above only
  // snapshotted the scheduling events; this scores them on chunked tapes,
  // each chunk differentiated by a single backward pass. No-op on the
  // reference path, which accumulated gradients action by action.
  worker.finish_replay();
}

void ReinforceTrainer::ensure_workers() {
  const int threads = std::max(1, config_.rollout_threads);
  if (static_cast<int>(worker_agents_.size()) != threads) {
    pool_.reset();
    worker_agents_.clear();
    worker_agents_.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) worker_agents_.push_back(agent_.clone());
  }
  if (threads > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<util::WorkerPool>(threads);
  }
}

double ReinforceTrainer::run_on_workers(int n,
                                        const util::WorkerPool::Task& fn) {
  using Clock = std::chrono::steady_clock;
  // One busy-seconds slot per worker: each slot is written only by its
  // worker (exclusive ownership by index), summed after the barrier. The
  // per-task spans on one worker are disjoint sub-intervals of the phase
  // span, so the sum never double-counts concurrent work.
  std::vector<double> busy(worker_agents_.size(), 0.0);
  const util::WorkerPool::Task timed = [&](int task, int worker) {
    const auto t0 = Clock::now();
    fn(task, worker);
    busy[static_cast<std::size_t>(worker)] +=
        std::chrono::duration<double>(Clock::now() - t0).count();
  };
  if (pool_ == nullptr) {
    for (int i = 0; i < n; ++i) timed(i, 0);
  } else {
    pool_->parallel_for(n, timed);
  }
  double total = 0.0;
  for (double b : busy) total += b;
  return total;
}

IterationStats ReinforceTrainer::iterate() {
  using Clock = std::chrono::steady_clock;
  const auto seconds_since = [](Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  obs::Span iteration_span(obs::names::kSpanTrainIteration, "train");
  const auto t_iter = Clock::now();
  const int n = config_.episodes_per_iter;

  // (1) Episode length: memoryless termination with growing mean (§5.3).
  const double tau =
      config_.curriculum ? rng_.exponential(tau_mean_) : sim::kInfTime;
  tau_mean_ = std::min(tau_mean_ + config_.tau_mean_growth, config_.tau_mean_max);

  // (2) Arrival sequence(s). fixed_sequences shares one sequence across the
  // iteration's episodes (input-dependent baseline); the ablation draws a
  // fresh sequence per episode. The determinism contract starts here: every
  // episode's sub-streams (workload, env, sampling) are forked from the
  // trainer RNG on this thread in episode-index order — keyed by
  // (iteration, episode), never by worker or claim order — so episode i
  // sees the same random draws no matter which worker later runs it.
  const std::uint64_t shared_seq = rng_.fork();
  std::vector<std::uint64_t> workload_seeds(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> env_seeds(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> sample_seeds(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workload_seeds[static_cast<std::size_t>(i)] =
        config_.fixed_sequences ? shared_seq : rng_.fork();
    env_seeds[static_cast<std::size_t>(i)] = rng_.fork();
    sample_seeds[static_cast<std::size_t>(i)] = rng_.fork();
  }

  // Persistent worker agents snapshot the master's current parameters once
  // per iteration (values only; the snapshot bumps the param version, so
  // each worker's embedding cache re-validates and then stays warm across
  // all episodes this worker runs this iteration).
  ensure_workers();
  for (auto& w : worker_agents_) w->snapshot_params_from(agent_);

  // (3) Rollouts. Lock-free by ownership, not by luck (docs/concurrency.md):
  // worker w exclusively owns worker_agents_[w], episode results land in
  // episodes[i] written by exactly one task, and the pool's barrier is the
  // only synchronization — everything is reduced on this thread afterwards.
  // Episodes are claimed dynamically for load balance; results stay
  // bit-identical for any rollout_threads because seeds and reduction order
  // are keyed by episode index.
  const auto t_rollout = Clock::now();
  std::vector<EpisodeData> episodes(static_cast<std::size_t>(n));
  double rollout_cpu_seconds = 0.0;
  {
    obs::Span rollout_span(obs::names::kSpanTrainRollout, "train");
    rollout_cpu_seconds = run_on_workers(n, [&](int i, int w) {
      const std::size_t ii = static_cast<std::size_t>(i);
      episodes[ii] = rollout(*worker_agents_[static_cast<std::size_t>(w)],
                             workload_seeds[ii], env_seeds[ii],
                             sample_seeds[ii], tau);
    });
  }
  const double rollout_seconds = seconds_since(t_rollout);

  // (4) Returns, baselines, advantages.
  double mean_total_reward = 0.0;
  double mean_avg_jct = 0.0;
  int total_actions = 0;
  std::vector<EpisodeReturns> returns(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::size_t ii = static_cast<std::size_t>(i);
    std::vector<double> rewards = episodes[ii].rewards;
    // Differential (average) reward: subtract the moving-average reward rate
    // times each interval's simulated duration (Appendix B).
    if (config_.differential_reward) {
      const double end = episodes[ii].end_time;
      const auto& times = episodes[ii].action_times;
      double total_r = 0.0;
      for (double r : rewards) total_r += r;
      if (end > 0.0) reward_rate_.add(total_r / end);
      const double rate = reward_rate_.value();
      double prev_t = 0.0;
      for (std::size_t k = 0; k < rewards.size(); ++k) {
        const double t_k = k < times.size() ? times[k] : std::max(prev_t, end);
        rewards[k] -= rate * std::max(t_k - prev_t, 0.0);
        prev_t = t_k;
      }
    }
    returns[ii].times = episodes[ii].action_times;
    returns[ii].returns = returns_to_go(rewards);
    for (double r : episodes[ii].rewards) mean_total_reward += r;
    mean_avg_jct += episodes[ii].avg_jct;
    total_actions += static_cast<int>(episodes[ii].actions.size());
  }
  mean_total_reward /= std::max(n, 1);
  mean_avg_jct /= std::max(n, 1);

  const auto baselines = time_aligned_baselines(returns);
  std::vector<std::vector<double>> advantages(static_cast<std::size_t>(n));
  RunningStats adv_stats;
  for (int i = 0; i < n; ++i) {
    const std::size_t ii = static_cast<std::size_t>(i);
    advantages[ii].resize(returns[ii].returns.size());
    for (std::size_t k = 0; k < advantages[ii].size(); ++k) {
      advantages[ii][k] = returns[ii].returns[k] - baselines[ii][k];
      adv_stats.add(advantages[ii][k]);
    }
  }
  if (config_.normalize_advantages) {
    const double scale = adv_stats.stddev() > 1e-9 ? 1.0 / adv_stats.stddev() : 0.0;
    for (auto& ep : advantages) {
      for (double& a : ep) a *= scale;
    }
  }

  // (5) Replays accumulate each episode's gradients into its worker's
  // params (zeroed per episode), which are immediately flattened into the
  // episode-indexed stash — a worker replaying several episodes never mixes
  // their gradients, and (6) can reduce in fixed episode order regardless
  // of which worker produced what.
  const auto t_replay = Clock::now();
  std::vector<std::vector<double>> episode_grads(static_cast<std::size_t>(n));
  double replay_cpu_seconds = 0.0;
  {
    obs::Span replay_span(obs::names::kSpanTrainReplay, "train");
    replay_cpu_seconds = run_on_workers(n, [&](int i, int w) {
      const std::size_t ii = static_cast<std::size_t>(i);
      core::DecimaAgent& worker = *worker_agents_[static_cast<std::size_t>(w)];
      replay(worker, episodes[ii], advantages[ii], tau);
      episode_grads[ii] = worker.params().flat_grads();
    });
  }
  const double replay_seconds = seconds_since(t_replay);

  // (6) Reduce gradients (deterministic episode order), clip, Adam.
  double grad_norm = 0.0;
  {
    obs::Span step_span(obs::names::kSpanTrainStep, "train");
    agent_.params().zero_grads();
    for (int i = 0; i < n; ++i) {
      agent_.params().add_flat_to_grads(
          episode_grads[static_cast<std::size_t>(i)], 1.0 / n);
    }
    agent_.params().clip_grad_norm(config_.grad_clip);
    grad_norm = agent_.params().grad_norm();
    adam_.step();
    agent_.params().zero_grads();
  }

  entropy_weight_ =
      std::max(entropy_weight_ * config_.entropy_decay, config_.entropy_min);

  IterationStats stats;
  stats.iteration = iteration_++;
  stats.tau = tau;
  stats.mean_total_reward = mean_total_reward;
  stats.mean_avg_jct = mean_avg_jct;
  stats.total_actions = total_actions;
  stats.grad_norm = grad_norm;
  stats.entropy_weight = entropy_weight_;
  stats.rollout_seconds = rollout_seconds;
  stats.replay_seconds = replay_seconds;
  stats.total_seconds = seconds_since(t_iter);
  // The rollout/replay spans are disjoint sub-intervals of the iteration
  // span on this (monotonic) clock, so the remainder is never negative.
  stats.step_seconds = stats.total_seconds - rollout_seconds - replay_seconds;
  stats.rollout_cpu_seconds = rollout_cpu_seconds;
  stats.replay_cpu_seconds = replay_cpu_seconds;

  // Training-plane observability (docs/observability.md): pure readouts of
  // the stats computed above — nothing here feeds back into RNG streams or
  // gradients, so enabling metrics leaves training byte-identical.
  if (obs::metrics_enabled()) {
    TrainMetrics& metrics = TrainMetrics::get();
    const int threads = std::max(1, config_.rollout_threads);
    metrics.iterations.inc();
    metrics.episodes.inc(static_cast<std::uint64_t>(n));
    metrics.rollout_utilization.set(
        pool_utilization(rollout_cpu_seconds, rollout_seconds, threads));
    metrics.replay_utilization.set(
        pool_utilization(replay_cpu_seconds, replay_seconds, threads));
    metrics.iteration_us.observe(stats.total_seconds * 1e6);
  }
  return stats;
}

bool ReinforceTrainer::save_checkpoint(const std::string& path) const {
  io::BinaryWriter w(path);
  w.header(io::kTrainerMagic, io::kTrainerVersion);
  TrainFingerprint::of(config_).write(w);
  io::write_agent_config(w, agent_.config());
  io::write_param_values(w, agent_.params());
  io::write_adam_state(w, adam_);
  w.i64(iteration_);
  w.f64(tau_mean_);
  w.f64(entropy_weight_);
  w.f64(reward_rate_.value());
  w.boolean(reward_rate_.initialized());
  w.str(rng_.state_string());
  return w.finish();
}

bool ReinforceTrainer::resume(const std::string& path) {
  io::BinaryReader r(path);
  if (!r.open_header(io::kTrainerMagic, io::kTrainerVersion)) return false;
  if (!(TrainFingerprint::read(r) == TrainFingerprint::of(config_)) || !r.ok()) {
    return false;
  }
  const core::AgentConfig agent_config = io::read_agent_config(r);
  if (!r.ok() || !io::agent_config_equal(agent_config, agent_.config())) {
    return false;
  }
  // Stage every section, then commit all at once: a corrupt tail must not
  // leave the trainer half-restored.
  std::vector<nn::Matrix> param_values;
  if (!io::read_param_values_staged(r, agent_.params(), param_values)) {
    return false;
  }
  std::int64_t adam_steps = 0;
  std::vector<nn::Matrix> m, v;
  if (!io::read_adam_state_staged(r, adam_, &adam_steps, &m, &v)) return false;
  const std::int64_t iteration = r.i64();
  const double tau_mean = r.f64();
  const double entropy_weight = r.f64();
  const double reward_rate = r.f64();
  const bool reward_rate_initialized = r.boolean();
  const std::string rng_state = r.str();
  if (!r.ok() || !r.at_end()) return false;
  Rng restored_rng;
  if (!restored_rng.set_state_string(rng_state)) return false;

  auto& params = agent_.params().params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->value = std::move(param_values[i]);
  }
  agent_.params().bump_version();
  if (!adam_.restore_state(adam_steps, std::move(m), std::move(v))) {
    return false;  // unreachable: moment shapes were validated above
  }
  iteration_ = static_cast<int>(iteration);
  tau_mean_ = tau_mean;
  entropy_weight_ = entropy_weight;
  reward_rate_.restore(reward_rate, reward_rate_initialized);
  rng_ = restored_rng;
  return true;
}

std::vector<IterationStats> ReinforceTrainer::train() {
  std::vector<IterationStats> curve;
  curve.reserve(static_cast<std::size_t>(config_.num_iterations));
  for (int i = 0; i < config_.num_iterations; ++i) curve.push_back(iterate());
  return curve;
}

double evaluate_avg_jct(
    sim::Scheduler& sched, const sim::EnvConfig& config,
    const std::vector<std::vector<workload::ArrivingJob>>& workloads) {
  double total = 0.0;
  for (const auto& w : workloads) {
    sim::ClusterEnv env(config);
    workload::load(env, w);
    env.run(sched);
    double jct_sum = 0.0;
    for (const auto& job : env.jobs()) {
      jct_sum += job.done() ? job.jct() : env.now() - job.arrival;
    }
    total += jct_sum / static_cast<double>(env.jobs().size());
  }
  return total / static_cast<double>(workloads.size());
}

}  // namespace decima::rl
