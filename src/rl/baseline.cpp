#include "rl/baseline.h"

#include <algorithm>

namespace decima::rl {

std::vector<double> returns_to_go(const std::vector<double>& rewards) {
  // rewards has K+1 entries for K actions; the return credited to action k
  // is the sum of rewards received after it: Σ_{j=k+1}^{K} rewards[j].
  if (rewards.empty()) return {};
  const std::size_t k_actions = rewards.size() - 1;
  std::vector<double> out(k_actions, 0.0);
  double acc = rewards[k_actions];
  for (std::size_t k = k_actions; k-- > 0;) {
    out[k] = acc;
    acc += rewards[k];
  }
  return out;
}

std::vector<std::vector<double>> time_aligned_baselines(
    const std::vector<EpisodeReturns>& episodes) {
  // Return-to-go of episode j at query time t: the return of the first
  // action at time >= t; 0 if the episode has no actions after t.
  auto value_at = [](const EpisodeReturns& ep, double t) {
    const auto it = std::lower_bound(ep.times.begin(), ep.times.end(), t);
    if (it == ep.times.end()) return 0.0;
    return ep.returns[static_cast<std::size_t>(it - ep.times.begin())];
  };

  std::vector<std::vector<double>> out(episodes.size());
  const double n = static_cast<double>(episodes.size());
  for (std::size_t i = 0; i < episodes.size(); ++i) {
    out[i].resize(episodes[i].times.size());
    for (std::size_t k = 0; k < episodes[i].times.size(); ++k) {
      double sum = 0.0;
      for (const EpisodeReturns& ep : episodes) {
        sum += value_at(ep, episodes[i].times[k]);
      }
      out[i][k] = sum / n;
    }
  }
  return out;
}

}  // namespace decima::rl
