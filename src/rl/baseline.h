// Input-dependent, time-aligned baselines (§5.3 challenge #2).
//
// The paper fixes the same job arrival sequence across the N episodes of a
// training iteration and computes baselines *per sequence*: the baseline for
// a step at wall-clock time t is the average return-to-go of all episodes at
// time t (piecewise interpolation, following the Decima implementation).
// This removes the variance caused by the exogenous arrival process.
#pragma once

#include <vector>

namespace decima::rl {

// Per-episode data: action times t_k and matching returns-to-go R_k.
struct EpisodeReturns {
  std::vector<double> times;
  std::vector<double> returns;
};

// Returns, for each episode, the per-step baseline values: b^i_k = mean over
// episodes j of R^j interpolated at time t^i_k (step interpolation: the
// return-to-go of the first action at or after t; episodes that ended before
// t contribute 0, i.e. no outstanding reward).
std::vector<std::vector<double>> time_aligned_baselines(
    const std::vector<EpisodeReturns>& episodes);

// Suffix sums: returns-to-go R_k = Σ_{j>k} r_j for rewards indexed so that
// rewards[j] is received *after* action j-1 (rewards.size() == times.size()+1,
// the final entry covering the span from the last action to episode end).
std::vector<double> returns_to_go(const std::vector<double>& rewards);

}  // namespace decima::rl
