#include "io/checkpoint.h"

namespace decima::io {

void write_agent_config(BinaryWriter& w, const core::AgentConfig& c) {
  w.boolean(c.features.use_task_duration);
  w.boolean(c.features.iat_hint);
  w.f64(c.features.task_scale);
  w.f64(c.features.duration_scale);
  w.f64(c.features.iat_scale);
  w.u32(static_cast<std::uint32_t>(c.emb_dim));
  w.boolean(c.use_gnn);
  w.boolean(c.two_level_aggregation);
  w.boolean(c.parallelism_control);
  w.u32(static_cast<std::uint32_t>(c.limit_encoding));
  w.boolean(c.multi_resource);
  w.boolean(c.batched_inference);
  w.boolean(c.embed_cache);
  w.boolean(c.batched_replay);
  w.u32(static_cast<std::uint32_t>(c.replay_batch));
  w.u32(static_cast<std::uint32_t>(c.limit_step));
  w.u64(c.seed);
}

core::AgentConfig read_agent_config(BinaryReader& r) {
  core::AgentConfig c;
  c.features.use_task_duration = r.boolean();
  c.features.iat_hint = r.boolean();
  c.features.task_scale = r.f64();
  c.features.duration_scale = r.f64();
  c.features.iat_scale = r.f64();
  c.emb_dim = static_cast<int>(r.u32());
  c.use_gnn = r.boolean();
  c.two_level_aggregation = r.boolean();
  c.parallelism_control = r.boolean();
  c.limit_encoding = static_cast<core::LimitEncoding>(r.u32());
  c.multi_resource = r.boolean();
  c.batched_inference = r.boolean();
  c.embed_cache = r.boolean();
  c.batched_replay = r.boolean();
  c.replay_batch = static_cast<int>(r.u32());
  c.limit_step = static_cast<int>(r.u32());
  c.seed = r.u64();
  return c;
}

bool inference_compatible(const core::AgentConfig& a,
                          const core::AgentConfig& b) {
  return a.features.use_task_duration == b.features.use_task_duration &&
         a.features.iat_hint == b.features.iat_hint &&
         a.features.task_scale == b.features.task_scale &&
         a.features.duration_scale == b.features.duration_scale &&
         a.features.iat_scale == b.features.iat_scale &&
         a.emb_dim == b.emb_dim && a.use_gnn == b.use_gnn &&
         a.two_level_aggregation == b.two_level_aggregation &&
         a.parallelism_control == b.parallelism_control &&
         a.limit_encoding == b.limit_encoding &&
         a.multi_resource == b.multi_resource && a.limit_step == b.limit_step;
}

bool agent_config_equal(const core::AgentConfig& a, const core::AgentConfig& b) {
  return inference_compatible(a, b) &&
         a.batched_inference == b.batched_inference &&
         a.embed_cache == b.embed_cache &&
         a.batched_replay == b.batched_replay &&
         a.replay_batch == b.replay_batch && a.seed == b.seed;
}

void write_param_values(BinaryWriter& w, const nn::ParamSet& set) {
  w.u64(set.params().size());
  for (const nn::Param* p : set.params()) {
    w.str(p->name);
    w.matrix(p->value);
  }
}

bool read_param_values_staged(BinaryReader& r, const nn::ParamSet& set,
                              std::vector<nn::Matrix>& staged) {
  const std::uint64_t count = r.u64();
  if (!r.ok() || count != set.params().size()) return false;
  staged.clear();
  staged.reserve(set.params().size());
  for (const nn::Param* p : set.params()) {
    if (r.str() != p->name) return false;
    nn::Matrix m = r.matrix();
    if (!r.ok() || !m.same_shape(p->value)) return false;
    staged.push_back(std::move(m));
  }
  return true;
}

bool read_param_values(BinaryReader& r, nn::ParamSet& set) {
  // Stage into temporaries so a mid-file mismatch leaves `set` untouched.
  std::vector<nn::Matrix> staged;
  if (!read_param_values_staged(r, set, staged)) return false;
  for (std::size_t i = 0; i < staged.size(); ++i) {
    set.params()[i]->value = std::move(staged[i]);
  }
  set.bump_version();
  return true;
}

void write_adam_state(BinaryWriter& w, const nn::Adam& adam) {
  w.i64(adam.steps_taken());
  w.u64(adam.first_moments().size());
  for (const nn::Matrix& m : adam.first_moments()) w.matrix(m);
  for (const nn::Matrix& v : adam.second_moments()) w.matrix(v);
}

bool read_adam_state_staged(BinaryReader& r, const nn::Adam& adam,
                            std::int64_t* steps, std::vector<nn::Matrix>* m,
                            std::vector<nn::Matrix>* v) {
  *steps = r.i64();
  const std::uint64_t count = r.u64();
  if (!r.ok() || count != adam.first_moments().size()) return false;
  m->assign(static_cast<std::size_t>(count), nn::Matrix{});
  v->assign(static_cast<std::size_t>(count), nn::Matrix{});
  for (auto& x : *m) x = r.matrix();
  for (auto& x : *v) x = r.matrix();
  if (!r.ok()) return false;
  for (std::size_t i = 0; i < m->size(); ++i) {
    if (!(*m)[i].same_shape(adam.first_moments()[i]) ||
        !(*v)[i].same_shape(adam.second_moments()[i])) {
      return false;
    }
  }
  return true;
}

bool read_adam_state(BinaryReader& r, nn::Adam& adam) {
  std::int64_t steps = 0;
  std::vector<nn::Matrix> m, v;
  if (!read_adam_state_staged(r, adam, &steps, &m, &v)) return false;
  return adam.restore_state(steps, std::move(m), std::move(v));
}

bool save_policy(const core::DecimaAgent& agent, const std::string& path) {
  BinaryWriter w(path);
  w.header(kPolicyMagic, kPolicyVersion);
  write_agent_config(w, agent.config());
  write_param_values(w, agent.params());
  return w.finish();
}

std::optional<core::AgentConfig> read_policy_config(const std::string& path) {
  BinaryReader r(path);
  if (!r.open_header(kPolicyMagic, kPolicyVersion)) return std::nullopt;
  core::AgentConfig c = read_agent_config(r);
  if (!r.ok()) return std::nullopt;
  return c;
}

bool load_policy(core::DecimaAgent& agent, const std::string& path) {
  BinaryReader r(path);
  if (!r.open_header(kPolicyMagic, kPolicyVersion)) return false;
  // Parameter names/shapes are verified below, but shape-preserving config
  // differences (feature scales, limit_step) would silently change what the
  // weights mean — reject those too.
  const core::AgentConfig config = read_agent_config(r);
  if (!r.ok() || !inference_compatible(config, agent.config())) return false;
  // Stage + check exact exhaustion before committing: trailing garbage is
  // as suspect as a truncated file.
  std::vector<nn::Matrix> staged;
  if (!read_param_values_staged(r, agent.params(), staged) || !r.at_end()) {
    return false;
  }
  auto& params = agent.params().params();
  for (std::size_t i = 0; i < staged.size(); ++i) {
    params[i]->value = std::move(staged[i]);
  }
  agent.params().bump_version();
  return true;
}

std::unique_ptr<core::DecimaAgent> load_policy_agent(const std::string& path) {
  // One reader for config and weights: no second open, no window for the
  // file to change between reading the config and reading the values.
  BinaryReader r(path);
  if (!r.open_header(kPolicyMagic, kPolicyVersion)) return nullptr;
  const core::AgentConfig config = read_agent_config(r);
  if (!r.ok()) return nullptr;
  auto agent = std::make_unique<core::DecimaAgent>(config);
  if (!read_param_values(r, agent->params()) || !r.at_end()) return nullptr;
  return agent;
}

}  // namespace decima::io
