// Versioned policy checkpoints (binary.h format, docs/serving.md).
//
// Two file kinds share the section helpers below:
//   - policy checkpoint ("DPOL"): the embedded AgentConfig plus every
//     parameter value — enough to reconstruct a serving agent from the file
//     alone (io::load_policy_agent, used by serve::PolicyServer).
//   - trainer checkpoint ("DTRN", written by rl::ReinforceTrainer): policy +
//     Adam moments + the trainer's evolving state (RNG stream, entropy and
//     curriculum schedules, reward-rate average), so a killed training run
//     resumes bit-exactly.
//
// Versioning rules: the version is exact-match (no silent migration); any
// layout change bumps it, and loading rejects a mismatch. All load paths
// return false/null on magic, version, structure, or I/O errors and never
// partially mutate their target on a detected-before-commit failure — see
// docs/serving.md for the precise guarantees.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/agent.h"
#include "io/binary.h"
#include "nn/adam.h"

namespace decima::io {

constexpr std::uint32_t kPolicyMagic = 0x44504F4Cu;   // "DPOL"
constexpr std::uint32_t kTrainerMagic = 0x4454524Eu;  // "DTRN"
// Version 2: AgentConfig serialization gained the embed_cache flag.
constexpr std::uint32_t kPolicyVersion = 2;
constexpr std::uint32_t kTrainerVersion = 2;

// --- Policy checkpoints ------------------------------------------------------

// Writes the agent's AgentConfig and parameter values. False on I/O error.
bool save_policy(const core::DecimaAgent& agent, const std::string& path);

// Reads only the embedded AgentConfig (to construct a matching agent).
std::optional<core::AgentConfig> read_policy_config(const std::string& path);

// Loads parameter values into `agent`. The checkpoint's parameter list must
// match the agent's ParamSet name-for-name and shape-for-shape, and the
// embedded config must be inference-compatible with the agent's (see below —
// shape-preserving knobs like feature scales or limit_step still change what
// the weights mean); returns false (agent untouched) otherwise.
bool load_policy(core::DecimaAgent& agent, const std::string& path);

// Constructs an agent from the checkpoint's embedded config and loads the
// weights: the one-call path a serving process uses. Null on any failure.
std::unique_ptr<core::DecimaAgent> load_policy_agent(const std::string& path);

// --- Section helpers (shared with the trainer checkpoint) --------------------

void write_agent_config(BinaryWriter& w, const core::AgentConfig& c);
core::AgentConfig read_agent_config(BinaryReader& r);
// Field-wise equality, perf knobs included: chunked replay reorders gradient
// accumulation at the ulp level, so bit-exact resume needs identical knobs.
bool agent_config_equal(const core::AgentConfig& a, const core::AgentConfig& b);
// Weaker: the fields that give the same weights the same meaning at
// inference time (features, dimensions, heads, limit encoding/step). The
// seed and the batched_* implementation selectors may differ — they pick
// among equivalent execution paths, not different policies.
bool inference_compatible(const core::AgentConfig& a, const core::AgentConfig& b);

void write_param_values(BinaryWriter& w, const nn::ParamSet& set);
// Verifies count/name/shape against `set` before overwriting any value;
// returns false (set untouched) on mismatch.
bool read_param_values(BinaryReader& r, nn::ParamSet& set);
// Same validation, but leaves `set` untouched and returns the values in
// `staged` (one matrix per parameter, set order) — for callers that commit
// several sections atomically (the trainer resume).
bool read_param_values_staged(BinaryReader& r, const nn::ParamSet& set,
                              std::vector<nn::Matrix>& staged);

void write_adam_state(BinaryWriter& w, const nn::Adam& adam);
// Reads an Adam section and validates the moment count and shapes against
// `adam` without committing — for callers that restore several sections
// atomically (the trainer resume). read_adam_state stages + commits.
bool read_adam_state_staged(BinaryReader& r, const nn::Adam& adam,
                            std::int64_t* steps, std::vector<nn::Matrix>* m,
                            std::vector<nn::Matrix>* v);
bool read_adam_state(BinaryReader& r, nn::Adam& adam);

}  // namespace decima::io
