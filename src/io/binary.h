// Binary (de)serialization primitives for the checkpoint layer.
//
// The format is deliberately simple: fixed-width little-endian integers and
// IEEE-754 doubles written verbatim, length-prefixed strings, and matrices as
// (rows, cols, row-major doubles). Doubles round-trip bit-exactly — the
// checkpoint contract (docs/serving.md) is that a resumed training run or a
// served policy is indistinguishable from the process that wrote the file.
//
// Every file starts with a caller-chosen 32-bit magic, a format version, and
// an endianness sentinel; BinaryReader::open_header verifies all three so a
// foreign or corrupt file fails loudly instead of loading garbage.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "nn/matrix.h"

namespace decima::io {

// Written after the magic so a file produced on an exotic big-endian host is
// rejected rather than silently byte-swapped.
constexpr std::uint32_t kEndianSentinel = 0x01020304u;

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path)
      : out_(path, std::ios::binary) {}

  // Writes magic + version + endianness sentinel.
  void header(std::uint32_t magic, std::uint32_t version) {
    u32(magic);
    u32(version);
    u32(kEndianSentinel);
  }

  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void boolean(bool v) { u32(v ? 1u : 0u); }

  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }

  void doubles(const std::vector<double>& v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(double));
  }

  void matrix(const nn::Matrix& m) {
    u64(m.rows());
    u64(m.cols());
    raw(m.raw().data(), m.raw().size() * sizeof(double));
  }

  // True while every write so far has succeeded.
  bool ok() const { return static_cast<bool>(out_); }
  // Flushes and reports the final status.
  bool finish() {
    out_.flush();
    return ok();
  }

 private:
  void raw(const void* data, std::size_t bytes) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(bytes));
  }

  std::ofstream out_;
};

// Reads the format above. Every accessor sets the fail flag (ok() == false)
// on short reads; values read after a failure are zero/empty, so callers can
// batch reads and check ok() once per section.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : in_(path, std::ios::binary) {}

  // Verifies magic, exact version, and the endianness sentinel.
  bool open_header(std::uint32_t magic, std::uint32_t version) {
    return u32() == magic && u32() == version && u32() == kEndianSentinel &&
           ok();
  }

  std::uint32_t u32() { return scalar<std::uint32_t>(); }
  std::uint64_t u64() { return scalar<std::uint64_t>(); }
  std::int64_t i64() { return scalar<std::int64_t>(); }
  double f64() { return scalar<double>(); }
  bool boolean() { return u32() != 0; }

  std::string str() {
    const std::uint64_t n = u64();
    if (!sane_count(n)) return {};
    std::string s(static_cast<std::size_t>(n), '\0');
    raw(s.data(), s.size());
    return ok() ? s : std::string{};
  }

  std::vector<double> doubles() {
    const std::uint64_t n = u64();
    if (!sane_count(n)) return {};
    std::vector<double> v(static_cast<std::size_t>(n));
    raw(v.data(), v.size() * sizeof(double));
    return ok() ? v : std::vector<double>{};
  }

  nn::Matrix matrix() {
    const std::uint64_t rows = u64();
    const std::uint64_t cols = u64();
    // Bound each dimension before the product so rows * cols cannot wrap.
    if (!ok() || !sane_count(rows) || !sane_count(cols) ||
        !sane_count(rows * cols)) {
      return {};
    }
    nn::Matrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
    raw(m.raw().data(), m.raw().size() * sizeof(double));
    return ok() ? std::move(m) : nn::Matrix{};
  }

  bool ok() const { return static_cast<bool>(in_); }
  // ok() and the stream is exactly exhausted (no trailing bytes).
  bool at_end() {
    if (!ok()) return false;
    in_.peek();
    return in_.eof();
  }

 private:
  template <typename T>
  T scalar() {
    T v{};
    raw(&v, sizeof v);
    return ok() ? v : T{};
  }

  void raw(void* data, std::size_t bytes) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  }

  // Guards allocations against absurd counts from corrupt length prefixes:
  // the whole model is ~12.7k parameters, so 16M doubles (128 MiB) is far
  // beyond any legitimate section and small enough that a corrupt file fails
  // with `false`, never std::bad_alloc.
  bool sane_count(std::uint64_t n) {
    if (n <= (1ull << 24)) return true;
    in_.setstate(std::ios::failbit);
    return false;
  }

  std::ifstream in_;
};

}  // namespace decima::io
