#include "serve/policy_server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>
#include <utility>

#include "io/checkpoint.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/heuristics.h"

namespace decima::serve {

namespace {

// Serving-plane metric handles (docs/observability.md), registered once and
// cached — recording is a relaxed-atomic op, and a no-op while the obs
// layer is disabled. These fold the ServeStats degradation ladder into the
// registry so live counters and the per-server stats() snapshot agree.
struct ServeMetrics {
  obs::Histogram& decide_latency_us;
  obs::Histogram& queue_wait_us;
  obs::Histogram& batch_infer_us;
  obs::Histogram& batch_size;
  obs::Counter& ok;
  obs::Counter& rejected;
  obs::Counter& timed_out;
  obs::Counter& stopped;
  obs::Counter& fallbacks;
  obs::Counter& snapshot_swaps;
  obs::Counter& batches;

  static ServeMetrics& get() {
    static ServeMetrics* m = new ServeMetrics{
        obs::Registry::instance().histogram(obs::names::kServeDecideLatencyUs),
        obs::Registry::instance().histogram(obs::names::kServeQueueWaitUs),
        obs::Registry::instance().histogram(obs::names::kServeBatchInferUs),
        obs::Registry::instance().histogram(
            obs::names::kServeBatchSize,
            obs::Histogram::exponential_bounds(1.0, 1024.0, 11)),
        obs::Registry::instance().counter(obs::names::kServeRequestsOk),
        obs::Registry::instance().counter(obs::names::kServeRequestsRejected),
        obs::Registry::instance().counter(obs::names::kServeRequestsTimedOut),
        obs::Registry::instance().counter(obs::names::kServeRequestsStopped),
        obs::Registry::instance().counter(obs::names::kServeFallbacks),
        obs::Registry::instance().counter(obs::names::kServeSnapshotSwaps),
        obs::Registry::instance().counter(obs::names::kServeBatches)};
    return *m;
  }
};

// Per-shard instrument instances are the shard-suffixed serve.shard.* names
// (docs/observability.md): one registry entry per (name, shard index).
std::string shard_metric(const char* prefix, int shard) {
  return std::string(prefix) + "." + std::to_string(shard);
}

// Ring sizing: an explicit override wins; otherwise cover the per-shard
// admission bound (max_queue) with 2x headroom for abandoned-but-unpopped
// entries, and stay generously deep for unbounded configs. SpscRing rounds
// up to a power of two.
std::size_t ring_capacity_for(const ServeConfig& config) {
  if (config.ring_capacity > 0) {
    return static_cast<std::size_t>(config.ring_capacity);
  }
  std::size_t cap = 1024;
  if (config.max_queue > 0) {
    cap = std::max(cap, static_cast<std::size_t>(config.max_queue) * 2);
  }
  return cap;
}

}  // namespace

void ServeConfig::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("ServeConfig: " + what);
  };
  if (shards < 1) fail("shards must be >= 1 (0 shards would serve nothing)");
  if (shards > 1024) fail("shards > 1024: more dispatchers than plausible");
  if (max_batch < 0) fail("max_batch must be >= 0 (0 = drain the ring)");
  if (max_queue < 0) fail("max_queue must be >= 0 (0 = unbounded)");
  if (batch_wait_us < 0) {
    fail("batch_wait_us must be >= 0 (0 = immediate dispatch)");
  }
  if (ring_capacity < 0) fail("ring_capacity must be >= 0 (0 = automatic)");
  if (!(deadline >= 0.0) || !std::isfinite(deadline)) {
    fail("deadline must be a finite number of seconds >= 0");
  }
  if (max_queue > 0 && max_batch > max_queue) {
    fail("max_batch exceeds max_queue: a full batch could never assemble "
         "behind the per-shard admission bound");
  }
  if (ring_capacity > 0 && max_queue > ring_capacity) {
    fail("ring_capacity below max_queue: admitted requests would not fit");
  }
}

PolicyServer::PolicyServer(std::unique_ptr<const core::DecimaAgent> policy,
                           ServeConfig config)
    : config_(config), policy_(std::move(policy)) {
  config_.validate();
  if (!policy_) {
    throw std::invalid_argument("PolicyServer: null policy snapshot");
  }
  const std::size_t ring_cap = ring_capacity_for(config_);
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int i = 0; i < config_.shards; ++i) {
    auto sh = std::make_unique<Shard>(ring_cap);
    obs::Registry& reg = obs::Registry::instance();
    sh->m_decisions =
        &reg.counter(shard_metric(obs::names::kServeShardDecisions, i));
    sh->m_queue_depth =
        &reg.gauge(shard_metric(obs::names::kServeShardQueueDepth, i));
    sh->m_batch_size =
        &reg.histogram(shard_metric(obs::names::kServeShardBatchSize, i),
                       obs::Histogram::exponential_bounds(1.0, 1024.0, 11));
    sh->m_batch_wait_us =
        &reg.histogram(shard_metric(obs::names::kServeShardBatchWaitUs, i));
    shards_.push_back(std::move(sh));
  }
  // Start dispatchers only after every shard exists: a dispatcher never
  // touches a sibling shard, but constructing under way would still race
  // the shards_ vector itself.
  for (auto& sh : shards_) {
    Shard* p = sh.get();
    p->dispatcher = std::thread([this, p] { dispatch_loop(*p); });
  }
}

std::unique_ptr<PolicyServer> PolicyServer::from_checkpoint(
    const std::string& path, ServeConfig config) {
  std::unique_ptr<const core::DecimaAgent> policy =
      io::load_policy_agent(path);
  if (!policy) return nullptr;
  return std::make_unique<PolicyServer>(std::move(policy), config);
}

PolicyServer::~PolicyServer() { stop(); }

void PolicyServer::stop() {
  for (auto& sh : shards_) {
    {
      util::MutexLock lk(sh->mu);
      sh->stopping = true;
    }
    sh->work_cv.notify_all();
    // Sessions blocked on ring space must recheck stopping and wind down.
    sh->done_cv.notify_all();
  }
  // call_once also blocks late callers until the winning join completes, so
  // every stop() returns only after the last dispatcher is gone.
  std::call_once(join_once_, [this] {
    for (auto& sh : shards_) sh->dispatcher.join();
  });
}

Session PolicyServer::open_session() {
  std::uint64_t id = 0;
  {
    util::MutexLock lk(mu_);
    id = next_session_id_++;
  }
  const int shard_idx = static_cast<int>(id % shards_.size());
  Shard& sh = *shards_[static_cast<std::size_t>(shard_idx)];
  gnn::EmbeddingCache* cache = nullptr;
  {
    util::MutexLock lk(sh.mu);
    std::unique_ptr<gnn::EmbeddingCache>& slot = sh.caches[id];
    slot = std::make_unique<gnn::EmbeddingCache>();
    cache = slot.get();
    ++sh.open_sessions;
  }
  return Session(this, id, shard_idx, cache);
}

void PolicyServer::close_session(const Session& session) {
  Shard& sh = *shards_[static_cast<std::size_t>(session.shard_)];
  {
    util::MutexLock lk(sh.mu);
    sh.caches.erase(session.id_);
    --sh.open_sessions;
  }
  // The shard's adaptive-wait target shrank: a dispatcher holding a shallow
  // batch open for this session must re-evaluate instead of sleeping out
  // the full bounded wait.
  sh.work_cv.notify_all();
}

Session& Session::operator=(Session&& other) noexcept {
  if (this != &other) {
    close();
    server_ = other.server_;
    id_ = other.id_;
    shard_ = other.shard_;
    cache_ = other.cache_;
    other.server_ = nullptr;
    other.cache_ = nullptr;
  }
  return *this;
}

void Session::close() {
  if (server_ == nullptr) return;
  server_->close_session(*this);
  server_ = nullptr;
  cache_ = nullptr;
}

const gnn::EmbeddingCacheStats& Session::cache_stats() const {
  static const gnn::EmbeddingCacheStats kEmpty{};
  return cache_ != nullptr ? cache_->stats() : kEmpty;
}

DecideResult PolicyServer::degraded_answer(const sim::ClusterEnv& env,
                                           DecideStatus status) const {
  DecideResult result;
  result.status = status;
  if (config_.heuristic_fallback) {
    // SJF-CP is stateless, cheap (no GNN), and the strongest single
    // heuristic on average-JCT (§7.2) — the natural degraded-mode policy.
    sched::SjfCpScheduler fallback;
    result.action = fallback.schedule(env);
    result.fallback = true;
  }
  return result;
}

PolicyServer::Shard& PolicyServer::shard_for_cache(
    const gnn::EmbeddingCache* cache) {
  if (shards_.size() == 1) return *shards_[0];
  const std::size_t idx =
      cache != nullptr
          ? std::hash<const void*>{}(cache) % shards_.size()
          : raw_rr_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  return *shards_[idx];
}

DecideResult PolicyServer::decide_with_status(Session& session,
                                              const sim::ClusterEnv& env) {
  if (!session.open() || session.server_ != this) {
    // Closed/foreign handle: serve uncached, like a raw call without a
    // cache. Keeps moved-from handles harmless instead of UB.
    return decide_on_shard(shard_for_cache(nullptr), env, nullptr);
  }
  return decide_on_shard(*shards_[static_cast<std::size_t>(session.shard_)],
                         env, session.cache_);
}

sim::Action PolicyServer::decide(Session& session, const sim::ClusterEnv& env) {
  return decide_with_status(session, env).action;
}

DecideResult PolicyServer::decide_with_status(const sim::ClusterEnv& env,
                                              gnn::EmbeddingCache* cache) {
  return decide_on_shard(shard_for_cache(cache), env, cache);
}

sim::Action PolicyServer::decide(const sim::ClusterEnv& env,
                                 gnn::EmbeddingCache* cache) {
  return decide_with_status(env, cache).action;
}

DecideResult PolicyServer::decide_on_shard(Shard& sh,
                                           const sim::ClusterEnv& env,
                                           gnn::EmbeddingCache* cache) {
  ServeMetrics& metrics = ServeMetrics::get();
  // End-to-end latency as this session sees it, every outcome included.
  obs::ScopedLatencyUs decide_latency(metrics.decide_latency_us);
  // Heap-shared: the ring (and the dispatcher) may hold the request past
  // this frame if the session abandons it on deadline expiry.
  auto req = std::make_shared<Request>();
  req->env = &env;
  req->cache = cache;
  if (obs::metrics_enabled()) {
    req->enqueue_tp = std::chrono::steady_clock::now();
    req->enqueue_timed = true;
  }
  bool rejected = false;
  bool stopped = false;
  {
    util::MutexLock lk(sh.mu);
    for (;;) {
      if (sh.stopping) {
        ++sh.st.stopped_answers;
        stopped = true;
        break;
      }
      if (config_.max_queue > 0 &&
          sh.ring.size() >= static_cast<std::size_t>(config_.max_queue)) {
        // Backpressure: bounce instead of queueing unboundedly; the request
        // is answered below by the (lock-free) heuristic and never reaches
        // the dispatcher. The producer-side ring size is exact-or-over
        // (util/ring.h), so the per-shard bound is never exceeded.
        ++sh.st.rejections;
        if (config_.heuristic_fallback) ++sh.st.fallbacks;
        rejected = true;
        break;
      }
      if (sh.ring.try_push(req)) {
        sh.st.max_queue_depth =
            std::max(sh.st.max_queue_depth,
                     static_cast<std::uint64_t>(sh.ring.size()));
        break;
      }
      // Ring full in an unbounded config: wait for the dispatcher to free
      // slots (done_cv doubles as the space signal — the dispatcher
      // notifies it after every pop cycle), then recheck from the top.
      sh.done_cv.wait(sh.mu);
    }
  }
  if (stopped) {
    metrics.stopped.inc();
    return DecideResult{sim::Action::none(), DecideStatus::kStopped, false};
  }
  if (rejected) {
    metrics.rejected.inc();
    if (config_.heuristic_fallback) metrics.fallbacks.inc();
    return degraded_answer(env, DecideStatus::kRejected);
  }

  sh.work_cv.notify_one();
  const bool has_deadline = config_.deadline > 0.0;
  const auto submit_time = std::chrono::steady_clock::now();
  const auto deadline_tp =
      submit_time + std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::duration<double>(config_.deadline));
  bool timed_out = false;
  {
    util::MutexLock lk(sh.mu);
    bool enforce_deadline = has_deadline;
    while (req->state.load(std::memory_order_acquire) != Request::kDone) {
      if (!enforce_deadline) {
        sh.done_cv.wait(sh.mu);
        continue;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline_tp) {
        int expected = Request::kQueued;
        if (req->state.compare_exchange_strong(expected, Request::kAbandoned,
                                               std::memory_order_acq_rel)) {
          // Withdrawn before any dispatcher claimed it: the stale ring
          // entry is skipped (and freed) at the next pop cycle, and the
          // request is answered from the fallback.
          ++sh.st.timeouts;
          if (config_.heuristic_fallback) ++sh.st.fallbacks;
          timed_out = true;
          break;
        }
        // Claimed: the dispatcher is scoring this request, so its answer
        // MUST be awaited (it is about to arrive anyway) — decisions are
        // never half-delivered.
        enforce_deadline = false;
        continue;
      }
      sh.done_cv.wait_for(
          sh.mu, std::chrono::duration_cast<std::chrono::nanoseconds>(
                     deadline_tp - now));
    }
  }
  if (timed_out) {
    metrics.timed_out.inc();
    if (config_.heuristic_fallback) metrics.fallbacks.inc();
    return degraded_answer(env, DecideStatus::kTimedOut);
  }
  metrics.ok.inc();
  return DecideResult{req->action, DecideStatus::kOk, false};
}

void PolicyServer::swap_policy(
    std::unique_ptr<const core::DecimaAgent> policy) {
  if (!policy) return;
  // The retired snapshot leaves the lock scope before it dies: in-flight
  // batches still pin it, and ~DecimaAgent under mu_ would stall dispatch.
  std::shared_ptr<const core::DecimaAgent> retired;
  {
    util::MutexLock lk(mu_);
    retired = std::move(policy_);
    policy_ = std::move(policy);
    ++snapshot_swaps_;
  }
  ServeMetrics::get().snapshot_swaps.inc();
}

bool PolicyServer::swap_policy_from_checkpoint(const std::string& path) {
  std::unique_ptr<const core::DecimaAgent> policy =
      io::load_policy_agent(path);
  if (!policy) return false;
  swap_policy(std::move(policy));
  return true;
}

void PolicyServer::bounded_batch_wait(Shard& sh) {
  if (config_.batch_wait_us <= 0) return;
  // The batch-growth target: every open session on the shard could submit
  // one request, capped by max_batch. Recomputed each wakeup — sessions may
  // open/close while we wait (close_session notifies work_cv for exactly
  // this reason).
  std::size_t target = static_cast<std::size_t>(sh.open_sessions);
  if (config_.max_batch > 0) {
    target = std::min(target, static_cast<std::size_t>(config_.max_batch));
  }
  // A lone session (or a raw-API shard with no session registry) gains
  // nothing from waiting; a ring already at target depth dispatches now.
  if (target <= 1 || sh.ring.size() >= target) return;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::microseconds(config_.batch_wait_us);
  while (!sh.stopping && sh.ring.size() < target) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    sh.work_cv.wait_for(
        sh.mu,
        std::chrono::duration_cast<std::chrono::nanoseconds>(deadline - now));
    target = static_cast<std::size_t>(sh.open_sessions);
    if (config_.max_batch > 0) {
      target = std::min(target, static_cast<std::size_t>(config_.max_batch));
    }
    if (target <= 1) break;
  }
  if (obs::metrics_enabled()) {
    sh.m_batch_wait_us->observe(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
}

void PolicyServer::dispatch_loop(Shard& sh) {
  ServeMetrics& metrics = ServeMetrics::get();
  for (;;) {
    {
      util::MutexLock lk(sh.mu);
      while (!sh.stopping && sh.ring.empty()) sh.work_cv.wait(sh.mu);
      if (sh.stopping && sh.ring.empty()) return;  // drained and answered
      bounded_batch_wait(sh);
    }

    // Claim lock-free: pop up to max_batch entries, skipping requests their
    // sessions abandoned on deadline expiry (the CAS decides each race
    // exactly once; dropping the popped shared_ptr frees an abandoned
    // request).
    std::vector<std::shared_ptr<Request>> batch;
    const std::size_t cap =
        config_.max_batch > 0 ? static_cast<std::size_t>(config_.max_batch)
                              : std::numeric_limits<std::size_t>::max();
    std::size_t popped = 0;
    std::shared_ptr<Request> r;
    while (batch.size() < cap && sh.ring.try_pop(r)) {
      ++popped;
      int expected = Request::kQueued;
      if (r->state.compare_exchange_strong(expected, Request::kClaimed,
                                           std::memory_order_acq_rel)) {
        batch.push_back(std::move(r));
      }
      r.reset();
    }
    if (batch.empty()) {
      // Everything popped had been abandoned; the freed slots may unblock a
      // producer waiting on ring space.
      if (popped > 0) sh.done_cv.notify_all();
      continue;
    }

    // Pin this batch's snapshot: swap_policy may publish a new one while we
    // score unlocked, and the whole batch must answer from one policy.
    std::shared_ptr<const core::DecimaAgent> policy;
    {
      util::MutexLock lk(mu_);
      policy = policy_;
    }

    // Batch-assembly observability: how long each claimed request sat
    // queued, and the coalesced batch shape — globally and per shard.
    if (obs::metrics_enabled()) {
      const auto now = std::chrono::steady_clock::now();
      for (const std::shared_ptr<Request>& p : batch) {
        if (p->enqueue_timed) {
          metrics.queue_wait_us.observe(
              std::chrono::duration<double, std::micro>(now - p->enqueue_tp)
                  .count());
        }
      }
      metrics.batch_size.observe(static_cast<double>(batch.size()));
      metrics.batches.inc();
      sh.m_batch_size->observe(static_cast<double>(batch.size()));
      sh.m_queue_depth->set(static_cast<double>(sh.ring.size()));
    }

    // Inference runs unlocked: the waiting session threads are blocked until
    // their request is marked done, so their envs cannot change under us.
    std::vector<sim::Action> actions;
    {
      obs::Span batch_span(obs::names::kSpanServeBatch, "serve");
      obs::ScopedLatencyUs infer_latency(metrics.batch_infer_us);
      if (config_.cross_session_batching && batch.size() > 1) {
        std::vector<const sim::ClusterEnv*> envs;
        std::vector<gnn::EmbeddingCache*> caches;
        envs.reserve(batch.size());
        caches.reserve(batch.size());
        for (const std::shared_ptr<Request>& p : batch) {
          envs.push_back(p->env);
          caches.push_back(p->cache);
        }
        actions = policy->decide_batch(envs, caches);
      } else {
        // Sequential reference path, and the singleton fast path of batched
        // mode: decide() is bit-identical to a one-element decide_batch()
        // without the batch-assembly overhead.
        actions.reserve(batch.size());
        for (const std::shared_ptr<Request>& p : batch) {
          actions.push_back(policy->decide(*p->env, p->cache));
        }
      }
    }

    {
      util::MutexLock lk(sh.mu);
      sh.st.decisions += batch.size();
      sh.st.batches += 1;
      sh.st.max_batch_size = std::max(
          sh.st.max_batch_size, static_cast<std::uint64_t>(batch.size()));
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i]->action = actions[i];
        batch[i]->state.store(Request::kDone, std::memory_order_release);
      }
    }
    sh.m_decisions->inc(static_cast<std::uint64_t>(batch.size()));
    sh.done_cv.notify_all();
  }
}

ServeStats PolicyServer::stats() const {
  ServeStats s;
  {
    util::MutexLock lk(mu_);
    s.snapshot_swaps = snapshot_swaps_;
  }
  for (const auto& sh : shards_) {
    util::MutexLock lk(sh->mu);
    s.decisions += sh->st.decisions;
    s.batches += sh->st.batches;
    s.max_batch_size = std::max(s.max_batch_size, sh->st.max_batch_size);
    s.rejections += sh->st.rejections;
    s.timeouts += sh->st.timeouts;
    s.fallbacks += sh->st.fallbacks;
    s.stopped_answers += sh->st.stopped_answers;
    s.max_queue_depth = std::max(s.max_queue_depth, sh->st.max_queue_depth);
  }
  s.mean_batch_size = s.batches > 0 ? static_cast<double>(s.decisions) /
                                          static_cast<double>(s.batches)
                                    : 0.0;
  return s;
}

ServeStats PolicyServer::shard_stats(int shard) const {
  Shard& sh = *shards_.at(static_cast<std::size_t>(shard));
  util::MutexLock lk(sh.mu);
  ServeStats s = sh.st;
  s.mean_batch_size = s.batches > 0 ? static_cast<double>(s.decisions) /
                                          static_cast<double>(s.batches)
                                    : 0.0;
  return s;
}

std::shared_ptr<const core::DecimaAgent> PolicyServer::policy() const {
  util::MutexLock lk(mu_);
  return policy_;
}

SessionResult run_session(PolicyServer& server, const sim::EnvConfig& env,
                          const std::vector<workload::ArrivingJob>& jobs,
                          sim::Time until) {
  sim::ClusterEnv cluster(env);
  workload::load(cluster, jobs);
  ServedScheduler sched(server);
  cluster.run(sched, until);

  SessionResult result;
  result.avg_jct = cluster.avg_jct();
  result.end_time = cluster.now();
  result.completed = static_cast<int>(cluster.jcts().size());
  result.decisions = sched.decisions();
  result.degradation = sched.degradation();
  result.cache = sched.embed_cache_stats();
  return result;
}

}  // namespace decima::serve
