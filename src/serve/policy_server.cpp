#include "serve/policy_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "io/checkpoint.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/heuristics.h"

namespace decima::serve {

namespace {

// Serving-plane metric handles (docs/observability.md), registered once and
// cached — recording is a relaxed-atomic op, and a no-op while the obs
// layer is disabled. These fold the ServeStats degradation ladder into the
// registry so live counters and the per-server stats() snapshot agree.
struct ServeMetrics {
  obs::Histogram& decide_latency_us;
  obs::Histogram& queue_wait_us;
  obs::Histogram& batch_infer_us;
  obs::Histogram& batch_size;
  obs::Counter& ok;
  obs::Counter& rejected;
  obs::Counter& timed_out;
  obs::Counter& stopped;
  obs::Counter& fallbacks;
  obs::Counter& snapshot_swaps;
  obs::Counter& batches;

  static ServeMetrics& get() {
    static ServeMetrics* m = new ServeMetrics{
        obs::Registry::instance().histogram(obs::names::kServeDecideLatencyUs),
        obs::Registry::instance().histogram(obs::names::kServeQueueWaitUs),
        obs::Registry::instance().histogram(obs::names::kServeBatchInferUs),
        obs::Registry::instance().histogram(
            obs::names::kServeBatchSize,
            obs::Histogram::exponential_bounds(1.0, 1024.0, 11)),
        obs::Registry::instance().counter(obs::names::kServeRequestsOk),
        obs::Registry::instance().counter(obs::names::kServeRequestsRejected),
        obs::Registry::instance().counter(obs::names::kServeRequestsTimedOut),
        obs::Registry::instance().counter(obs::names::kServeRequestsStopped),
        obs::Registry::instance().counter(obs::names::kServeFallbacks),
        obs::Registry::instance().counter(obs::names::kServeSnapshotSwaps),
        obs::Registry::instance().counter(obs::names::kServeBatches)};
    return *m;
  }
};

}  // namespace

PolicyServer::PolicyServer(std::unique_ptr<const core::DecimaAgent> policy,
                           ServeConfig config)
    : config_(config), policy_(std::move(policy)) {
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

std::unique_ptr<PolicyServer> PolicyServer::from_checkpoint(
    const std::string& path, ServeConfig config) {
  std::unique_ptr<const core::DecimaAgent> policy =
      io::load_policy_agent(path);
  if (!policy) return nullptr;
  return std::make_unique<PolicyServer>(std::move(policy), config);
}

PolicyServer::~PolicyServer() { stop(); }

void PolicyServer::stop() {
  {
    util::MutexLock lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  // call_once also blocks late callers until the winning join completes, so
  // every stop() returns only after the dispatcher is gone.
  std::call_once(join_once_, [this] { dispatcher_.join(); });
}

DecideResult PolicyServer::degraded_answer(const sim::ClusterEnv& env,
                                           DecideStatus status) const {
  DecideResult result;
  result.status = status;
  if (config_.heuristic_fallback) {
    // SJF-CP is stateless, cheap (no GNN), and the strongest single
    // heuristic on average-JCT (§7.2) — the natural degraded-mode policy.
    sched::SjfCpScheduler fallback;
    result.action = fallback.schedule(env);
    result.fallback = true;
  }
  return result;
}

DecideResult PolicyServer::decide_with_status(const sim::ClusterEnv& env,
                                              gnn::EmbeddingCache* cache) {
  ServeMetrics& metrics = ServeMetrics::get();
  // End-to-end latency as this session sees it, every outcome included.
  obs::ScopedLatencyUs decide_latency(metrics.decide_latency_us);
  Request req;
  req.env = &env;
  req.cache = cache;
  if (obs::metrics_enabled()) {
    req.enqueue_tp = std::chrono::steady_clock::now();
    req.enqueue_timed = true;
  }
  bool rejected = false;
  {
    util::MutexLock lk(mu_);
    if (stopping_) {
      ++stats_.stopped_answers;
      metrics.stopped.inc();
      return DecideResult{sim::Action::none(), DecideStatus::kStopped, false};
    }
    if (config_.max_queue > 0 &&
        queue_.size() >= static_cast<std::size_t>(config_.max_queue)) {
      // Backpressure: bounce instead of queueing unboundedly; the request is
      // answered below by the (lock-free) heuristic and never reaches the
      // dispatcher.
      ++stats_.rejections;
      if (config_.heuristic_fallback) ++stats_.fallbacks;
      rejected = true;
    } else {
      queue_.push_back(&req);
      stats_.max_queue_depth = std::max(
          stats_.max_queue_depth, static_cast<std::uint64_t>(queue_.size()));
    }
  }
  if (rejected) {
    metrics.rejected.inc();
    if (config_.heuristic_fallback) metrics.fallbacks.inc();
    return degraded_answer(env, DecideStatus::kRejected);
  }

  work_cv_.notify_one();
  const bool has_deadline = config_.deadline > 0.0;
  const auto submit_time = std::chrono::steady_clock::now();
  const auto deadline_tp =
      submit_time + std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::duration<double>(config_.deadline));
  bool timed_out = false;
  {
    util::MutexLock lk(mu_);
    bool enforce_deadline = has_deadline;
    while (!req.done) {
      if (!enforce_deadline) {
        done_cv_.wait(mu_);
        continue;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline_tp) {
        const auto it = std::find(queue_.begin(), queue_.end(), &req);
        if (it != queue_.end()) {
          // Still queued: withdraw the request before the dispatcher can
          // claim it, and answer from the fallback.
          queue_.erase(it);
          ++stats_.timeouts;
          if (config_.heuristic_fallback) ++stats_.fallbacks;
          timed_out = true;
          break;
        }
        // In flight: the dispatcher holds a pointer to this stack frame, so
        // we MUST wait for its answer (which is about to arrive anyway).
        enforce_deadline = false;
        continue;
      }
      done_cv_.wait_for(
          mu_, std::chrono::duration_cast<std::chrono::nanoseconds>(
                   deadline_tp - now));
    }
  }
  if (timed_out) {
    metrics.timed_out.inc();
    if (config_.heuristic_fallback) metrics.fallbacks.inc();
    return degraded_answer(env, DecideStatus::kTimedOut);
  }
  metrics.ok.inc();
  return DecideResult{req.action, DecideStatus::kOk, false};
}

sim::Action PolicyServer::decide(const sim::ClusterEnv& env,
                                 gnn::EmbeddingCache* cache) {
  return decide_with_status(env, cache).action;
}

void PolicyServer::swap_policy(
    std::unique_ptr<const core::DecimaAgent> policy) {
  if (!policy) return;
  // The retired snapshot leaves the lock scope before it dies: in-flight
  // batches still pin it, and ~DecimaAgent under mu_ would stall dispatch.
  std::shared_ptr<const core::DecimaAgent> retired;
  {
    util::MutexLock lk(mu_);
    retired = std::move(policy_);
    policy_ = std::move(policy);
    ++stats_.snapshot_swaps;
  }
  ServeMetrics::get().snapshot_swaps.inc();
}

bool PolicyServer::swap_policy_from_checkpoint(const std::string& path) {
  std::unique_ptr<const core::DecimaAgent> policy =
      io::load_policy_agent(path);
  if (!policy) return false;
  swap_policy(std::move(policy));
  return true;
}

void PolicyServer::dispatch_loop() {
  for (;;) {
    std::vector<Request*> batch;
    std::shared_ptr<const core::DecimaAgent> policy;
    {
      util::MutexLock lk(mu_);
      while (!stopping_ && queue_.empty()) work_cv_.wait(mu_);
      if (queue_.empty()) return;  // stopping, and everything answered
      const std::size_t take =
          config_.max_batch > 0
              ? std::min(queue_.size(),
                         static_cast<std::size_t>(config_.max_batch))
              : queue_.size();
      batch.assign(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(take));
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(take));
      // Pin this batch's snapshot: swap_policy may publish a new one while
      // we score unlocked, and the whole batch must answer from one policy.
      policy = policy_;
    }

    // Batch-assembly observability: how long each claimed request sat
    // queued, and the coalesced batch shape. Reading the requests' enqueue
    // stamps here is the same dispatcher-side ownership window as env/cache.
    ServeMetrics& metrics = ServeMetrics::get();
    if (obs::metrics_enabled()) {
      const auto now = std::chrono::steady_clock::now();
      for (const Request* r : batch) {
        if (r->enqueue_timed) {
          metrics.queue_wait_us.observe(
              std::chrono::duration<double, std::micro>(now - r->enqueue_tp)
                  .count());
        }
      }
      metrics.batch_size.observe(static_cast<double>(batch.size()));
      metrics.batches.inc();
    }

    // Inference runs unlocked: the waiting session threads are blocked until
    // their request is marked done, so their envs cannot change under us.
    std::vector<sim::Action> actions;
    {
      obs::Span batch_span(obs::names::kSpanServeBatch, "serve");
      obs::ScopedLatencyUs infer_latency(metrics.batch_infer_us);
      if (config_.cross_session_batching) {
        std::vector<const sim::ClusterEnv*> envs;
        std::vector<gnn::EmbeddingCache*> caches;
        envs.reserve(batch.size());
        caches.reserve(batch.size());
        for (const Request* r : batch) {
          envs.push_back(r->env);
          caches.push_back(r->cache);
        }
        actions = policy->decide_batch(envs, caches);
      } else {
        actions.reserve(batch.size());
        for (const Request* r : batch) {
          actions.push_back(policy->decide(*r->env, r->cache));
        }
      }
    }

    {
      util::MutexLock lk(mu_);
      stats_.decisions += batch.size();
      stats_.batches += 1;
      stats_.max_batch_size =
          std::max(stats_.max_batch_size,
                   static_cast<std::uint64_t>(batch.size()));
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i]->action = actions[i];
        batch[i]->done = true;
      }
    }
    done_cv_.notify_all();
  }
}

ServeStats PolicyServer::stats() const {
  util::MutexLock lk(mu_);
  ServeStats s = stats_;
  s.mean_batch_size =
      s.batches > 0 ? static_cast<double>(s.decisions) /
                          static_cast<double>(s.batches)
                    : 0.0;
  return s;
}

std::shared_ptr<const core::DecimaAgent> PolicyServer::policy() const {
  util::MutexLock lk(mu_);
  return policy_;
}

SessionResult run_session(PolicyServer& server, const sim::EnvConfig& env,
                          const std::vector<workload::ArrivingJob>& jobs,
                          sim::Time until) {
  sim::ClusterEnv cluster(env);
  workload::load(cluster, jobs);
  ServedScheduler sched(server);
  cluster.run(sched, until);

  SessionResult result;
  result.avg_jct = cluster.avg_jct();
  result.end_time = cluster.now();
  result.completed = static_cast<int>(cluster.jcts().size());
  result.decisions = sched.decisions();
  result.degradation = sched.degradation();
  result.cache = sched.embed_cache_stats();
  return result;
}

}  // namespace decima::serve
