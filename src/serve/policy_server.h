// The multi-session serving subsystem (docs/serving.md).
//
// Training produces a policy; this layer serves it. A PolicyServer loads a
// policy checkpoint (io::load_policy_agent) into an immutable snapshot and
// answers scheduling queries for many concurrent cluster sessions: each
// session thread drives its own simulated ClusterEnv and blocks on decide()
// at every scheduling query; a single dispatcher thread drains the request
// queue and scores all pending sessions' events in ONE forward evaluation
// (DecimaAgent::decide_batch — cross-session batching, the serving analogue
// of the episode-batched replay). Decisions are bit-identical to scoring each
// session alone, so throughput is the only thing batching changes
// (bench_serve_throughput, BENCH_serve.json).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/agent.h"
#include "sim/cluster_env.h"
#include "workload/arrivals.h"

namespace decima::serve {

struct ServeConfig {
  // Most pending requests one dispatch may coalesce; 0 drains the whole
  // queue. Decisions do not depend on batch composition, only latency does.
  int max_batch = 0;
  // false scores queued requests one at a time (the sequential reference
  // path of bench_serve_throughput); decisions are identical either way.
  bool cross_session_batching = true;
};

struct ServeStats {
  std::uint64_t decisions = 0;       // requests answered
  std::uint64_t batches = 0;         // dispatcher wake-ups that did work
  std::uint64_t max_batch_size = 0;  // largest single coalesced batch
  double mean_batch_size = 0.0;
};

class PolicyServer {
 public:
  // Takes ownership of the policy snapshot; the server only ever touches it
  // through the const read-only inference path. The dispatcher thread starts
  // immediately.
  explicit PolicyServer(std::unique_ptr<const core::DecimaAgent> policy,
                        ServeConfig config = {});
  // Loads a policy checkpoint written by io::save_policy; null on any
  // checkpoint error.
  static std::unique_ptr<PolicyServer> from_checkpoint(
      const std::string& path, ServeConfig config = {});
  ~PolicyServer();

  PolicyServer(const PolicyServer&) = delete;
  PolicyServer& operator=(const PolicyServer&) = delete;

  // Blocking decision query, called from session threads: enqueues the
  // session's current state and waits for the dispatcher's answer. Returns
  // Action::none() once the server is stopped. `cache` is the session's
  // incremental embedding cache (ServedScheduler owns one per session):
  // consecutive queries of a session re-embed only what changed between
  // them, even when the dispatcher scores the session inside a cross-session
  // batch. Only the dispatcher touches it while the session blocks, and the
  // parameter-version check inside the agent clears it when a different
  // policy snapshot answers (snapshot swap). Null = no caching.
  sim::Action decide(const sim::ClusterEnv& env,
                     gnn::EmbeddingCache* cache = nullptr);

  // Drains outstanding requests and joins the dispatcher. Idempotent; the
  // destructor calls it.
  void stop();

  ServeStats stats() const;
  const core::DecimaAgent& policy() const { return *policy_; }
  const ServeConfig& config() const { return config_; }

 private:
  struct Request {
    const sim::ClusterEnv* env = nullptr;
    gnn::EmbeddingCache* cache = nullptr;  // session-owned, may be null
    sim::Action action;
    bool done = false;
  };

  void dispatch_loop();

  const std::unique_ptr<const core::DecimaAgent> policy_;
  const ServeConfig config_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // dispatcher waits: work or stop
  std::condition_variable done_cv_;  // session threads wait: request done
  std::deque<Request*> queue_;
  bool stopping_ = false;
  ServeStats stats_;
  std::thread dispatcher_;
  std::once_flag join_once_;  // concurrent stop(): exactly one caller joins
};

// A Scheduler that routes every scheduling query of one session through the
// server, so an unmodified ClusterEnv::run() drives a served session.
class ServedScheduler : public sim::Scheduler {
 public:
  explicit ServedScheduler(PolicyServer& server) : server_(server) {}
  sim::Action schedule(const sim::ClusterEnv& env) override {
    ++decisions_;
    return server_.decide(env, &cache_);
  }
  std::string name() const override { return "Decima-served"; }
  std::size_t decisions() const { return decisions_; }
  const gnn::EmbeddingCacheStats& embed_cache_stats() const {
    return cache_.stats();
  }

 private:
  PolicyServer& server_;
  // The session's incremental embedding cache: this scheduler is the
  // session, so its lifetime is exactly the cache's stream of events.
  gnn::EmbeddingCache cache_;
  std::size_t decisions_ = 0;
};

// One served cluster session end to end: loads `jobs` into a fresh env and
// runs it against the server until `until` (or completion).
struct SessionResult {
  double avg_jct = 0.0;
  double end_time = 0.0;
  int completed = 0;
  std::size_t decisions = 0;  // scheduling queries the session issued
};
SessionResult run_session(PolicyServer& server, const sim::EnvConfig& env,
                          const std::vector<workload::ArrivingJob>& jobs,
                          sim::Time until = sim::kInfTime);

}  // namespace decima::serve
