// The sharded multi-session serving subsystem (docs/serving.md).
//
// Training produces a policy; this layer serves it. A PolicyServer loads a
// policy checkpoint (io::load_policy_agent) into an immutable snapshot and
// answers scheduling queries for many concurrent cluster sessions. The
// serving plane is sharded (ServeConfig::shards, default 1 — the reference
// single-dispatcher path): each shard owns a dispatcher thread, a bounded
// lock-free SPSC request ring (util/ring.h; session threads are serialized
// into the single-producer role by the shard mutex, the dispatcher pops
// lock-free), a map of the embedding caches of the sessions pinned to it,
// and its own load counters/histograms in the obs registry
// (serve.shard.* — docs/observability.md). Sessions get stable shard
// affinity so their incremental embedding caches stay hot on one dispatcher.
// Within a shard the dispatcher drains pending requests and scores them in
// ONE forward evaluation (DecimaAgent::decide_batch — cross-session
// batching, the serving analogue of episode-batched replay). Decisions are
// bit-identical to scoring each session alone, so throughput is the only
// thing sharding or batching changes (bench_serve_throughput,
// bench_serve_sharded; shards=1 is pinned bit-identical to the pre-shard
// dispatcher by tests/test_serve.cpp's Shards4MatchesShards1 family).
//
// Sessions are first-class: PolicyServer::open_session() returns a
// serve::Session handle that owns the session's incremental embedding cache
// and its shard affinity; decide_with_status(session, env) replaces the old
// caller-threaded EmbeddingCache* plumbing (which survives one release as a
// thin compatibility wrapper below).
//
// Snapshots are hot-swappable: swap_policy() publishes a new agent under the
// server lock without draining sessions — every shard's dispatcher pins the
// current snapshot (shared_ptr copy) per batch, in-flight batches finish on
// the old snapshot, and the per-session embedding caches self-invalidate on
// the parameter-version mismatch the first time the new snapshot answers.
//
// The server degrades gracefully under saturation (docs/robustness.md),
// shard-locally: each shard's ring can be bounded (ServeConfig::max_queue is
// a per-shard bound; excess requests are rejected — backpressure), queued
// requests can carry a deadline (timed out if the shard's dispatcher doesn't
// reach them in time), and rejected/timed-out requests are answered by the
// SJF-CP heuristic instead of an empty action. Every request resolves with
// an explicit DecideStatus — ok, timed-out, rejected, or stopped — and every
// degradation event is counted in the shard's ServeStats; stats() aggregates
// across shards with the same exact-accounting guarantee.
//
// Adaptive bounded-wait batching: with ServeConfig::batch_wait_us > 0 a
// shard whose ring is shallower than its open-session count waits up to
// that long for more sessions to submit before dispatching — shallow
// batches grow at low load, while a deep ring (or a lone session)
// dispatches immediately. Waiting reorders nothing a session can observe:
// decisions stay bit-identical, only latency/throughput shift.
//
// Locking discipline (docs/concurrency.md): every mutable member is
// GUARDED_BY its shard mutex (or the server mutex mu_ for the snapshot) and
// the Clang thread-safety analysis proves it at compile time; the two
// unannotated sharings are the SPSC ring (contract documented in
// util/ring.h and enforced by the shard mutex on the producer side) and the
// Request handoff, documented at the struct.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>  // std::once_flag only — locks live in util/sync.h
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/agent.h"
#include "sim/cluster_env.h"
#include "util/ring.h"
#include "util/sync.h"
#include "workload/arrivals.h"

namespace decima::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace decima::obs

namespace decima::serve {

struct ServeConfig {
  // Most pending requests one dispatch may coalesce; 0 drains the whole
  // ring. Decisions do not depend on batch composition, only latency does.
  int max_batch = 0;
  // false scores queued requests one at a time (the sequential reference
  // path of bench_serve_throughput); decisions are identical either way.
  bool cross_session_batching = true;

  // --- Sharding (docs/serving.md) ------------------------------------------
  // Dispatcher shards. 1 (the default) is the reference path, bit-identical
  // to the historical single-dispatcher server. Sessions are pinned to
  // shards round-robin at open_session(); a session's every request lands on
  // its shard, so its embedding cache is only ever touched by one
  // dispatcher.
  int shards = 1;
  // Adaptive bounded-wait dispatch: when > 0, a shard whose pending-request
  // count is below its open-session count waits up to this many microseconds
  // for more submissions before dispatching a shallow batch. 0 (default) =
  // dispatch immediately, the historical behavior.
  int batch_wait_us = 0;
  // Per-shard SPSC ring capacity override (rounded up to a power of two).
  // 0 = automatic: enough for max_queue plus headroom. Must be >= max_queue
  // when both are set — validate() enforces it.
  int ring_capacity = 0;

  // --- Graceful degradation (docs/robustness.md) ---------------------------
  // Bounded queue, per shard: a request arriving while max_queue requests
  // are already pending on its shard is rejected (kRejected) instead of
  // enqueued — backpressure, not unbounded latency. 0 = unbounded (the
  // pre-degradation behavior).
  int max_queue = 0;
  // Per-request deadline in seconds: a request still QUEUED this long after
  // submission gives up (kTimedOut). A request the dispatcher already picked
  // up always waits for its answer — decisions are never half-delivered.
  // 0 = no deadline.
  double deadline = 0.0;
  // When a request is rejected or times out, answer it from the SJF-CP
  // heuristic (src/sched) instead of returning Action::none(): the session
  // keeps making progress on a good-but-not-learned policy while the server
  // is saturated. Stopped servers never fall back — sessions must wind down.
  bool heuristic_fallback = true;

  // Fail-loudly construction: throws std::invalid_argument on nonsense
  // (shards < 1, negative budgets/deadlines, a per-shard queue bound smaller
  // than the batch size, a ring override smaller than the queue bound).
  // PolicyServer's constructor calls this, so a misconfigured server never
  // starts silently degraded. The knob table lives in docs/serving.md.
  void validate() const;
};

struct ServeStats {
  std::uint64_t decisions = 0;       // requests answered by the policy
  std::uint64_t batches = 0;         // dispatcher wake-ups that did work
  std::uint64_t max_batch_size = 0;  // largest single coalesced batch
  std::uint64_t snapshot_swaps = 0;  // successful swap_policy calls
  double mean_batch_size = 0.0;
  // Degradation events (every one is also a returned DecideResult status —
  // requests are answered ok/timed-out/rejected/stopped, never dropped).
  std::uint64_t rejections = 0;       // bounced off a full per-shard ring
  std::uint64_t timeouts = 0;         // deadline expired while queued
  std::uint64_t fallbacks = 0;        // degraded answers routed to SJF-CP
  std::uint64_t stopped_answers = 0;  // queries arriving after stop()
  std::uint64_t max_queue_depth = 0;  // high-water pending count (per shard)
};

// Why a decision came back the way it did. Replaces the old convention of
// returning Action::none() for "stopped", which was indistinguishable from a
// legitimate empty action (no runnable work).
enum class DecideStatus {
  kOk,        // answered by the policy snapshot
  kTimedOut,  // deadline expired while queued
  kRejected,  // bounced off a full queue (backpressure)
  kStopped,   // server stopped; no fallback, sessions should wind down
};

struct DecideResult {
  sim::Action action;  // Action::none() for kStopped (and fallback-off paths)
  DecideStatus status = DecideStatus::kOk;
  bool fallback = false;  // action came from the SJF-CP heuristic
};

class PolicyServer;

// A served session's identity: its shard affinity and its incremental
// embedding cache, owned by the server for exactly the handle's lifetime.
// Obtained from PolicyServer::open_session(); movable, not copyable; closes
// (and frees the cache) on destruction or close(). A Session must not
// outlive its server, and is single-threaded like the session it names:
// one thread drives decide_with_status(session, env) at a time.
class Session {
 public:
  Session() = default;
  Session(Session&& other) noexcept { *this = std::move(other); }
  Session& operator=(Session&& other) noexcept;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  ~Session() { close(); }

  // Unregisters from the server and frees the embedding cache. Idempotent;
  // safe on a moved-from or default-constructed handle.
  void close();

  bool open() const { return server_ != nullptr; }
  // The shard every request of this session lands on (stable for the
  // handle's lifetime).
  int shard() const { return shard_; }
  std::uint64_t id() const { return id_; }
  // The session's embedding-cache accounting (all zeros after close(), or
  // when the policy snapshot was exported with embed_cache off).
  const gnn::EmbeddingCacheStats& cache_stats() const;

 private:
  friend class PolicyServer;
  Session(PolicyServer* server, std::uint64_t id, int shard,
          gnn::EmbeddingCache* cache)
      : server_(server), id_(id), shard_(shard), cache_(cache) {}

  PolicyServer* server_ = nullptr;
  std::uint64_t id_ = 0;
  int shard_ = 0;
  // Owned by the server's shard (stable address in the shard's cache map);
  // only the shard dispatcher touches it while a request is in flight.
  gnn::EmbeddingCache* cache_ = nullptr;
};

class PolicyServer {
 public:
  // Takes ownership of the policy snapshot; the server only ever touches it
  // through the const read-only inference path. Validates `config`
  // (ServeConfig::validate — throws std::invalid_argument on nonsense, or
  // on a null policy) and starts one dispatcher thread per shard.
  explicit PolicyServer(std::unique_ptr<const core::DecimaAgent> policy,
                        ServeConfig config = {});
  // Loads a policy checkpoint written by io::save_policy; null on any
  // checkpoint error. A nonsense `config` still throws, as the constructor
  // does.
  static std::unique_ptr<PolicyServer> from_checkpoint(
      const std::string& path, ServeConfig config = {});
  ~PolicyServer();

  PolicyServer(const PolicyServer&) = delete;
  PolicyServer& operator=(const PolicyServer&) = delete;

  // Registers a new session: assigns it a shard (round-robin, stable for the
  // session's lifetime) and an embedding cache owned by that shard. The
  // handle unregisters itself on destruction. Sessions opened on a stopped
  // server are valid but every query answers kStopped.
  Session open_session() EXCLUDES(mu_);

  // Blocking decision query, called from the session's thread: enqueues the
  // session's current state on its shard and waits for that shard's
  // dispatcher — or degrades per the config (kRejected on a full ring,
  // kTimedOut past the deadline, kStopped once stopped), answering
  // rejected/timed-out requests from SJF-CP when heuristic_fallback is set.
  // The session's embedding cache rides along: consecutive queries re-embed
  // only what changed between them, even inside a cross-session batch. The
  // fallback path never touches the cache, so a degraded answer cannot
  // stale it. A closed/empty handle serves uncached.
  DecideResult decide_with_status(Session& session, const sim::ClusterEnv& env)
      EXCLUDES(mu_);
  // Action-only convenience wrapper. NOTE the historical ambiguity this API
  // keeps for compatibility: Action::none() here means EITHER "stopped" or
  // "no runnable work" — callers that care use decide_with_status.
  sim::Action decide(Session& session, const sim::ClusterEnv& env)
      EXCLUDES(mu_);

  // --- Deprecated raw-cache-pointer compatibility (one release) ------------
  // The pre-Session API: the caller threads its own EmbeddingCache* through
  // every call. Kept as a thin wrapper — shard affinity comes from hashing
  // the cache pointer (uncached callers rotate round-robin), so a caller
  // reusing one cache still lands on one shard. New code opens a Session.
  DecideResult decide_with_status(const sim::ClusterEnv& env,
                                  gnn::EmbeddingCache* cache = nullptr)
      EXCLUDES(mu_);
  sim::Action decide(const sim::ClusterEnv& env,
                     gnn::EmbeddingCache* cache = nullptr) EXCLUDES(mu_);

  // Publishes `policy` as the snapshot answering every *subsequent* batch;
  // batches already dispatched (on any shard) finish on the snapshot they
  // pinned. Live sessions keep their embedding caches — the agent's
  // parameter-version check invalidates them on first contact with the new
  // snapshot (pinned by DecideBatch.SessionCacheSurvivesSnapshotSwap). The
  // retired snapshot is destroyed once the last in-flight batch drops its
  // pin. Null is ignored.
  void swap_policy(std::unique_ptr<const core::DecimaAgent> policy)
      EXCLUDES(mu_);
  // swap_policy from a checkpoint written by io::save_policy; false (and no
  // swap) on any checkpoint error.
  bool swap_policy_from_checkpoint(const std::string& path) EXCLUDES(mu_);

  // Drains outstanding requests on every shard and joins the dispatchers.
  // Idempotent; the destructor calls it.
  void stop() EXCLUDES(mu_);

  // Aggregate across shards: sums for the counters, max for the high-water
  // marks (max_batch_size; max_queue_depth stays a per-shard bound — the
  // ladder's admission check is shard-local).
  ServeStats stats() const EXCLUDES(mu_);
  // One shard's own ladder accounting (snapshot_swaps is server-level and
  // reported as 0 here). `shard` must be in [0, num_shards()).
  ServeStats shard_stats(int shard) const EXCLUDES(mu_);
  int num_shards() const { return static_cast<int>(shards_.size()); }
  // The snapshot currently answering queries. Callers get their own pin: the
  // agent stays alive (and immutable) even if the server swaps or dies.
  std::shared_ptr<const core::DecimaAgent> policy() const EXCLUDES(mu_);
  const ServeConfig& config() const { return config_; }

 private:
  friend class Session;

  // One blocking query, heap-shared between the session thread and the ring:
  // `state` is the claim/abandon protocol that replaces the old
  // erase-from-queue withdrawal (a lock-free ring cannot unpublish). The
  // session abandons a still-queued request on deadline expiry (CAS
  // kQueued→kAbandoned); the dispatcher claims at pop (CAS
  // kQueued→kClaimed) and skips abandoned entries — exactly one side wins,
  // so a claimed request always waits for its answer and a withdrawn one is
  // never half-delivered, same as the historical dispatcher. The remaining
  // unannotated fields follow the old handoff protocol: the session thread
  // never reads them between enqueue and observing kDone under the shard
  // mutex, and the dispatcher never touches them after the kDone store.
  struct Request {
    enum State : int { kQueued = 0, kClaimed, kDone, kAbandoned };
    const sim::ClusterEnv* env = nullptr;
    gnn::EmbeddingCache* cache = nullptr;  // session-owned, may be null
    // Queue-wait observability (docs/observability.md): stamped at enqueue
    // when metrics were enabled; the dispatcher reads it after claiming.
    std::chrono::steady_clock::time_point enqueue_tp{};
    bool enqueue_timed = false;
    sim::Action action;
    std::atomic<int> state{kQueued};
  };

  // One dispatcher shard: ring, caches of the sessions pinned here, local
  // ladder accounting, and the shard's obs instruments. The mutex serializes
  // producers into the ring's single-producer contract and carries the
  // done/work signaling; the dispatcher pops the ring without it.
  struct Shard {
    explicit Shard(std::size_t ring_cap) : ring(ring_cap) {}

    util::Mutex mu;
    util::CondVar work_cv;  // dispatcher waits: work, stop, or batch growth
    util::CondVar done_cv;  // sessions wait: answer ready / ring space freed
    util::SpscRing<std::shared_ptr<Request>> ring;  // push under mu; pop free
    bool stopping GUARDED_BY(mu) = false;
    ServeStats st GUARDED_BY(mu);  // snapshot_swaps unused (server-level)
    std::unordered_map<std::uint64_t, std::unique_ptr<gnn::EmbeddingCache>>
        caches GUARDED_BY(mu);
    int open_sessions GUARDED_BY(mu) = 0;

    // Per-shard obs instruments (serve.shard.*, registered once at server
    // construction as "<name>.<shard-index>"; recording is lock-free).
    obs::Counter* m_decisions = nullptr;
    obs::Gauge* m_queue_depth = nullptr;
    obs::Histogram* m_batch_size = nullptr;
    obs::Histogram* m_batch_wait_us = nullptr;

    std::thread dispatcher;
  };

  void dispatch_loop(Shard& sh);
  // Adaptive bounded-wait (docs/serving.md): holds the dispatcher up to
  // batch_wait_us while the ring is shallower than the shard's open-session
  // count (capped by max_batch), so low-load batches grow; returns
  // immediately when the ring is already deep, the shard is stopping, or a
  // lone session could never be joined by another.
  void bounded_batch_wait(Shard& sh) REQUIRES(sh.mu);
  // The shared enqueue/wait/degrade path behind both decide APIs.
  DecideResult decide_on_shard(Shard& sh, const sim::ClusterEnv& env,
                               gnn::EmbeddingCache* cache);
  // Shard affinity for the deprecated raw-pointer API: hash of the cache
  // pointer when present (a stable caller-owned cache keeps landing on one
  // shard), round-robin otherwise.
  Shard& shard_for_cache(const gnn::EmbeddingCache* cache);
  void close_session(const Session& session);
  // Builds the degraded (rejected/timed-out) answer: SJF-CP when
  // heuristic_fallback is on, Action::none() otherwise.
  DecideResult degraded_answer(const sim::ClusterEnv& env,
                               DecideStatus status) const;

  const ServeConfig config_;

  // Server-level state: the hot-swappable snapshot and session numbering.
  // Shard-local state (ring, caches, ladder stats) lives in each Shard.
  mutable util::Mutex mu_;
  // The live snapshot. shared_ptr so a batch / policy() caller can pin it
  // across the unlocked inference while swap_policy retires it.
  std::shared_ptr<const core::DecimaAgent> policy_ GUARDED_BY(mu_);
  std::uint64_t snapshot_swaps_ GUARDED_BY(mu_) = 0;
  std::uint64_t next_session_id_ GUARDED_BY(mu_) = 0;
  // Round-robin cursor for uncached raw-API calls; relaxed atomic (like the
  // obs counters) so the deprecated hot path does not serialize on mu_.
  std::atomic<std::uint64_t> raw_rr_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::once_flag join_once_;  // concurrent stop(): exactly one caller joins
};

// A Scheduler that routes every scheduling query of one session through the
// server, so an unmodified ClusterEnv::run() drives a served session.
// Per-session tally of how each query resolved; ok + timeouts + rejections +
// stopped always equals the queries issued — no request is ever lost.
struct SessionDegradation {
  std::uint64_t ok = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t rejections = 0;
  std::uint64_t stopped = 0;
  std::uint64_t fallbacks = 0;  // of the above, answered by SJF-CP
  std::uint64_t answered() const {
    return ok + timeouts + rejections + stopped;
  }
};

class ServedScheduler : public sim::Scheduler {
 public:
  explicit ServedScheduler(PolicyServer& server)
      : server_(server), session_(server.open_session()) {}
  sim::Action schedule(const sim::ClusterEnv& env) override {
    ++decisions_;
    const DecideResult r = server_.decide_with_status(session_, env);
    switch (r.status) {
      case DecideStatus::kOk: ++degradation_.ok; break;
      case DecideStatus::kTimedOut: ++degradation_.timeouts; break;
      case DecideStatus::kRejected: ++degradation_.rejections; break;
      case DecideStatus::kStopped: ++degradation_.stopped; break;
    }
    if (r.fallback) ++degradation_.fallbacks;
    return r.action;
  }
  std::string name() const override { return "Decima-served"; }
  std::size_t decisions() const { return decisions_; }
  const SessionDegradation& degradation() const { return degradation_; }
  const Session& session() const { return session_; }
  const gnn::EmbeddingCacheStats& embed_cache_stats() const {
    return session_.cache_stats();
  }

 private:
  PolicyServer& server_;
  // The session handle: this scheduler is the session, so its lifetime is
  // exactly the handle's (shard affinity + server-owned embedding cache).
  Session session_;
  std::size_t decisions_ = 0;
  SessionDegradation degradation_;
};

// One served cluster session end to end: loads `jobs` into a fresh env and
// runs it against the server until `until` (or completion).
struct SessionResult {
  double avg_jct = 0.0;
  double end_time = 0.0;
  int completed = 0;
  std::size_t decisions = 0;  // scheduling queries the session issued
  SessionDegradation degradation;  // how each of those queries resolved
  // The session's embedding-cache accounting (hits/misses/dirty rows —
  // EmbeddingCache::hits()/misses()/dirty_rows()); all zeros when the
  // policy snapshot was exported with embed_cache off.
  gnn::EmbeddingCacheStats cache;
};
SessionResult run_session(PolicyServer& server, const sim::EnvConfig& env,
                          const std::vector<workload::ArrivingJob>& jobs,
                          sim::Time until = sim::kInfTime);

}  // namespace decima::serve
