// The multi-session serving subsystem (docs/serving.md).
//
// Training produces a policy; this layer serves it. A PolicyServer loads a
// policy checkpoint (io::load_policy_agent) into an immutable snapshot and
// answers scheduling queries for many concurrent cluster sessions: each
// session thread drives its own simulated ClusterEnv and blocks on decide()
// at every scheduling query; a single dispatcher thread drains the request
// queue and scores all pending sessions' events in ONE forward evaluation
// (DecimaAgent::decide_batch — cross-session batching, the serving analogue
// of the episode-batched replay). Decisions are bit-identical to scoring each
// session alone, so throughput is the only thing batching changes
// (bench_serve_throughput, BENCH_serve.json).
//
// Snapshots are hot-swappable: swap_policy() publishes a new agent under the
// server lock without draining sessions — the dispatcher pins the current
// snapshot (shared_ptr copy) per batch, in-flight batches finish on the old
// snapshot, and the per-session embedding caches self-invalidate on the
// parameter-version mismatch the first time the new snapshot answers them.
//
// The server degrades gracefully under saturation (docs/robustness.md):
// the queue can be bounded (requests beyond it are rejected — backpressure),
// queued requests can carry a deadline (timed out if the dispatcher doesn't
// reach them in time), and rejected/timed-out requests are answered by the
// SJF-CP heuristic instead of an empty action. Every request resolves with
// an explicit DecideStatus — ok, timed-out, rejected, or stopped — and
// every degradation event is counted in ServeStats.
//
// Locking discipline (docs/concurrency.md): every mutable member is
// GUARDED_BY(mu_) and the Clang thread-safety analysis proves it at compile
// time; the only unannotated sharing is the Request handoff, documented at
// the struct.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>  // std::once_flag only — locks live in util/sync.h
#include <string>
#include <thread>
#include <vector>

#include "core/agent.h"
#include "sim/cluster_env.h"
#include "util/sync.h"
#include "workload/arrivals.h"

namespace decima::serve {

struct ServeConfig {
  // Most pending requests one dispatch may coalesce; 0 drains the whole
  // queue. Decisions do not depend on batch composition, only latency does.
  int max_batch = 0;
  // false scores queued requests one at a time (the sequential reference
  // path of bench_serve_throughput); decisions are identical either way.
  bool cross_session_batching = true;

  // --- Graceful degradation (docs/robustness.md) ---------------------------
  // Bounded queue: a request arriving while max_queue requests are already
  // pending is rejected (kRejected) instead of enqueued — backpressure, not
  // unbounded latency. 0 = unbounded (the pre-degradation behavior).
  int max_queue = 0;
  // Per-request deadline in seconds: a request still QUEUED this long after
  // submission gives up (kTimedOut). A request the dispatcher already picked
  // up always waits for its answer — decisions are never half-delivered.
  // 0 = no deadline.
  double deadline = 0.0;
  // When a request is rejected or times out, answer it from the SJF-CP
  // heuristic (src/sched) instead of returning Action::none(): the session
  // keeps making progress on a good-but-not-learned policy while the server
  // is saturated. Stopped servers never fall back — sessions must wind down.
  bool heuristic_fallback = true;
};

struct ServeStats {
  std::uint64_t decisions = 0;       // requests answered by the policy
  std::uint64_t batches = 0;         // dispatcher wake-ups that did work
  std::uint64_t max_batch_size = 0;  // largest single coalesced batch
  std::uint64_t snapshot_swaps = 0;  // successful swap_policy calls
  double mean_batch_size = 0.0;
  // Degradation events (every one is also a returned DecideResult status —
  // requests are answered ok/timed-out/rejected/stopped, never dropped).
  std::uint64_t rejections = 0;       // bounced off a full queue
  std::uint64_t timeouts = 0;         // deadline expired while queued
  std::uint64_t fallbacks = 0;        // degraded answers routed to SJF-CP
  std::uint64_t stopped_answers = 0;  // queries arriving after stop()
  std::uint64_t max_queue_depth = 0;  // high-water pending-request count
};

// Why a decision came back the way it did. Replaces the old convention of
// returning Action::none() for "stopped", which was indistinguishable from a
// legitimate empty action (no runnable work).
enum class DecideStatus {
  kOk,        // answered by the policy snapshot
  kTimedOut,  // deadline expired while queued
  kRejected,  // bounced off a full queue (backpressure)
  kStopped,   // server stopped; no fallback, sessions should wind down
};

struct DecideResult {
  sim::Action action;  // Action::none() for kStopped (and fallback-off paths)
  DecideStatus status = DecideStatus::kOk;
  bool fallback = false;  // action came from the SJF-CP heuristic
};

class PolicyServer {
 public:
  // Takes ownership of the policy snapshot; the server only ever touches it
  // through the const read-only inference path. The dispatcher thread starts
  // immediately.
  explicit PolicyServer(std::unique_ptr<const core::DecimaAgent> policy,
                        ServeConfig config = {});
  // Loads a policy checkpoint written by io::save_policy; null on any
  // checkpoint error.
  static std::unique_ptr<PolicyServer> from_checkpoint(
      const std::string& path, ServeConfig config = {});
  ~PolicyServer();

  PolicyServer(const PolicyServer&) = delete;
  PolicyServer& operator=(const PolicyServer&) = delete;

  // Blocking decision query, called from session threads: enqueues the
  // session's current state and waits for the dispatcher's answer — or
  // degrades per the config (kRejected on a full queue, kTimedOut past the
  // deadline, kStopped once stopped), answering rejected/timed-out requests
  // from SJF-CP when heuristic_fallback is set. `cache` is the session's
  // incremental embedding cache (ServedScheduler owns one per session):
  // consecutive queries of a session re-embed only what changed between
  // them, even when the dispatcher scores the session inside a cross-session
  // batch. Only the dispatcher touches it while the session blocks, and the
  // parameter-version check inside the agent clears it when a different
  // policy snapshot answers (snapshot swap). Null = no caching. The fallback
  // path never touches the cache, so a degraded answer cannot stale it.
  DecideResult decide_with_status(const sim::ClusterEnv& env,
                                  gnn::EmbeddingCache* cache = nullptr)
      EXCLUDES(mu_);

  // Action-only convenience wrapper around decide_with_status. NOTE the
  // historical ambiguity this API keeps for compatibility: Action::none()
  // here means EITHER "stopped" or "no runnable work" — callers that care
  // use decide_with_status.
  sim::Action decide(const sim::ClusterEnv& env,
                     gnn::EmbeddingCache* cache = nullptr) EXCLUDES(mu_);

  // Publishes `policy` as the snapshot answering every *subsequent* batch;
  // batches already dispatched finish on the snapshot they pinned. Live
  // sessions keep their embedding caches — the agent's parameter-version
  // check invalidates them on first contact with the new snapshot (pinned by
  // DecideBatch.SessionCacheSurvivesSnapshotSwap). The retired snapshot is
  // destroyed once the last in-flight batch drops its pin. Null is ignored.
  void swap_policy(std::unique_ptr<const core::DecimaAgent> policy)
      EXCLUDES(mu_);
  // swap_policy from a checkpoint written by io::save_policy; false (and no
  // swap) on any checkpoint error.
  bool swap_policy_from_checkpoint(const std::string& path) EXCLUDES(mu_);

  // Drains outstanding requests and joins the dispatcher. Idempotent; the
  // destructor calls it.
  void stop() EXCLUDES(mu_);

  ServeStats stats() const EXCLUDES(mu_);
  // The snapshot currently answering queries. Callers get their own pin: the
  // agent stays alive (and immutable) even if the server swaps or dies.
  std::shared_ptr<const core::DecimaAgent> policy() const EXCLUDES(mu_);
  const ServeConfig& config() const { return config_; }

 private:
  // One blocking query. The handoff protocol makes the unannotated fields
  // safe: the owning session thread never reads them between enqueue and the
  // done_cv_ wakeup that observes `done` under mu_, and the dispatcher never
  // touches them after setting `done` under mu_ — ownership passes through
  // the mutex in both directions.
  struct Request {
    const sim::ClusterEnv* env = nullptr;
    gnn::EmbeddingCache* cache = nullptr;  // session-owned, may be null
    // Queue-wait observability (docs/observability.md): stamped at enqueue
    // when metrics were enabled; the dispatcher reads it after claiming the
    // request, under the same handoff ownership as env/cache above.
    std::chrono::steady_clock::time_point enqueue_tp{};
    bool enqueue_timed = false;
    sim::Action action;
    bool done = false;
  };

  void dispatch_loop() EXCLUDES(mu_);
  // Builds the degraded (rejected/timed-out) answer: SJF-CP when
  // heuristic_fallback is on, Action::none() otherwise.
  DecideResult degraded_answer(const sim::ClusterEnv& env,
                               DecideStatus status) const;

  const ServeConfig config_;

  mutable util::Mutex mu_;
  util::CondVar work_cv_;  // dispatcher waits: work or stop
  util::CondVar done_cv_;  // session threads wait: request done
  // The live snapshot. shared_ptr so a batch / policy() caller can pin it
  // across the unlocked inference while swap_policy retires it.
  std::shared_ptr<const core::DecimaAgent> policy_ GUARDED_BY(mu_);
  std::deque<Request*> queue_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  ServeStats stats_ GUARDED_BY(mu_);
  std::thread dispatcher_;
  std::once_flag join_once_;  // concurrent stop(): exactly one caller joins
};

// A Scheduler that routes every scheduling query of one session through the
// server, so an unmodified ClusterEnv::run() drives a served session.
// Per-session tally of how each query resolved; ok + timeouts + rejections +
// stopped always equals the queries issued — no request is ever lost.
struct SessionDegradation {
  std::uint64_t ok = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t rejections = 0;
  std::uint64_t stopped = 0;
  std::uint64_t fallbacks = 0;  // of the above, answered by SJF-CP
  std::uint64_t answered() const {
    return ok + timeouts + rejections + stopped;
  }
};

class ServedScheduler : public sim::Scheduler {
 public:
  explicit ServedScheduler(PolicyServer& server) : server_(server) {}
  sim::Action schedule(const sim::ClusterEnv& env) override {
    ++decisions_;
    const DecideResult r = server_.decide_with_status(env, &cache_);
    switch (r.status) {
      case DecideStatus::kOk: ++degradation_.ok; break;
      case DecideStatus::kTimedOut: ++degradation_.timeouts; break;
      case DecideStatus::kRejected: ++degradation_.rejections; break;
      case DecideStatus::kStopped: ++degradation_.stopped; break;
    }
    if (r.fallback) ++degradation_.fallbacks;
    return r.action;
  }
  std::string name() const override { return "Decima-served"; }
  std::size_t decisions() const { return decisions_; }
  const SessionDegradation& degradation() const { return degradation_; }
  const gnn::EmbeddingCacheStats& embed_cache_stats() const {
    return cache_.stats();
  }

 private:
  PolicyServer& server_;
  // The session's incremental embedding cache: this scheduler is the
  // session, so its lifetime is exactly the cache's stream of events.
  gnn::EmbeddingCache cache_;
  std::size_t decisions_ = 0;
  SessionDegradation degradation_;
};

// One served cluster session end to end: loads `jobs` into a fresh env and
// runs it against the server until `until` (or completion).
struct SessionResult {
  double avg_jct = 0.0;
  double end_time = 0.0;
  int completed = 0;
  std::size_t decisions = 0;  // scheduling queries the session issued
  SessionDegradation degradation;  // how each of those queries resolved
  // The session's embedding-cache accounting (hits/misses/dirty rows —
  // EmbeddingCache::hits()/misses()/dirty_rows()); all zeros when the
  // policy snapshot was exported with embed_cache off.
  gnn::EmbeddingCacheStats cache;
};
SessionResult run_session(PolicyServer& server, const sim::EnvConfig& env,
                          const std::vector<workload::ArrivingJob>& jobs,
                          sim::Time until = sim::kInfTime);

}  // namespace decima::serve
