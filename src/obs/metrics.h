// Runtime metrics registry (docs/observability.md).
//
// A process-global, thread-safe registry of named counters, gauges, and
// fixed-bucket latency histograms, built so the three concurrent planes
// (training, serving, embedding cache) can expose what happens *inside* a
// request or an iteration — queue waits, batch shapes, hit rates, tail
// latencies — without the offline BENCH_*.json aggregates being the only
// window into the system.
//
// Design rules:
//   * Global off by default. Every recording call first reads one relaxed
//     atomic flag and returns — the disabled path is a load + branch, no
//     locks, no allocation, no clock reads (bench_observability pins the
//     enabled-path tax too: metrics-on throughput ≥ 0.97× metrics-off,
//     floored in scripts/check_bench.py).
//   * Recording is lock-free: counters and histogram buckets are relaxed
//     atomics, gauges a CAS double. The registry mutex (util/sync.h,
//     GUARDED_BY-annotated) guards only registration and dumps — handles
//     returned by counter()/gauge()/histogram() are stable for the process
//     lifetime, so hot paths register once (function-local static) and then
//     never touch the map again.
//   * Observation only. Nothing here feeds back into scheduling, training,
//     or the RNG streams: training with metrics+tracing enabled is
//     byte-identical to disabled (tests/test_observability.cpp pins this at
//     rollout_threads 1 and 8, the same discipline as the PR 8 phase
//     timers).
//
// Names come from src/obs/metric_names.h; docs/observability.md holds the
// inventory (lint-enforced in both directions).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/sync.h"

namespace decima::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
extern std::atomic<bool> g_tracing_enabled;
}  // namespace detail

// The global toggles. Reading is one relaxed load; flipping is sequentially
// consistent (a toggle is a rare, human-scale event). Metrics and tracing
// flip independently: tracing buffers events and costs memory, metrics are
// fixed-size aggregates.
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
inline bool tracing_enabled() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool on);
void set_tracing_enabled(bool on);
// Both at once — the "turn the observability layer on/off" switch.
void set_enabled(bool on);

// Monotonically increasing event count. inc() on the disabled path is a
// relaxed load + branch.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (!metrics_enabled()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  // Create via Registry::counter(); public only so make_unique can build it.
  explicit Counter(std::string name) : name_(std::move(name)) {}

 private:
  friend class Registry;  // reset() zeroes v_ in place
  std::string name_;
  std::atomic<std::uint64_t> v_{0};
};

// Last-written instantaneous value (pool utilization, queue depth, ...).
class Gauge {
 public:
  void set(double v) {
    if (!metrics_enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  // Create via Registry::gauge(); public only so make_unique can build it.
  explicit Gauge(std::string name) : name_(std::move(name)) {}

 private:
  friend class Registry;  // reset() zeroes v_ in place
  std::string name_;
  std::atomic<double> v_{0.0};
};

// Fixed-bucket histogram with percentile estimation.
//
// Buckets are ascending upper bounds; a sample lands in the first bucket
// whose bound is >= the sample, with one implicit overflow bucket past the
// last bound. Percentiles interpolate linearly inside the winning bucket
// (the overflow bucket reports its lower bound — a floor, never an
// invention), so accuracy is the bucket resolution: the default latency
// ladder spans 1µs–10s at ~24% geometric steps, plenty for p50/p95/p99 of
// serve latencies. Exact percentiles stay the job of util::percentile over
// raw samples (bench_serve_throughput); this histogram is for always-on,
// bounded-memory aggregation.
class Histogram {
 public:
  void observe(double v) {
    if (!metrics_enabled()) return;
    record(v);
  }
  std::uint64_t count() const;
  double sum() const;
  // p in [0, 100]; 0 when the histogram is empty.
  double percentile(double p) const;
  const std::vector<double>& bounds() const { return bounds_; }
  // bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  const std::string& name() const { return name_; }

  // `n` geometrically spaced upper bounds from lo to hi (both > 0).
  static std::vector<double> exponential_bounds(double lo, double hi, int n);
  // The default ladder: exponential_bounds(1.0, 1e7, 60) microseconds.
  static std::vector<double> default_latency_bounds_us();

  // Create via Registry::histogram(); public only for make_unique.
  Histogram(std::string name, std::vector<double> bounds);

 private:
  friend class Registry;  // reset() zeroes buckets in place
  void record(double v);

  std::string name_;
  std::vector<double> bounds_;  // ascending upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds+overflow
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

// The process-global name → handle table. instance() is the one everybody
// shares; separate Registry objects exist only for tests.
class Registry {
 public:
  static Registry& instance();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Returns the handle registered under `name`, creating it on first use.
  // Handles stay valid (and at a stable address) for the registry's
  // lifetime. Hot paths cache the reference:
  //   static obs::Counter& hits =
  //       obs::Registry::instance().counter(obs::names::kCacheGraphHits);
  Counter& counter(const std::string& name) EXCLUDES(mu_);
  Gauge& gauge(const std::string& name) EXCLUDES(mu_);
  // Empty `bounds` uses default_latency_bounds_us(). Bounds are fixed at
  // first registration; later callers get the existing histogram.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {}) EXCLUDES(mu_);

  // Zeroes every registered value (registrations and bucket layouts stay).
  void reset() EXCLUDES(mu_);

  // Flat `TYPE name value [p50 p95 p99]` lines, sorted by name.
  std::string text_dump() const EXCLUDES(mu_);
  // One JSON object: {"counters": {...}, "gauges": {...},
  // "histograms": {name: {count, sum, p50, p95, p99}}}.
  std::string json_dump() const EXCLUDES(mu_);
  // json_dump() to `path`; false on I/O error.
  bool write_json(const std::string& path) const EXCLUDES(mu_);

  // Every registered metric name, sorted (the docs-inventory surface).
  std::vector<std::string> metric_names() const EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  // Registration is rare and lookup linear; unique_ptr keeps every handle
  // at a stable address while the vectors grow. Dumps sort on the fly.
  std::vector<std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Histogram>> histograms_ GUARDED_BY(mu_);
};

// RAII microsecond latency observation into a histogram: reads the clock
// only when metrics are enabled at construction (disabled cost: one relaxed
// load + branch at each end).
class ScopedLatencyUs {
 public:
  explicit ScopedLatencyUs(Histogram& h);
  ~ScopedLatencyUs();
  ScopedLatencyUs(const ScopedLatencyUs&) = delete;
  ScopedLatencyUs& operator=(const ScopedLatencyUs&) = delete;

 private:
  Histogram& h_;
  bool armed_;
  std::int64_t t0_ns_ = 0;
};

}  // namespace decima::obs
