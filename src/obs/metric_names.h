// The metric and span name inventory (docs/observability.md).
//
// Every name the runtime observability layer registers lives here as a
// constant, one per line, so instrumentation sites across the planes agree
// on spelling and the whole surface is enumerable: scripts/
// check_invariants.py (rule obs-docs-inventory) cross-checks this file
// against the inventory table in docs/observability.md in both directions —
// a constant added here without a documented row (or a documented row whose
// constant is gone) fails the lint.
//
// Naming convention: `<plane>.<what>[_<unit>]`, with `_us` marking
// microsecond latency histograms. Span names share the namespace (they show
// up in chrome://tracing next to the metrics they explain).
#pragma once

namespace decima::obs::names {

// --- Serving plane (src/serve/policy_server.cpp) ----------------------------
// End-to-end decide_with_status latency as the session thread sees it:
// enqueue, queue wait, batch inference, wake-up.
inline constexpr char kServeDecideLatencyUs[] = "serve.decide_latency_us";
// Time a request sat queued before the dispatcher claimed its batch.
inline constexpr char kServeQueueWaitUs[] = "serve.queue_wait_us";
// The dispatcher's unlocked inference section, per batch.
inline constexpr char kServeBatchInferUs[] = "serve.batch_infer_us";
// Requests coalesced per dispatch (histogram; p50/p95 of batch shape).
inline constexpr char kServeBatchSize[] = "serve.batch_size";
// Requests answered by the policy snapshot (ok path).
inline constexpr char kServeRequestsOk[] = "serve.requests_ok";
// Degradation ladder counters — mirror ServeStats (docs/robustness.md).
inline constexpr char kServeRequestsRejected[] = "serve.requests_rejected";
inline constexpr char kServeRequestsTimedOut[] = "serve.requests_timed_out";
inline constexpr char kServeRequestsStopped[] = "serve.requests_stopped";
inline constexpr char kServeFallbacks[] = "serve.fallbacks";
inline constexpr char kServeSnapshotSwaps[] = "serve.snapshot_swaps";
// Dispatcher wake-ups that did work.
inline constexpr char kServeBatches[] = "serve.batches";
// Span: one dispatcher batch (claim → inference → hand back answers).
inline constexpr char kSpanServeBatch[] = "serve.dispatch_batch";

// --- Sharded serving plane (docs/serving.md) --------------------------------
// Per-shard load instruments: one instance per dispatcher shard, registered
// at PolicyServer construction as "<name>.<shard-index>" (e.g.
// serve.shard.decisions.0). Shard imbalance shows up as skew across the
// indexed instances of one name.
// Requests answered by this shard's dispatcher.
inline constexpr char kServeShardDecisions[] = "serve.shard.decisions";
// Ring depth observed at each dispatch (gauge; the per-shard load signal).
inline constexpr char kServeShardQueueDepth[] = "serve.shard.queue_depth";
// Requests coalesced per dispatch on this shard.
inline constexpr char kServeShardBatchSize[] = "serve.shard.batch_size";
// Time the adaptive bounded wait actually held a shallow batch open
// (ServeConfig::batch_wait_us; 0 observations while the knob is off).
inline constexpr char kServeShardBatchWaitUs[] = "serve.shard.batch_wait_us";

// --- Training plane (src/rl/reinforce.cpp) ----------------------------------
inline constexpr char kTrainIterations[] = "train.iterations";
inline constexpr char kTrainEpisodes[] = "train.episodes";
// Worker-pool busy fraction per phase: <phase>_cpu_seconds /
// (rollout_threads × <phase> wall seconds), from the IterationStats
// accounting PR 8 introduced. 1.0 = every worker busy the whole phase.
inline constexpr char kTrainRolloutUtilization[] =
    "train.rollout_pool_utilization";
inline constexpr char kTrainReplayUtilization[] =
    "train.replay_pool_utilization";
// Wall-clock of one full Algorithm-1 iteration.
inline constexpr char kTrainIterationUs[] = "train.iteration_us";
// Spans: the Algorithm-1 phases of one iteration (docs/training.md).
inline constexpr char kSpanTrainIteration[] = "train.iteration";
inline constexpr char kSpanTrainRollout[] = "train.rollout";
inline constexpr char kSpanTrainReplay[] = "train.replay";
inline constexpr char kSpanTrainStep[] = "train.step";

// --- Embedding-cache plane (src/gnn/embedding_cache.cpp) --------------------
// Per-graph refresh outcomes (docs/incremental_embedding.md): a hit reused
// the entry without MLP work, a miss rebuilt it from scratch (new job or
// structure change). epoch_fast_hits ⊆ hits skipped even the feature diff;
// diff_refreshes took the per-row diff path and re-embedded something.
inline constexpr char kCacheGraphHits[] = "cache.graph_hits";
inline constexpr char kCacheGraphMisses[] = "cache.graph_misses";
inline constexpr char kCacheEpochFastHits[] = "cache.epoch_fast_hits";
inline constexpr char kCacheDiffRefreshes[] = "cache.diff_refreshes";
// Node rows actually re-embedded (the dirty closure over message flow).
inline constexpr char kCacheDirtyRows[] = "cache.dirty_rows";
// Full clears on parameter-version changes (Adam step, snapshot swap).
inline constexpr char kCacheInvalidations[] = "cache.invalidations";

}  // namespace decima::obs::names
