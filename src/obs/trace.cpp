#include "obs/trace.h"

#include <atomic>
#include <fstream>
#include <sstream>

namespace decima::obs {

namespace {

// Small dense per-thread id, assigned in first-use order: chrome://tracing
// groups events by tid, and "1, 2, 3, ..." rows read better than opaque
// native handles.
int current_tid() {
  static std::atomic<int> next{1};
  thread_local const int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

// Names are repo-controlled literals (src/obs/metric_names.h), but escape
// anyway so a stray quote can never produce an unloadable trace.
void append_escaped(std::ostringstream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer* g = new Tracer();  // leak: outlive static destructors
  return *g;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

void Tracer::record_complete(const char* name, const char* cat,
                             std::chrono::steady_clock::time_point begin,
                             std::chrono::steady_clock::time_point end) {
  // No enabled-check here: a Span armed at construction records even if
  // tracing was toggled off while it was open (the contract in trace.h).
  // The disabled-path guard lives in the Span constructor.
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_us = std::chrono::duration<double, std::micro>(begin - epoch_).count();
  e.dur_us = std::chrono::duration<double, std::micro>(end - begin).count();
  e.tid = current_tid();
  util::MutexLock lk(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(e);
}

std::size_t Tracer::size() const {
  util::MutexLock lk(mu_);
  return events_.size();
}

std::uint64_t Tracer::dropped() const {
  util::MutexLock lk(mu_);
  return dropped_;
}

void Tracer::clear() {
  util::MutexLock lk(mu_);
  events_.clear();
  events_.shrink_to_fit();
  dropped_ = 0;
}

void Tracer::set_capacity(std::size_t cap) {
  util::MutexLock lk(mu_);
  capacity_ = cap;
  if (events_.size() > capacity_) {
    events_.resize(capacity_);
  }
}

std::string Tracer::chrome_json() const {
  util::MutexLock lk(mu_);
  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    os << (i == 0 ? "" : ",") << "\n  {\"name\": \"";
    append_escaped(os, e.name);
    os << "\", \"cat\": \"";
    append_escaped(os, e.cat);
    os << "\", \"ph\": \"X\", \"ts\": " << e.ts_us << ", \"dur\": "
       << e.dur_us << ", \"pid\": 1, \"tid\": " << e.tid << "}";
  }
  os << "\n]}\n";
  return os.str();
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << chrome_json();
  return static_cast<bool>(out);
}

}  // namespace decima::obs
