#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>

namespace decima::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
std::atomic<bool> g_tracing_enabled{false};
}  // namespace detail

void set_metrics_enabled(bool on) { detail::g_metrics_enabled.store(on); }
void set_tracing_enabled(bool on) { detail::g_tracing_enabled.store(on); }
void set_enabled(bool on) {
  set_metrics_enabled(on);
  set_tracing_enabled(on);
}

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_latency_bounds_us();
  std::sort(bounds_.begin(), bounds_.end());
  // make_unique value-initializes: every bucket starts at zero.
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::record(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // may be overflow slot
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::percentile(double p) const {
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  const double target = clamped / 100.0 * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = cum + static_cast<double>(counts[i]);
    if (next >= target) {
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      if (i == bounds_.size()) return bounds_.back();  // overflow: floor
      const double upper = bounds_[i];
      const double frac =
          std::max(target - cum, 0.0) / static_cast<double>(counts[i]);
      return lower + frac * (upper - lower);
    }
    cum = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> Histogram::exponential_bounds(double lo, double hi,
                                                  int n) {
  std::vector<double> out;
  if (n <= 0 || lo <= 0.0 || hi <= lo) return out;
  out.reserve(static_cast<std::size_t>(n));
  const double step =
      std::pow(hi / lo, 1.0 / static_cast<double>(std::max(n - 1, 1)));
  double b = lo;
  for (int i = 0; i < n; ++i) {
    out.push_back(b);
    b *= step;
  }
  out.back() = hi;  // kill accumulated rounding on the top bound
  return out;
}

std::vector<double> Histogram::default_latency_bounds_us() {
  // 1µs .. 10s in 60 geometric steps (~31% each): sub-bucket interpolation
  // keeps p50/p95/p99 well inside bench noise for serve-scale latencies.
  return exponential_bounds(1.0, 1e7, 60);
}

// --- Registry ---------------------------------------------------------------

Registry& Registry::instance() {
  static Registry* g = new Registry();  // leak: outlive static destructors
  return *g;
}

Counter& Registry::counter(const std::string& name) {
  util::MutexLock lk(mu_);
  for (const auto& c : counters_) {
    if (c->name() == name) return *c;
  }
  counters_.push_back(std::make_unique<Counter>(name));
  return *counters_.back();
}

Gauge& Registry::gauge(const std::string& name) {
  util::MutexLock lk(mu_);
  for (const auto& g : gauges_) {
    if (g->name() == name) return *g;
  }
  gauges_.push_back(std::make_unique<Gauge>(name));
  return *gauges_.back();
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  util::MutexLock lk(mu_);
  for (const auto& h : histograms_) {
    if (h->name() == name) return *h;
  }
  histograms_.push_back(
      std::make_unique<Histogram>(name, std::move(bounds)));
  return *histograms_.back();
}

void Registry::reset() {
  util::MutexLock lk(mu_);
  for (const auto& c : counters_) {
    c->v_.store(0, std::memory_order_relaxed);
  }
  for (const auto& g : gauges_) {
    g->v_.store(0.0, std::memory_order_relaxed);
  }
  for (const auto& h : histograms_) {
    for (std::size_t i = 0; i <= h->bounds_.size(); ++i) {
      h->counts_[i].store(0, std::memory_order_relaxed);
    }
    h->sum_.store(0.0, std::memory_order_relaxed);
    h->count_.store(0, std::memory_order_relaxed);
  }
}

namespace {

// Full precision without trailing-zero noise; metrics are diffed by humans.
std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

template <typename T>
std::vector<const T*> sorted_by_name(
    const std::vector<std::unique_ptr<T>>& items) {
  std::vector<const T*> out;
  out.reserve(items.size());
  for (const auto& i : items) out.push_back(i.get());
  std::sort(out.begin(), out.end(), [](const T* a, const T* b) {
    return a->name() < b->name();
  });
  return out;
}

}  // namespace

std::string Registry::text_dump() const {
  util::MutexLock lk(mu_);
  std::ostringstream os;
  for (const Counter* c : sorted_by_name(counters_)) {
    os << "counter " << c->name() << " " << c->value() << "\n";
  }
  for (const Gauge* g : sorted_by_name(gauges_)) {
    os << "gauge " << g->name() << " " << fmt_double(g->value()) << "\n";
  }
  for (const Histogram* h : sorted_by_name(histograms_)) {
    os << "histogram " << h->name() << " count " << h->count() << " sum "
       << fmt_double(h->sum()) << " p50 " << fmt_double(h->percentile(50))
       << " p95 " << fmt_double(h->percentile(95)) << " p99 "
       << fmt_double(h->percentile(99)) << "\n";
  }
  return os.str();
}

std::string Registry::json_dump() const {
  util::MutexLock lk(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const Counter* c : sorted_by_name(counters_)) {
    os << (first ? "" : ",") << "\n    \"" << c->name()
       << "\": " << c->value();
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const Gauge* g : sorted_by_name(gauges_)) {
    os << (first ? "" : ",") << "\n    \"" << g->name()
       << "\": " << fmt_double(g->value());
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const Histogram* h : sorted_by_name(histograms_)) {
    os << (first ? "" : ",") << "\n    \"" << h->name() << "\": {\"count\": "
       << h->count() << ", \"sum\": " << fmt_double(h->sum())
       << ", \"p50\": " << fmt_double(h->percentile(50))
       << ", \"p95\": " << fmt_double(h->percentile(95))
       << ", \"p99\": " << fmt_double(h->percentile(99)) << "}";
    first = false;
  }
  os << "\n  }\n}\n";
  return os.str();
}

bool Registry::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << json_dump();
  return static_cast<bool>(out);
}

std::vector<std::string> Registry::metric_names() const {
  util::MutexLock lk(mu_);
  std::vector<std::string> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& c : counters_) out.push_back(c->name());
  for (const auto& g : gauges_) out.push_back(g->name());
  for (const auto& h : histograms_) out.push_back(h->name());
  std::sort(out.begin(), out.end());
  return out;
}

// --- ScopedLatencyUs --------------------------------------------------------

ScopedLatencyUs::ScopedLatencyUs(Histogram& h)
    : h_(h), armed_(metrics_enabled()) {
  if (armed_) {
    t0_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count();
  }
}

ScopedLatencyUs::~ScopedLatencyUs() {
  if (!armed_) return;
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  h_.observe(static_cast<double>(now_ns - t0_ns_) * 1e-3);
}

}  // namespace decima::obs
