// Scoped trace spans with Chrome trace-event export (docs/observability.md).
//
// An obs::Span marks a wall-clock interval on the current thread — a
// dispatcher batch, a training phase — and records it into the process-wide
// Tracer buffer when tracing is enabled. The buffer exports Chrome
// trace-event-format JSON ("X" complete events with microsecond ts/dur),
// loadable directly in chrome://tracing or https://ui.perfetto.dev, so a
// serve run or a training iteration can be inspected visually: where queue
// wait ends, how batches overlap session threads, how the rollout/replay/
// step phases tile an iteration.
//
// Cost model mirrors src/obs/metrics.h: with tracing disabled a Span is one
// relaxed atomic load and a branch at construction and destruction — no
// clock reads, no allocation (tests/test_observability.cpp pins the buffer
// stays empty). Enabled, each span is two clock reads plus one short
// critical section appending a fixed-size event to a bounded buffer; past
// the capacity events are dropped and counted, never reallocated without
// bound. Span names must be string literals (or otherwise outlive the
// Tracer) — events store the pointer, not a copy.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"  // tracing_enabled()
#include "util/sync.h"

namespace decima::obs {

// One completed span, Chrome "X" event shape. `tid` is a small dense id
// assigned per OS thread in first-span order (stable within a process run).
struct TraceEvent {
  const char* name = "";
  const char* cat = "";
  double ts_us = 0.0;   // since the tracer epoch (first instance() call)
  double dur_us = 0.0;
  int tid = 0;
};

class Tracer {
 public:
  static Tracer& instance();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Appends one complete event; drops (and counts) past capacity. Called by
  // ~Span; direct use is fine for pre-measured intervals.
  void record_complete(const char* name, const char* cat,
                       std::chrono::steady_clock::time_point begin,
                       std::chrono::steady_clock::time_point end)
      EXCLUDES(mu_);

  std::size_t size() const EXCLUDES(mu_);
  std::uint64_t dropped() const EXCLUDES(mu_);
  void clear() EXCLUDES(mu_);
  // Buffer bound (events). Shrinking drops the tail. Default 1<<18.
  void set_capacity(std::size_t cap) EXCLUDES(mu_);

  // The Chrome trace-event JSON document ({"traceEvents": [...]}). Loadable
  // as-is in chrome://tracing; docs/observability.md walks through it.
  std::string chrome_json() const EXCLUDES(mu_);
  // chrome_json() to `path`; false on I/O error.
  bool write_chrome_json(const std::string& path) const EXCLUDES(mu_);

 private:
  mutable util::Mutex mu_;
  std::vector<TraceEvent> events_ GUARDED_BY(mu_);
  std::size_t capacity_ GUARDED_BY(mu_) = std::size_t{1} << 18;
  std::uint64_t dropped_ GUARDED_BY(mu_) = 0;
  const std::chrono::steady_clock::time_point epoch_;
};

// RAII span: construction starts the interval, destruction records it. The
// enabled check happens once, at construction — a span open across a toggle
// still records, a span opened while disabled never does.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "decima")
      : name_(name), cat_(cat), armed_(tracing_enabled()) {
    if (armed_) t0_ = std::chrono::steady_clock::now();
  }
  ~Span() {
    if (armed_) {
      Tracer::instance().record_complete(name_, cat_, t0_,
                                         std::chrono::steady_clock::now());
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* cat_;
  bool armed_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace decima::obs
