#include "sim/faults.h"

#include <algorithm>

namespace decima::sim {

std::vector<ExecutorFault> random_failures(Rng& rng, int num_executors,
                                           int count, Time window,
                                           Time mean_downtime) {
  std::vector<ExecutorFault> out;
  out.reserve(static_cast<std::size_t>(std::max(count, 0)));
  for (int i = 0; i < count; ++i) {
    ExecutorFault f;
    f.executor = rng.uniform_int(0, num_executors - 1);
    f.fail_at = rng.uniform(0.0, window);
    f.recover_at = mean_downtime > 0.0
                       ? f.fail_at + rng.exponential(mean_downtime)
                       : kInfTime;
    out.push_back(f);
  }
  return out;
}

std::vector<double> heterogeneous_speeds(Rng& rng, int num_executors,
                                         double slow_fraction,
                                         double slow_factor) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(std::max(num_executors, 0)));
  for (int i = 0; i < num_executors; ++i) {
    out.push_back(rng.bernoulli(slow_fraction) ? 1.0 / slow_factor : 1.0);
  }
  return out;
}

}  // namespace decima::sim
