// Job and stage specifications: the static description of a DAG-structured
// data-processing job (§3 of the paper), plus graph helpers (topological
// order, critical path, total work) used by schedulers and features.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace decima::sim {

using Time = double;
inline constexpr Time kInfTime = std::numeric_limits<Time>::infinity();

// A stage (DAG node): an operation run in parallel over `num_tasks` shards.
struct StageSpec {
  std::string name;
  int num_tasks = 1;
  // Mean per-task duration (seconds) under nominal conditions (later waves,
  // no inflation). The simulator layers wave/inflation/noise effects on top.
  double task_duration = 1.0;
  // Multi-resource extension (§7.3): a task must run on an executor whose
  // normalized memory is >= mem_req. Single-resource setups use 0.
  double mem_req = 0.0;
  double cpu_req = 1.0;
  std::vector<int> parents;  // indices of parent stages within the job

  double work() const { return num_tasks * task_duration; }
};

// A job: a DAG of stages plus its parallelism-efficiency profile.
struct JobSpec {
  std::string name;
  std::vector<StageSpec> stages;

  // Work-inflation model (§6.2 effect 3, Fig. 2): per-task durations are
  // multiplied by 1 + inflation * max(0, p - sweet_spot) / sweet_spot where
  // p is the job's current executor count. sweet_spot is the parallelism
  // beyond which extra executors see diminishing (negative) returns.
  double sweet_spot = 1e9;
  double inflation = 0.0;

  std::size_t num_stages() const { return stages.size(); }
  double total_work() const;

  // Children adjacency (derived from parents).
  std::vector<std::vector<int>> children() const;

  // Topological order (parents before children). Requires acyclicity.
  std::vector<int> topo_order() const;

  // Critical-path value per node: cp(v) = work(v) + max_{u in children(v)} cp(u)
  // (paper §5.1 footnote 5). Returned indexed by stage.
  std::vector<double> critical_path() const;

  // Length of the longest dependency chain in task-duration terms, assuming
  // unlimited parallelism: a lower bound on the job's completion time.
  double critical_path_duration() const;

  // Validates structural integrity (parent indices in range, acyclic,
  // positive task counts/durations). On failure returns false and, if
  // `error` is non-null, a human-readable reason.
  bool validate(std::string* error = nullptr) const;
};

// Builder for concise construction of jobs in tests and workload generators.
class JobBuilder {
 public:
  explicit JobBuilder(std::string name) { spec_.name = std::move(name); }

  // Adds a stage; returns its index.
  int stage(int num_tasks, double task_duration, std::vector<int> parents = {},
            double mem_req = 0.0);

  JobBuilder& sweet_spot(double s) {
    spec_.sweet_spot = s;
    return *this;
  }
  JobBuilder& inflation(double i) {
    spec_.inflation = i;
    return *this;
  }

  JobSpec build() const { return spec_; }

 private:
  JobSpec spec_;
};

}  // namespace decima::sim
