#include "sim/validate.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace decima::sim {

namespace {

bool fail(std::string* error, const std::string& why) {
  if (error) *error = why;
  return false;
}

}  // namespace

bool validate_trace(const ClusterEnv& env, std::string* error) {
  return validate_trace_data(env.trace(), env.jobs(), env.executor_classes(),
                             env.executors(), error);
}

bool validate_trace_data(const std::vector<TaskRecord>& trace,
                         const std::vector<JobState>& jobs,
                         const std::vector<ExecutorClass>& classes,
                         const std::vector<ExecutorState>& executors,
                         std::string* error) {

  // (1) task counts per stage. Attempts killed by an executor failure are
  // excluded: each task must COMPLETE exactly once, however often faults
  // forced it to restart.
  std::map<std::pair<int, int>, int> counts;
  for (const TaskRecord& t : trace) {
    if (!t.killed) counts[{t.job, t.stage}]++;
  }
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (!jobs[j].done()) continue;
    for (std::size_t v = 0; v < jobs[j].spec.stages.size(); ++v) {
      const int expect = jobs[j].spec.stages[v].num_tasks;
      const int got = counts[{static_cast<int>(j), static_cast<int>(v)}];
      if (got != expect) {
        std::ostringstream os;
        os << "job " << j << " stage " << v << " ran " << got
           << " tasks, expected " << expect;
        return fail(error, os.str());
      }
    }
  }

  // (2) executor non-overlap. Tasks are traced in dispatch order but overlap
  // must be checked per executor in time order. Killed attempts participate
  // too: their span is clamped to the kill time, and nothing may run on the
  // executor before its recovery.
  std::map<int, std::vector<std::pair<Time, Time>>> by_exec;
  for (const TaskRecord& t : trace) {
    by_exec[t.executor].emplace_back(t.dispatched, t.end);
  }
  for (auto& [exec, spans] : by_exec) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      if (spans[i].first < spans[i - 1].second - 1e-9) {
        std::ostringstream os;
        os << "executor " << exec << " double-booked at t="
           << spans[i].first;
        return fail(error, os.str());
      }
    }
  }

  // (3) dependency order: child tasks must not *start* before every parent
  // stage finished. Track per-stage last end.
  std::map<std::pair<int, int>, Time> stage_end;
  std::map<std::pair<int, int>, Time> stage_first_dispatch;
  for (const TaskRecord& t : trace) {
    auto key = std::make_pair(t.job, t.stage);
    auto it = stage_end.find(key);
    stage_end[key] = it == stage_end.end() ? t.end : std::max(it->second, t.end);
    auto fit = stage_first_dispatch.find(key);
    stage_first_dispatch[key] =
        fit == stage_first_dispatch.end() ? t.dispatched
                                          : std::min(fit->second, t.dispatched);
  }
  for (const TaskRecord& t : trace) {
    const JobState& job = jobs[static_cast<std::size_t>(t.job)];
    for (int p : job.spec.stages[static_cast<std::size_t>(t.stage)].parents) {
      const auto it = stage_end.find({t.job, p});
      if (it == stage_end.end() || t.dispatched < it->second - 1e-9) {
        std::ostringstream os;
        os << "job " << t.job << " stage " << t.stage
           << " dispatched before parent " << p << " finished";
        return fail(error, os.str());
      }
    }
    // (4) arrival ordering.
    if (t.dispatched < job.arrival - 1e-9) {
      std::ostringstream os;
      os << "job " << t.job << " stage " << t.stage
         << " dispatched before job arrival";
      return fail(error, os.str());
    }
  }

  // (5) finish-time consistency.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (!jobs[j].done()) continue;
    Time max_end = jobs[j].arrival;
    for (const TaskRecord& t : trace) {
      if (t.job == static_cast<int>(j)) max_end = std::max(max_end, t.end);
    }
    if (std::abs(jobs[j].finish - max_end) > 1e-6) {
      std::ostringstream os;
      os << "job " << j << " finish time " << jobs[j].finish
         << " != last task end " << max_end;
      return fail(error, os.str());
    }
  }

  // (6) memory fit.
  for (const TaskRecord& t : trace) {
    const JobState& job = jobs[static_cast<std::size_t>(t.job)];
    const double req =
        job.spec.stages[static_cast<std::size_t>(t.stage)].mem_req;
    const int cls = executors[static_cast<std::size_t>(t.executor)].cls;
    if (classes[static_cast<std::size_t>(cls)].mem < req - 1e-12) {
      std::ostringstream os;
      os << "task of job " << t.job << " stage " << t.stage
         << " ran on executor class with insufficient memory";
      return fail(error, os.str());
    }
  }

  return true;
}

}  // namespace decima::sim
