#include "sim/cluster_env.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <stdexcept>

namespace decima::sim {

double JobState::remaining_work() const {
  double w = 0.0;
  for (std::size_t v = 0; v < spec.stages.size(); ++v) {
    const int left = spec.stages[v].num_tasks - stages[v].finished;
    w += left * spec.stages[v].task_duration;
  }
  return w;
}

ClusterEnv::ClusterEnv(EnvConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      fault_rng_(config_.faults.seed) {
  // Envs are constructed from many threads (rollout workers, session
  // threads); relaxed is enough because the uid is only ever compared for
  // equality by the embedding cache (docs/concurrency.md).
  static std::atomic<std::int64_t> uid_counter{1};
  uid_ = uid_counter.fetch_add(1, std::memory_order_relaxed);
  if (config_.num_executors <= 0) {
    throw std::invalid_argument("num_executors must be positive");
  }
  if (config_.classes.empty()) {
    throw std::invalid_argument("at least one executor class required");
  }
  executors_.reserve(static_cast<std::size_t>(config_.num_executors));
  // Executors are spread round-robin across classes so each class holds an
  // (almost) equal share, matching the paper's 25%-per-class setup.
  for (int i = 0; i < config_.num_executors; ++i) {
    ExecutorState e;
    e.id = i;
    e.cls = i % static_cast<int>(config_.classes.size());
    executors_.push_back(e);
  }
  for (const ExecutorFault& f : config_.faults.failures) {
    if (f.executor < 0 || f.executor >= config_.num_executors) {
      throw std::invalid_argument("fault plan names an unknown executor");
    }
    if (f.fail_at < 0.0 || f.recover_at <= f.fail_at) {
      throw std::invalid_argument("fault plan outage has an empty time span");
    }
  }
  for (double s : config_.faults.executor_speeds) {
    if (s <= 0.0) throw std::invalid_argument("executor speeds must be > 0");
  }
  if (config_.faults.stragglers.prob < 0.0 ||
      config_.faults.stragglers.prob > 1.0 ||
      config_.faults.stragglers.factor <= 0.0) {
    throw std::invalid_argument("invalid straggler model");
  }
}

void ClusterEnv::add_job(JobSpec spec, Time arrival) {
  if (running_started_) {
    throw std::logic_error("add_job must be called before run()");
  }
  std::string err;
  if (!spec.validate(&err)) {
    throw std::invalid_argument("invalid job spec: " + err);
  }
  if (arrival < 0.0) throw std::invalid_argument("arrival must be >= 0");
  JobState job;
  job.children = spec.children();
  job.arrival = arrival;
  job.stages.resize(spec.stages.size());
  for (std::size_t v = 0; v < spec.stages.size(); ++v) {
    job.stages[v].waiting = spec.stages[v].num_tasks;
    job.stages[v].parents_pending =
        static_cast<int>(spec.stages[v].parents.size());
  }
  job.spec = std::move(spec);
  const int idx = static_cast<int>(jobs_.size());
  jobs_.push_back(std::move(job));
  Event e;
  e.time = arrival;
  e.kind = Event::Kind::kJobArrival;
  e.job = idx;
  push_event(e);
}

void ClusterEnv::push_event(Event e) {
  e.seq = event_seq_++;
  queue_.push(e);
}

void ClusterEnv::schedule_faults() {
  for (const ExecutorFault& f : config_.faults.failures) {
    Event fail;
    fail.time = f.fail_at;
    fail.kind = Event::Kind::kExecutorFail;
    fail.executor = f.executor;
    push_event(fail);
    if (f.recover_at < kInfTime) {
      Event rec;
      rec.time = f.recover_at;
      rec.kind = Event::Kind::kExecutorRecover;
      rec.executor = f.executor;
      push_event(rec);
    }
  }
}

void ClusterEnv::run(Scheduler& sched, Time until, std::size_t max_actions) {
  if (!running_started_) {
    running_started_ = true;
    schedule_faults();
    sched.reset();
  }
  actions_taken_ = 0;
  while (!queue_.empty() && actions_taken_ < max_actions) {
    const Time t = queue_.top().time;
    if (t > until) break;
    // Batch all events sharing this timestamp (e.g. a batched arrival of
    // many jobs) before invoking the scheduler, so the scheduler sees the
    // complete state of the instant.
    bool needs_scheduling = false;
    while (!queue_.empty() && queue_.top().time == t) {
      if (events_processed_++ > config_.max_events) {
        throw std::runtime_error("ClusterEnv: event budget exhausted");
      }
      const Event e = queue_.top();
      queue_.pop();
      assert(e.time + 1e-9 >= now_);
      now_ = std::max(now_, e.time);
      switch (e.kind) {
        case Event::Kind::kJobArrival:
          handle_arrival(e);
          needs_scheduling = true;
          break;
        case Event::Kind::kTaskFinish:
          needs_scheduling |= handle_task_finish(e);
          break;
        case Event::Kind::kExecutorFail:
          needs_scheduling |= handle_executor_fail(e);
          break;
        case Event::Kind::kExecutorRecover:
          needs_scheduling |= handle_executor_recover(e);
          break;
      }
    }
    if (needs_scheduling) run_scheduling_event(sched);
  }
}

void ClusterEnv::handle_arrival(const Event& e) {
  JobState& job = jobs_[static_cast<std::size_t>(e.job)];
  job.arrived = true;
  ++job.mut_epoch;
  record_job_count_change(now_, +1);
}

bool ClusterEnv::handle_task_finish(const Event& e) {
  ExecutorState& ex = executors_[static_cast<std::size_t>(e.executor)];
  if (e.exec_epoch != ex.fail_epoch) {
    // The executor failed after this task started: the task was killed and
    // rescheduled by handle_executor_fail, so its old finish event is void.
    return false;
  }
  JobState& job = jobs_[static_cast<std::size_t>(e.job)];
  StageState& st = job.stages[static_cast<std::size_t>(e.stage)];
  assert(st.running > 0 && ex.busy);
  --st.running;
  ++st.finished;
  ++job.mut_epoch;  // feature (i): tasks remaining in the stage changed

  const StageSpec& spec = job.spec.stages[static_cast<std::size_t>(e.stage)];
  bool needs_scheduling = false;
  if (st.waiting > 0) {
    // Spark's task-level scheduler keeps the executor on the same stage while
    // it still has waiting tasks (§3); no scheduling event fires.
    start_task(e.executor, NodeRef{e.job, e.stage});
  } else {
    // Stage ran out of tasks: the executor frees up (§5.2 event (i)).
    ex.busy = false;
    ex.cur_stage = -1;
    --job.executors;
    ++feature_epoch_;  // free-executor count / locality changed for everyone
    needs_scheduling = true;
  }

  if (st.complete(spec.num_tasks)) {
    // Stage completion unlocks child stages (§5.2 event (ii)).
    ++job.stages_complete;
    for (int c : job.children[static_cast<std::size_t>(e.stage)]) {
      --job.stages[static_cast<std::size_t>(c)].parents_pending;
    }
    if (job.done()) {
      job.finish = now_;
      record_job_count_change(now_, -1);
    }
    needs_scheduling = true;
  }
  return needs_scheduling;
}

bool ClusterEnv::handle_executor_fail(const Event& e) {
  ExecutorState& ex = executors_[static_cast<std::size_t>(e.executor)];
  if (ex.failed) return false;  // overlapping outages merge into one
  bool killed_task = false;
  if (ex.busy) {
    // Kill the running task: it goes back to the waiting pool (same
    // task_index; the killed attempt stays in the trace flagged `killed`),
    // and its pending finish event is voided by the fail_epoch bump.
    JobState& job = jobs_[static_cast<std::size_t>(ex.bound_job)];
    StageState& st = job.stages[static_cast<std::size_t>(ex.cur_stage)];
    TaskRecord& rec = trace_[ex.cur_trace];
    job.executed_work -= std::max(0.0, rec.end - std::max(rec.start, now_));
    --st.running;
    ++st.waiting;
    --st.started;  // the re-run reuses this task index
    rec.killed = true;
    rec.start = std::min(rec.start, now_);
    rec.end = now_;
    ex.busy = false;
    ex.cur_stage = -1;
    --job.executors;
    ++job.mut_epoch;  // features (i)/(iii): waiting tasks & executors changed
    killed_task = true;
  }
  ex.failed = true;
  ++ex.fail_epoch;
  ex.bound_job = -1;  // the JVM died; a re-dispatch pays the moving delay
  ++feature_epoch_;   // free-executor count / locality changed for everyone
  // A killed task needs re-placement (other executors may be free); a purely
  // idle failure only shrinks capacity, which no action could exploit.
  return killed_task;
}

bool ClusterEnv::handle_executor_recover(const Event& e) {
  ExecutorState& ex = executors_[static_cast<std::size_t>(e.executor)];
  if (!ex.failed) return false;
  ex.failed = false;
  ++feature_epoch_;  // a free executor (re)appeared
  return true;       // give the scheduler a shot at the fresh capacity
}

std::vector<NodeRef> ClusterEnv::runnable_nodes() const {
  std::vector<NodeRef> out;
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    const JobState& job = jobs_[j];
    if (!job.arrived || job.done()) continue;
    for (std::size_t v = 0; v < job.stages.size(); ++v) {
      if (job.stages[v].runnable()) {
        out.push_back(NodeRef{static_cast<int>(j), static_cast<int>(v)});
      }
    }
  }
  return out;
}

int ClusterEnv::free_executor_count() const {
  int n = 0;
  for (const ExecutorState& e : executors_) {
    if (!e.busy && !e.failed) ++n;
  }
  return n;
}

int ClusterEnv::free_executor_count_of_class(int cls) const {
  int n = 0;
  for (const ExecutorState& e : executors_) {
    if (!e.busy && !e.failed && e.cls == cls) ++n;
  }
  return n;
}

int ClusterEnv::local_free_executors(int job) const {
  int n = 0;
  for (const ExecutorState& e : executors_) {
    if (!e.busy && !e.failed && e.bound_job == job) ++n;
  }
  return n;
}

int ClusterEnv::active_jobs() const {
  int n = 0;
  for (const JobState& j : jobs_) {
    if (j.arrived && !j.done()) ++n;
  }
  return n;
}

bool ClusterEnv::all_done() const {
  for (const JobState& j : jobs_) {
    if (!j.done()) return false;
  }
  return true;
}

double ClusterEnv::avg_jct() const {
  double total = 0.0;
  int n = 0;
  for (const JobState& j : jobs_) {
    if (j.done()) {
      total += j.jct();
      ++n;
    }
  }
  return n ? total / n : 0.0;
}

double ClusterEnv::makespan() const {
  double m = 0.0;
  for (const JobState& j : jobs_) m = std::max(m, j.finish);
  return m;
}

std::vector<double> ClusterEnv::jcts() const {
  std::vector<double> out;
  for (const JobState& j : jobs_) {
    if (j.done()) out.push_back(j.jct());
  }
  return out;
}

void ClusterEnv::run_scheduling_event(Scheduler& sched) {
  if (last_scheduling_event_ >= 0.0) {
    event_intervals_.push_back(now_ - last_scheduling_event_);
  }
  last_scheduling_event_ = now_;

  while (free_executor_count() > 0) {
    const auto t0 = std::chrono::steady_clock::now();
    const Action action = sched.schedule(*this);
    const auto t1 = std::chrono::steady_clock::now();
    decision_latencies_.push_back(
        std::chrono::duration<double>(t1 - t0).count());
    if (!action.valid()) break;

    const NodeRef node = action.node;
    if (node.job < 0 || static_cast<std::size_t>(node.job) >= jobs_.size()) break;
    JobState& job = jobs_[static_cast<std::size_t>(node.job)];
    if (node.stage < 0 ||
        static_cast<std::size_t>(node.stage) >= job.spec.stages.size() ||
        !job.stages[static_cast<std::size_t>(node.stage)].runnable()) {
      break;  // malformed or stale action: decline to loop forever
    }

    // Enforce the §5.2 progress rule: the accepted limit always exceeds the
    // job's current allocation so at least one executor is assigned.
    const int limit =
        std::clamp(action.limit, job.executors + 1, total_executors());
    job.parallelism_limit = limit;
    const int capacity = limit - job.executors;

    action_times_.push_back(now_);
    ++actions_taken_;

    const int assigned = dispatch(node, capacity, action.exec_class);
    if (assigned == 0) break;  // nothing eligible (e.g. no fitting class)
  }
}

int ClusterEnv::dispatch(NodeRef node, int count, int exec_class) {
  JobState& job = jobs_[static_cast<std::size_t>(node.job)];
  StageState& st = job.stages[static_cast<std::size_t>(node.stage)];
  const StageSpec& spec = job.spec.stages[static_cast<std::size_t>(node.stage)];
  const int want = std::min(count, st.waiting);
  if (want <= 0) return 0;

  // Eligible free executors: class matches the request (or any class whose
  // memory fits the stage when unconstrained). Prefer job-local executors
  // (no moving delay), then best-fit by memory to limit fragmentation.
  std::vector<int> eligible;
  for (const ExecutorState& e : executors_) {
    if (e.busy || e.failed) continue;
    if (exec_class >= 0) {
      if (e.cls != exec_class) continue;
      if (config_.classes[static_cast<std::size_t>(e.cls)].mem <
          spec.mem_req) {
        continue;
      }
    } else if (config_.classes[static_cast<std::size_t>(e.cls)].mem <
               spec.mem_req) {
      continue;
    }
    eligible.push_back(e.id);
  }
  std::stable_sort(eligible.begin(), eligible.end(), [&](int a, int b) {
    const ExecutorState& ea = executors_[static_cast<std::size_t>(a)];
    const ExecutorState& eb = executors_[static_cast<std::size_t>(b)];
    const bool la = ea.bound_job == node.job;
    const bool lb = eb.bound_job == node.job;
    if (la != lb) return la;
    return config_.classes[static_cast<std::size_t>(ea.cls)].mem <
           config_.classes[static_cast<std::size_t>(eb.cls)].mem;
  });

  const int assigned = std::min<int>(want, static_cast<int>(eligible.size()));
  for (int i = 0; i < assigned; ++i) start_task(eligible[static_cast<std::size_t>(i)], node);
  return assigned;
}

void ClusterEnv::start_task(int executor_id, NodeRef node) {
  JobState& job = jobs_[static_cast<std::size_t>(node.job)];
  StageState& st = job.stages[static_cast<std::size_t>(node.stage)];
  ExecutorState& ex = executors_[static_cast<std::size_t>(executor_id)];
  assert(st.waiting > 0);

  double delay = 0.0;
  if (!ex.busy) {
    // Fresh dispatch (not the same-stage continuation path, where the
    // executor is already busy on this job).
    if (config_.enable_moving_delay && ex.bound_job != node.job) {
      delay = config_.moving_delay;
    }
    ex.busy = true;
    ex.bound_job = node.job;
    ++job.executors;
    ++job.mut_epoch;   // feature (iii): executors working on the job changed
    ++feature_epoch_;  // free-executor count / locality changed for everyone
  }

  const bool first_wave = st.finished == 0;
  const double duration =
      sample_task_duration(job, node.stage, first_wave, executor_id);

  --st.waiting;
  ++st.running;
  const int task_index = st.started++;

  ex.cur_stage = node.stage;
  ex.cur_trace = trace_.size();

  TaskRecord rec;
  rec.job = node.job;
  rec.stage = node.stage;
  rec.task_index = task_index;
  rec.executor = executor_id;
  rec.dispatched = now_;
  rec.start = now_ + delay;
  rec.end = rec.start + duration;
  rec.first_wave = first_wave;
  trace_.push_back(rec);

  job.executed_work += duration;

  Event e;
  e.time = rec.end;
  e.kind = Event::Kind::kTaskFinish;
  e.job = node.job;
  e.stage = node.stage;
  e.executor = executor_id;
  e.exec_epoch = ex.fail_epoch;
  push_event(e);
}

double ClusterEnv::sample_task_duration(const JobState& job, int stage,
                                        bool first_wave, int executor_id) {
  const StageSpec& spec = job.spec.stages[static_cast<std::size_t>(stage)];
  double d = spec.task_duration;
  if (config_.enable_wave_effect && first_wave) d *= config_.first_wave_factor;
  if (config_.enable_inflation && job.spec.inflation > 0.0) {
    const double p = static_cast<double>(job.executors);
    const double over = std::max(0.0, p - job.spec.sweet_spot);
    d *= 1.0 + job.spec.inflation * over / std::max(job.spec.sweet_spot, 1.0);
  }
  if (config_.duration_noise > 0.0) {
    d *= rng_.lognormal_mean(1.0, config_.duration_noise);
  }
  // Fault plan (sim/faults.h): stragglers and heterogeneous speeds. Both are
  // no-ops (and draw nothing) under the default plan.
  const FaultPlan& faults = config_.faults;
  if (faults.stragglers.prob > 0.0 &&
      fault_rng_.bernoulli(faults.stragglers.prob)) {
    d *= faults.stragglers.factor;
  }
  d /= faults.speed_of(executor_id);
  return d;
}

void ClusterEnv::record_job_count_change(Time t, int delta) {
  job_count_changes_.emplace_back(t, delta);
}

std::vector<double> ClusterEnv::action_rewards() const {
  // Integrate J(t) (number of jobs in system) over each inter-action
  // interval. job_count_changes_ is naturally time-sorted.
  std::vector<double> rewards;
  rewards.reserve(action_times_.size() + 1);
  std::size_t ci = 0;
  int count = 0;
  Time prev = 0.0;
  auto integrate_to = [&](Time t) {
    double area = 0.0;
    while (ci < job_count_changes_.size() && job_count_changes_[ci].first <= t) {
      area += count * (job_count_changes_[ci].first - prev);
      count += job_count_changes_[ci].second;
      prev = job_count_changes_[ci].first;
      ++ci;
    }
    area += count * (t - prev);
    prev = t;
    return area;
  };
  for (Time t : action_times_) rewards.push_back(-integrate_to(t));
  rewards.push_back(-integrate_to(now_));  // tail: last action -> episode end
  return rewards;
}

std::vector<double> ClusterEnv::action_rewards_makespan() const {
  std::vector<double> rewards;
  rewards.reserve(action_times_.size() + 1);
  Time prev = 0.0;
  for (Time t : action_times_) {
    rewards.push_back(-(t - prev));
    prev = t;
  }
  rewards.push_back(-(now_ - prev));
  return rewards;
}

}  // namespace decima::sim
