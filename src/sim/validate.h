// Post-hoc validation of a simulation's task trace against the scheduling
// invariants every correct schedule must satisfy. Used by the property-based
// test suites to check arbitrary (scheduler, workload) combinations.
#pragma once

#include <string>
#include <vector>

#include "sim/cluster_env.h"

namespace decima::sim {

// Checks, for the completed environment `env`:
//  1. every stage of every job ran exactly its num_tasks tasks;
//  2. no executor ever ran two tasks at overlapping times;
//  3. no task of a stage started before all tasks of all parent stages had
//     finished (dependency correctness);
//  4. no task started before its job arrived;
//  5. each job's recorded finish time equals the max task end of the job;
//  6. executor class memory always covered the stage's mem_req.
// Returns true if all hold; otherwise false with a reason in `error`.
bool validate_trace(const ClusterEnv& env, std::string* error = nullptr);

// Lower-level entry point operating on raw data, so tests can verify the
// validator itself against fabricated (invalid) traces.
bool validate_trace_data(const std::vector<TaskRecord>& trace,
                         const std::vector<JobState>& jobs,
                         const std::vector<ExecutorClass>& classes,
                         const std::vector<ExecutorState>& executors,
                         std::string* error = nullptr);

}  // namespace decima::sim
