// Discrete-event Spark-cluster simulator (§6.2 of the paper).
//
// Captures the three real-world effects the paper identifies as crucial:
//   (1) first-wave tasks run slower than later waves,
//   (2) moving an executor across jobs costs a JVM-startup delay,
//   (3) high parallelism inflates per-task durations (work inflation).
// Each effect can be disabled independently (used by the fidelity study,
// Fig. 18, and the simplified optimality study, Fig. 22 / App. H).
//
// The environment also logs everything RL training needs: action timestamps,
// the number-of-jobs-in-system timeline (for r_k = −(t_k − t_{k−1})·J_k), a
// full task-placement trace (for Gantt charts and invariant tests), and
// scheduler decision latencies (Fig. 15b).
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "sim/faults.h"
#include "sim/job.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace decima::sim {

// A class of executors (multi-resource extension, §7.3). The default
// single-resource setup uses one class with mem = 1.
struct ExecutorClass {
  double mem = 1.0;
  std::string name = "default";
};

struct EnvConfig {
  int num_executors = 50;
  // Executors are split as evenly as possible across classes (paper: four
  // classes with memory {0.25, 0.5, 0.75, 1.0}, 25% of executors each).
  std::vector<ExecutorClass> classes = {ExecutorClass{}};

  // Effect (2): delay when an executor switches to a different job (JVM
  // launch, "2-3 seconds" per §6.2).
  double moving_delay = 2.5;
  bool enable_moving_delay = true;

  // Effect (1): multiplier on tasks that start before any task of their
  // stage has finished (the first "wave").
  double first_wave_factor = 1.3;
  bool enable_wave_effect = true;

  // Effect (3): work inflation at high parallelism, per JobSpec's
  // sweet_spot/inflation profile.
  bool enable_inflation = true;

  // Lognormal sigma on task durations; 0 gives the deterministic
  // "expectation mode" used for training-simulator fidelity comparisons.
  double duration_noise = 0.0;

  std::uint64_t seed = 1;

  // Fault injection (executor failures, stragglers, heterogeneous speeds);
  // the default plan injects nothing and leaves the simulation bit-identical
  // to a fault-free build (sim/faults.h, docs/robustness.md).
  FaultPlan faults;

  // Safety valve: abort the episode after this many processed events.
  std::size_t max_events = 50'000'000;
};

// Dynamic per-stage state.
struct StageState {
  int waiting = 0;    // tasks not yet dispatched
  int running = 0;
  int finished = 0;
  int started = 0;    // waiting + running + finished == num_tasks
  int parents_pending = 0;
  bool runnable() const { return parents_pending == 0 && waiting > 0; }
  bool complete(int num_tasks) const { return finished == num_tasks; }
};

// Dynamic per-job state.
struct JobState {
  JobSpec spec;
  Time arrival = 0.0;
  Time finish = -1.0;  // < 0 while incomplete
  bool arrived = false;
  std::vector<StageState> stages;
  std::vector<std::vector<int>> children;
  int executors = 0;          // executors currently running tasks of this job
  int parallelism_limit = 0;  // most recent limit set by a scheduling action
  int stages_complete = 0;

  bool done() const {
    return static_cast<std::size_t>(stages_complete) == spec.stages.size();
  }
  double jct() const { return finish - arrival; }
  // Work (tasks x mean duration) not yet finished.
  double remaining_work() const;
  // Total work actually executed so far (inflation included) — used by the
  // work-inflation analysis (Fig. 10e).
  double executed_work = 0.0;

  // Dirty-tracking hook for the incremental embedding cache
  // (src/gnn/embedding_cache.h): bumped by the simulator on every mutation
  // that can change this job's feature rows — arrival, task completion, and
  // executor churn on the job. Together with ClusterEnv::feature_epoch() it
  // lets the cache skip even the per-row feature diff when a job is
  // provably untouched since it was last embedded.
  std::uint64_t mut_epoch = 0;
};

struct ExecutorState {
  int id = 0;
  int cls = 0;
  bool busy = false;
  int bound_job = -1;  // last job served; -1 = never used
  // Fault injection (sim/faults.h): a failed executor is invisible to the
  // free-executor counts and dispatch until its recovery event.
  bool failed = false;
  // Bumped on every failure; a TaskFinish event carrying a stale epoch is a
  // task that was killed mid-flight and must be ignored.
  int fail_epoch = 0;
  // The running task (valid while busy) — what a failure kills.
  int cur_stage = -1;
  std::size_t cur_trace = 0;  // index into ClusterEnv::trace()
};

// One dispatched task, for traces, Gantt charts, and invariant checking.
struct TaskRecord {
  int job = 0;
  int stage = 0;
  int task_index = 0;
  int executor = 0;
  Time dispatched = 0.0;  // when the action placed the task
  Time start = 0.0;       // dispatched + moving delay (if any)
  Time end = 0.0;
  bool first_wave = false;
  // Task was killed by an executor failure at `end` before completing; the
  // re-run appears as a separate record with the same task_index.
  bool killed = false;
};

class ClusterEnv {
 public:
  explicit ClusterEnv(EnvConfig config);

  // Registers a job to arrive at `arrival` (>= 0). Must be called before
  // run(). Throws std::invalid_argument on malformed specs.
  void add_job(JobSpec spec, Time arrival);

  // Runs the episode with `sched` until all jobs finish, simulated time
  // exceeds `until`, or `max_actions` scheduling actions have been taken.
  // Can be called repeatedly with growing `until` to continue an episode.
  void run(Scheduler& sched, Time until = kInfTime,
           std::size_t max_actions = SIZE_MAX);

  // --- State queries (used by schedulers and the feature extractor) --------
  Time now() const { return now_; }
  const std::vector<JobState>& jobs() const { return jobs_; }
  const EnvConfig& config() const { return config_; }
  int total_executors() const { return static_cast<int>(executors_.size()); }
  const std::vector<ExecutorState>& executors() const { return executors_; }
  const std::vector<ExecutorClass>& executor_classes() const {
    return config_.classes;
  }

  // Runnable nodes: stages of arrived, unfinished jobs whose parents have all
  // completed and which still have waiting tasks (the action set A_t of §5.2).
  std::vector<NodeRef> runnable_nodes() const;

  // --- Embedding-cache identity (src/gnn/embedding_cache.h) ----------------
  // Unique id of this env instance (from a process-wide counter), so cached
  // per-job activations are never mistaken for another env's job that happens
  // to share an index.
  std::int64_t uid() const { return uid_; }
  // Bumped whenever a globally-shared feature input changes: any executor
  // busy/binding transition moves the free-executor count (feature iv) or
  // the per-job locality flag (feature v) for every node of every job.
  std::uint64_t feature_epoch() const { return feature_epoch_; }

  int free_executor_count() const;
  int free_executor_count_of_class(int cls) const;
  // Free executors whose last job was `job` ("local" executors, feature (v)).
  int local_free_executors(int job) const;
  // Count of arrived, unfinished jobs.
  int active_jobs() const;
  bool all_done() const;

  // --- Results --------------------------------------------------------------
  double avg_jct() const;
  double makespan() const;  // completion time of the last job
  std::vector<double> jcts() const;
  const std::vector<TaskRecord>& trace() const { return trace_; }

  // --- RL support -------------------------------------------------------------
  const std::vector<Time>& action_times() const { return action_times_; }
  // r_k = −∫_{t_{k−1}}^{t_k} J(t) dt  (average-JCT objective, §5.3). Index k
  // aligns with action_times(). A final pseudo-reward covering the span from
  // the last action to the episode end is appended so late queueing is
  // penalized too.
  std::vector<double> action_rewards() const;
  // Makespan objective: r_k = −(t_k − t_{k−1}).
  std::vector<double> action_rewards_makespan() const;

  // --- Instrumentation -----------------------------------------------------
  // Wall-clock seconds each Scheduler::schedule() call took (Fig. 15b).
  const std::vector<double>& decision_latencies() const {
    return decision_latencies_;
  }
  // Simulated time between consecutive scheduling events (Fig. 15b).
  const std::vector<double>& event_intervals() const {
    return event_intervals_;
  }
  std::size_t num_events_processed() const { return events_processed_; }

 private:
  struct Event {
    Time time = 0.0;
    int seq = 0;  // tie-break for determinism
    enum class Kind {
      kJobArrival,
      kTaskFinish,
      kExecutorFail,
      kExecutorRecover,
    } kind = Kind::kJobArrival;
    int job = -1;
    int stage = -1;
    int executor = -1;
    // For kTaskFinish: the executor's fail_epoch when the task started; a
    // mismatch at delivery means the task was killed by a failure.
    int exec_epoch = 0;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  void push_event(Event e);
  void handle_arrival(const Event& e);
  // Returns true if a scheduling event should follow (executor freed, stage
  // completed, or job finished).
  bool handle_task_finish(const Event& e);
  // Fault-plan events: kill the running task (if any) and take the executor
  // offline / bring it back. Both return true when a scheduling event should
  // follow.
  bool handle_executor_fail(const Event& e);
  bool handle_executor_recover(const Event& e);
  // Queues the fault plan's fail/recover events (first run() only).
  void schedule_faults();
  // The §5.2 protocol: query the scheduler until executors/stages run out.
  void run_scheduling_event(Scheduler& sched);
  // Dispatches up to `count` free executors of an eligible class to `node`;
  // returns how many were assigned.
  int dispatch(NodeRef node, int count, int exec_class);
  void start_task(int executor_id, NodeRef node);
  double sample_task_duration(const JobState& job, int stage, bool first_wave,
                              int executor_id);
  void record_job_count_change(Time t, int delta);

  EnvConfig config_;
  Rng rng_;
  // Straggler draws come from this separate stream so a plan with
  // stragglers.prob == 0 leaves rng_'s sequence untouched.
  Rng fault_rng_;
  std::int64_t uid_ = 0;
  std::uint64_t feature_epoch_ = 0;
  Time now_ = 0.0;
  int event_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::vector<JobState> jobs_;
  std::vector<ExecutorState> executors_;
  std::vector<TaskRecord> trace_;
  std::vector<Time> action_times_;
  std::vector<std::pair<Time, int>> job_count_changes_;  // (time, delta)
  std::vector<double> decision_latencies_;
  std::vector<double> event_intervals_;
  Time last_scheduling_event_ = -1.0;
  std::size_t events_processed_ = 0;
  std::size_t actions_taken_ = 0;
  bool running_started_ = false;
};

}  // namespace decima::sim
