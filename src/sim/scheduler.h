// The scheduler interface shared by every baseline heuristic and Decima.
//
// The environment implements the scheduling-event protocol of §5.2: on each
// event it repeatedly asks the installed Scheduler for a two-dimensional
// action (stage to schedule, parallelism limit for that stage's job — plus an
// executor class in the multi-resource extension) until free executors run
// out, no runnable stage remains, or the scheduler declines.
#pragma once

#include <string>

namespace decima::sim {

class ClusterEnv;

// Reference to a DAG node: job index within the environment + stage index
// within that job.
struct NodeRef {
  int job = -1;
  int stage = -1;
  bool valid() const { return job >= 0 && stage >= 0; }
  bool operator==(const NodeRef& o) const {
    return job == o.job && stage == o.stage;
  }
};

// The action of §5.2: <stage v, parallelism limit l_i> (+ executor class).
struct Action {
  NodeRef node;
  // Upper bound on the number of executors the node's job may hold. The
  // environment clamps this to [current allocation + 1, total executors] so
  // every accepted action makes progress (paper §5.2).
  int limit = 0;
  // Executor class to draw from; -1 lets the environment best-fit by memory.
  int exec_class = -1;

  bool valid() const { return node.valid(); }
  static Action none() { return Action{}; }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Called once before an episode begins.
  virtual void reset() {}

  // Called repeatedly within one scheduling event while free executors and
  // runnable stages remain. Return Action::none() to decline (leaves the
  // remaining executors idle until the next event).
  virtual Action schedule(const ClusterEnv& env) = 0;

  virtual std::string name() const = 0;
};

}  // namespace decima::sim
