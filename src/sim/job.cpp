#include "sim/job.h"

#include <algorithm>

namespace decima::sim {

double JobSpec::total_work() const {
  double w = 0.0;
  for (const StageSpec& s : stages) w += s.work();
  return w;
}

std::vector<std::vector<int>> JobSpec::children() const {
  std::vector<std::vector<int>> out(stages.size());
  for (std::size_t v = 0; v < stages.size(); ++v) {
    for (int p : stages[v].parents) {
      out[static_cast<std::size_t>(p)].push_back(static_cast<int>(v));
    }
  }
  return out;
}

std::vector<int> JobSpec::topo_order() const {
  const std::size_t n = stages.size();
  std::vector<int> indegree(n, 0);
  for (const StageSpec& s : stages) {
    (void)s;
  }
  for (std::size_t v = 0; v < n; ++v) {
    indegree[v] = static_cast<int>(stages[v].parents.size());
  }
  const auto kids = children();
  std::vector<int> order;
  order.reserve(n);
  std::vector<int> frontier;
  for (std::size_t v = 0; v < n; ++v) {
    if (indegree[v] == 0) frontier.push_back(static_cast<int>(v));
  }
  while (!frontier.empty()) {
    const int v = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (int c : kids[static_cast<std::size_t>(v)]) {
      if (--indegree[static_cast<std::size_t>(c)] == 0) frontier.push_back(c);
    }
  }
  return order;  // shorter than n iff cyclic; validate() reports that
}

std::vector<double> JobSpec::critical_path() const {
  const auto order = topo_order();
  const auto kids = children();
  std::vector<double> cp(stages.size(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t v = static_cast<std::size_t>(*it);
    double best_child = 0.0;
    for (int c : kids[v]) {
      best_child = std::max(best_child, cp[static_cast<std::size_t>(c)]);
    }
    cp[v] = stages[v].work() + best_child;
  }
  return cp;
}

double JobSpec::critical_path_duration() const {
  const auto order = topo_order();
  const auto kids = children();
  std::vector<double> d(stages.size(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t v = static_cast<std::size_t>(*it);
    double best_child = 0.0;
    for (int c : kids[v]) {
      best_child = std::max(best_child, d[static_cast<std::size_t>(c)]);
    }
    d[v] = stages[v].task_duration + best_child;
  }
  double best = 0.0;
  for (double x : d) best = std::max(best, x);
  return best;
}

bool JobSpec::validate(std::string* error) const {
  auto fail = [&](const std::string& why) {
    if (error) *error = name + ": " + why;
    return false;
  };
  if (stages.empty()) return fail("job has no stages");
  for (std::size_t v = 0; v < stages.size(); ++v) {
    const StageSpec& s = stages[v];
    if (s.num_tasks <= 0) return fail("stage " + std::to_string(v) + " has no tasks");
    if (s.task_duration <= 0.0) {
      return fail("stage " + std::to_string(v) + " has non-positive duration");
    }
    if (s.mem_req < 0.0 || s.mem_req > 1.0) {
      return fail("stage " + std::to_string(v) + " mem_req outside [0,1]");
    }
    for (int p : s.parents) {
      if (p < 0 || static_cast<std::size_t>(p) >= stages.size()) {
        return fail("stage " + std::to_string(v) + " has out-of-range parent");
      }
      if (static_cast<std::size_t>(p) == v) {
        return fail("stage " + std::to_string(v) + " is its own parent");
      }
    }
  }
  if (topo_order().size() != stages.size()) return fail("dependency cycle");
  return true;
}

int JobBuilder::stage(int num_tasks, double task_duration,
                      std::vector<int> parents, double mem_req) {
  StageSpec s;
  s.name = spec_.name + "/s" + std::to_string(spec_.stages.size());
  s.num_tasks = num_tasks;
  s.task_duration = task_duration;
  s.parents = std::move(parents);
  s.mem_req = mem_req;
  spec_.stages.push_back(std::move(s));
  return static_cast<int>(spec_.stages.size()) - 1;
}

}  // namespace decima::sim
