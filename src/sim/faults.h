// Fault injection for the cluster simulator (docs/robustness.md).
//
// The paper evaluates Decima on clean TPC-H DAGs; production clusters lose
// executors mid-job, suffer stragglers, and mix machine generations. A
// FaultPlan attaches all three to an episode through EnvConfig::faults:
//
//   * executor failures/recoveries — at fail_at the executor goes offline:
//     its running task is killed and returned to the stage's waiting pool
//     (the re-run is a fresh dispatch, so it pays the moving delay and wave
//     factor again), and it takes no work until recover_at;
//   * stragglers — each task independently straggles with probability
//     `prob`, multiplying its duration by `factor` (drawn from a dedicated
//     fault RNG stream so enabling faults never perturbs the base
//     duration-noise draws);
//   * heterogeneous speeds — per-executor speed multipliers; a task on
//     executor e takes duration / speed_of(e).
//
// A default-constructed FaultPlan (any() == false) is byte-for-byte the
// pre-fault simulator: no extra events, no extra RNG draws.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/job.h"
#include "util/rng.h"

namespace decima::sim {

// One executor outage. recover_at == kInfTime means a permanent failure.
struct ExecutorFault {
  int executor = 0;
  Time fail_at = 0.0;
  Time recover_at = kInfTime;
};

// Per-task duration inflation: with probability `prob` a task's duration is
// multiplied by `factor` (a straggler, cf. the LATE/Mantri literature).
struct StragglerModel {
  double prob = 0.0;
  double factor = 8.0;
};

struct FaultPlan {
  std::vector<ExecutorFault> failures;
  StragglerModel stragglers;
  // Per-executor speed multipliers (executor i uses index i % size); empty
  // means a homogeneous cluster. Durations divide by the speed, so 0.5 is a
  // half-speed machine.
  std::vector<double> executor_speeds;
  // Seed of the dedicated fault RNG stream (straggler draws). Isolated from
  // EnvConfig::seed so a fault-free plan leaves the base simulation
  // bit-identical.
  std::uint64_t seed = 1234;

  bool any() const {
    return !failures.empty() || stragglers.prob > 0.0 ||
           !executor_speeds.empty();
  }
  double speed_of(int executor) const {
    if (executor_speeds.empty()) return 1.0;
    return executor_speeds[static_cast<std::size_t>(executor) %
                           executor_speeds.size()];
  }
};

// --- Scenario-construction helpers (bench_scenarios, tests) -----------------

// `count` outages: executor uniform in [0, num_executors), fail time uniform
// in [0, window), downtime exponential with the given mean (<= 0 makes every
// failure permanent).
std::vector<ExecutorFault> random_failures(Rng& rng, int num_executors,
                                           int count, Time window,
                                           Time mean_downtime);

// Speed factors for a mixed-generation cluster: each executor is slow
// (speed = 1 / slow_factor) with probability slow_fraction, full speed
// otherwise.
std::vector<double> heterogeneous_speeds(Rng& rng, int num_executors,
                                         double slow_fraction,
                                         double slow_factor);

}  // namespace decima::sim
