// Synthetic industrial trace, standing in for Alibaba cluster-trace-v2018.
//
// The paper (§7.3) uses ~20,000 production jobs where 59% of DAGs have four
// or more stages and some have hundreds, with per-task CPU/memory requests
// and bursty arrivals. The public trace is not available offline, so this
// generator reproduces those aggregate properties from a seeded model
// (substitution documented in DESIGN.md §2):
//   - DAG size: 41% small (1-3 stages), 59% ≥ 4, Pareto tail up to `max_stages`;
//   - task counts & durations: heavy-tailed lognormals;
//   - memory requests: mixture favoring small requests with occasional
//     memory-hungry stages;
//   - arrivals: Poisson process modulated by a diurnal-style intensity with
//     busy "peak hours" (drives the busy-period analysis of Fig. 10/20).
#pragma once

#include <cstdint>
#include <vector>

#include "workload/arrivals.h"

namespace decima::workload {

struct TraceConfig {
  int num_jobs = 2000;
  double mean_iat = 20.0;   // base mean interarrival time (seconds)
  double burstiness = 0.6;  // 0 = homogeneous Poisson, 1 = strong peaks
  int max_stages = 200;
  std::uint64_t seed = 7;
  bool with_memory = true;  // emit per-stage memory requests
};

// Generates the full trace, arrival-sorted.
std::vector<ArrivingJob> synthesize_trace(const TraceConfig& config);

// Aggregate statistics used by tests to verify trace shape.
struct TraceStats {
  double frac_ge4_stages = 0.0;  // fraction of DAGs with >= 4 stages
  int max_stages = 0;
  double mean_stages = 0.0;
  double max_work = 0.0;
  double mean_work = 0.0;
};
TraceStats trace_stats(const std::vector<ArrivingJob>& trace);

}  // namespace decima::workload
