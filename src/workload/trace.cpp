#include "workload/trace.h"

#include <algorithm>
#include <cmath>

namespace decima::workload {

namespace {

sim::JobSpec synth_job(decima::Rng& rng, int index, const TraceConfig& config) {
  sim::JobSpec job;
  job.name = "trace-" + std::to_string(index);

  // DAG size: 41% in [1,3]; the rest Pareto-tailed with alpha ~1.6 so a few
  // DAGs reach hundreds of stages.
  int n;
  if (rng.bernoulli(0.41)) {
    n = rng.uniform_int(1, 3);
  } else {
    n = std::min(config.max_stages,
                 static_cast<int>(std::round(rng.pareto(4.0, 1.6))));
    n = std::max(n, 4);
  }

  // Chain-with-branches structure: production DAGs are mostly deep with
  // moderate fan-in.
  for (int v = 0; v < n; ++v) {
    sim::StageSpec s;
    s.name = job.name + "/s" + std::to_string(v);
    s.num_tasks =
        std::max(1, static_cast<int>(std::round(rng.lognormal_mean(12.0, 1.0))));
    s.task_duration = std::max(0.05, rng.lognormal_mean(1.2, 0.9));
    if (config.with_memory) {
      // Mostly small requests; ~15% memory-hungry stages.
      s.mem_req = rng.bernoulli(0.15) ? rng.uniform(0.6, 1.0)
                                      : rng.uniform(0.02, 0.45);
    }
    if (v > 0) {
      const int num_parents = rng.bernoulli(0.25) ? 2 : 1;
      for (int k = 0; k < num_parents; ++k) {
        // Mostly the previous stage; occasionally a farther ancestor (join).
        const int p = rng.bernoulli(0.75)
                          ? v - 1
                          : rng.uniform_int(0, v - 1);
        if (std::find(s.parents.begin(), s.parents.end(), p) ==
            s.parents.end()) {
          s.parents.push_back(p);
        }
      }
    }
    job.stages.push_back(std::move(s));
  }

  // Parallelism profile: most production jobs scale modestly.
  job.sweet_spot = std::max(2.0, rng.lognormal_mean(15.0, 0.7));
  job.inflation = rng.uniform(0.3, 1.0);
  return job;
}

}  // namespace

std::vector<ArrivingJob> synthesize_trace(const TraceConfig& config) {
  decima::Rng rng(config.seed);
  std::vector<ArrivingJob> out;
  out.reserve(static_cast<std::size_t>(config.num_jobs));

  sim::Time t = 0.0;
  for (int i = 0; i < config.num_jobs; ++i) {
    // Diurnal-style intensity: interarrival mean oscillates so the trace has
    // distinct busy and quiet periods (cf. the "hours 7-9" busy period in
    // Fig. 10). Period chosen so a few cycles fit in a typical run; the
    // modulation shape is shared with diurnal_arrivals (workload/arrivals.h).
    t += rng.exponential(
        config.mean_iat *
        diurnal_iat_factor(t, config.mean_iat * 400.0, config.burstiness));
    out.push_back({synth_job(rng, i, config), t});
  }
  return out;
}

TraceStats trace_stats(const std::vector<ArrivingJob>& trace) {
  TraceStats s;
  if (trace.empty()) return s;
  double stage_sum = 0.0, work_sum = 0.0;
  int ge4 = 0;
  for (const auto& j : trace) {
    const int n = static_cast<int>(j.spec.stages.size());
    stage_sum += n;
    s.max_stages = std::max(s.max_stages, n);
    if (n >= 4) ++ge4;
    const double w = j.spec.total_work();
    work_sum += w;
    s.max_work = std::max(s.max_work, w);
  }
  s.frac_ge4_stages = static_cast<double>(ge4) / static_cast<double>(trace.size());
  s.mean_stages = stage_sum / static_cast<double>(trace.size());
  s.mean_work = work_sum / static_cast<double>(trace.size());
  return s;
}

}  // namespace decima::workload
