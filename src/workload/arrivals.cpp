#include "workload/arrivals.h"

#include <algorithm>
#include <cmath>

namespace decima::workload {

std::vector<sim::Time> poisson_arrivals(decima::Rng& rng, double mean_iat,
                                        int n) {
  std::vector<sim::Time> out;
  out.reserve(static_cast<std::size_t>(n));
  sim::Time t = 0.0;
  for (int i = 0; i < n; ++i) {
    t += rng.exponential(mean_iat);
    out.push_back(t);
  }
  return out;
}

std::vector<ArrivingJob> batched(std::vector<sim::JobSpec> jobs) {
  std::vector<ArrivingJob> out;
  out.reserve(jobs.size());
  for (auto& j : jobs) out.push_back({std::move(j), 0.0});
  return out;
}

std::vector<ArrivingJob> continuous(std::vector<sim::JobSpec> jobs,
                                    decima::Rng& rng, double mean_iat) {
  const auto times = poisson_arrivals(rng, mean_iat, static_cast<int>(jobs.size()));
  std::vector<ArrivingJob> out;
  out.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out.push_back({std::move(jobs[i]), times[i]});
  }
  return out;
}

double diurnal_iat_factor(sim::Time t, double period, double burstiness) {
  const double phase = std::sin(2.0 * M_PI * t / period);
  return std::max(1.0 - burstiness * phase, 0.1);
}

std::vector<ArrivingJob> flash_crowd(std::vector<sim::JobSpec> jobs,
                                     decima::Rng& rng,
                                     const FlashCrowdConfig& config) {
  const std::size_t n = jobs.size();
  const std::size_t burst =
      std::min(n, static_cast<std::size_t>(std::llround(
                      static_cast<double>(n) * config.burst_fraction)));
  const std::size_t trickle = n - burst;
  // The leading jobs of the list trickle in; the tail is the crowd.
  std::vector<sim::Time> times;
  times.reserve(n);
  sim::Time t = 0.0;
  for (std::size_t i = 0; i < trickle; ++i) {
    t += rng.exponential(config.base_iat);
    times.push_back(t);
  }
  t = config.burst_at;
  for (std::size_t i = 0; i < burst; ++i) {
    t += rng.exponential(config.burst_iat);
    times.push_back(t);
  }
  std::vector<ArrivingJob> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({std::move(jobs[i]), times[i]});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ArrivingJob& a, const ArrivingJob& b) {
                     return a.arrival < b.arrival;
                   });
  return out;
}

std::vector<ArrivingJob> diurnal_arrivals(std::vector<sim::JobSpec> jobs,
                                          decima::Rng& rng,
                                          const DiurnalConfig& config) {
  std::vector<ArrivingJob> out;
  out.reserve(jobs.size());
  sim::Time t = 0.0;
  int burst_left = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (burst_left > 0) {
      --burst_left;
      t += rng.exponential(config.burst_iat);
    } else {
      t += rng.exponential(
          config.mean_iat *
          diurnal_iat_factor(t, config.period, config.burstiness));
      if (config.burst_prob > 0.0 && rng.bernoulli(config.burst_prob)) {
        burst_left = config.burst_size;
      }
    }
    out.push_back({std::move(jobs[i]), t});
  }
  return out;
}

void load(sim::ClusterEnv& env, const std::vector<ArrivingJob>& jobs) {
  for (const auto& j : jobs) env.add_job(j.spec, j.arrival);
}

}  // namespace decima::workload
