#include "workload/arrivals.h"

namespace decima::workload {

std::vector<sim::Time> poisson_arrivals(decima::Rng& rng, double mean_iat,
                                        int n) {
  std::vector<sim::Time> out;
  out.reserve(static_cast<std::size_t>(n));
  sim::Time t = 0.0;
  for (int i = 0; i < n; ++i) {
    t += rng.exponential(mean_iat);
    out.push_back(t);
  }
  return out;
}

std::vector<ArrivingJob> batched(std::vector<sim::JobSpec> jobs) {
  std::vector<ArrivingJob> out;
  out.reserve(jobs.size());
  for (auto& j : jobs) out.push_back({std::move(j), 0.0});
  return out;
}

std::vector<ArrivingJob> continuous(std::vector<sim::JobSpec> jobs,
                                    decima::Rng& rng, double mean_iat) {
  const auto times = poisson_arrivals(rng, mean_iat, static_cast<int>(jobs.size()));
  std::vector<ArrivingJob> out;
  out.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out.push_back({std::move(jobs[i]), times[i]});
  }
  return out;
}

void load(sim::ClusterEnv& env, const std::vector<ArrivingJob>& jobs) {
  for (const auto& j : jobs) env.add_job(j.spec, j.arrival);
}

}  // namespace decima::workload
