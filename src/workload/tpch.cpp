#include "workload/tpch.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace decima::workload {

namespace {

// Stage counts per query, chosen to match the spread of DAG sizes visible in
// the paper's Fig. 1 (Q2 is large, Q8/Q17/Q20/Q21 mid-size, etc.).
constexpr int kStageCount[kNumTpchQueries] = {
    5, 24, 8, 8, 10, 6, 12, 16, 14, 10, 8, 6, 9, 5, 7, 11, 9, 20, 7, 18, 22, 6};

// Per-query parallelism sweet spot at the 100 GB reference size. Q9 keeps
// scaling to ~40 executors while Q2 saturates around 20 (Fig. 2).
constexpr double kSweetSpot100[kNumTpchQueries] = {
    30, 20, 35, 28, 32, 25, 30, 38, 40, 30, 22, 26, 34, 24, 28, 36, 30, 42,
    26, 33, 45, 18};

// Per-query work-inflation strength beyond the sweet spot.
constexpr double kInflation[kNumTpchQueries] = {
    0.6, 1.2, 0.5, 0.7, 0.6, 0.9, 0.6, 0.5, 0.4, 0.6, 0.8, 0.9,
    0.5, 0.8, 0.7, 0.5, 0.6, 0.4, 0.8, 0.6, 0.5, 1.1};

std::uint64_t template_seed(int query, double size_gb) {
  return 0x5eedULL * 7919ULL * static_cast<std::uint64_t>(query) +
         static_cast<std::uint64_t>(size_gb * 97.0) + 13ULL;
}

}  // namespace

const std::vector<double>& tpch_sizes() {
  static const std::vector<double> sizes = {2, 5, 10, 20, 50, 100};
  return sizes;
}

sim::JobSpec make_tpch_job(int query, double size_gb) {
  query = std::clamp(query, 1, kNumTpchQueries);
  const int qi = query - 1;
  decima::Rng rng(template_seed(query, size_gb));

  sim::JobSpec job;
  job.name = "tpch-q" + std::to_string(query) + "-" +
             std::to_string(static_cast<int>(size_gb)) + "g";

  const int n = kStageCount[qi];
  // Layered DAG: levels of decreasing width; later levels aggregate.
  const int levels = std::max(2, static_cast<int>(std::round(std::sqrt(n))) + 1);
  std::vector<int> level_of(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> by_level(static_cast<std::size_t>(levels));
  for (int v = 0; v < n; ++v) {
    // Bias early stages toward early levels so scans sit at the roots.
    const int lvl =
        std::min(levels - 1, static_cast<int>(static_cast<double>(v) /
                                              static_cast<double>(n) * levels));
    level_of[static_cast<std::size_t>(v)] = lvl;
    by_level[static_cast<std::size_t>(lvl)].push_back(v);
  }

  // Work scales slightly super-linearly with input size (shuffles grow).
  const double size_factor = std::pow(size_gb / 100.0, 1.05);
  // Reference widths: scans wide, aggregations narrow.
  const double base_width = 120.0 * size_factor;

  for (int v = 0; v < n; ++v) {
    sim::StageSpec s;
    const int lvl = level_of[static_cast<std::size_t>(v)];
    const double depth_decay = std::pow(0.55, lvl);
    const double width_noise = rng.lognormal_mean(1.0, 0.6);
    s.num_tasks = std::max(
        1, static_cast<int>(std::round(base_width * depth_decay * width_noise)));
    // Per-task durations: heavier for scans, lighter for aggregations;
    // heavy-ish tail across stages.
    const double base_dur = lvl == 0 ? 2.2 : 1.4;
    s.task_duration = std::max(0.1, rng.lognormal_mean(base_dur, 0.5));
    s.name = job.name + "/s" + std::to_string(v);

    // Parents: 1-3 stages from strictly earlier levels (roots have none).
    if (lvl > 0) {
      const int num_parents = rng.uniform_int(1, std::min(3, 2 + lvl / 2));
      std::vector<int> candidates;
      for (int u = 0; u < v; ++u) {
        if (level_of[static_cast<std::size_t>(u)] < lvl) candidates.push_back(u);
      }
      for (int k = 0; k < num_parents && !candidates.empty(); ++k) {
        // Prefer the immediately preceding level to build long chains with
        // occasional far-reaching join edges.
        const std::size_t pick =
            rng.bernoulli(0.7)
                ? candidates.size() - 1 -
                      static_cast<std::size_t>(rng.uniform_int(
                          0, std::min<int>(2, static_cast<int>(candidates.size()) - 1)))
                : static_cast<std::size_t>(rng.uniform_int(
                      0, static_cast<int>(candidates.size()) - 1));
        const int p = candidates[pick];
        if (std::find(s.parents.begin(), s.parents.end(), p) == s.parents.end()) {
          s.parents.push_back(p);
        }
      }
    }
    job.stages.push_back(std::move(s));
  }

  // Parallelism profile: sweet spot scales sub-linearly with input size
  // (Q9 on 2 GB needs ~5 tasks; on 100 GB it scales to 40 — Fig. 2).
  job.sweet_spot =
      std::max(2.0, kSweetSpot100[qi] * std::pow(size_gb / 100.0, 0.55));
  job.inflation = kInflation[qi];
  return job;
}

sim::JobSpec sample_tpch_job(decima::Rng& rng) {
  const int query = rng.uniform_int(1, kNumTpchQueries);
  const auto& sizes = tpch_sizes();
  const double size =
      sizes[static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(sizes.size()) - 1))];
  return make_tpch_job(query, size);
}

std::vector<sim::JobSpec> sample_tpch_batch(decima::Rng& rng, int n) {
  std::vector<sim::JobSpec> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(sample_tpch_job(rng));
  return out;
}

void assign_memory_requests(sim::JobSpec& job, decima::Rng& rng) {
  for (auto& s : job.stages) {
    s.mem_req = std::clamp(1.0 - rng.uniform(), 1e-3, 1.0);  // (0, 1]
  }
}

double ideal_runtime_at_parallelism(const sim::JobSpec& job, int parallelism) {
  parallelism = std::max(parallelism, 1);
  // Inflation multiplier at this allocation.
  const double over = std::max(0.0, static_cast<double>(parallelism) - job.sweet_spot);
  const double m = 1.0 + job.inflation * over / std::max(job.sweet_spot, 1.0);
  // Runtime = critical path over stages of (waves x inflated duration),
  // where each level's stages run sequentially along dependencies but share
  // the executors. A simple per-node wave model suffices for the Fig. 2 curve.
  const auto order = job.topo_order();
  const auto kids = job.children();
  std::vector<double> finish(job.stages.size(), 0.0);
  for (int v : order) {
    const auto& s = job.stages[static_cast<std::size_t>(v)];
    double ready = 0.0;
    for (std::size_t u = 0; u < job.stages.size(); ++u) {
      for (int c : kids[u]) {
        if (c == v) ready = std::max(ready, finish[u]);
      }
    }
    const double waves =
        std::ceil(static_cast<double>(s.num_tasks) / parallelism);
    finish[static_cast<std::size_t>(v)] = ready + waves * s.task_duration * m;
  }
  double total = 0.0;
  for (double f : finish) total = std::max(total, f);
  return total;
}

double work_share_of_top(const std::vector<sim::JobSpec>& jobs, double fraction) {
  if (jobs.empty()) return 0.0;
  std::vector<double> works;
  works.reserve(jobs.size());
  for (const auto& j : jobs) works.push_back(j.total_work());
  std::sort(works.begin(), works.end(), std::greater<>());
  const double total = std::accumulate(works.begin(), works.end(), 0.0);
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::round(fraction * works.size())));
  const double top = std::accumulate(works.begin(), works.begin() + static_cast<long>(k), 0.0);
  return total > 0 ? top / total : 0.0;
}

}  // namespace decima::workload
