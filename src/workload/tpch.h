// TPC-H-like workload library.
//
// The paper profiles the 22 TPC-H queries on Spark at six input sizes
// (2, 5, 10, 20, 50, 100 GB) and drives all single-resource experiments from
// those profiles. We do not have the authors' profiling data, so this module
// synthesizes a deterministic DAG template per (query, size) pair that
// preserves the scheduling-relevant properties (see DESIGN.md §2):
//   - distinct DAG shapes per query (chains, fan-ins, diamonds; stage counts
//     matching the spread visible in Fig. 1),
//   - heavy-tailed work distribution across the size mix (≈23% of jobs carry
//     ≈82% of the work, §7.2),
//   - per-query parallelism "sweet spots" that scale with input size (Fig. 2).
//
// A given (query, size) always produces the same JobSpec, mirroring how a
// recurring TPC-H query has a fixed profile.
#pragma once

#include <vector>

#include "sim/job.h"
#include "util/rng.h"

namespace decima::workload {

inline constexpr int kNumTpchQueries = 22;

// The six input sizes used throughout §7.2 (GB).
const std::vector<double>& tpch_sizes();

// Deterministic job template for `query` in [1, 22] at `size_gb`.
sim::JobSpec make_tpch_job(int query, double size_gb);

// Random (query, size) sample — uniform over queries and sizes, as in §7.2.
sim::JobSpec sample_tpch_job(decima::Rng& rng);

// A batch of n independent samples (batched-arrival experiments).
std::vector<sim::JobSpec> sample_tpch_batch(decima::Rng& rng, int n);

// Applies multi-resource memory requests: each DAG node's mem_req is drawn
// uniformly from (0, 1] (§7.3's TPC-H multi-resource setup).
void assign_memory_requests(sim::JobSpec& job, decima::Rng& rng);

// Analytic runtime model of a single job run alone on `parallelism` executors
// (used by the Fig. 2 bench and tests): per-level wave counts with the
// work-inflation multiplier applied, ignoring stochastic effects.
double ideal_runtime_at_parallelism(const sim::JobSpec& job, int parallelism);

// Fraction of total work held by the largest `fraction` of jobs (by work),
// e.g. work_share_of_top(jobs, 0.23) ≈ 0.82 for the paper's mix.
double work_share_of_top(const std::vector<sim::JobSpec>& jobs, double fraction);

}  // namespace decima::workload
