// Job arrival processes: batched (all at t=0) and continuous (Poisson with a
// configurable mean interarrival time), as used in §7.2, plus the stress
// processes of the scenario suite (docs/robustness.md) — flash crowds and
// diurnal load with micro-bursts — and helpers to load a workload into a
// ClusterEnv.
#pragma once

#include <vector>

#include "sim/cluster_env.h"
#include "sim/job.h"
#include "util/rng.h"

namespace decima::workload {

// n Poisson arrival times with the given mean interarrival time (seconds).
std::vector<sim::Time> poisson_arrivals(decima::Rng& rng, double mean_iat,
                                        int n);

// A workload: job specs paired with arrival times.
struct ArrivingJob {
  sim::JobSpec spec;
  sim::Time arrival = 0.0;
};

// Batched arrivals: all jobs at t = 0 (§7.2 "batched arrivals").
std::vector<ArrivingJob> batched(std::vector<sim::JobSpec> jobs);

// Continuous arrivals: Poisson process over the given specs in order.
std::vector<ArrivingJob> continuous(std::vector<sim::JobSpec> jobs,
                                    decima::Rng& rng, double mean_iat);

// Multiplicative modulation of the mean interarrival time at time `t` for a
// diurnal (sinusoidal) load curve: 1 - burstiness * sin(2π t / period),
// floored at 0.1 so peak load never degenerates to zero IAT. Shared by
// synthesize_trace (workload/trace.cpp) and diurnal_arrivals below — one
// implementation, one busy/quiet shape everywhere.
double diurnal_iat_factor(sim::Time t, double period, double burstiness);

// Flash crowd: a Poisson trickle at base_iat, then `burst_fraction` of the
// jobs slam in around burst_at with burst_iat spacing — the workload shape
// of a viral event or a failover redirecting another cluster's traffic.
struct FlashCrowdConfig {
  double base_iat = 25.0;
  double burst_at = 200.0;
  double burst_fraction = 0.5;
  double burst_iat = 0.5;
};
std::vector<ArrivingJob> flash_crowd(std::vector<sim::JobSpec> jobs,
                                     decima::Rng& rng,
                                     const FlashCrowdConfig& config);

// Diurnal load with optional micro-bursts: Poisson arrivals whose mean IAT
// follows diurnal_iat_factor, and with probability burst_prob an arrival
// drags the next burst_size jobs in at burst_iat spacing (a burst riding on
// the daily curve).
struct DiurnalConfig {
  double mean_iat = 25.0;
  double period = 2000.0;
  double burstiness = 0.8;  // 0 = plain Poisson
  double burst_prob = 0.0;
  int burst_size = 5;
  double burst_iat = 0.2;
};
std::vector<ArrivingJob> diurnal_arrivals(std::vector<sim::JobSpec> jobs,
                                          decima::Rng& rng,
                                          const DiurnalConfig& config);

// Registers all jobs with the environment.
void load(sim::ClusterEnv& env, const std::vector<ArrivingJob>& jobs);

}  // namespace decima::workload
