// Job arrival processes: batched (all at t=0) and continuous (Poisson with a
// configurable mean interarrival time), as used in §7.2, plus helpers to load
// a workload into a ClusterEnv.
#pragma once

#include <vector>

#include "sim/cluster_env.h"
#include "sim/job.h"
#include "util/rng.h"

namespace decima::workload {

// n Poisson arrival times with the given mean interarrival time (seconds).
std::vector<sim::Time> poisson_arrivals(decima::Rng& rng, double mean_iat,
                                        int n);

// A workload: job specs paired with arrival times.
struct ArrivingJob {
  sim::JobSpec spec;
  sim::Time arrival = 0.0;
};

// Batched arrivals: all jobs at t = 0 (§7.2 "batched arrivals").
std::vector<ArrivingJob> batched(std::vector<sim::JobSpec> jobs);

// Continuous arrivals: Poisson process over the given specs in order.
std::vector<ArrivingJob> continuous(std::vector<sim::JobSpec> jobs,
                                    decima::Rng& rng, double mean_iat);

// Registers all jobs with the environment.
void load(sim::ClusterEnv& env, const std::vector<ArrivingJob>& jobs);

}  // namespace decima::workload
