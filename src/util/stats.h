// Streaming and batch statistics helpers used by metrics and benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace decima {

// Welford streaming mean/variance.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance of the samples seen
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exponential moving average; `horizon` is the effective averaging window in
// number of samples (the paper uses a 1e5-step window for the differential
// reward baseline).
class MovingAverage {
 public:
  explicit MovingAverage(double horizon) : alpha_(1.0 / std::max(horizon, 1.0)) {}
  void add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ += alpha_ * (x - value_);
    }
  }
  double value() const { return value_; }
  bool initialized() const { return initialized_; }
  // Restores a snapshot taken via value()/initialized() (checkpoint resume).
  void restore(double value, bool initialized) {
    value_ = value;
    initialized_ = initialized;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;

  static double max(double a, double b) { return a > b ? a : b; }
};

// Percentile of a sample set with linear interpolation; p in [0, 100].
double percentile(std::vector<double> samples, double p);

double mean_of(const std::vector<double>& samples);

// Empirical CDF: returns (value, fraction <= value) pairs at each sample.
std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> samples);

// Render a crude ASCII CDF/series sparkline for console output.
std::string ascii_sparkline(const std::vector<double>& values, int width = 60);

}  // namespace decima
