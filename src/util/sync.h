// Thread-safety-annotated synchronization primitives (docs/concurrency.md).
//
// Every lock in this repository lives behind the wrappers below so that
// Clang's compile-time thread-safety analysis (-Wthread-safety, promoted to
// an error by DECIMA_WERROR) can prove the locking discipline: a member
// declared GUARDED_BY(mu_) is rejected at compile time if any code path
// touches it without holding mu_, and a function declared REQUIRES(mu)
// cannot be called without it. GCC (and any compiler without the
// attributes) compiles the annotations away to nothing, so the wrappers are
// exactly std::mutex / std::condition_variable at runtime.
//
// scripts/check_invariants.py bans raw std::mutex / std::condition_variable
// / std::lock_guard / std::unique_lock outside this header, so shared state
// added anywhere in the tree is forced through the analysis.
//
// Usage:
//   util::Mutex mu_;
//   int shared_ GUARDED_BY(mu_);
//   util::CondVar cv_;
//   ...
//   util::MutexLock lk(mu_);
//   while (!ready()) cv_.wait(mu_);   // wait() REQUIRES(mu_)
//   ++shared_;
#pragma once

#include <chrono>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

// GNU-style attributes carrying Clang's capability analysis; see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for semantics.
#if defined(__clang__)
#define DECIMA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DECIMA_THREAD_ANNOTATION(x)  // compiled away on GCC and friends
#endif

// A type that acts as a lock (applies to the Mutex wrapper below).
#define CAPABILITY(x) DECIMA_THREAD_ANNOTATION(capability(x))
// An RAII type whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY DECIMA_THREAD_ANNOTATION(scoped_lockable)
// Data member that may only be read/written while holding the given lock.
#define GUARDED_BY(x) DECIMA_THREAD_ANNOTATION(guarded_by(x))
// Pointer member whose *pointee* is guarded by the given lock.
#define PT_GUARDED_BY(x) DECIMA_THREAD_ANNOTATION(pt_guarded_by(x))
// Function that must be called with the lock(s) already held.
#define REQUIRES(...) \
  DECIMA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
// Function that acquires / releases the lock(s) itself.
#define ACQUIRE(...) DECIMA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) DECIMA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// Function that acquires the lock only when returning the given value.
#define TRY_ACQUIRE(...) \
  DECIMA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// Function that must NOT be called with the lock held (it takes it itself);
// catches self-deadlock at compile time.
#define EXCLUDES(...) DECIMA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Escape hatch for code the analysis cannot follow; every use needs a
// comment justifying why the access is safe.
#define NO_THREAD_SAFETY_ANALYSIS \
  DECIMA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace decima::util {

class CondVar;

// std::mutex wearing the capability attribute. Prefer MutexLock over manual
// lock()/unlock() pairs; the analysis checks both.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // wait() needs the raw handle to sleep on
  std::mutex mu_;
};

// RAII lock for Mutex — std::lock_guard with the scoped-capability
// attribute, so the analysis knows the lock is held for the block.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable waiting on a util::Mutex. wait() REQUIRES the mutex,
// so the analysis proves every waiter holds the lock it sleeps on — the
// misuse TSan only catches when a schedule actually trips over it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, sleeps, and reacquires before returning.
  // Spurious wakeups happen; always wait in a predicate loop.
  void wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the sleep and
    // release ownership back to the caller's MutexLock afterwards, so the
    // annotated lock object stays the single source of truth.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  // Timed wait (deadline/timeout paths, e.g. the policy server's per-request
  // deadline): sleeps at most `timeout` and returns std::cv_status::timeout
  // when it expired. Spurious wakeups happen either way — re-check the
  // predicate and the clock.
  std::cv_status wait_for(Mutex& mu, std::chrono::nanoseconds timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// K persistent worker threads pulling task indices from one annotated queue.
//
// Built for the trainer's rollout/replay pool (rl::ReinforceTrainer,
// docs/training.md "Parallel rollout & the determinism contract"): worker w
// exclusively owns whatever per-worker state the caller indexes by w (an
// agent clone, an embedding cache, a busy-seconds slot), so tasks need no
// locking of their own — the queue below is the only shared state, and it
// is fully guarded by mu_. Tasks are claimed dynamically (next_task_++), so
// uneven task durations load-balance; callers that need determinism must
// key every result and every random draw by the *task index*, never by the
// worker index or the claim order.
//
// parallel_for() is a blocking scatter/gather: it seeds the queue, wakes
// the workers, and returns only after every task ran (the mutex handoff
// makes all task writes visible to the caller). One batch at a time, from
// one coordinating thread — it is not itself reentrant.
class WorkerPool {
 public:
  // A task: fn(task, worker) with task in [0, num_tasks) and worker in
  // [0, size()).
  using Task = std::function<void(int task, int worker)>;

  explicit WorkerPool(int workers) {
    const int k = workers < 1 ? 1 : workers;
    threads_.reserve(static_cast<std::size_t>(k));
    for (int w = 0; w < k; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ~WorkerPool() EXCLUDES(mu_) {
    {
      MutexLock lk(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  // Runs fn(task, worker) for every task in [0, num_tasks) across the pool
  // and blocks until all of them finished. The calling thread only
  // coordinates — it never executes tasks, so per-worker state stays
  // exclusively worker-owned. If tasks threw, the first exception (in
  // completion order) is rethrown here after the batch drained.
  void parallel_for(int num_tasks, const Task& fn) EXCLUDES(mu_) {
    if (num_tasks <= 0) return;
    std::exception_ptr error;
    {
      MutexLock lk(mu_);
      fn_ = &fn;
      num_tasks_ = num_tasks;
      next_task_ = 0;
      done_tasks_ = 0;
      error_ = nullptr;
      work_cv_.notify_all();
      while (done_tasks_ < num_tasks_) done_cv_.wait(mu_);
      fn_ = nullptr;
      num_tasks_ = 0;
      error = error_;
      error_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  void worker_loop(int worker) EXCLUDES(mu_) {
    for (;;) {
      int task = -1;
      const Task* fn = nullptr;
      {
        MutexLock lk(mu_);
        while (!stop_ && (fn_ == nullptr || next_task_ >= num_tasks_)) {
          work_cv_.wait(mu_);
        }
        if (stop_) return;
        task = next_task_++;
        fn = fn_;
      }
      std::exception_ptr error;
      try {
        (*fn)(task, worker);
      } catch (...) {
        error = std::current_exception();
      }
      {
        MutexLock lk(mu_);
        if (error && !error_) error_ = error;
        if (++done_tasks_ == num_tasks_) done_cv_.notify_all();
      }
    }
  }

  Mutex mu_;
  CondVar work_cv_;  // workers sleep here between tasks/batches
  CondVar done_cv_;  // parallel_for sleeps here until the batch drains
  const Task* fn_ GUARDED_BY(mu_) = nullptr;  // non-null while a batch runs
  int num_tasks_ GUARDED_BY(mu_) = 0;
  int next_task_ GUARDED_BY(mu_) = 0;   // next unclaimed task index
  int done_tasks_ GUARDED_BY(mu_) = 0;  // tasks fully executed
  std::exception_ptr error_ GUARDED_BY(mu_);  // first task failure, if any
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace decima::util
