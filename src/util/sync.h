// Thread-safety-annotated synchronization primitives (docs/concurrency.md).
//
// Every lock in this repository lives behind the wrappers below so that
// Clang's compile-time thread-safety analysis (-Wthread-safety, promoted to
// an error by DECIMA_WERROR) can prove the locking discipline: a member
// declared GUARDED_BY(mu_) is rejected at compile time if any code path
// touches it without holding mu_, and a function declared REQUIRES(mu)
// cannot be called without it. GCC (and any compiler without the
// attributes) compiles the annotations away to nothing, so the wrappers are
// exactly std::mutex / std::condition_variable at runtime.
//
// scripts/check_invariants.py bans raw std::mutex / std::condition_variable
// / std::lock_guard / std::unique_lock outside this header, so shared state
// added anywhere in the tree is forced through the analysis.
//
// Usage:
//   util::Mutex mu_;
//   int shared_ GUARDED_BY(mu_);
//   util::CondVar cv_;
//   ...
//   util::MutexLock lk(mu_);
//   while (!ready()) cv_.wait(mu_);   // wait() REQUIRES(mu_)
//   ++shared_;
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// GNU-style attributes carrying Clang's capability analysis; see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for semantics.
#if defined(__clang__)
#define DECIMA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DECIMA_THREAD_ANNOTATION(x)  // compiled away on GCC and friends
#endif

// A type that acts as a lock (applies to the Mutex wrapper below).
#define CAPABILITY(x) DECIMA_THREAD_ANNOTATION(capability(x))
// An RAII type whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY DECIMA_THREAD_ANNOTATION(scoped_lockable)
// Data member that may only be read/written while holding the given lock.
#define GUARDED_BY(x) DECIMA_THREAD_ANNOTATION(guarded_by(x))
// Pointer member whose *pointee* is guarded by the given lock.
#define PT_GUARDED_BY(x) DECIMA_THREAD_ANNOTATION(pt_guarded_by(x))
// Function that must be called with the lock(s) already held.
#define REQUIRES(...) \
  DECIMA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
// Function that acquires / releases the lock(s) itself.
#define ACQUIRE(...) DECIMA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) DECIMA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// Function that acquires the lock only when returning the given value.
#define TRY_ACQUIRE(...) \
  DECIMA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// Function that must NOT be called with the lock held (it takes it itself);
// catches self-deadlock at compile time.
#define EXCLUDES(...) DECIMA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Escape hatch for code the analysis cannot follow; every use needs a
// comment justifying why the access is safe.
#define NO_THREAD_SAFETY_ANALYSIS \
  DECIMA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace decima::util {

class CondVar;

// std::mutex wearing the capability attribute. Prefer MutexLock over manual
// lock()/unlock() pairs; the analysis checks both.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // wait() needs the raw handle to sleep on
  std::mutex mu_;
};

// RAII lock for Mutex — std::lock_guard with the scoped-capability
// attribute, so the analysis knows the lock is held for the block.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable waiting on a util::Mutex. wait() REQUIRES the mutex,
// so the analysis proves every waiter holds the lock it sleeps on — the
// misuse TSan only catches when a schedule actually trips over it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, sleeps, and reacquires before returning.
  // Spurious wakeups happen; always wait in a predicate loop.
  void wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the sleep and
    // release ownership back to the caller's MutexLock afterwards, so the
    // annotated lock object stays the single source of truth.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  // Timed wait (deadline/timeout paths, e.g. the policy server's per-request
  // deadline): sleeps at most `timeout` and returns std::cv_status::timeout
  // when it expired. Spurious wakeups happen either way — re-check the
  // predicate and the clock.
  std::cv_status wait_for(Mutex& mu, std::chrono::nanoseconds timeout)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace decima::util
