// Seeded random number generation for reproducible experiments.
//
// Every stochastic component in this repository draws its randomness through
// a Rng instance constructed from an explicit 64-bit seed, so that every
// experiment is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace decima {

// A thin, value-semantic wrapper around a 64-bit Mersenne Twister with the
// distribution helpers used throughout the simulator and trainer.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) : engine_(seed) {}

  // Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    std::uniform_int_distribution<int> d(lo, hi);
    return d(engine_);
  }

  // Exponential with the given mean (mean = 1/rate). mean <= 0 returns 0.
  double exponential(double mean) {
    if (mean <= 0.0) return 0.0;
    std::exponential_distribution<double> d(1.0 / mean);
    return d(engine_);
  }

  // Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  // Log-normal parameterized by the *target* mean and a shape sigma (sigma of
  // the underlying normal). Used for heavy-ish-tailed task durations.
  double lognormal_mean(double mean, double sigma) {
    if (mean <= 0.0) return 0.0;
    const double mu = std::log(mean) - 0.5 * sigma * sigma;
    std::lognormal_distribution<double> d(mu, sigma);
    return d(engine_);
  }

  // Bounded Pareto used for heavy-tailed job input sizes / stage widths.
  double pareto(double scale, double alpha) {
    const double u = std::max(uniform(), 1e-12);
    return scale / std::pow(u, 1.0 / alpha);
  }

  // True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  // Sample an index in [0, weights.size()) proportionally to weights.
  // Non-positive total weight falls back to index 0.
  std::size_t weighted_index(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<int>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Full engine state as a portable text token stream (the standard streaming
  // format of mersenne_twister_engine), for bit-exact checkpoint resume: a
  // restored Rng produces exactly the draw sequence the saved one would have.
  std::string state_string() const;
  // Restores a state produced by state_string(); returns false on parse error
  // (the engine is left unchanged on failure).
  bool set_state_string(const std::string& state);

  // Derive an independent child stream; used to hand sub-seeds to components.
  std::uint64_t fork() {
    // SplitMix64 step over a fresh draw keeps child streams decorrelated.
    std::uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace decima
