#include "util/table.h"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace decima {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
  return *this;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[c])) << row[c] << ' ';
    }
    os << "|\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_csv();
  return static_cast<bool>(out);
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_int(long long v) { return std::to_string(v); }

std::string fmt_pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

}  // namespace decima
