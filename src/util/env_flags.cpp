#include "util/env_flags.h"

#include <cstdlib>

namespace decima {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (!v) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<int>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return parsed;
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v ? std::string(v) : fallback;
}

}  // namespace decima
