#include "util/rng.h"

#include <cmath>
#include <sstream>

namespace decima {

std::string Rng::state_string() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

bool Rng::set_state_string(const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 restored;
  in >> restored;
  if (in.fail()) return false;
  engine_ = restored;
  // The [0,1) helper distribution carries no state across draws, but reset it
  // anyway so a restored Rng cannot depend on implementation details.
  unit_.reset();
  return true;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0.0 || weights.empty()) return 0;
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= std::max(weights[i], 0.0);
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace decima
