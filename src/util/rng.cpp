#include "util/rng.h"

#include <cmath>

namespace decima {

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0.0 || weights.empty()) return 0;
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= std::max(weights[i], 0.0);
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace decima
