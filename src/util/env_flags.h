// Environment-variable based knobs for bench/example binaries.
//
// Benches train RL policies; their iteration counts are deliberately small by
// default so the full suite completes in minutes, and can be raised via e.g.
//   DECIMA_TRAIN_ITERS=2000 ./bench_fig09_spark_cluster
#pragma once

#include <string>

namespace decima {

// Returns the integer value of the environment variable `name`, or
// `fallback` if unset or unparsable.
int env_int(const char* name, int fallback);

// Returns the double value of the environment variable `name`, or fallback.
double env_double(const char* name, double fallback);

// Returns the string value, or fallback.
std::string env_str(const char* name, const std::string& fallback);

}  // namespace decima
