// Console table and CSV emission used by the benchmark harnesses.
//
// Every bench binary prints the rows/series the corresponding paper table or
// figure reports; Table gives them a uniform, aligned format and an optional
// CSV dump for plotting.
#pragma once

#include <string>
#include <vector>

namespace decima {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Adds a row; values are pre-formatted strings (see fmt() helpers below).
  Table& add_row(std::vector<std::string> row);

  // Renders an aligned ASCII table.
  std::string to_string() const;

  // Renders RFC-4180-ish CSV (no quoting of embedded commas needed here).
  std::string to_csv() const;

  // Writes CSV to a file; returns false on I/O error.
  bool write_csv(const std::string& path) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Numeric formatting helpers.
std::string fmt(double v, int precision = 2);
std::string fmt_int(long long v);
std::string fmt_pct(double fraction, int precision = 1);  // 0.21 -> "21.0%"

}  // namespace decima
