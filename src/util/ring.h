// Bounded lock-free single-producer/single-consumer ring buffer.
//
// The request-handoff primitive of the sharded serving plane
// (src/serve/policy_server.h, docs/serving.md): each dispatcher shard owns
// one SpscRing and is its only consumer; the many session threads that feed
// the shard are serialized into the single-producer contract by the shard's
// annotated util::Mutex (push happens under `Shard::mu`, pop never takes a
// lock). That division is the point: producers contend only with each other
// on their shard's mutex, never with the consumer, so dispatch claims cost
// two atomic loads and a store even while requests stream in.
//
// Discipline (the analogue of src/util/sync.h's GUARDED_BY rules, which
// cannot express lock-free ownership):
//   * try_push may be called by ONE thread at a time (serialize producers
//     externally — scripts/check_invariants.py rule spsc-ring-containment
//     keeps uses of this type behind reviewed call sites).
//   * try_pop may be called by ONE designated consumer thread only.
//   * size()/empty() are safe from any thread but only approximate while
//     the other side is mid-operation: size() read by the producer never
//     under-counts (head_ is monotone), so bounded-queue admission checks
//     built on it are conservative, never leaky.
//
// Memory ordering is the classic SPSC pairing: the producer's tail_ release
// publishes the slot write to the consumer's tail_ acquire; the consumer's
// head_ release returns the slot to the producer's head_ acquire.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace decima::util {

template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to the next power of two (>= 1) so index
  // wrapping is a mask, not a modulo.
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Producer side. False when the ring is full (the value is untouched —
  // the caller keeps ownership and decides whether to wait or reject).
  bool try_push(T v) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) == slots_.size()) {
      return false;
    }
    slots_[t & (slots_.size() - 1)] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. False when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == h) return false;
    out = std::move(slots_[h & (slots_.size() - 1)]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  // Entries currently queued. Exact from within a producer- or
  // consumer-side critical section; an upper bound for the producer while
  // the consumer races (and vice versa a lower bound).
  std::size_t size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }
  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return slots_.size(); }

 private:
  std::vector<T> slots_;
  // Separate cache lines: the producer writes tail_ while the consumer
  // writes head_; sharing a line would make every push/pop a coherence
  // round trip.
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer cursor
};

}  // namespace decima::util
