#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace decima {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::reset() { *this = RunningStats{}; }

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  p = std::clamp(p, 0.0, 100.0);
  const double idx = p / 100.0 * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double mean_of(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples) s += x;
  return s / static_cast<double>(samples.size());
}

std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> samples) {
  std::vector<std::pair<double, double>> out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  out.reserve(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    out.emplace_back(samples[i],
                     static_cast<double>(i + 1) / static_cast<double>(samples.size()));
  }
  return out;
}

std::string ascii_sparkline(const std::vector<double>& values, int width) {
  static const char* levels = " .:-=+*#%@";
  if (values.empty() || width <= 0) return "";
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = hi - lo;
  std::string out;
  out.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    const std::size_t idx =
        std::min(values.size() - 1,
                 static_cast<std::size_t>(static_cast<double>(i) /
                                          std::max(width - 1, 1) *
                                          static_cast<double>(values.size() - 1)));
    const double norm = range > 0 ? (values[idx] - lo) / range : 0.5;
    const int level = std::clamp(static_cast<int>(norm * 9.0), 0, 9);
    out.push_back(levels[level]);
  }
  return out;
}

}  // namespace decima
