// Deadline-aware scheduling (§8 "Other learning objectives"): shaping the
// reward with a hard per-job deadline penalty steers Decima toward a policy
// that trades a little average JCT for far fewer deadline misses.
//
//   ./examples/deadline_aware [train_iters] [slack]
#include <iostream>

#include "metrics/experiment.h"
#include "rl/reinforce.h"
#include "sched/heuristics.h"
#include "util/table.h"
#include "workload/tpch.h"

using namespace decima;

int main(int argc, char** argv) {
  const int train_iters = argc > 1 ? std::atoi(argv[1]) : 60;
  const double slack = argc > 2 ? std::atof(argv[2]) : 10.0;

  sim::EnvConfig env;
  env.num_executors = 10;
  rl::WorkloadSampler sampler = [](std::uint64_t seed) {
    Rng rng(seed);
    return workload::batched(workload::sample_tpch_batch(rng, 8));
  };

  rl::DeadlineConfig deadline;
  deadline.slack = slack;
  deadline.miss_penalty = 200.0;

  auto train_policy = [&](rl::Objective objective) {
    core::AgentConfig ac;
    ac.seed = 11;
    auto agent = std::make_unique<core::DecimaAgent>(ac);
    rl::TrainConfig train;
    train.num_iterations = train_iters;
    train.episodes_per_iter = 8;
    train.rollout_threads = 8;
    train.curriculum = false;
    train.differential_reward = false;
    train.objective = objective;
    train.deadline = deadline;
    train.env = env;
    train.sampler = sampler;
    rl::ReinforceTrainer(*agent, train).train();
    agent->set_mode(core::Mode::kGreedy);
    return agent;
  };

  std::cout << "Training JCT-objective and deadline-objective policies ("
            << train_iters << " iterations each, slack " << slack << ")...\n";
  auto jct_policy = train_policy(rl::Objective::kAvgJct);
  auto deadline_policy = train_policy(rl::Objective::kDeadline);
  sched::WeightedFairScheduler fair(0.0);

  Table t({"policy", "avg JCT [s]", "deadline hit rate"});
  for (auto& [label, sched] :
       std::vector<std::pair<std::string, sim::Scheduler*>>{
           {"Fair", &fair},
           {"Decima (avg JCT objective)", jct_policy.get()},
           {"Decima (deadline objective)", deadline_policy.get()}}) {
    RunningStats jct, hits;
    for (int r = 0; r < 10; ++r) {
      sim::ClusterEnv cluster(env);
      workload::load(cluster, sampler(5000 + static_cast<std::uint64_t>(r)));
      cluster.run(*sched);
      jct.add(cluster.avg_jct());
      hits.add(rl::deadline_hit_rate(cluster, deadline));
    }
    t.add_row({label, fmt(jct.mean(), 1), fmt_pct(hits.mean())});
  }
  std::cout << "\n" << t.to_string()
            << "\nThe deadline-shaped reward should push the hit rate up,\n"
               "possibly at a small cost in average JCT.\n";
  return 0;
}
