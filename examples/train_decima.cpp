// Full training pipeline: trains a Decima agent on continuous TPC-H arrivals
// with curriculum learning and input-dependent baselines (Algorithm 1), logs
// the learning curve to CSV, and saves the model.
//
//   ./examples/train_decima [iters] [model_out] [curve_csv]
#include <iostream>

#include "rl/reinforce.h"
#include "util/table.h"
#include "workload/tpch.h"

using namespace decima;

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 120;
  const std::string model_path = argc > 2 ? argv[2] : "decima.model";
  const std::string curve_path = argc > 3 ? argv[3] : "learning_curve.csv";

  sim::EnvConfig env;
  env.num_executors = 15;

  // Continuous arrivals: 25 jobs per episode, Poisson interarrival.
  rl::WorkloadSampler sampler = [](std::uint64_t seed) {
    Rng rng(seed);
    auto jobs = workload::sample_tpch_batch(rng, 25);
    Rng arr(rng.fork());
    return workload::continuous(std::move(jobs), arr, 40.0);
  };

  core::AgentConfig agent_config;
  agent_config.seed = 1;
  core::DecimaAgent agent(agent_config);
  std::cout << "Decima model: " << agent.num_parameters() << " parameters\n";

  rl::TrainConfig train;
  train.num_iterations = iters;
  train.episodes_per_iter = 8;
  train.rollout_threads = 8;
  train.curriculum = true;
  train.tau_mean_init = 500.0;
  train.tau_mean_growth = 100.0;
  train.differential_reward = true;
  train.env = env;
  train.sampler = sampler;
  rl::ReinforceTrainer trainer(agent, train);

  Table curve({"iteration", "tau", "rollout_avg_jct", "total_reward",
               "grad_norm"});
  for (int i = 0; i < iters; ++i) {
    const auto s = trainer.iterate();
    curve.add_row({fmt_int(s.iteration), fmt(s.tau, 0),
                   fmt(s.mean_avg_jct, 1), fmt(s.mean_total_reward, 0),
                   fmt(s.grad_norm, 3)});
    if (s.iteration % 10 == 0) {
      std::cout << "iter " << s.iteration << "  tau " << fmt(s.tau, 0)
                << "  rollout avg JCT " << fmt(s.mean_avg_jct, 1) << "s\n";
    }
  }

  if (!curve.write_csv(curve_path)) {
    std::cerr << "failed to write " << curve_path << "\n";
    return 1;
  }
  if (!agent.save(model_path)) {
    std::cerr << "failed to save " << model_path << "\n";
    return 1;
  }
  std::cout << "saved model to " << model_path << ", learning curve to "
            << curve_path << "\n";
  return 0;
}
