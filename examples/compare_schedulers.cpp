// Runs all seven baseline heuristics (§7.1) on the same batched TPC-H
// workload and prints a comparison table — the quickest way to see the
// scheduler zoo in action.
//
//   ./examples/compare_schedulers [num_jobs] [num_executors]
#include <iostream>
#include <memory>

#include "metrics/experiment.h"
#include "sched/heuristics.h"
#include "sched/tuning.h"
#include "util/table.h"
#include "workload/tpch.h"

using namespace decima;

int main(int argc, char** argv) {
  const int num_jobs = argc > 1 ? std::atoi(argv[1]) : 15;
  const int num_execs = argc > 2 ? std::atoi(argv[2]) : 25;

  sim::EnvConfig env;
  env.num_executors = num_execs;

  Rng rng(7);
  const auto workload =
      workload::batched(workload::sample_tpch_batch(rng, num_jobs));

  // Tune the weighted-fair alpha on a few independent samples, as §7.1 does.
  std::vector<std::vector<workload::ArrivingJob>> tune_set;
  for (int i = 0; i < 3; ++i) {
    Rng r(100 + static_cast<std::uint64_t>(i));
    tune_set.push_back(workload::batched(workload::sample_tpch_batch(r, num_jobs)));
  }
  const auto tuned = sched::tune_weighted_fair_alpha(
      env, tune_set, sched::alpha_grid(/*step=*/0.5));
  std::cout << "tuned weighted-fair alpha = " << fmt(tuned.alpha, 1) << "\n\n";

  sched::FifoScheduler fifo;
  sched::SjfCpScheduler sjf;
  sched::WeightedFairScheduler fair(0.0);
  sched::WeightedFairScheduler naive(1.0);
  sched::WeightedFairScheduler opt(tuned.alpha);
  sched::TetrisScheduler tetris;
  sched::GrapheneScheduler graphene;

  Table table({"scheduler", "avg JCT [s]", "makespan [s]", "completed"});
  for (sim::Scheduler* s : std::vector<sim::Scheduler*>{
           &fifo, &sjf, &fair, &naive, &opt, &tetris, &graphene}) {
    const auto r = metrics::run_episode(env, workload, *s);
    table.add_row({s->name(), fmt(r.avg_jct, 1), fmt(r.makespan, 1),
                   fmt_int(r.jobs_completed)});
  }
  std::cout << table.to_string();
  return 0;
}
