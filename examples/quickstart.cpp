// Quickstart: build a small TPC-H-like workload, run two heuristics and an
// RL-trained Decima agent on the simulated cluster, and compare average JCT.
//
//   ./examples/quickstart [train_iters]
//
// Demonstrates the core public API: workload generation, ClusterEnv,
// heuristic schedulers, DecimaAgent, and ReinforceTrainer.
#include <iostream>

#include "metrics/experiment.h"
#include "rl/reinforce.h"
#include "sched/heuristics.h"
#include "util/table.h"
#include "workload/tpch.h"

using namespace decima;

int main(int argc, char** argv) {
  const int train_iters = argc > 1 ? std::atoi(argv[1]) : 60;

  // A 10-executor cluster with the full Spark fidelity model (§6.2).
  sim::EnvConfig env;
  env.num_executors = 10;

  // Workload: 8 random TPC-H jobs arriving as a batch. The sampler is
  // seed-deterministic, which RL training requires.
  rl::WorkloadSampler sampler = [](std::uint64_t seed) {
    Rng rng(seed);
    return workload::batched(workload::sample_tpch_batch(rng, 8));
  };
  const auto test_workload = sampler(/*seed=*/9999);

  // --- Heuristics ----------------------------------------------------------
  sched::FifoScheduler fifo;
  sched::WeightedFairScheduler fair(0.0);
  const auto r_fifo = metrics::run_episode(env, test_workload, fifo);
  const auto r_fair = metrics::run_episode(env, test_workload, fair);

  // --- Decima ----------------------------------------------------------------
  core::AgentConfig agent_config;
  agent_config.seed = 42;
  core::DecimaAgent agent(agent_config);

  rl::TrainConfig train;
  train.num_iterations = train_iters;
  train.episodes_per_iter = 8;
  train.rollout_threads = 8;
  train.curriculum = false;        // short batch episodes
  train.differential_reward = false;
  train.env = env;
  train.sampler = sampler;
  std::cout << "Training Decima for " << train_iters << " iterations ("
            << agent.num_parameters() << " parameters)...\n";
  rl::ReinforceTrainer trainer(agent, train);
  for (int i = 0; i < train.num_iterations; ++i) {
    const auto s = trainer.iterate();
    if (s.iteration % 10 == 0) {
      std::cout << "  iter " << s.iteration
                << "  rollout avg JCT " << fmt(s.mean_avg_jct, 1) << "s\n";
    }
  }

  agent.set_mode(core::Mode::kGreedy);
  const auto r_decima = metrics::run_episode(env, test_workload, agent);

  Table table({"scheduler", "avg JCT [s]", "makespan [s]"});
  table.add_row({"FIFO", fmt(r_fifo.avg_jct, 1), fmt(r_fifo.makespan, 1)});
  table.add_row({"Fair", fmt(r_fair.avg_jct, 1), fmt(r_fair.makespan, 1)});
  table.add_row({"Decima", fmt(r_decima.avg_jct, 1), fmt(r_decima.makespan, 1)});
  std::cout << "\n" << table.to_string();
  return 0;
}
