// Train -> checkpoint -> serve, end to end (docs/serving.md):
//   1. trains a Decima agent for a few iterations, checkpointing the trainer
//      every iteration and once killing + resuming it mid-run (bit-exact);
//   2. exports the final policy as a versioned policy checkpoint;
//   3. boots a sharded PolicyServer from that file and serves N concurrent
//      simulated cluster sessions with cross-session batched inference:
//      every session opens a serve::Session handle (stable shard affinity +
//      a server-owned incremental embedding cache) and the per-shard
//      dispatchers coalesce batches under the adaptive bounded wait.
//
//   ./examples/serve_cluster [train_iters] [sessions] [shards]
#include <iostream>
#include <thread>

#include "io/checkpoint.h"
#include "rl/reinforce.h"
#include "serve/policy_server.h"
#include "util/table.h"
#include "workload/tpch.h"

using namespace decima;

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 20;
  const int sessions = argc > 2 ? std::atoi(argv[2]) : 8;
  const int shards = argc > 3 ? std::atoi(argv[3]) : 2;
  const std::string trainer_ckpt = "serve_cluster_trainer.ckpt";
  const std::string policy_ckpt = "serve_cluster_policy.ckpt";

  sim::EnvConfig env;
  env.num_executors = 10;
  rl::WorkloadSampler sampler = [](std::uint64_t seed) {
    Rng rng(seed);
    return workload::batched(workload::sample_tpch_batch(rng, 10));
  };

  // ---- 1. Train with periodic checkpoints, kill + resume halfway ----------
  core::AgentConfig agent_config;
  agent_config.seed = 1;
  rl::TrainConfig train;
  train.num_iterations = iters;
  train.episodes_per_iter = 4;
  train.rollout_threads = 4;
  train.curriculum = false;
  train.env = env;
  train.sampler = sampler;

  core::DecimaAgent agent(agent_config);
  std::cout << "training " << agent.num_parameters() << "-parameter policy, "
            << iters << " iterations\n";
  {
    rl::ReinforceTrainer trainer(agent, train);
    for (int i = 0; i < iters / 2; ++i) trainer.iterate();
    if (!trainer.save_checkpoint(trainer_ckpt)) {
      std::cerr << "failed to write " << trainer_ckpt << "\n";
      return 1;
    }
  }  // "kill" the first training process

  core::DecimaAgent resumed_agent(agent_config);
  rl::ReinforceTrainer trainer(resumed_agent, train);
  if (!trainer.resume(trainer_ckpt)) {
    std::cerr << "failed to resume from " << trainer_ckpt << "\n";
    return 1;
  }
  std::cout << "resumed at iteration " << trainer.iteration()
            << " from " << trainer_ckpt << "\n";
  for (int i = trainer.iteration(); i < iters; ++i) {
    const auto s = trainer.iterate();
    if (s.iteration % 5 == 0) {
      std::cout << "iter " << s.iteration << "  rollout avg JCT "
                << fmt(s.mean_avg_jct, 1) << "s\n";
    }
  }

  // ---- 2. Export the policy -------------------------------------------------
  if (!io::save_policy(resumed_agent, policy_ckpt)) {
    std::cerr << "failed to write " << policy_ckpt << "\n";
    return 1;
  }
  std::cout << "exported policy to " << policy_ckpt << "\n\n";

  // ---- 3. Serve concurrent sessions ----------------------------------------
  // Sharded serving plane: `shards` dispatcher threads, each draining its
  // own SPSC request ring, with the adaptive bounded wait coalescing
  // shallow batches. shards=1 is the bit-identical reference dispatcher.
  serve::ServeConfig serve_cfg;
  serve_cfg.shards = shards;
  serve_cfg.batch_wait_us = 200;
  auto server = serve::PolicyServer::from_checkpoint(policy_ckpt, serve_cfg);
  if (!server) {
    std::cerr << "failed to boot server from " << policy_ckpt << "\n";
    return 1;
  }
  // Each session thread is a serve::Session under the hood (run_session's
  // ServedScheduler opens one): the handle pins the session to a shard and
  // owns its incremental embedding cache for exactly its lifetime. Shown
  // explicitly here for one ad-hoc query before the full runs:
  {
    serve::Session probe = server->open_session();
    sim::ClusterEnv probe_env(env);
    Rng rng(8999);
    workload::load(probe_env,
                   workload::batched(workload::sample_tpch_batch(rng, 3)));
    const serve::DecideResult r = server->decide_with_status(probe, probe_env);
    std::cout << "probe session on shard " << probe.shard() << ": status "
              << (r.status == serve::DecideStatus::kOk ? "ok" : "degraded")
              << ", action " << (r.action.valid() ? "valid" : "none") << "\n";
  }  // handle closes here; its cache is freed server-side

  std::vector<serve::SessionResult> results(
      static_cast<std::size_t>(sessions));
  std::vector<std::thread> threads;
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      Rng rng(9000 + static_cast<std::uint64_t>(s));
      results[static_cast<std::size_t>(s)] = serve::run_session(
          *server, env,
          workload::batched(workload::sample_tpch_batch(rng, 10)));
    });
  }
  for (auto& t : threads) t.join();

  Table t({"session", "avg JCT [s]", "jobs done", "decisions"});
  for (int s = 0; s < sessions; ++s) {
    const auto& r = results[static_cast<std::size_t>(s)];
    t.add_row({fmt_int(s), fmt(r.avg_jct, 1), fmt_int(r.completed),
               fmt_int(static_cast<long long>(r.decisions))});
  }
  std::cout << t.to_string();
  const auto stats = server->stats();
  std::cout << "\nserved " << stats.decisions << " decisions in "
            << stats.batches << " batches (mean batch "
            << fmt(stats.mean_batch_size, 2) << ", max "
            << stats.max_batch_size << ") across " << server->num_shards()
            << " shard(s):\n";
  for (int s = 0; s < server->num_shards(); ++s) {
    const auto st = server->shard_stats(s);
    std::cout << "  shard " << s << ": " << st.decisions << " decisions, "
              << st.batches << " batches\n";
  }
  return 0;
}
