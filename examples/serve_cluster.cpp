// Train -> checkpoint -> serve, end to end (docs/serving.md):
//   1. trains a Decima agent for a few iterations, checkpointing the trainer
//      every iteration and once killing + resuming it mid-run (bit-exact);
//   2. exports the final policy as a versioned policy checkpoint;
//   3. boots a PolicyServer from that file and serves N concurrent simulated
//      cluster sessions with cross-session batched inference.
//
//   ./examples/serve_cluster [train_iters] [sessions]
#include <iostream>
#include <thread>

#include "io/checkpoint.h"
#include "rl/reinforce.h"
#include "serve/policy_server.h"
#include "util/table.h"
#include "workload/tpch.h"

using namespace decima;

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 20;
  const int sessions = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::string trainer_ckpt = "serve_cluster_trainer.ckpt";
  const std::string policy_ckpt = "serve_cluster_policy.ckpt";

  sim::EnvConfig env;
  env.num_executors = 10;
  rl::WorkloadSampler sampler = [](std::uint64_t seed) {
    Rng rng(seed);
    return workload::batched(workload::sample_tpch_batch(rng, 10));
  };

  // ---- 1. Train with periodic checkpoints, kill + resume halfway ----------
  core::AgentConfig agent_config;
  agent_config.seed = 1;
  rl::TrainConfig train;
  train.num_iterations = iters;
  train.episodes_per_iter = 4;
  train.rollout_threads = 4;
  train.curriculum = false;
  train.env = env;
  train.sampler = sampler;

  core::DecimaAgent agent(agent_config);
  std::cout << "training " << agent.num_parameters() << "-parameter policy, "
            << iters << " iterations\n";
  {
    rl::ReinforceTrainer trainer(agent, train);
    for (int i = 0; i < iters / 2; ++i) trainer.iterate();
    if (!trainer.save_checkpoint(trainer_ckpt)) {
      std::cerr << "failed to write " << trainer_ckpt << "\n";
      return 1;
    }
  }  // "kill" the first training process

  core::DecimaAgent resumed_agent(agent_config);
  rl::ReinforceTrainer trainer(resumed_agent, train);
  if (!trainer.resume(trainer_ckpt)) {
    std::cerr << "failed to resume from " << trainer_ckpt << "\n";
    return 1;
  }
  std::cout << "resumed at iteration " << trainer.iteration()
            << " from " << trainer_ckpt << "\n";
  for (int i = trainer.iteration(); i < iters; ++i) {
    const auto s = trainer.iterate();
    if (s.iteration % 5 == 0) {
      std::cout << "iter " << s.iteration << "  rollout avg JCT "
                << fmt(s.mean_avg_jct, 1) << "s\n";
    }
  }

  // ---- 2. Export the policy -------------------------------------------------
  if (!io::save_policy(resumed_agent, policy_ckpt)) {
    std::cerr << "failed to write " << policy_ckpt << "\n";
    return 1;
  }
  std::cout << "exported policy to " << policy_ckpt << "\n\n";

  // ---- 3. Serve concurrent sessions ----------------------------------------
  auto server = serve::PolicyServer::from_checkpoint(policy_ckpt);
  if (!server) {
    std::cerr << "failed to boot server from " << policy_ckpt << "\n";
    return 1;
  }
  std::vector<serve::SessionResult> results(
      static_cast<std::size_t>(sessions));
  std::vector<std::thread> threads;
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      Rng rng(9000 + static_cast<std::uint64_t>(s));
      results[static_cast<std::size_t>(s)] = serve::run_session(
          *server, env,
          workload::batched(workload::sample_tpch_batch(rng, 10)));
    });
  }
  for (auto& t : threads) t.join();

  Table t({"session", "avg JCT [s]", "jobs done", "decisions"});
  for (int s = 0; s < sessions; ++s) {
    const auto& r = results[static_cast<std::size_t>(s)];
    t.add_row({fmt_int(s), fmt(r.avg_jct, 1), fmt_int(r.completed),
               fmt_int(static_cast<long long>(r.decisions))});
  }
  std::cout << t.to_string();
  const auto stats = server->stats();
  std::cout << "\nserved " << stats.decisions << " decisions in "
            << stats.batches << " batches (mean batch "
            << fmt(stats.mean_batch_size, 2) << ", max "
            << stats.max_batch_size << ")\n";
  return 0;
}
