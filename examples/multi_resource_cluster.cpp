// Multi-resource scheduling demo (§7.3): four executor classes with
// different memory sizes, TPC-H jobs with per-stage memory requests, and a
// comparison of Tetris, Graphene*, and a Decima agent with the executor-class
// action head.
//
//   ./examples/multi_resource_cluster [train_iters]
#include <iostream>

#include "metrics/experiment.h"
#include "metrics/timeseries.h"
#include "rl/reinforce.h"
#include "sched/heuristics.h"
#include "util/table.h"
#include "workload/tpch.h"

using namespace decima;

int main(int argc, char** argv) {
  const int train_iters = argc > 1 ? std::atoi(argv[1]) : 40;

  sim::EnvConfig env;
  env.num_executors = 16;
  env.classes = {{0.25, "mem-0.25"}, {0.5, "mem-0.5"},
                 {0.75, "mem-0.75"}, {1.0, "mem-1.0"}};

  rl::WorkloadSampler sampler = [](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<sim::JobSpec> jobs;
    for (int i = 0; i < 8; ++i) {
      auto j = workload::sample_tpch_job(rng);
      workload::assign_memory_requests(j, rng);
      jobs.push_back(std::move(j));
    }
    return workload::batched(std::move(jobs));
  };
  const auto test_workload = sampler(555);

  sched::TetrisScheduler tetris;
  sched::GrapheneScheduler graphene;
  const auto r_tetris = metrics::run_episode(env, test_workload, tetris);
  const auto r_graphene = metrics::run_episode(env, test_workload, graphene);

  core::AgentConfig agent_config;
  agent_config.multi_resource = true;
  agent_config.seed = 5;
  core::DecimaAgent agent(agent_config);

  rl::TrainConfig train;
  train.num_iterations = train_iters;
  train.episodes_per_iter = 8;
  train.rollout_threads = 8;
  train.curriculum = false;
  train.differential_reward = false;
  train.env = env;
  train.sampler = sampler;
  std::cout << "Training multi-resource Decima (" << train_iters
            << " iterations)...\n";
  rl::ReinforceTrainer(agent, train).train();
  agent.set_mode(core::Mode::kGreedy);
  const auto r_decima = metrics::run_episode(env, test_workload, agent);

  Table table({"scheduler", "avg JCT [s]", "makespan [s]"});
  table.add_row({"Tetris", fmt(r_tetris.avg_jct, 1), fmt(r_tetris.makespan, 1)});
  table.add_row(
      {"Graphene*", fmt(r_graphene.avg_jct, 1), fmt(r_graphene.makespan, 1)});
  table.add_row({"Decima", fmt(r_decima.avg_jct, 1), fmt(r_decima.makespan, 1)});
  std::cout << "\n" << table.to_string();

  // Executor-class usage profile for Decima (cf. Fig. 12b).
  sim::ClusterEnv final_env(env);
  workload::load(final_env, test_workload);
  final_env.run(agent);
  const auto usage = metrics::class_usage_per_job(final_env);
  Table prof({"job", "tasks@0.25", "tasks@0.5", "tasks@0.75", "tasks@1.0"});
  for (std::size_t j = 0; j < usage.size(); ++j) {
    prof.add_row({fmt_int(static_cast<long long>(j)), fmt_int(usage[j][0]),
                  fmt_int(usage[j][1]), fmt_int(usage[j][2]),
                  fmt_int(usage[j][3])});
  }
  std::cout << "\nDecima executor-class usage per job:\n" << prof.to_string();
  return 0;
}
