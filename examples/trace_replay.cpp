// Industrial-trace replay (§7.3 substrate): synthesizes an Alibaba-like
// trace (20k-job scale, scaled down by default), replays a window of it
// against the heuristic schedulers, and prints summary + busy-period stats.
//
//   ./examples/trace_replay [num_jobs] [num_executors]
#include <iostream>

#include "metrics/experiment.h"
#include "metrics/timeseries.h"
#include "sched/heuristics.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/trace.h"

using namespace decima;

int main(int argc, char** argv) {
  const int num_jobs = argc > 1 ? std::atoi(argv[1]) : 300;
  const int num_execs = argc > 2 ? std::atoi(argv[2]) : 40;

  workload::TraceConfig trace_config;
  trace_config.num_jobs = num_jobs;
  trace_config.mean_iat = 8.0;
  trace_config.seed = 2018;
  const auto trace = workload::synthesize_trace(trace_config);
  const auto stats = workload::trace_stats(trace);
  std::cout << "trace: " << trace.size() << " jobs, "
            << fmt_pct(stats.frac_ge4_stages) << " with >=4 stages, largest "
            << stats.max_stages << " stages\n\n";

  sim::EnvConfig env;
  env.num_executors = num_execs;
  env.classes = {{0.25, "s"}, {0.5, "m"}, {0.75, "l"}, {1.0, "xl"}};

  sched::WeightedFairScheduler opt(-1.0);
  sched::TetrisScheduler tetris;
  sched::GrapheneScheduler graphene;

  Table table({"scheduler", "avg JCT [s]", "makespan [s]", "peak concurrent"});
  for (sim::Scheduler* s :
       std::vector<sim::Scheduler*>{&opt, &tetris, &graphene}) {
    sim::ClusterEnv cluster(env);
    workload::load(cluster, trace);
    cluster.run(*s);
    const auto series = metrics::concurrent_jobs_series(cluster, 10.0);
    double peak = 0.0;
    for (double v : series) peak = std::max(peak, v);
    table.add_row({s->name(), fmt(cluster.avg_jct(), 1),
                   fmt(cluster.makespan(), 1), fmt(peak, 0)});
  }
  std::cout << table.to_string();
  return 0;
}
